"""Figure 9 reproduction: YCSB-load ops/sec vs node count.

Method (§4.3): a replicated hash table at every replica; YCSB-load's
Zipfian(0.99) write stream (create/set/delete) is replicated through the
broadcast system and acknowledged on commit; gets bypass the broadcast.
The Acuerdo deployment is compared against ZooKeeper and etcd.

Paper shape: Acuerdo ~10x ZooKeeper and ~50x etcd, at every node count,
with throughput roughly flat in cluster size (log-scale separation).
"""

from __future__ import annotations

from benchmarks.conftest import WORKERS, emit, run_once
from repro.harness.fig9 import FIG9_SYSTEMS, fig9_grid
from repro.harness.render import render_table

SIZES = (3, 5, 7, 9)


def _run() -> dict[str, dict[int, float]]:
    pts = fig9_grid(SIZES, FIG9_SYSTEMS, workers=WORKERS, min_completions=400)
    out: dict[str, dict[int, float]] = {name: {} for name in FIG9_SYSTEMS}
    for p in pts:
        out[p.system][p.n] = p.ops_per_sec
    return out


def test_fig9_ycsb_load(benchmark, capsys):
    grid = run_once(benchmark, _run)
    rows = []
    for n in SIZES:
        acu, zk, etc = grid["acuerdo"][n], grid["zookeeper"][n], grid["etcd"][n]
        rows.append([n, round(acu), round(zk), round(etc),
                     round(acu / zk, 1), round(acu / etc, 1)])
    emit("fig9", render_table(
        "Figure 9: YCSB-load throughput (ops/sec) vs node count",
        ["nodes", "acuerdo", "zookeeper", "etcd", "acu/zk", "acu/etcd"],
        rows), capsys)

    for n in SIZES:
        acu, zk, etc = grid["acuerdo"][n], grid["zookeeper"][n], grid["etcd"][n]
        # Paper: "generally by around 10x for ZooKeeper and 50x for etcd".
        assert acu > 5 * zk, (n, acu, zk)
        assert acu > 20 * etc, (n, acu, etc)
        assert zk > etc, (n, zk, etc)
        # Log-scale magnitudes: RDMA KV in the 10^5 band, etcd near 10^3-10^4.
        assert acu > 100_000
        assert etc < 40_000
