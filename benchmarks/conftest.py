"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact (a Fig. 8 panel, Table 1,
Fig. 9, or an ablation from DESIGN.md §4), prints the same rows/series
the paper reports, and archives the rendered text under ``results/`` so
EXPERIMENTS.md can reference a stable copy.

All benchmarks carry the ``bench`` marker (added here at collection
time) and live outside the tier-1 ``testpaths``; run them explicitly
with ``pytest benchmarks`` (optionally ``-m bench``).  Sweep-shaped
drivers fan their independent simulation points across processes via
:mod:`repro.harness.parallel`; ``REPRO_WORKERS=1`` forces the
sequential path.
"""

from __future__ import annotations

import pathlib
from typing import Any, Callable, TypeVar

import pytest

from repro.harness.parallel import default_workers

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

#: Sweep fan-out used by every benchmark driver (``$REPRO_WORKERS``
#: overrides; 1 means fully sequential, the deterministic reference).
WORKERS = default_workers()

T = TypeVar("T")


def pytest_collection_modifyitems(items) -> None:
    for item in items:
        item.add_marker(pytest.mark.bench)


def emit(name: str, text: str, capsys=None) -> None:
    """Print a rendered artifact (visible even under capture) and save it."""
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if capsys is not None:
        with capsys.disabled():
            print()
            print(text)
    else:  # pragma: no cover
        print(text)


def run_once(benchmark, fn: Callable[..., T], *args: Any, **kwargs: Any) -> T:
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic and long; statistical repetition
    would only re-measure the host machine, so one round is the right
    trade-off."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
