"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact (a Fig. 8 panel, Table 1,
Fig. 9, or an ablation from DESIGN.md §4), prints the same rows/series
the paper reports, and archives the rendered text under ``results/`` so
EXPERIMENTS.md can reference a stable copy.
"""

from __future__ import annotations

import pathlib


RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def emit(name: str, text: str, capsys=None) -> None:
    """Print a rendered artifact (visible even under capture) and save it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if capsys is not None:
        with capsys.disabled():
            print()
            print(text)
    else:  # pragma: no cover
        print(text)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic and long; statistical repetition
    would only re-measure the host machine, so one round is the right
    trade-off."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
