"""§4.1 text claim: one coupled write vs Derecho's data+counter pair.

"As the minimum size of an RDMA message is 80 bytes, for small messages
this design decision means that Acuerdo is twice as bandwidth-efficient
(6 MB/s vs. 3 MB/s for Derecho with 10 byte messages on 3 nodes)."

This bench isolates the mechanism at two levels:
1. raw rings — identical traffic through a 1-write ring vs a 2-write
   ring, counting wire bytes and messages (exactly 2x); and
2. full protocols — saturated Acuerdo vs Derecho-leader throughput at
   10 bytes / 3 nodes (~2x, the paper's 6-vs-3 ratio).
"""

from __future__ import annotations

from benchmarks.conftest import WORKERS, emit, run_once
from repro.harness.fig8 import knee, sweep
from repro.harness.parallel import run_points
from repro.harness.render import render_table
from repro.harness.runspec import RunSpec
from repro.sim import Engine, ms
from repro.substrate import RingBuffer, build_substrate


def _raw_ring(writes_per_message: int, msgs: int = 2000) -> tuple[int, int]:
    engine = Engine(seed=1)
    fabric = build_substrate("rdma", engine, [0, 1, 2])
    ring = RingBuffer(fabric, 0, [0, 1, 2], capacity=4096,
                      writes_per_message=writes_per_message)
    for i in range(msgs):
        ring.try_send(i, 10)
        if i % 256 == 255:
            engine.run(until=engine.now + ms(1))
    engine.run()
    # Only node 0 transmits, so the unified totals are its NIC's counters.
    counters = fabric.counters()
    return counters["substrate.rdma.tx_msgs"], counters["substrate.rdma.tx_bytes"]


def _full() -> dict:
    one_msgs, one_bytes = _raw_ring(1)
    two_msgs, two_bytes = _raw_ring(2)
    acu_pts, der_pts = run_points(
        sweep,
        [(RunSpec(system=name, n=3, payload_bytes=10, seed=1), 1024, 250)
         for name in ("acuerdo", "derecho-leader")],
        workers=WORKERS)
    acu, der = knee(acu_pts), knee(der_pts)
    return {
        "one": (one_msgs, one_bytes),
        "two": (two_msgs, two_bytes),
        "acu": acu.throughput_mb_s,
        "der": der.throughput_mb_s,
    }


def test_wire_efficiency(benchmark, capsys):
    r = run_once(benchmark, _full)
    one_msgs, one_bytes = r["one"]
    two_msgs, two_bytes = r["two"]
    rows = [
        ["raw ring, 1 write/msg (acuerdo)", one_msgs, one_bytes, "1.0"],
        ["raw ring, 2 writes/msg (derecho)", two_msgs, two_bytes,
         f"{two_bytes / one_bytes:.2f}"],
        ["protocol knee acuerdo (MB/s)", "-", round(r["acu"], 3), "1.0"],
        ["protocol knee derecho-leader (MB/s)", "-", round(r["der"], 3),
         f"{r['acu'] / r['der']:.2f}x less"],
    ]
    emit("wire_efficiency", render_table(
        "§4.1: wire efficiency of coupled vs split (data+counter) writes "
        "(10 B messages, 3 nodes; paper: 6 MB/s vs 3 MB/s)",
        ["configuration", "wire_msgs", "wire_bytes_or_MBs", "ratio"],
        rows), capsys)

    # The 80-byte floor makes the two-write scheme exactly 2x the bytes.
    assert two_msgs == 2 * one_msgs
    assert two_bytes == 2 * one_bytes
    # End to end: Acuerdo's knee is ~2x Derecho-leader's (paper: 6 vs 3).
    assert 1.5 < r["acu"] / r["der"] < 3.5
