"""Ablation (§4.1): the message-size crossover between design points.

"Derecho is designed for large message transfers, while Acuerdo is
designed for smaller ones" — Acuerdo couples metadata and data in one
write (wins while payloads amortise the 80-B wire floor and a single
leader link suffices); Derecho splits them and, for very large
messages, relays payloads peer-to-peer over RDMC so the leader only
sends ~log(n) copies instead of n-1.

This bench sweeps the payload size at 7 nodes and reports saturated
throughput for both systems: Acuerdo dominates the small end by ~2x,
and the RDMC relay closes the gap (and overtakes) as payloads grow.
"""

from __future__ import annotations

from benchmarks.conftest import WORKERS, emit, run_once
from repro.harness.fig8 import knee, sweep
from repro.harness.parallel import run_points
from repro.harness.render import render_table
from repro.harness.runspec import RunSpec

SIZES = (10, 1_000, 16_384, 65_536)
N = 7


def _run() -> dict:
    cells = [(name, size) for size in SIZES
             for name in ("acuerdo", "derecho-leader")]
    sweeps = run_points(sweep,
                        [(RunSpec(system=name, n=N, payload_bytes=size,
                                  seed=1), 64, 150)
                         for name, size in cells],
                        workers=WORKERS)
    return {cell: knee(pts).throughput_mb_s
            for cell, pts in zip(cells, sweeps)}


def test_message_size_crossover(benchmark, capsys):
    r = run_once(benchmark, _run)
    rows = []
    for size in SIZES:
        acu = r[("acuerdo", size)]
        der = r[("derecho-leader", size)]
        rows.append([size, round(acu, 2), round(der, 2), round(acu / der, 2)])
    emit("ablation_message_size", render_table(
        f"Ablation: saturated throughput (MB/s) vs payload size, {N} nodes "
        "(Acuerdo one coupled write; Derecho data+counter, RDMC relay for "
        ">=16 KiB)",
        ["payload_B", "acuerdo", "derecho-leader", "acu/der"], rows), capsys)

    # Small messages: Acuerdo's coupled write wins decisively (§4.1).
    assert r[("acuerdo", 10)] > 1.5 * r[("derecho-leader", 10)]
    # Large messages: the RDMC relay erases Acuerdo's advantage — the
    # ratio collapses toward (or below) parity as size grows.
    small_ratio = r[("acuerdo", 10)] / r[("derecho-leader", 10)]
    large_ratio = r[("acuerdo", 65_536)] / r[("derecho-leader", 65_536)]
    assert large_ratio < 0.7 * small_ratio, (small_ratio, large_ratio)
