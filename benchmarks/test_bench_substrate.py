"""Substrate microbenchmarks (host-side performance of the simulator).

These are conventional pytest-benchmark measurements: they time how fast
the *simulator itself* executes the hot primitives (one-sided writes,
ring sends, SST pushes, engine event dispatch).  They exist to keep the
reproduction usable — the Fig. 8/9 drivers execute millions of these
operations, so a regression here multiplies into minutes of bench time.
"""

from __future__ import annotations

from repro.core import AcuerdoCluster
from repro.rdma import RdmaFabric, RingBuffer, SharedStateTable
from repro.sim import Engine, ms, us


def test_engine_event_dispatch(benchmark):
    def run():
        e = Engine(seed=1)
        for i in range(10_000):
            e.schedule(i, int)
        e.run()
        return e.now

    assert benchmark(run) == 9_999


def test_qp_write_throughput(benchmark):
    def run():
        e = Engine(seed=1)
        fab = RdmaFabric(e, [0, 1])
        reg = fab.register(1, "r", 1 << 20, on_write=lambda k, v, s: None)
        rkey = reg.grant()
        for i in range(5_000):
            fab.write(0, 1, reg, rkey, i, None, 10, signaled=(i % 512 == 511))
            if i % 1024 == 1023:
                e.run(until=e.now + us(400))
        e.run()
        return reg.writes_received

    assert benchmark(run) == 5_000


def test_ring_broadcast_throughput(benchmark):
    def run():
        e = Engine(seed=1)
        fab = RdmaFabric(e, [0, 1, 2])
        ring = RingBuffer(fab, 0, [0, 1, 2], capacity=8192)
        for i in range(4_000):
            ring.try_send(i, 10)
            if i % 1024 == 1023:
                e.run(until=e.now + ms(1))
        e.run()
        return ring.receiver(1).delivered_msgs + ring.receiver(1).backlog

    assert benchmark(run) == 4_000


def test_sst_push_throughput(benchmark):
    def run():
        e = Engine(seed=1)
        fab = RdmaFabric(e, list(range(5)))
        sst = SharedStateTable(fab, "b", list(range(5)), initial=0)
        for i in range(2_000):
            sst.set_and_push(0, i)
            if i % 512 == 511:
                e.run(until=e.now + ms(1))
        e.run()
        return sst.read(4, 0)

    assert benchmark(run) == 1_999


def test_acuerdo_end_to_end_sim_rate(benchmark):
    """Messages committed per host-second across a full 3-node cluster —
    the figure that bounds every Fig. 8 sweep."""
    def run():
        e = Engine(seed=1)
        c = AcuerdoCluster(e, 3, record_deliveries=False)
        c.preseed_leader(0)
        c.start()
        done = []
        for i in range(1_000):
            c.submit(("b", i), 10, lambda h: done.append(1))
        e.run(until=ms(20))
        return len(done)

    assert benchmark(run) == 1_000
