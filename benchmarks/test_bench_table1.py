"""Table 1 reproduction: Acuerdo election duration vs replica count.

Method (§4.2): open-loop 10-byte message stream; the leader is
repeatedly crashed; each election is timed at the winner from failure
detection to readiness to send (election + diff transfer).  Long-latency
nodes are injected in growing numbers — the paper's own explanation for
the growth and the 7-to-9-node plateau.

Paper row:   3 nodes: .3 ms | 5: 6.8 ms | 7: 12.1 ms | 9: 12.6 ms
Shape verified: monotone growth 3 -> 5 -> 7 with a plateau at 7 -> 9,
with the 3-node cluster an order of magnitude below the 7-node one.
"""

from __future__ import annotations

from benchmarks.conftest import WORKERS, emit, run_once
from repro.harness.parallel import run_points
from repro.harness.render import render_table
from repro.harness.table1 import DEFAULT_SLOW_NODES, table1_elections

PAPER_MS = {3: 0.3, 5: 6.8, 7: 12.1, 9: 12.6}

SEEDS = (1, 2)


def _run() -> dict[int, list[float]]:
    cells = [(n, seed, 4) for n in (3, 5, 7, 9) for seed in SEEDS]
    runs = run_points(table1_elections, cells, workers=WORKERS)
    out: dict[int, list[float]] = {n: [] for n in (3, 5, 7, 9)}
    for (n, _seed, _kills), durations in zip(cells, runs):
        out[n].extend(durations)
    return out


def test_table1_elections(benchmark, capsys):
    durations = run_once(benchmark, _run)
    means = {n: (sum(d) / len(d) if d else float("nan")) for n, d in durations.items()}
    rows = [[n, len(durations[n]), round(means[n], 3), PAPER_MS[n],
             DEFAULT_SLOW_NODES[n]]
            for n in sorted(means)]
    emit("table1", render_table(
        "Table 1: average Acuerdo election duration (includes diff transfer)",
        ["replicas", "elections", "measured_ms", "paper_ms", "long_latency_nodes"],
        rows), capsys)

    for n in (3, 5, 7, 9):
        assert durations[n], f"no elections measured for n={n}"
    # Shape: the 3-node cluster (no long-latency members) is an order of
    # magnitude below every larger one (paper: .3 ms vs 6.8-12.6 ms)...
    assert means[3] < means[5] / 10
    assert means[3] < means[7] / 10
    # ...growth from 5 upward is mild (long-latency proportion, not
    # replica count, is the driver)...
    assert means[5] <= means[7] * 1.5
    # ...with the 7->9 plateau the paper reports.
    assert means[9] < 2.5 * means[7]
