"""Engine hot-loop microbenchmark: raw schedule/run and fused-chain rates.

Every simulated event in the repository funnels through
``Engine.schedule_at`` + ``Engine.run``; this bench pins their raw cost
on the host, independent of any protocol logic, and measures what
macro-event fusion saves on a pure fan-out workload (the producer shape
SST pushes and ring broadcasts compile into chains).

Floors are deliberately conservative — they catch a hot loop becoming
accidentally quadratic or re-gaining per-event allocations, not normal
host jitter.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, run_once
from repro.harness import render_table
from repro.sim.engine import Engine

EVENTS = 200_000
FAN = 8  # chain length of the fused fan-out shape

#: Conservative events/second floors (a warm CPython on any recent host
#: clears these by >5x; see BENCH_host_perf.json for measured rates).
SINGLES_MIN_EPS = 100_000.0
CHAIN_MIN_EPS = 100_000.0


def _nop(*_args) -> None:
    return None


def _run_singles() -> dict:
    engine = Engine(seed=1)
    for i in range(EVENTS):
        engine.schedule_at(i, _nop, i)
    t0 = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - t0
    return {"events": engine.events_executed, "wall_s": wall,
            "eps": engine.events_executed / wall if wall > 0 else 0.0,
            "heap_pushes": engine.heap_pushes}


def _run_chains() -> dict:
    # The same event count arranged as FAN-step chains: one heap entry
    # per fan-out, the shape broadcast producers emit.
    engine = Engine(seed=1)
    groups = EVENTS // FAN
    for i in range(groups):
        base = i * FAN
        engine.schedule_chain([(base + j, _nop, (base + j,))
                               for j in range(FAN)])
    t0 = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - t0
    return {"events": engine.events_executed, "wall_s": wall,
            "eps": engine.events_executed / wall if wall > 0 else 0.0,
            "heap_pushes": engine.heap_pushes}


def _measure() -> dict:
    # Best-of-3: the floors gate a deterministic cost, not host noise.
    singles = min((_run_singles() for _ in range(3)), key=lambda r: r["wall_s"])
    chains = min((_run_chains() for _ in range(3)), key=lambda r: r["wall_s"])
    return {"singles": singles, "chains": chains}


def test_bench_engine_hot_loop(benchmark, capsys) -> None:
    out = run_once(benchmark, _measure)
    s, c = out["singles"], out["chains"]
    rows = [["singles", s["events"], s["heap_pushes"], round(s["wall_s"], 4),
             round(s["eps"])],
            [f"chains(x{FAN})", c["events"], c["heap_pushes"],
             round(c["wall_s"], 4), round(c["eps"])]]
    emit("engine_hot_loop", render_table(
        f"Engine hot loop: {EVENTS} no-op events",
        ["shape", "events", "heap_pushes", "wall_s", "events_per_s"], rows),
        capsys)

    assert s["events"] == c["events"] == EVENTS
    # Fusion must collapse heap traffic on the fan-out shape...
    assert c["heap_pushes"] <= s["heap_pushes"] // (FAN // 2)
    # ...and neither loop may regress below the conservative floor.
    assert s["eps"] >= SINGLES_MIN_EPS, \
        f"singles rate {s['eps']:.0f} ev/s below floor {SINGLES_MIN_EPS:.0f}"
    assert c["eps"] >= CHAIN_MIN_EPS, \
        f"chain rate {c['eps']:.0f} ev/s below floor {CHAIN_MIN_EPS:.0f}"
