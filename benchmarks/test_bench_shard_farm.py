"""Shard-farm benchmark: a 64-group deployment serving 10^5 users.

The paper's evaluation stops at one group; production deployments run
many (§5 "multiple instances ... partitioned by key").  This bench
takes the scale-out question seriously: it sweeps a farm of Acuerdo
groups from 1 to 64 shards under uniform and Zipfian(0.99) key skew at
10^5 modeled users, printing aggregate throughput, commit-latency
percentiles and the hottest shard's load share per point.

Shapes this bench verifies:

- aggregate commit throughput tracks the offered rate at every farm
  width (the farm is open-loop and far from any single group's knee);
- p99 commit latency stays flat as shards are added — groups share
  nothing, so farm width buys capacity without a latency tax;
- under Zipfian(0.99) the hottest shard's load share exceeds the
  uniform 1/shards share (hot keys hash to somebody), quantifying how
  far key hashing alone spreads a skewed population.
"""

from __future__ import annotations

from benchmarks.conftest import WORKERS, emit, run_once
from repro.harness import render_table
from repro.harness.runspec import RunSpec
from repro.harness.shardsweep import ShardPoint, shard_sweep

SHARD_COUNTS = [1, 4, 16, 64]
SKEWS = [0.0, 0.99]
USERS = 100_000
RATE_RPS = 500_000.0
DURATION_MS = 10.0


def _sweep() -> list[ShardPoint]:
    spec = RunSpec(system="acuerdo", n=3, payload_bytes=64,
                   workload="openloop", duration_ms=DURATION_MS, seed=9,
                   users=USERS, arrival_rate=RATE_RPS)
    return shard_sweep(spec, SHARD_COUNTS, SKEWS, workers=WORKERS)


def _render(pts: list[ShardPoint]) -> str:
    rows = [[p.shards, p.skew, p.committed, round(p.throughput_rps),
             round(p.mean_latency_us, 1), round(p.p99_latency_us, 1),
             round(p.hottest_share, 3), p.events_executed]
            for p in pts]
    return render_table(
        f"Shard farm: acuerdo, {USERS} users at {round(RATE_RPS)} req/s, "
        f"{DURATION_MS} ms",
        ["shards", "skew", "committed", "tput_rps", "mean_lat_us",
         "p99_lat_us", "hottest_share", "events"], rows)


def test_bench_shard_farm(benchmark, capsys) -> None:
    pts = run_once(benchmark, _sweep)
    emit("shard_farm", _render(pts), capsys)

    by_key = {(p.shards, p.skew): p for p in pts}
    for p in pts:
        # Open-loop farm far from saturation: commits track offers.
        assert p.committed >= 0.9 * p.submitted, \
            f"{p.shards} shards / skew {p.skew}: farm fell behind the " \
            f"offered load ({p.committed}/{p.submitted})"
    for skew in SKEWS:
        one, wide = by_key[(1, skew)], by_key[(64, skew)]
        # Shared-nothing groups: width must not tax p99 latency.
        assert wide.p99_latency_us <= 2.0 * one.p99_latency_us, \
            f"p99 grew from {one.p99_latency_us} to {wide.p99_latency_us} " \
            f"us going 1 -> 64 shards (skew {skew})"
    uni, zipf = by_key[(64, 0.0)], by_key[(64, 0.99)]
    # Zipfian hot keys concentrate load above the uniform share.
    assert zipf.hottest_share >= uni.hottest_share, \
        f"Zipfian hottest share {zipf.hottest_share} below uniform " \
        f"{uni.hottest_share}"
