"""Ablation (§4.3): gets bypass the broadcast, so read capacity scales
with the replica count while write capacity stays flat.

"Hash-table gets can be done directly via RDMA from the client to any
replica, thereby bypassing the Acuerdo instance."  Each added replica
adds an independent read-serving machine; writes still funnel through
one leader.  This bench measures both capacities per cluster size under
a YCSB-B-shaped mix and asserts the scaling split.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.apps.hashtable import ReplicatedHashTable
from repro.core import AcuerdoCluster
from repro.harness.render import render_table
from repro.sim import Engine, ms
from repro.workloads.ycsb import YcsbMixedWorkload

#: CPU cost of serving one local get at a replica (RDMA read handling).
GET_CPU_NS = 1_200


def _measure(n: int, seed: int = 1) -> dict:
    engine = Engine(seed=seed)
    cluster = AcuerdoCluster(engine, n)
    cluster.preseed_leader(0)
    cluster.start()
    table = ReplicatedHashTable(cluster)
    workload = YcsbMixedWorkload(engine, mix="b", record_count=1_000)

    # Preload some records through the broadcast.
    for i in range(200):
        table.set(workload.key(i), "x" * 100)
    engine.run(until=ms(3))

    # Write capacity: saturate the leader with updates.
    writes_done = []
    for i in range(4_000):
        table.set(workload.key(i % 500), "y" * 100,
                  on_commit=lambda _x: writes_done.append(1))
    t0 = engine.now
    engine.run(until=t0 + ms(5))
    write_ops_s = len(writes_done) / 5e-3

    # Read capacity: every replica serves gets from its local copy at
    # GET_CPU_NS per op; aggregate capacity is the sum across replicas.
    per_replica_reads_s = 1e9 / GET_CPU_NS
    read_ops_s = per_replica_reads_s * n

    return {"writes": write_ops_s, "reads": read_ops_s}


def _run() -> dict:
    return {n: _measure(n) for n in (3, 5, 7, 9)}


def test_read_scaling(benchmark, capsys):
    r = run_once(benchmark, _run)
    rows = [[n, round(r[n]["writes"]), round(r[n]["reads"])] for n in sorted(r)]
    emit("ablation_read_scaling", render_table(
        "Ablation: write capacity (through the broadcast) vs aggregate "
        "read capacity (local gets) as replicas are added",
        ["nodes", "write_ops_s", "read_ops_s"], rows), capsys)

    # Writes flat (single-leader funnel): within 25% across sizes.
    writes = [r[n]["writes"] for n in (3, 5, 7, 9)]
    assert max(writes) < 1.25 * min(writes), writes
    # Reads scale linearly with replicas.
    assert abs(r[9]["reads"] / r[3]["reads"] - 3.0) < 0.01
