"""Extension benchmark: the whole RDMA consensus lineage on one axis.

§5 discusses two systems the paper does not benchmark — DARE (the
ancestor, superseded by APUS) and Mu ("incapable of running on our RoCE
cluster").  The simulation has neither constraint, so this bench runs
the comparison the paper's related-work section argues qualitatively:

- normal-path latency:   mu < acuerdo < dare < apus
  (completion-as-ack beats SST round; fine-grained completions and
  single-batch pipelines cost progressively more);
- fail-over downtime:    acuerdo << mu
  (Mu must close and re-establish its exclusive connections; Acuerdo's
  election is a few SST rounds plus a diff);
- DARE elections can split votes; Acuerdo's monotone votes cannot.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.harness.factory import build_from_spec, settle
from repro.harness.fig8 import point
from repro.harness.render import render_table
from repro.harness.runspec import RunSpec
from repro.sim import Engine, ms, us
from repro.workloads.openloop import OpenLoopClient

LINEAGE = ["mu", "acuerdo", "dare", "apus"]


def _latency_row(name: str) -> list:
    p = point(RunSpec(system=name, n=3, payload_bytes=10, window=1),
              min_completions=250)
    return [name, round(p.mean_latency_us, 1), round(p.p99_latency_us, 1),
            round(p.throughput_mb_s, 3)]


def _failover_ms(name: str, seed: int) -> float:
    engine = Engine(seed=seed)
    system = build_from_spec(RunSpec(system=name, n=5, seed=seed), engine)
    settle(system, preseed=False)
    client = OpenLoopClient(system, period_ns=us(50), message_size=10)
    client.start()
    engine.run(until=engine.now + ms(5))
    ldr = system.leader_id()
    system.crash(ldr)
    engine.run(until=engine.now + ms(60))
    client.stop()
    return client.longest_commit_gap() / 1e6


def _run() -> dict:
    rows = [_latency_row(name) for name in LINEAGE]
    fo = {name: sum(_failover_ms(name, s) for s in (21, 22)) / 2
          for name in ("acuerdo", "mu")}
    return {"rows": rows, "failover": fo}


def test_rdma_lineage(benchmark, capsys):
    r = run_once(benchmark, _run)
    table = render_table(
        "Extension: RDMA consensus lineage, 3 nodes / 10 B / window 1 "
        "(incl. Mu, which the paper's RoCE cluster could not run)",
        ["system", "mean_lat_us", "p99_lat_us", "tput_MB_s"], r["rows"])
    fo_table = render_table(
        "Extension: fail-over downtime (5 nodes, leader crashed)",
        ["system", "downtime_ms"],
        [[k, round(v, 2)] for k, v in r["failover"].items()])
    emit("extension_dare_mu", table + "\n\n" + fo_table, capsys)

    lat = {row[0]: row[1] for row in r["rows"]}
    # Normal path: mu fastest, then acuerdo, then dare, then apus.
    assert lat["mu"] < lat["acuerdo"] < lat["dare"] < lat["apus"], lat
    # Fail-over: Acuerdo's election is far cheaper than Mu's reconnect.
    assert r["failover"]["acuerdo"] * 2 < r["failover"]["mu"], r["failover"]
