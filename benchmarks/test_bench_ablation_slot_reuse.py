"""Ablation (DESIGN.md §4.1): accept-based vs commit-based slot reuse.

§4.1: "Acuerdo can reuse a slot once the receiver has simply accepted
the message.  Long buffers are sufficient to cover any transient
interruptions ... In contrast, Derecho can only reuse a slot once the
message has been committed across all active nodes."

Scenario: one follower suffers a 200 µs scheduler deschedule every
millisecond (the transient interruption of §3) while an open-loop
client offers a fixed 200 k msg/s.  For each release policy we sweep the
ring capacity and report sender stalls: the commit-based policy must
additionally ride out the post-wake commit drain (acceptance, stability
propagation and delivery at *all* nodes), so it needs a larger ring to
run stall-free and stalls far more below that size.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.core import AcuerdoCluster, AcuerdoConfig
from repro.harness.render import render_table
from repro.protocols.derecho import DerechoCluster, DerechoConfig
from repro.sim import Engine, ms, us
from repro.workloads.openloop import OpenLoopClient

CAPACITIES = (40, 48, 56, 64, 96)
PAUSE_NS = us(200)
PERIOD_NS = ms(1)
RATE_PERIOD_NS = us(5)  # 200k msg/s offered


def _stalls(kind: str, capacity: int, seed: int = 5) -> int:
    engine = Engine(seed=seed)
    if kind == "accept":
        system = AcuerdoCluster(engine, 3,
                                config=AcuerdoConfig(ring_capacity=capacity))
        system.preseed_leader(0)
        system.start()
    else:
        system = DerechoCluster(engine, 3, config=DerechoConfig(
            mode="leader", ring_capacity=capacity,
            heartbeat_timeout_ns=us(2000)))
        system.start()
    ring = system.rings[0]
    victim = [p for p in system.processes() if p.node_id == 2][0]

    def desched():
        victim.deschedule(PAUSE_NS)
        engine.schedule(PERIOD_NS, desched)

    engine.schedule(PERIOD_NS, desched)
    client = OpenLoopClient(system, period_ns=RATE_PERIOD_NS, message_size=10)
    client.start()
    engine.run(until=engine.now + ms(30))
    client.stop()
    return ring.stalls


def _run() -> dict:
    return {(k, c): _stalls(k, c) for k in ("accept", "commit")
            for c in CAPACITIES}


def test_slot_release_policy(benchmark, capsys):
    r = run_once(benchmark, _run)
    rows = []
    for cap in CAPACITIES:
        rows.append([cap, r[("accept", cap)], r[("commit", cap)]])
    min_ring = {}
    for kind in ("accept", "commit"):
        free = [c for c in CAPACITIES if r[(kind, c)] == 0]
        min_ring[kind] = min(free) if free else None
    rows.append(["min stall-free", min_ring["accept"], min_ring["commit"]])
    emit("ablation_slot_reuse", render_table(
        "Ablation: sender stalls vs ring capacity under 200us transient "
        "deschedules (open loop 200k msg/s, 3 nodes)",
        ["ring_slots", "accept_based (Acuerdo)", "commit_based (Derecho)"],
        rows), capsys)

    # Commit-based release needs a strictly larger ring to run stall-free…
    assert min_ring["accept"] is not None and min_ring["commit"] is not None
    assert min_ring["accept"] < min_ring["commit"], min_ring
    # …and stalls substantially more under memory pressure.
    tight = CAPACITIES[0]
    assert r[("commit", tight)] > 2 * max(1, r[("accept", tight)])
