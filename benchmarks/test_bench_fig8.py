"""Figure 8 reproduction: broadcast latency vs throughput under load.

One test per panel — (a) 3 nodes / 10 B, (b) 3 nodes / 1000 B,
(c) 7 nodes / 10 B, (d) 7 nodes / 1000 B — each sweeping the client
window over powers of two for all seven systems and printing the full
latency/throughput series plus a knee/floor summary.

Paper shapes these benches verify (§4.1):
- Acuerdo has the lowest latency of all systems, ~2x under
  Derecho-leader and >=10x under the TCP systems (log-scale bands);
- Acuerdo's small-message throughput is ~2x Derecho-leader's (one
  80-byte-minimum wire write per message instead of two);
- derecho-all trades latency for bandwidth (worst RDMA latency floor);
- APUS sits between the RDMA and TCP bands (single pending batch);
- etcd > zookeeper > libpaxos in latency, all far above RDMA.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import WORKERS, emit, run_once
from repro.harness import RunSpec, SYSTEMS, render_table
from repro.harness.fig8 import Fig8Point, floor, knee, sweep
from repro.harness.parallel import run_points
from repro.harness.plot import ascii_plot

#: completions measured per point; enough for stable means, small enough
#: to keep the full 4-panel grid in minutes of host time.
MIN_COMPLETIONS = 250


def _panel(n: int, size: int) -> dict[str, list[Fig8Point]]:
    # One sweep per system, fanned across processes; each sweep's
    # internal window points stay sequential (the stopping rule is
    # adaptive), so the system axis is the parallel one here.
    sweeps = run_points(
        sweep,
        [(RunSpec(system=name, n=n, payload_bytes=size, seed=1),
          1024, MIN_COMPLETIONS) for name in SYSTEMS],
        workers=WORKERS)
    return dict(zip(SYSTEMS, sweeps))


def _render(panel: str, n: int, size: int,
            sweeps: dict[str, list[Fig8Point]]) -> str:
    rows = []
    for name, pts in sweeps.items():
        for p in pts:
            rows.append([name, p.window, round(p.throughput_mb_s, 3),
                         round(p.mean_latency_us, 1), round(p.p99_latency_us, 1)])
    table = render_table(
        f"Figure 8({panel}): {n} nodes, {size}-byte messages",
        ["system", "window", "tput_MB_s", "mean_lat_us", "p99_lat_us"], rows)
    summary_rows = []
    for name, pts in sweeps.items():
        f, k = floor(pts), knee(pts)
        summary_rows.append([name, round(f.mean_latency_us, 1),
                             round(k.throughput_mb_s, 3), k.window])
    summary = render_table(
        f"Figure 8({panel}) summary: floor latency and knee throughput",
        ["system", "floor_lat_us", "knee_tput_MB_s", "knee_window"],
        sorted(summary_rows, key=lambda r: r[1]))
    plot = ascii_plot(
        {name: [(p.throughput_mb_s, p.mean_latency_us) for p in pts]
         for name, pts in sweeps.items()},
        log_x=True, log_y=True, x_label="tput MB/s", y_label="lat us",
        title=f"Figure 8({panel}) as plotted (log-log; ideal = bottom right)")
    return table + "\n\n" + summary + "\n\n" + plot


def _assert_shape(sweeps: dict[str, list[Fig8Point]], n: int, size: int) -> None:
    """The qualitative claims of §4.1, asserted mechanically."""
    fl = {name: floor(pts).mean_latency_us for name, pts in sweeps.items()}
    kn = {name: knee(pts).throughput_mb_s for name, pts in sweeps.items()}
    # Acuerdo: lowest latency overall.
    assert fl["acuerdo"] == min(fl.values()), fl
    # Latency bands: RDMA << TCP (order of magnitude).
    for rdma in ("acuerdo", "derecho-leader"):
        for tcp in ("zookeeper", "etcd"):
            assert fl[tcp] > 8 * fl[rdma], (rdma, tcp, fl)
    # etcd is the slowest TCP system.
    assert fl["etcd"] > fl["zookeeper"] > fl["libpaxos"]
    # Acuerdo throughput beats derecho-leader; ~2x for small messages.
    assert kn["acuerdo"] > kn["derecho-leader"]
    if size <= 10:
        assert kn["acuerdo"] > 1.5 * kn["derecho-leader"], kn
    # Every RDMA system out-runs every TCP system.
    assert min(kn["acuerdo"], kn["derecho-leader"]) > \
        4 * max(kn["zookeeper"], kn["etcd"])


@pytest.mark.parametrize("panel,n,size", [
    ("a", 3, 10),
    ("b", 3, 1000),
    ("c", 7, 10),
    ("d", 7, 1000),
])
def test_fig8(benchmark, capsys, panel, n, size):
    sweeps = run_once(benchmark, _panel, n, size)
    emit(f"fig8{panel}", _render(panel, n, size, sweeps), capsys)
    _assert_shape(sweeps, n, size)
