"""Ablation (DESIGN.md §4.2): quorum commit vs virtual synchrony under a
long-latency node.

The paper's core architectural claim: "Acuerdo will simply leave the
node behind to catch up later" while "a single slow node will force the
entire [Derecho] cluster to commit operations at its speed" (§4.1).

Setup: 3 replicas, one follower runs 12x slow (below Derecho's failure
detector so it is *not* configured out).  Measured: client latency with
and without the slow node, plus Acuerdo's catch-up behaviour.
"""

from __future__ import annotations

from benchmarks.conftest import WORKERS, emit, run_once
from repro.harness.factory import build_from_spec, settle
from repro.harness.parallel import run_points
from repro.harness.render import render_table
from repro.harness.runspec import RunSpec
from repro.protocols.derecho import DerechoConfig
from repro.sim import Engine, ms, us
from repro.workloads.closedloop import ClosedLoopClient

SLOW = 12.0


def _measure(name: str, slow: bool, seed: int = 3) -> dict:
    engine = Engine(seed=seed)
    kwargs = {}
    if name.startswith("derecho"):
        # Keep the slow node under the failure detector: this ablation
        # isolates slow-node *waiting*, not view changes.
        kwargs["config"] = DerechoConfig(mode="leader",
                                         heartbeat_timeout_ns=us(800))
    system = build_from_spec(RunSpec(system=name, n=3, seed=seed), engine,
                             **kwargs)
    settle(system)
    if slow:
        victim = [p for p in system.processes() if p.node_id == 2][0]
        victim.config.speed_factor = SLOW
        victim.cpu.speed_factor = SLOW
    client = ClosedLoopClient(system, window=4, message_size=10, warmup=30)
    client.start()
    deadline = engine.now + ms(120)
    while len(client.latencies) < 300 and engine.now < deadline:
        engine.run(until=engine.now + ms(2))
    client.stop()
    res = client.result()
    out = {"lat": res.mean_latency_us, "completed": res.completed}
    if name == "acuerdo" and slow:
        # The slow node trails but keeps catching up in batches.
        out["slow_node_delivered"] = system.deliveries.delivered_count(2)
        engine.run(until=engine.now + ms(30))
        out["slow_node_delivered_after_drain"] = system.deliveries.delivered_count(2)
    return out


def _run() -> dict:
    cells = [("acuerdo", False), ("acuerdo", True),
             ("derecho-leader", False), ("derecho-leader", True)]
    return dict(zip(cells, run_points(_measure, cells, workers=WORKERS)))


def test_slow_node_tolerance(benchmark, capsys):
    r = run_once(benchmark, _run)
    rows = []
    for name in ("acuerdo", "derecho-leader"):
        base = r[(name, False)]["lat"]
        slow = r[(name, True)]["lat"]
        rows.append([name, round(base, 1), round(slow, 1), round(slow / base, 2)])
    emit("ablation_slow_node", render_table(
        "Ablation: one 12x long-latency follower (3 nodes, 10 B, window 4)",
        ["system", "lat_us_healthy", "lat_us_slow_node", "slowdown"],
        rows), capsys)

    acu_ratio = r[("acuerdo", True)]["lat"] / r[("acuerdo", False)]["lat"]
    der_ratio = r[("derecho-leader", True)]["lat"] / r[("derecho-leader", False)]["lat"]
    # Acuerdo barely notices (fastest-quorum commit)...
    assert acu_ratio < 1.5, acu_ratio
    # ...Derecho commits at the slow node's pace.
    assert der_ratio > 2.0, der_ratio
    assert der_ratio > 2 * acu_ratio
