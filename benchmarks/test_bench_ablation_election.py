"""Ablation (DESIGN.md §4.3): election mechanisms compared.

§3.3/§5: Acuerdo's election (i) converges without split-vote livelock
(unlike Raft/DARE randomized timeouts) and (ii) elects an up-to-date
leader by construction, so there is no post-election verify round or
state transfer (unlike ZooKeeper's FLE + check, which can restart).

Measured on identical 5-node crash-the-leader scenarios:
- fail-over downtime (detection excluded for Acuerdo — the same
  quantity Table 1 reports — and first-new-commit gap for the others);
- election rounds / restarts observed.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.harness.factory import build_from_spec, settle
from repro.harness.render import render_table
from repro.harness.runspec import RunSpec
from repro.sim import Engine, ms, us
from repro.workloads.openloop import OpenLoopClient


def _failover_gap(name: str, seed: int) -> dict:
    engine = Engine(seed=seed)
    system = build_from_spec(RunSpec(system=name, n=5, seed=seed), engine)
    settle(system, preseed=False)
    client = OpenLoopClient(system, period_ns=us(50), message_size=10)
    client.start()
    engine.run(until=engine.now + ms(10))
    baseline = client.longest_commit_gap()
    ldr = system.leader_id()
    system.crash(ldr)
    engine.run(until=engine.now + ms(120))
    client.stop()
    gap_ms = client.longest_commit_gap() / 1e6
    tr = engine.trace
    rounds = max(tr.get("acuerdo.elections_started"),
                 tr.get("raft.elections_started"),
                 tr.get("zab.elected"))
    restarts = tr.get("zab.verify_failed")
    return {"gap_ms": gap_ms, "rounds": rounds, "restarts": restarts,
            "baseline_ms": baseline / 1e6,
            "recovered": system.leader_id() is not None}


def _run():
    out = {}
    for name in ("acuerdo", "zookeeper", "etcd"):
        gaps = [_failover_gap(name, seed) for seed in (11, 12, 13)]
        out[name] = gaps
    return out


def test_election_mechanisms(benchmark, capsys):
    r = run_once(benchmark, _run)
    rows = []
    for name, gaps in r.items():
        mean_gap = sum(g["gap_ms"] for g in gaps) / len(gaps)
        worst = max(g["gap_ms"] for g in gaps)
        rounds = sum(g["rounds"] for g in gaps)
        rows.append([name, round(mean_gap, 2), round(worst, 2), rounds,
                     all(g["recovered"] for g in gaps)])
    emit("ablation_election", render_table(
        "Ablation: fail-over downtime by election mechanism "
        "(5 nodes, leader crashed, open-loop 10 B stream)",
        ["system", "mean_downtime_ms", "worst_ms", "election_events",
         "recovered"], rows), capsys)

    for name, gaps in r.items():
        assert all(g["recovered"] for g in gaps), name
    acu = sum(g["gap_ms"] for g in r["acuerdo"]) / 3
    zk = sum(g["gap_ms"] for g in r["zookeeper"]) / 3
    etc = sum(g["gap_ms"] for g in r["etcd"]) / 3
    # Acuerdo's one-shot, transfer-free election recovers far faster
    # than FLE + verify + sync (zookeeper) or randomized-timeout Raft.
    assert acu < zk / 3, (acu, zk)
    assert acu < etc / 3, (acu, etc)
