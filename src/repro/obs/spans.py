"""Per-message span trees over the simulated critical path.

A *span* covers one client payload from ``submit()`` to its first
app-level delivery.  Instrumentation hooks along the way (protocol
nodes, NIC/QP, TCP stack, receiver poll loops) report *milestones* —
``(phase, sim-ns)`` marks — and :meth:`SpanRecorder.finish` turns them
into contiguous :class:`Segment` children:

- only the **earliest** mark per phase is kept (critical-path
  semantics: the first replica to reach a phase defines it);
- marks are clamped into ``[begin, finish]`` and sorted by
  ``(time, canonical phase order)``;
- consecutive cut points become half-open segments ``[prev, cut)``
  labelled with the phase that *ends* at the cut, and a final
  ``deliver`` segment runs to the finish time.

By construction the children durations sum **exactly** (integer sim-ns)
to the span duration, which is also the value sampled into the tracer
as ``obs.delivery_latency_ns`` — the invariant the property tests and
the Chrome-trace validator both assert.

Correlation: substrate-level hooks see wire-level carrier objects (an
Acuerdo ``Message``, a Zab ``("PROPOSE", ...)`` tuple), not the client
payload.  Protocols call :meth:`SpanRecorder.bind` to alias a carrier
to the payload's record; marks against either object land on the same
span.  Marks for unbound objects (SST rows, heartbeats, acks) are
dropped in O(1) — a dict miss.

The recorder attaches as ``engine.obs``; every hook in the simulator is
gated by ``engine.obs is not None`` so that runs without a recorder are
bit-identical to the pre-observability tree (see package docstring).
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

#: Canonical phase order along the critical path.  Used as the sort
#: tie-breaker when two milestones land on the same nanosecond, and by
#: renderers to lay phases out in pipeline order.
PHASES = (
    "submit",       # client payload handed to the serving node
    "propose",      # leader put it on the wire (ring send / PROPOSE / ACCEPT)
    "nic_tx",       # sender NIC finished serialising it onto the link
    "wire",         # propagation done, bits at the remote NIC
    "deposit",      # payload landed in remote memory (PCIe/DMA or kernel stack)
    "poll_notice",  # remote CPU first noticed it (poll loop / wakeup + drain)
    "accept",       # a follower accepted/logged it
    "ack",          # acknowledgment observed back at the coordinator
    "quorum",       # quorum of accepts established
    "commit",       # commit decision reached
    "deliver",      # first app-level delivery (span end)
)

_RANK = {p: i for i, p in enumerate(PHASES)}


class Segment(NamedTuple):
    """One contiguous slice of a message span (half-open, sim-ns)."""

    phase: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class MessageSpan(NamedTuple):
    """A finished span: one delivered message, segmented by phase."""

    msg_id: int
    label: str
    start_ns: int
    end_ns: int
    segments: tuple[Segment, ...]

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def phase_bounds(self, phase: str) -> Optional[tuple[int, int]]:
        """``(start, end)`` of the named segment, or None if absent."""
        for seg in self.segments:
            if seg.phase == phase:
                return (seg.start_ns, seg.end_ns)
        return None

    def phase_durations(self) -> dict[str, int]:
        """Total ns per phase label (segments with equal labels merged)."""
        out: dict[str, int] = {}
        for seg in self.segments:
            out[seg.phase] = out.get(seg.phase, 0) + seg.duration_ns
        return out


class _OpenSpan:
    """Mutable in-flight record keyed by payload/carrier identity."""

    __slots__ = ("msg_id", "label", "t0", "marks", "keys", "refs")

    def __init__(self, msg_id: int, label: str, t0: int, payload: Any):
        self.msg_id = msg_id
        self.label = label
        self.t0 = t0
        self.marks: list[tuple[int, str]] = []
        #: every id() under which this record is registered (payload +
        #: bound carriers), so finish() can unregister all of them.
        self.keys: list[int] = [id(payload)]
        #: strong refs pinning those ids for the record's lifetime —
        #: without them a GC'd carrier could recycle an id mid-flight.
        self.refs: list[Any] = [payload]


class SpanRecorder:
    """Collects message spans plus NIC/process side-tracks.

    Attach with ``SpanRecorder(engine)`` (sets ``engine.obs``); detach
    by setting ``engine.obs = None``.  All methods called from hot
    simulator paths (:meth:`mark` above all) are dict operations only.
    """

    #: side-track event cap — a runaway capture degrades to dropping
    #: NIC/process events (counted) rather than eating the host's RAM.
    MAX_SIDE_EVENTS = 200_000

    def __init__(self, engine: Any = None, tracer: Any = None):
        self.engine = engine
        self.tracer = tracer if tracer is not None else (
            engine.trace if engine is not None else None)
        self.messages: list[MessageSpan] = []
        #: per-node NIC occupancy: (node_id, lane, start_ns, end_ns, bytes)
        self.nic_events: list[tuple[int, str, int, int, int]] = []
        #: process lifecycle: (kind, process_name, start_ns, end_ns)
        self.process_events: list[tuple[str, str, int, int]] = []
        self.dropped_side_events = 0
        self._open: dict[int, _OpenSpan] = {}
        self._next_id = 0
        if engine is not None:
            engine.obs = self

    # ------------------------------------------------------------ span API

    def begin(self, payload: Any, t: int, label: Optional[str] = None) -> None:
        """Open a span for ``payload`` at sim-time ``t``.

        Re-begin of an already-open payload (a client retrying the same
        object during an election) keeps the original start: the span
        measures from the *first* submission, like the client does.
        """
        if id(payload) in self._open:
            return
        msg_id = self._next_id
        self._next_id = msg_id + 1
        rec = _OpenSpan(msg_id, label if label is not None else f"msg.{msg_id}",
                        int(t), payload)
        self._open[id(payload)] = rec

    def bind(self, carrier: Any, payload: Any) -> None:
        """Alias a wire-level ``carrier`` object to ``payload``'s span so
        substrate hooks (which only see the carrier) can mark it."""
        rec = self._open.get(id(payload))
        if rec is None:
            return
        key = id(carrier)
        if key in self._open:
            return
        self._open[key] = rec
        rec.keys.append(key)
        rec.refs.append(carrier)

    def mark(self, obj: Any, phase: str, t: int) -> None:
        """Record milestone ``phase`` at sim-time ``t`` for the span that
        ``obj`` (payload or bound carrier) belongs to.  Unknown objects
        are ignored — hooks never need to test whether a given wire
        object is part of a traced message."""
        rec = self._open.get(id(obj))
        if rec is not None:
            rec.marks.append((int(t), phase))

    def finish(self, payload: Any, t: int) -> Optional[MessageSpan]:
        """Close ``payload``'s span at its first delivery.

        Builds the segment tree (see module docstring), samples the span
        duration into the tracer as ``obs.delivery_latency_ns`` and
        returns the finished span.  Later deliveries of the same payload
        at other replicas find no open record and are no-ops.
        """
        rec = self._open.get(id(payload))
        if rec is None:
            return None
        for key in rec.keys:
            self._open.pop(key, None)
        t0 = rec.t0
        end = int(t)
        if end < t0:
            end = t0

        # Earliest mark per phase, clamped into [t0, end].
        first: dict[str, int] = {}
        for tm, phase in rec.marks:
            tt = t0 if tm < t0 else (end if tm > end else tm)
            cur = first.get(phase)
            if cur is None or tt < cur:
                first[phase] = tt
        cuts = sorted(first.items(), key=lambda kv: (kv[1], _RANK.get(kv[0], len(_RANK))))

        segments: list[Segment] = []
        prev = t0
        for phase, tt in cuts:
            segments.append(Segment(phase, prev, tt))
            prev = tt
        segments.append(Segment("deliver", prev, end))

        span = MessageSpan(rec.msg_id, rec.label, t0, end, tuple(segments))
        self.messages.append(span)
        if self.tracer is not None:
            self.tracer.count("obs.messages_traced")
            self.tracer.sample("obs.delivery_latency_ns", end - t0)
        if self.engine is not None:
            monitors = self.engine.monitors
            if monitors is not None:
                # Online monitors subscribe to the finished-span stream
                # (routed per shard by the span label).
                monitors.on_span(span)
        return span

    def discard(self, payload: Any) -> None:
        """Drop an open span without finishing it (undelivered probe)."""
        rec = self._open.pop(id(payload), None)
        if rec is not None:
            for key in rec.keys:
                self._open.pop(key, None)

    # ----------------------------------------------------- side-track hooks

    def nic_tx(self, node_id: int, lane: str, start_ns: int, end_ns: int,
               wire_bytes: int) -> None:
        """Record one NIC egress occupancy interval (per-node track)."""
        if len(self.nic_events) >= self.MAX_SIDE_EVENTS:
            self.dropped_side_events += 1
            return
        self.nic_events.append((node_id, lane, int(start_ns), int(end_ns),
                                wire_bytes))

    def process_event(self, kind: str, name: str, start_ns: int,
                      end_ns: int) -> None:
        """Record a process lifecycle interval (deschedule, crash, ...)."""
        if len(self.process_events) >= self.MAX_SIDE_EVENTS:
            self.dropped_side_events += 1
            return
        self.process_events.append((kind, name, int(start_ns), int(end_ns)))

    # ---------------------------------------------------------- inspection

    @property
    def open_spans(self) -> int:
        """Distinct in-flight (begun, not finished) spans."""
        return len({id(rec) for rec in self._open.values()})

    def phase_means(self) -> dict[str, float]:
        """Mean ns per phase across all finished spans (render helper)."""
        totals: dict[str, int] = {}
        counts: dict[str, int] = {}
        for span in self.messages:
            for phase, dur in span.phase_durations().items():
                totals[phase] = totals.get(phase, 0) + dur
                counts[phase] = counts.get(phase, 0) + 1
        return {p: totals[p] / counts[p] for p in totals}
