"""One naming scheme for every number the simulator can report.

Before this module, three observability surfaces each had their own
shape: ``Tracer.summary()`` returned sample means only,
``Substrate.counters()`` returned prefixed transport totals, and
``publish_counters()`` folded the latter into the former with ad-hoc
loops in harness code.  :class:`MetricsRegistry` is the single funnel:
everything becomes a flat ``dict[str, int | float]`` with dotted names
(``acuerdo.commit``, ``substrate.rdma.writes``,
``obs.delivery_latency_ns.mean``), and all three entry points route
through it — so harness code reads one shape regardless of backend.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Union

Number = Union[int, float]


class MetricsRegistry:
    """Flat, dotted-name metric store with merge/publish plumbing.

    Values are plain ints/floats; recording a name twice overwrites
    (last write wins), mirroring counter-publication semantics where a
    re-publish replaces the previous totals rather than double-counting.
    """

    def __init__(self) -> None:
        self._values: dict[str, Number] = {}

    # -------------------------------------------------------------- record

    def record(self, name: str, value: Number) -> None:
        """Set one metric.  Names must be non-empty dotted identifiers."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"metric name must be a non-empty str, got {name!r}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError(f"metric {name!r} must be int or float, got {value!r}")
        self._values[name] = value

    def merge(self, mapping: Mapping[str, Number]) -> None:
        """Record every item of ``mapping`` (validated individually)."""
        for name, value in mapping.items():
            self.record(name, value)

    def ingest_namespaced(self, prefix: str, mapping: Mapping[str, Number]) -> None:
        """Record ``mapping`` with every key prefixed by ``prefix.``."""
        for name, value in mapping.items():
            self.record(f"{prefix}.{name}", value)

    def ingest_tracer(self, tracer: Any) -> None:
        """Fold a :class:`~repro.sim.trace.Tracer` in: counters verbatim,
        sample series as their means (the scalar a summary wants)."""
        for name, value in tracer.counters.items():
            self.record(name, value)
        for name in tracer.samples:
            self.record(name, tracer.mean(name))

    def ingest_substrate(self, substrate: Any) -> None:
        """Fold a substrate's already-namespaced counters in."""
        if substrate is not None:
            self.merge(substrate.counters())

    def ingest_engine(self, engine: Any) -> None:
        """Fold the engine's execution totals in: ``engine.events`` is
        the lifetime executed-event count (the host-cost proxy that the
        poll-elision work drives down) and ``engine.now_ns`` the clock."""
        self.record("engine.events", engine.events_executed)
        self.record("engine.now_ns", engine.now)

    # ------------------------------------------------------------- publish

    def publish(self, tracer: Any) -> dict[str, Number]:
        """Write every metric into ``tracer.counters`` (assignment, not
        increment: publishing twice must not double-count) and return
        the snapshot that was published."""
        snap = self.snapshot()
        for name, value in snap.items():
            tracer.counters[name] = value
        return snap

    # ---------------------------------------------------------- inspection

    def snapshot(self, names: Optional[Iterable[str]] = None) -> dict[str, Number]:
        """The metrics as a new key-sorted flat dict; ``names`` filters
        to the listed metrics (missing names are simply absent)."""
        if names is None:
            return dict(sorted(self._values.items()))
        wanted = set(names)
        return {k: v for k, v in sorted(self._values.items()) if k in wanted}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> Number:
        return self._values[name]
