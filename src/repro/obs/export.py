"""Trace exporters: Chrome-trace JSON and a plain-JSON timeline.

Two serialisations of the same :class:`~repro.obs.spans.SpanRecorder`
contents:

- :func:`chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and Perfetto.  Messages are one "process"
  (pid 1) with one thread per message; NIC egress occupancy (pid 2)
  and process lifecycle events (pid 3) get their own tracks.
  Timestamps/durations are microsecond floats as the format requires,
  but every ``X`` event also carries exact integer sim-ns in its
  ``args`` (``start_ns``/``dur_ns``) so the exact-sum invariant
  survives serialisation.
- :func:`timeline` — a stable, schema-tagged plain-JSON document for
  programmatic consumers (and for diff-friendly golden tests).

Both embed a ``schema`` tag; :func:`validate_chrome_trace` /
:func:`validate_timeline` check structure *and* the invariant that per
message the phase-segment durations sum exactly to the span duration.
CI runs the validator over ``repro trace`` output via
``python -m repro.obs.export <file.json>``.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from repro.obs.spans import SpanRecorder

CHROME_SCHEMA = "repro.obs.chrome/v1"
TIMELINE_SCHEMA = "repro.obs.timeline/v1"

_PID_MESSAGES = 1
_PID_NIC = 2
_PID_PROCESS = 3


def _us(ns: int) -> float:
    """Sim-ns to the microsecond floats the trace-event format wants."""
    return ns / 1000.0


def chrome_trace(recorder: SpanRecorder,
                 metadata: Optional[Mapping[str, Any]] = None) -> dict:
    """Serialise a recorder to a Chrome-trace (Trace Event Format) dict."""
    events: list[dict] = [
        {"ph": "M", "pid": _PID_MESSAGES, "name": "process_name",
         "args": {"name": "messages"}},
        {"ph": "M", "pid": _PID_NIC, "name": "process_name",
         "args": {"name": "nic"}},
        {"ph": "M", "pid": _PID_PROCESS, "name": "process_name",
         "args": {"name": "processes"}},
    ]

    for span in recorder.messages:
        events.append({"ph": "M", "pid": _PID_MESSAGES, "tid": span.msg_id,
                       "name": "thread_name", "args": {"name": span.label}})
        events.append({
            "name": span.label, "cat": "message", "ph": "X",
            "pid": _PID_MESSAGES, "tid": span.msg_id,
            "ts": _us(span.start_ns), "dur": _us(span.duration_ns),
            "args": {"msg_id": span.msg_id, "start_ns": span.start_ns,
                     "dur_ns": span.duration_ns},
        })
        for seg in span.segments:
            events.append({
                "name": seg.phase, "cat": "phase", "ph": "X",
                "pid": _PID_MESSAGES, "tid": span.msg_id,
                "ts": _us(seg.start_ns), "dur": _us(seg.duration_ns),
                "args": {"msg_id": span.msg_id, "start_ns": seg.start_ns,
                         "dur_ns": seg.duration_ns},
            })

    nic_tids: dict[tuple[int, str], int] = {}
    for node_id, lane, start_ns, end_ns, wire_bytes in recorder.nic_events:
        tid = nic_tids.get((node_id, lane))
        if tid is None:
            tid = len(nic_tids)
            nic_tids[(node_id, lane)] = tid
            events.append({"ph": "M", "pid": _PID_NIC, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": f"node{node_id}.{lane}"}})
        events.append({
            "name": "tx", "cat": "nic", "ph": "X", "pid": _PID_NIC, "tid": tid,
            "ts": _us(start_ns), "dur": _us(end_ns - start_ns),
            "args": {"start_ns": start_ns, "dur_ns": end_ns - start_ns,
                     "wire_bytes": wire_bytes},
        })

    proc_tids: dict[str, int] = {}
    for kind, name, start_ns, end_ns in recorder.process_events:
        tid = proc_tids.get(name)
        if tid is None:
            tid = len(proc_tids)
            proc_tids[name] = tid
            events.append({"ph": "M", "pid": _PID_PROCESS, "tid": tid,
                           "name": "thread_name", "args": {"name": name}})
        events.append({
            "name": kind, "cat": "process", "ph": "X",
            "pid": _PID_PROCESS, "tid": tid,
            "ts": _us(start_ns), "dur": _us(end_ns - start_ns),
            "args": {"start_ns": start_ns, "dur_ns": end_ns - start_ns},
        })

    doc = {
        "schema": CHROME_SCHEMA,
        "displayTimeUnit": "ns",
        "traceEvents": events,
        "otherData": dict(metadata or {}),
    }
    doc["otherData"].setdefault("messages", len(recorder.messages))
    doc["otherData"].setdefault("open_spans", recorder.open_spans)
    doc["otherData"].setdefault("dropped_side_events",
                                recorder.dropped_side_events)
    return doc


def timeline(recorder: SpanRecorder,
             metrics: Optional[Mapping[str, Any]] = None,
             metadata: Optional[Mapping[str, Any]] = None) -> dict:
    """Serialise a recorder to the plain-JSON timeline document."""
    return {
        "schema": TIMELINE_SCHEMA,
        "metadata": dict(metadata or {}),
        "messages": [
            {
                "msg_id": span.msg_id,
                "label": span.label,
                "start_ns": span.start_ns,
                "end_ns": span.end_ns,
                "duration_ns": span.duration_ns,
                "segments": [
                    {"phase": seg.phase, "start_ns": seg.start_ns,
                     "end_ns": seg.end_ns, "duration_ns": seg.duration_ns}
                    for seg in span.segments
                ],
            }
            for span in recorder.messages
        ],
        "nic_events": [
            {"node": n, "lane": lane, "start_ns": s, "end_ns": e, "wire_bytes": b}
            for n, lane, s, e, b in recorder.nic_events
        ],
        "process_events": [
            {"kind": k, "process": name, "start_ns": s, "end_ns": e}
            for k, name, s, e in recorder.process_events
        ],
        "metrics": dict(metrics or {}),
    }


# ------------------------------------------------------------- validation


def _fail(errors: list[str], msg: str) -> None:
    errors.append(msg)


def validate_chrome_trace(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed chrome-trace
    export whose per-message segment durations sum exactly to the
    message span durations."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise ValueError("chrome trace: document is not an object")
    if doc.get("schema") != CHROME_SCHEMA:
        _fail(errors, f"schema is {doc.get('schema')!r}, want {CHROME_SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace: traceEvents is not a list")

    span_durs: dict[int, int] = {}
    seg_sums: dict[int, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            _fail(errors, f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "I"):
            _fail(errors, f"event {i}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            _fail(errors, f"event {i}: missing name")
        if not isinstance(ev.get("pid"), int):
            _fail(errors, f"event {i}: missing pid")
        if ph != "X":
            continue
        args = ev.get("args")
        if (not isinstance(args, dict)
                or not isinstance(args.get("start_ns"), int)
                or not isinstance(args.get("dur_ns"), int)):
            _fail(errors, f"event {i}: X event lacks integer args.start_ns/dur_ns")
            continue
        if args["dur_ns"] < 0:
            _fail(errors, f"event {i}: negative dur_ns")
        cat = ev.get("cat")
        if cat == "message":
            span_durs[args["msg_id"]] = args["dur_ns"]
        elif cat == "phase":
            mid = args["msg_id"]
            seg_sums[mid] = seg_sums.get(mid, 0) + args["dur_ns"]

    if set(span_durs) != set(seg_sums):
        only_span = sorted(set(span_durs) - set(seg_sums))
        only_seg = sorted(set(seg_sums) - set(span_durs))
        _fail(errors, f"message/segment id mismatch: spans-only {only_span}, "
                      f"segments-only {only_seg}")
    for mid, dur in span_durs.items():
        if mid in seg_sums and seg_sums[mid] != dur:
            _fail(errors, f"msg {mid}: segments sum to {seg_sums[mid]} ns "
                          f"but span is {dur} ns")

    if errors:
        raise ValueError("chrome trace invalid:\n  " + "\n  ".join(errors))


def validate_timeline(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed timeline
    export satisfying the exact-sum invariant."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise ValueError("timeline: document is not an object")
    if doc.get("schema") != TIMELINE_SCHEMA:
        _fail(errors, f"schema is {doc.get('schema')!r}, want {TIMELINE_SCHEMA!r}")
    messages = doc.get("messages")
    if not isinstance(messages, list):
        raise ValueError("timeline: messages is not a list")
    for m in messages:
        if not isinstance(m, dict):
            _fail(errors, "message entry is not an object")
            continue
        mid = m.get("msg_id")
        segs = m.get("segments", [])
        if m.get("duration_ns") != m.get("end_ns", 0) - m.get("start_ns", 0):
            _fail(errors, f"msg {mid}: duration_ns inconsistent with bounds")
        total = 0
        prev_end = m.get("start_ns")
        for seg in segs:
            total += seg.get("duration_ns", 0)
            if seg.get("start_ns") != prev_end:
                _fail(errors, f"msg {mid}: segments not contiguous")
                break
            prev_end = seg.get("end_ns")
        if total != m.get("duration_ns"):
            _fail(errors, f"msg {mid}: segments sum to {total} ns "
                          f"but span is {m.get('duration_ns')} ns")
    if errors:
        raise ValueError("timeline invalid:\n  " + "\n  ".join(errors))


def validate_file(path: str) -> str:
    """Validate a JSON export on disk (schema auto-detected).  Returns a
    one-line human summary; raises on invalid documents."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema == CHROME_SCHEMA:
        validate_chrome_trace(doc)
        n = sum(1 for ev in doc["traceEvents"]
                if isinstance(ev, dict) and ev.get("cat") == "message")
        return f"{path}: valid {schema} ({n} message spans)"
    if schema == TIMELINE_SCHEMA:
        validate_timeline(doc)
        return f"{path}: valid {schema} ({len(doc['messages'])} message spans)"
    raise ValueError(f"{path}: unknown schema {schema!r}")


def _main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - CI shim
    import sys
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.obs.export <trace.json> [...]")
        return 2
    for path in args:
        try:
            print(validate_file(path))
        except (ValueError, OSError) as exc:
            print(f"INVALID: {exc}")
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
