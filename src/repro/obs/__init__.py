"""Observability layer: span tracing, metrics registry, trace export.

The simulator's performance argument — Acuerdo wins because fewer
one-sided writes sit between ``broadcast()`` and delivery (§4, Fig. 6/8)
— is only credible if the critical path is *observable*, not asserted.
This package makes it so:

- :mod:`repro.obs.spans` — :class:`SpanRecorder`, the per-message span
  tree recorded in sim-ns.  Instrumentation hooks throughout the stack
  (``sim.process``, ``rdma.nic``/``rdma.qp``, ``net.tcp``, every
  protocol node) report milestones to ``engine.obs``; the recorder turns
  them into contiguous phase segments whose durations sum *exactly* to
  the message's delivery latency.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, the one naming
  scheme for ``Tracer`` counters, sample summaries and
  ``substrate.<backend>.*`` totals (flat ``dict[str, int | float]``,
  dotted names).
- :mod:`repro.obs.export` — Chrome-trace (``chrome://tracing`` /
  Perfetto) and plain-JSON timeline exporters plus the schema validator
  CI runs against ``repro trace`` output.
- :mod:`repro.obs.capture` — :func:`capture_run`, the one-call driver
  behind ``repro trace``: build a system from a
  :class:`~repro.harness.runspec.RunSpec`, run it with spans on, return
  spans + metrics ready for export.

Zero-cost-when-off guarantee: every hook in the simulator is gated by
``engine.obs is not None``.  With ``capture_spans=False`` no recorder is
attached, no counter or sample is recorded, and no RNG stream is
touched, so the golden per-protocol trace fingerprints
(``tests/substrate/test_golden_fingerprints.py``) stay bit-identical.
"""

from repro.obs.spans import (PHASES, MessageSpan, Segment, SpanRecorder)
from repro.obs.metrics import MetricsRegistry
from repro.obs.export import (chrome_trace, timeline, validate_chrome_trace,
                              validate_timeline)
from repro.obs.capture import CaptureResult, capture_run

__all__ = [
    "PHASES",
    "MessageSpan",
    "Segment",
    "SpanRecorder",
    "MetricsRegistry",
    "chrome_trace",
    "timeline",
    "validate_chrome_trace",
    "validate_timeline",
    "CaptureResult",
    "capture_run",
]
