"""One-call span capture: run a :class:`~repro.harness.runspec.RunSpec`
with tracing on and collect spans + metrics + exportable documents.

This is the engine behind ``repro trace`` and the span-based
latency-anatomy tooling: build the system the spec names, settle it,
drive the spec's workload for ``duration_ms`` of simulated time with a
:class:`~repro.obs.spans.SpanRecorder` attached, then fold the tracer
and substrate counters into one :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.export import chrome_trace, timeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import MessageSpan, SpanRecorder


@dataclass
class CaptureResult:
    """Everything one traced run produced."""

    spec: Any                     # the (capture-enabled) RunSpec that ran
    recorder: SpanRecorder
    metrics: MetricsRegistry
    result: Any = None            # workload result (ClosedLoopResult) if any
    #: Safety violations observed by the runtime monitors (populated
    #: when the spec set ``check_invariants``; empty otherwise).
    violations: tuple = ()

    @property
    def messages(self) -> list[MessageSpan]:
        return self.recorder.messages

    def _meta(self, metadata: Optional[dict]) -> dict:
        meta = {"spec": self.spec.to_dict()}
        if metadata:
            meta.update(metadata)
        return meta

    def chrome(self, metadata: Optional[dict] = None) -> dict:
        """The run as a Chrome-trace (Perfetto-loadable) document."""
        return chrome_trace(self.recorder, metadata=self._meta(metadata))

    def timeline(self, metadata: Optional[dict] = None) -> dict:
        """The run as a plain-JSON timeline document with metrics."""
        return timeline(self.recorder, metrics=self.metrics.snapshot(),
                        metadata=self._meta(metadata))


def capture_run(spec: Any, *, min_completions: Optional[int] = None,
                substrate_params: Any = None) -> CaptureResult:
    """Run ``spec`` with span capture forced on and return the capture.

    ``min_completions`` (closed-loop workloads only) ends the run early
    once that many client completions have been measured; the sim-time
    budget is always ``spec.duration_ms``.
    """
    from repro.harness.factory import build_from_spec, settle
    from repro.sim.engine import ms, us

    spec = spec.replace(capture_spans=True)
    engine = spec.make_engine()
    recorder = engine.obs
    if spec.shards > 1:
        return _capture_sharded(spec, engine, recorder)
    system = build_from_spec(spec, engine, substrate_params=substrate_params)
    settle(system)
    if spec.crashes:
        from repro.sim.failure import schedule_crashes

        schedule_crashes(engine, system.processes(), spec.crashes)
    if spec.partitions:
        from repro.sim.failure import schedule_partitions

        schedule_partitions(engine, system.substrate, spec.partitions,
                            processes=system.processes())
    if spec.byz:
        from repro.sim.failure import schedule_byz

        schedule_byz(engine, system, spec.byz)

    result = None
    if spec.workload == "openloop":
        from repro.workloads.openloop import OpenLoopClient

        client = OpenLoopClient(system, period_ns=us(5),
                                message_size=spec.payload_bytes)
        client.start()
        engine.run(until=engine.now + ms(spec.duration_ms))
        client.stop()
    else:
        from repro.workloads.closedloop import ClosedLoopClient

        payload_fn = None
        msg_size = spec.payload_bytes
        if spec.workload == "ycsb":
            from repro.workloads.ycsb import YcsbLoadWorkload

            value_size = max(1, spec.payload_bytes - 8)
            wl = YcsbLoadWorkload(engine, record_count=2_000,
                                  value_size=value_size)
            ops = [wl.next_op() for _ in range(4096)]

            def payload_fn(i: int) -> Any:
                return ops[i % len(ops)]

            msg_size = 8 + value_size
        client = ClosedLoopClient(system, window=spec.window,
                                  message_size=msg_size,
                                  payload_fn=payload_fn)
        client.start()
        chunk = ms(1)
        deadline = engine.now + ms(spec.duration_ms)
        while engine.now < deadline and (
                min_completions is None
                or len(client.latencies) < min_completions):
            engine.run(until=min(deadline, engine.now + chunk))
            chunk = min(chunk * 2, ms(16))
        client.stop()
        result = client.result()
    # Short drain so in-flight messages reach delivery and close their
    # spans (open spans would otherwise be dropped from the export).
    engine.run(until=engine.now + ms(1))

    metrics = MetricsRegistry()
    metrics.ingest_tracer(engine.trace)
    metrics.ingest_engine(engine)
    if getattr(system, "substrate", None) is not None:
        metrics.ingest_substrate(system.substrate)
    violations = (tuple(engine.monitors.finish(metrics))
                  if engine.monitors is not None else ())
    return CaptureResult(spec=spec, recorder=recorder, metrics=metrics,
                        result=result, violations=violations)


def _capture_sharded(spec: Any, engine: Any, recorder: SpanRecorder) -> CaptureResult:
    """The shard-farm capture path: ``spec.shards`` groups behind the
    router, driven by the aggregate Poisson/Zipfian arrival process.

    Spans and process/NIC events come out tagged with the groups'
    ``shard.<g>.*`` identities (labels like ``shard.3.acuerdo.msg``),
    so the exported trace separates per shard; per-shard routing and
    substrate counters land in the metrics under ``shard.<g>.*``.
    """
    from repro.harness.shardsweep import farm_group_config
    from repro.shard import ShardedDeployment, aggregate_client
    from repro.sim.engine import ms
    from repro.sim.failure import check_group_schedules

    # Fail loudly on schedules the farm cannot honour (byz, cross-group
    # partitions, ambiguous bare node ids) — these used to be silently
    # ignored here, the worst kind of adversarial-capture no-op.
    check_group_schedules(spec.shards, spec.crashes, spec.partitions,
                          spec.byz)
    dep = ShardedDeployment(engine, system=spec.system, shards=spec.shards,
                            n=spec.n, group_config=farm_group_config(spec))
    dep.settle()
    if spec.crashes:
        from repro.sim.failure import schedule_crashes

        schedule_crashes(engine, dep.processes(), spec.crashes)
    if spec.partitions:
        from repro.shard.deployment import schedule_farm_partitions

        schedule_farm_partitions(dep, spec.partitions)
    if spec.byz:
        from repro.sim.failure import schedule_byz

        schedule_byz(engine, dep.groups[0], spec.byz)
    users = spec.users if spec.users >= 1 else 10_000
    rate = spec.arrival_rate if spec.arrival_rate > 0 else 100_000.0
    client = aggregate_client(dep, users=users, rate_rps=rate,
                              skew=spec.skew,
                              message_size=spec.payload_bytes)
    client.start()
    engine.run(until=engine.now + ms(spec.duration_ms))
    client.stop()
    engine.run(until=engine.now + ms(1))

    metrics = MetricsRegistry()
    metrics.ingest_tracer(engine.trace)
    metrics.ingest_engine(engine)
    dep.metrics(metrics)
    violations = (tuple(engine.monitors.finish(metrics))
                  if engine.monitors is not None else ())
    return CaptureResult(spec=spec, recorder=recorder, metrics=metrics,
                         result=None, violations=violations)
