"""Simulated network interface cards and completion queues.

A :class:`Nic` owns the egress-link serialisation state shared by every
queue pair on the node (writes to different peers still contend for the
same 25 Gb/s port) and the completion queue that selective-signaling
completions land on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.rdma.params import RdmaParams
from repro.sim.engine import Engine


@dataclass(frozen=True)
class Completion:
    """One completion-queue entry.

    ``covers`` is the number of WQEs this entry retires, i.e. 1 (the
    signaled write itself) plus every unsignaled write posted before it
    on the same QP — the batching that selective signaling buys (§2.1).
    """

    qp_peer: int
    wr_id: Any
    covers: int
    posted_at: int
    completed_at: int


class CompletionQueue:
    """FIFO of completions, drained by the owning process's poll loop."""

    def __init__(self) -> None:
        self._entries: list[Completion] = []
        self.total_seen = 0

    def push(self, entry: Completion) -> None:
        self._entries.append(entry)
        self.total_seen += 1

    def drain(self) -> list[Completion]:
        """Remove and return all pending entries."""
        out = self._entries
        self._entries = []
        return out

    def __len__(self) -> int:
        return len(self._entries)


class Nic:
    """One node's RDMA NIC.

    The NIC serialises outgoing wire messages on its link: concurrent
    writes to different peers queue behind each other at line rate.
    Incoming one-sided writes are applied to registered memory with no
    host-CPU involvement.
    """

    def __init__(self, engine: Engine, node_id: int, params: RdmaParams):
        self.engine = engine
        self.node_id = node_id
        self.params = params
        self.tx_free_at: int = 0        # control lane
        self.tx_bulk_free_at: int = 0   # bulk lane (QoS-separated)
        self.cq = CompletionQueue()
        self.tx_bytes: int = 0
        self.tx_msgs: int = 0
        self.powered = True
        #: poll-elision doorbell target: the Process that polls memory
        #: behind this NIC.  When set, every one-sided write applied on
        #: this node (and every completion pushed to its CQ) rings it so
        #: a parked poll loop wakes (see Process.doorbell).
        self.waker: Any = None
        # Cost models are frozen after substrate build; snapshot the
        # per-verb charge and the wire-maths bound methods so occupy_tx —
        # called once per write, including every step of a fused
        # fan-out chain — skips the params indirection entirely.
        self._nic_tx_ns = params.nic_tx_ns
        self._tx_serialization_ns = params.tx_serialization_ns
        self._wire_bytes = params.wire_bytes

    def occupy_tx(self, payload_bytes: int, earliest_ns: int = 0,
                  lane: str = "control") -> int:
        """Reserve the egress link for one write; returns the time the
        last bit leaves the NIC.

        ``earliest_ns`` is the moment the posting CPU rings the doorbell
        (it cannot post before its handler work is done).  ``lane``
        selects the QoS class: ``"bulk"`` transfers queue separately so
        control traffic never waits behind them."""
        start = max(self.engine.now, earliest_ns) + self._nic_tx_ns
        bulk = lane == "bulk"
        start = max(start, self.tx_bulk_free_at if bulk else self.tx_free_at)
        done = start + self._tx_serialization_ns(payload_bytes)
        if bulk:
            self.tx_bulk_free_at = done
        else:
            self.tx_free_at = done
        wire = self._wire_bytes(payload_bytes)
        self.tx_bytes += wire
        self.tx_msgs += 1
        obs = self.engine.obs
        if obs is not None:
            obs.nic_tx(self.node_id, lane, start, done, wire)
        return done

    def power_off(self) -> None:
        """Stop this NIC (models crash of the whole host: in-flight
        messages already on the wire still arrive, nothing new leaves and
        nothing new is accepted)."""
        self.powered = False
