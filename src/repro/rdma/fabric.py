"""Cluster-wide RDMA wiring: NICs plus all-to-all reliable connections.

The fabric plays the role of the connection-establishment phase of §2.1
(device exchange, memory registration, rkey exchange): it creates one
NIC per node, a queue pair for every ordered pair of nodes, and a
registry through which structures (ring buffers, SSTs) register memory
and share rkeys.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import Nic
from repro.rdma.params import RdmaParams
from repro.rdma.qp import QueuePair
from repro.sim.engine import Engine


class RdmaFabric:
    """All NICs and queue pairs of one cluster (plus external clients).

    Node ids are small integers.  Clients that talk to the cluster over
    RDMA (the §4.3 hash-table client) are just extra node ids.
    """

    def __init__(self, engine: Engine, node_ids: Iterable[int],
                 params: Optional[RdmaParams] = None):
        self.engine = engine
        self.params = params or RdmaParams()
        self.nics: dict[int, Nic] = {}
        self.qps: dict[tuple[int, int], QueuePair] = {}
        self._bulk_qps: dict[tuple[int, int], QueuePair] = {}
        self._partition = None
        self._regions: dict[tuple[int, str], MemoryRegion] = {}
        for nid in node_ids:
            self.add_node(nid)

    # ---------------------------------------------------------------- wiring

    def add_node(self, node_id: int) -> Nic:
        """Add a node, creating QPs to and from every existing node."""
        if node_id in self.nics:
            return self.nics[node_id]
        nic = Nic(self.engine, node_id, self.params)
        for other_id, other in self.nics.items():
            self.qps[(node_id, other_id)] = QueuePair(self.engine, nic, other, self.params)
            self.qps[(other_id, node_id)] = QueuePair(self.engine, other, nic, self.params)
        self.nics[node_id] = nic
        return nic

    def qp(self, src: int, dst: int) -> QueuePair:
        """The reliable connection from ``src`` to ``dst``."""
        return self.qps[(src, dst)]

    def bulk_qp(self, src: int, dst: int) -> QueuePair:
        """A separate reliable connection for bulk transfers (lazily
        created).  Large writes ride their own QP — as RDMC-style data
        planes do — so control traffic keeps its FIFO lane to itself."""
        key = (src, dst)
        qp = self._bulk_qps.get(key)
        if qp is None:
            qp = QueuePair(self.engine, self.nics[src], self.nics[dst],
                           self.params, lane="bulk")
            self._bulk_qps[key] = qp
        return qp

    def nic(self, node_id: int) -> Nic:
        return self.nics[node_id]

    def crash_node(self, node_id: int) -> None:
        """Power off a node's NIC (host crash)."""
        self.nics[node_id].power_off()

    # ------------------------------------------------------------ partitions

    def set_partition(self, *groups: Iterable[int]) -> None:
        """Partition the network: traffic crosses only within a group.

        Nodes not named in any group are isolated.  Cross-partition
        writes are dropped (the reliable connection would retransmit
        until its retry budget dies; from the protocol's viewpoint the
        peer is simply unreachable)."""
        self._partition = [frozenset(g) for g in groups]

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition = None

    def _blocked(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        return not any(src in g and dst in g for g in self._partition)

    # --------------------------------------------------------------- regions

    def register(self, owner: int, name: str, size_bytes: int,
                 on_write: Callable[[Any, Any, int], None]) -> MemoryRegion:
        """Register remote-writable memory on ``owner``; returns region.

        Registering the same (owner, name) twice replaces the old region
        and implicitly revokes its rkey, mirroring re-registration after
        reconnection.
        """
        old = self._regions.get((owner, name))
        if old is not None:
            old.revoke()
        region = MemoryRegion(owner, name, size_bytes, on_write)
        self._regions[(owner, name)] = region
        return region

    def region(self, owner: int, name: str) -> MemoryRegion:
        return self._regions[(owner, name)]

    # ------------------------------------------------------------ primitives

    def write(self, src: int, dst: int, region: MemoryRegion, rkey: int,
              key: Any, value: Any, size_bytes: int, signaled: bool = False,
              wr_id: Any = None, earliest_ns: int = 0,
              lane: str = "control") -> None:
        """Post a one-sided write from ``src`` into ``region`` on ``dst``.

        ``earliest_ns``: doorbell time — typically the posting process's
        ``cpu.busy_until``, so protocol CPU work delays the wire.
        ``lane="bulk"`` routes over the dedicated bulk QP and QoS lane;
        ordering is only guaranteed within a lane, so structures that
        rely on FIFO (rings, SSTs) must keep all their writes on one
        lane."""
        if self._blocked(src, dst):
            self.engine.trace.count("fabric.partition_drop")
            return
        qp = self.bulk_qp(src, dst) if lane == "bulk" else self.qp(src, dst)
        qp.post_write(region, rkey, key, value, size_bytes,
                      signaled=signaled, wr_id=wr_id, earliest_ns=earliest_ns)

    def total_tx_bytes(self) -> int:
        """Wire bytes sent by every NIC (used by bandwidth benches)."""
        return sum(n.tx_bytes for n in self.nics.values())
