"""Cluster-wide RDMA wiring: NICs plus all-to-all reliable connections.

The fabric is the ``rdma`` backend of :mod:`repro.substrate`.  It plays
the role of the connection-establishment phase of §2.1 (device exchange,
memory registration, rkey exchange): it creates one NIC per node, a
queue pair for every ordered pair of nodes, and a registry through which
structures (ring buffers, SSTs) register memory and share rkeys.

Besides the one-sided primitives the Acuerdo-family protocols use
directly, the fabric implements the substrate message-channel surface
(``attach``/``send``/``drain``) as a FaRM-style write-based inbox per
endpoint, so substrate-generic code (conformance tests, future
message-passing protocols) can run unchanged over RDMA.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Optional

from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import Nic
from repro.rdma.params import RdmaParams
from repro.rdma.qp import QueuePair
from repro.sim.engine import ChainBuilder, Engine
from repro.sim.process import Process
from repro.substrate.interface import Endpoint, Substrate


class RdmaEndpoint(Endpoint):
    """A node's message-channel attachment: a write-based inbox.

    One-sided writes from peers land here without waking the owner's
    CPU; ``drain`` is free of per-message receive charges — the
    substrate-shape contrast with :class:`~repro.net.tcp.TcpEndpoint`.
    """

    def __init__(self, fabric: "RdmaFabric", process: Process):
        self.fabric = fabric
        self.engine = fabric.engine
        self.process = process
        self.params = fabric.params
        self.inbox: deque[tuple[int, Any, int]] = deque()
        self.sent = 0
        self.received = 0
        self.tx_bytes = 0
        self.retransmits = 0
        self._region = fabric.register(process.node_id, "substrate.inbox",
                                       1 << 20, on_write=self._on_write)
        self._rkey = self._region.grant()

    @property
    def node_id(self) -> int:
        return self.process.node_id

    def _on_write(self, key: Any, value: Any, size: int) -> None:
        self.deliver(key, value, size)

    def deliver(self, src: int, payload: Any, size: int) -> None:
        """A one-sided write from ``src`` landed in the inbox region.
        No wakeup: only the owner's next poll observes it."""
        if self.process.crashed:
            return
        self.inbox.append((src, payload, size))

    def drain(self, max_batch: Optional[int] = None) -> list[tuple[int, Any]]:
        """Pop pending messages.  Zero receive-side CPU charge: the data
        is already in registered memory when the poll discovers it."""
        out: list[tuple[int, Any]] = []
        obs = self.engine.obs
        now = self.engine.now
        while self.inbox and (max_batch is None or len(out) < max_batch):
            src, payload, _size = self.inbox.popleft()
            out.append((src, payload))
            self.received += 1
            if obs is not None:
                obs.mark(payload, "poll_notice", now)
        return out


class RdmaFabric(Substrate):
    """All NICs and queue pairs of one cluster (plus external clients).

    Node ids are small integers.  Clients that talk to the cluster over
    RDMA (the §4.3 hash-table client) are just extra node ids.
    """

    backend = "rdma"

    def __init__(self, engine: Engine, node_ids: Iterable[int],
                 params: Optional[RdmaParams] = None):
        super().__init__(engine, params or RdmaParams())
        # Frozen-cost snapshot: the only send-side CPU RDMA charges.
        self._doorbell_cpu_ns = self.params.doorbell_cpu_ns
        self.nics: dict[int, Nic] = {}
        self.qps: dict[tuple[int, int], QueuePair] = {}
        self._bulk_qps: dict[tuple[int, int], QueuePair] = {}
        self._regions: dict[tuple[int, str], MemoryRegion] = {}
        self.endpoints: dict[int, RdmaEndpoint] = {}
        for nid in node_ids:
            self.add_node(nid)

    # ---------------------------------------------------------------- wiring

    def add_node(self, node_id: int) -> Nic:
        """Add a node, creating QPs to and from every existing node."""
        if node_id in self.nics:
            return self.nics[node_id]
        nic = Nic(self.engine, node_id, self.params)
        for other_id, other in self.nics.items():
            self.qps[(node_id, other_id)] = QueuePair(self.engine, nic, other, self.params)
            self.qps[(other_id, node_id)] = QueuePair(self.engine, other, nic, self.params)
        self.nics[node_id] = nic
        return nic

    def attach(self, process: Process) -> RdmaEndpoint:
        """Register ``process``'s write-based inbox endpoint (adding its
        NIC and queue pairs if the node is new to the fabric).  Idempotent,
        like :meth:`add_node`: re-attaching a node returns its existing
        endpoint so peers' cached rkeys and counters stay valid."""
        existing = self.endpoints.get(process.node_id)
        if existing is not None:
            return existing
        nic = self.add_node(process.node_id)
        # Deposits into this node's registered memory ring its poll loop's
        # doorbell (poll elision); protocols that skip attach() bind the
        # waker themselves via fabric.nic(i).waker.
        nic.waker = process
        ep = RdmaEndpoint(self, process)
        self.endpoints[process.node_id] = ep
        return ep

    def qp(self, src: int, dst: int) -> QueuePair:
        """The reliable connection from ``src`` to ``dst``."""
        return self.qps[(src, dst)]

    def bulk_qp(self, src: int, dst: int) -> QueuePair:
        """A separate reliable connection for bulk transfers (lazily
        created).  Large writes ride their own QP — as RDMC-style data
        planes do — so control traffic keeps its FIFO lane to itself."""
        key = (src, dst)
        qp = self._bulk_qps.get(key)
        if qp is None:
            qp = QueuePair(self.engine, self.nics[src], self.nics[dst],
                           self.params, lane="bulk")
            self._bulk_qps[key] = qp
        return qp

    def nic(self, node_id: int) -> Nic:
        return self.nics[node_id]

    def crash_node(self, node_id: int) -> None:
        """Power off a node's NIC (host crash)."""
        self.nics[node_id].power_off()

    # --------------------------------------------------------------- regions

    def register(self, owner: int, name: str, size_bytes: int,
                 on_write: Callable[[Any, Any, int], None]) -> MemoryRegion:
        """Register remote-writable memory on ``owner``; returns region.

        Registering the same (owner, name) twice replaces the old region
        and implicitly revokes its rkey, mirroring re-registration after
        reconnection.
        """
        old = self._regions.get((owner, name))
        if old is not None:
            old.revoke()
        region = MemoryRegion(owner, name, size_bytes, on_write)
        self._regions[(owner, name)] = region
        return region

    def region(self, owner: int, name: str) -> MemoryRegion:
        return self._regions[(owner, name)]

    # ------------------------------------------------------------ primitives

    def write(self, src: int, dst: int, region: MemoryRegion, rkey: int,
              key: Any, value: Any, size_bytes: int, signaled: bool = False,
              wr_id: Any = None, earliest_ns: int = 0,
              lane: str = "control", sink: Any = None) -> None:
        """Post a one-sided write from ``src`` into ``region`` on ``dst``.

        ``earliest_ns``: doorbell time — typically the posting process's
        ``cpu.busy_until``, so protocol CPU work delays the wire.
        ``lane="bulk"`` routes over the dedicated bulk QP and QoS lane;
        ordering is only guaranteed within a lane, so structures that
        rely on FIFO (rings, SSTs) must keep all their writes on one
        lane.  ``sink`` (a :class:`~repro.sim.engine.ChainBuilder`)
        collects the deliver/complete steps for macro-event fusion
        across a fan-out; the caller commits it."""
        if self._partition is not None and self._blocked(src, dst):
            self._drop_partitioned()
            return
        qp = self.qps[(src, dst)] if lane != "bulk" else self.bulk_qp(src, dst)
        qp.post_write(region, rkey, key, value, size_bytes,
                      signaled=signaled, wr_id=wr_id, earliest_ns=earliest_ns,
                      sink=sink)

    def send(self, src: int, dst: int, payload: Any, size_bytes: int,
             sink: Any = None) -> None:
        """Message-channel send: one one-sided write into the destination
        endpoint's inbox region.  Charges the poster's doorbell CPU (the
        only send-side CPU RDMA involves); both endpoints must have been
        created with :meth:`attach`."""
        byz = self.engine.byz
        if byz is not None:
            repl = byz.on_net_send(self, src, dst, payload)
            if repl is not None:
                byz._in_send = True
                try:
                    for pl in repl:
                        self.send(src, dst, pl, size_bytes, sink)
                finally:
                    byz._in_send = False
                return
        src_ep = self.endpoints[src]
        dst_ep = self.endpoints[dst]
        if src_ep.process.crashed or not self.nics[src].powered:
            return
        if self._blocked(src, dst):
            self._drop_partitioned()
            return
        cpu = src_ep.process.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(
            self._doorbell_cpu_ns * cpu.speed_factor)
        self.write(src, dst, dst_ep._region, dst_ep._rkey, src, payload,
                   size_bytes, earliest_ns=cpu.busy_until, sink=sink)
        src_ep.sent += 1
        src_ep.tx_bytes += self.params.wire_bytes(size_bytes)

    def broadcast(self, src: int, dsts: Iterable[int], payload: Any,
                  size_bytes: int) -> None:
        """Fan ``payload`` out to every destination except ``src``: the
        per-destination costs, loss draws and FIFO floors are computed
        exactly as by per-destination :meth:`send` calls, but all the
        resulting inbox deposits ride one fused macro-event (falling
        back to per-event scheduling when fusion is off or delivery
        times interleave non-monotonically)."""
        if not self.engine.chain_enabled:
            for d in dsts:
                if d != src:
                    self.send(src, d, payload, size_bytes)
            return
        sink = ChainBuilder(self.engine)
        try:
            for d in dsts:
                if d != src:
                    self.send(src, d, payload, size_bytes, sink=sink)
        finally:
            sink.commit()

    # ------------------------------------------------------------ accounting

    def _all_qps(self) -> Iterable[QueuePair]:
        yield from self.qps.values()
        yield from self._bulk_qps.values()

    def _raw_counters(self) -> dict[str, int]:
        return {
            "tx_bytes": sum(n.tx_bytes for n in self.nics.values()),
            "tx_msgs": sum(n.tx_msgs for n in self.nics.values()),
            "rx_msgs": sum(qp.delivered for qp in self._all_qps()),
            "retransmits": sum(qp.retransmits for qp in self._all_qps()),
        }
