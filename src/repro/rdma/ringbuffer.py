"""RDMA ring buffers: single-sender, multi-receiver broadcast pipes.

This is the communication primitive of §3.2.  The sender mirrors each
message into a per-receiver remote ring with one-sided writes; receivers
poll their local tail (an L1-resident location until a write actually
lands) and drain whatever contiguous batch has arrived — receiver-side
batching.

Two design points from the paper are first-class here because they are
exactly what the Fig. 8 analysis attributes Acuerdo's win to:

- **slot release policy** (:class:`SlotReleasePolicy`): Acuerdo frees a
  slot once the receiver has merely *accepted* the message; Derecho only
  when it has been *committed across all active nodes*, which magnifies
  a single slow node.  The ring exposes ``mark_released`` and leaves the
  policy to the protocol; the enum names the intent for harness code.
- **writes per message**: Acuerdo couples metadata with data (one RDMA
  write per message); Derecho sends data and a separate counter update
  (two writes).  With an 80-byte wire minimum, that is a 2× bandwidth
  difference for small messages (§4.1).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Iterable, Optional

from repro.rdma.fabric import RdmaFabric


class SlotReleasePolicy(enum.Enum):
    """When the protocol lets the sender reuse a ring slot."""

    ON_ACCEPT = "accept"   # Acuerdo: receiver has seen the message
    ON_COMMIT = "commit"   # Derecho: message committed at all active nodes


class RingReceiver:
    """One receiver's local mirror of a sender's ring."""

    def __init__(self, ring: "RingBuffer", receiver: int):
        self.ring = ring
        self.receiver = receiver
        self._engine = ring.fabric.engine
        self._ready: deque[tuple[int, Any, int]] = deque()  # (seq, payload, size)
        self._staged: dict[int, tuple[Any, int]] = {}       # two-write mode staging
        self._visible_upto = -1                              # two-write mode counter
        self.next_read = 0
        self.delivered_msgs = 0

    # Called by the QP at delivery time (no receiver-CPU involvement).
    # Remote deposits ring the receiving host's poll-elision doorbell in
    # the QP layer; sender-local mirrors are stored while the sender is
    # executing, so its own loop is awake by construction.
    def _on_data(self, seq: int, payload: Any, size: int) -> None:
        if self.ring.writes_per_message == 1:
            self._ready.append((seq, payload, size))
        else:
            self._staged[seq] = (payload, size)

    def _on_counter(self, upto_seq: int) -> None:
        if upto_seq > self._visible_upto:
            self._visible_upto = upto_seq
            # FIFO delivery means all staged data writes <= upto have landed.
            while self._staged and self.next_read + len(self._ready) <= upto_seq:
                seq = self.next_read + len(self._ready)
                entry = self._staged.pop(seq, None)
                if entry is None:
                    break
                self._ready.append((seq, entry[0], entry[1]))

    def poll(self, max_batch: Optional[int] = None) -> list[tuple[int, Any]]:
        """Drain the contiguous batch of newly visible messages.

        Returns ``[(seq, payload), ...]`` in send order.  The size of the
        batch is determined purely by how much arrived since the last
        poll — the receiver-side batching model.
        """
        out: list[tuple[int, Any]] = []
        ready = self._ready
        obs = self._engine.obs
        now = self._engine.now
        while ready and (max_batch is None or len(out) < max_batch):
            seq, payload, _size = ready.popleft()
            out.append((seq, payload))
            self.next_read = seq + 1
            self.delivered_msgs += 1
            if obs is not None:
                obs.mark(payload, "poll_notice", now)
        return out

    @property
    def backlog(self) -> int:
        """Messages that have arrived but not yet been polled."""
        return len(self._ready)


class RingBuffer:
    """Sender side of a broadcast/unicast ring (§3.2).

    Parameters
    ----------
    fabric:
        RDMA fabric providing QPs and memory registration.
    sender:
        node id of the single writer.
    receivers:
        node ids mirrored to (may include ``sender``: self-delivery is a
        local memcpy, discovered like any other message at the next poll).
    capacity:
        slots per receiver ring; the sender stalls when any receiver's
        ring has no free slot under the current release state.
    writes_per_message:
        1 = Acuerdo-style coupled write; 2 = Derecho-style data+counter.
    policy:
        advisory label of the release policy the owning protocol applies.
    signal_interval:
        request a completion every N writes per QP (selective signaling;
        the paper uses 1000).
    """

    def __init__(self, fabric: RdmaFabric, sender: int, receivers: Iterable[int],
                 capacity: int = 4096, writes_per_message: int = 1,
                 policy: SlotReleasePolicy = SlotReleasePolicy.ON_ACCEPT,
                 signal_interval: int = 1000, name: Optional[str] = None):
        if writes_per_message not in (1, 2):
            raise ValueError("writes_per_message must be 1 or 2")
        self.fabric = fabric
        self.sender = sender
        self.capacity = capacity
        self.writes_per_message = writes_per_message
        self.policy = policy
        self.signal_interval = signal_interval
        self.name = name or f"ring.{sender}"
        self.next_seq = 0
        self.stalls = 0
        self._receivers: dict[int, RingReceiver] = {}
        self._regions: dict[int, tuple[Any, int]] = {}
        self._released: dict[int, int] = {}
        # Bumped whenever the release accounting changes; lets per-poll
        # observers (the slot_release monitor hook) skip the floor min()
        # when nothing moved.
        self.release_gen = 0
        # Bumped only by membership changes (evict / re-admit / drop).
        # A floor advance while this moved is *administrative* — epoch
        # or view bookkeeping re-baselining a receiver — not the
        # accept-driven release policy, and monitor observers tag the
        # release accordingly.
        self.admin_gen = 0
        # Receivers whose current released value is an administrative
        # baseline (set by include_in_accounting) rather than the
        # product of observed accepts; cleared the moment a real
        # mark_released overtakes the baseline.  A floor supported by
        # fewer than a quorum of accept-driven values is escape-hatch
        # territory, not the §4.1 release rule.
        self._admin_baseline: set[int] = set()
        self._since_signal: dict[int, int] = {}
        # Hot-path cache: (region, rkey, qp) per remote receiver so
        # try_send posts straight to the QP when no partition is active
        # (fabric.write adds nothing else on the control lane).
        self._wires: dict[int, tuple[Any, int, Any]] = {}
        self._sink = fabric.engine.chain_builder()  # reusable fan-out fuser
        for r in receivers:
            self._attach(r)

    def _attach(self, receiver: int) -> None:
        rr = RingReceiver(self, receiver)
        self._receivers[receiver] = rr
        self._released[receiver] = 0
        self._since_signal[receiver] = 0
        if receiver != self.sender:
            region = self.fabric.register(
                receiver, f"{self.name}.in{receiver}", size_bytes=self.capacity * 1024,
                on_write=lambda key, value, size, rr=rr: self._apply(rr, key, value, size))
            rkey = region.grant()
            self._regions[receiver] = (region, rkey)
            qp = self.fabric.qps.get((self.sender, receiver))
            if qp is not None:
                self._wires[receiver] = (region, rkey, qp)

    @staticmethod
    def _apply(rr: RingReceiver, key: Any, value: Any, size: int) -> None:
        kind, seq = key
        if kind == "data":
            rr._on_data(seq, value, size)
        else:  # "counter"
            rr._on_counter(seq)

    # ----------------------------------------------------------------- send

    def receiver(self, node_id: int) -> RingReceiver:
        """The mirror a given receiver polls."""
        return self._receivers[node_id]

    def free_slots(self) -> int:
        """Slots available under the most conservative receiver."""
        min_released = min(self._released.values()) if self._released else 0
        return self.capacity - (self.next_seq - min_released)

    @property
    def accounted(self) -> int:
        """Receivers currently participating in slot accounting."""
        return len(self._released)

    @property
    def accept_accounted(self) -> int:
        """Accounted receivers whose released value is accept-driven
        (not an administrative re-admission baseline)."""
        return len(self._released) - len(self._admin_baseline)

    def released_floor(self) -> int:
        """Lowest released frontier across accounted receivers — the
        ring only ever reuses slots strictly below this sequence."""
        return min(self._released.values()) if self._released else self.next_seq

    def try_send(self, payload: Any, size_bytes: int,
                 targets: Optional[Iterable[int]] = None,
                 earliest_ns: int = 0) -> Optional[int]:
        """Broadcast (or unicast) one message; returns its seq, or None
        if every slot is occupied (the caller retries at its next poll).

        Note the asymmetry the paper exploits: sending never waits for
        acknowledgments — only slot exhaustion can stall the sender, and
        with accept-based release plus long rings that is rare.
        """
        if self.free_slots() <= 0:
            self.stalls += 1
            return None
        seq = self.next_seq
        self.next_seq = seq + 1
        # Iterating the receiver dict directly yields keys in the same
        # insertion order list() would, without the per-send allocation.
        dests = targets if targets is not None else self._receivers
        sender = self.sender
        two_writes = self.writes_per_message == 2
        fabric = self.fabric
        write = fabric.write
        since = self._since_signal
        wires = self._wires
        interval = self.signal_interval
        direct = fabric._partition is None
        # All remote deposits of one broadcast fuse into a single
        # macro-event (local mirrors are plain stores and stay inline);
        # the try/finally guarantees buffered steps are flushed even if
        # a later receiver's QP raises SendQueueFullError mid-fan-out.
        sink = self._sink if fabric.engine.chain_enabled else None
        byz = fabric.engine.byz
        if byz is not None and self.sender in byz._ring_modes:
            return self._try_send_byz(byz, seq, dests, payload, size_bytes,
                                      earliest_ns, sink)
        try:
            for r in dests:
                if r == sender:
                    # Local mirror: plain store, visible at the next poll.
                    rr = self._receivers[r]
                    rr._on_data(seq, payload, size_bytes)
                    if two_writes:
                        rr._on_counter(seq)
                    continue
                count = since[r] + 1
                signaled = count >= interval
                since[r] = 0 if signaled else count
                wire = wires.get(r) if direct else None
                if wire is not None:
                    region, rkey, qp = wire
                    qp.post_write(region, rkey, ("data", seq), payload,
                                  size_bytes, signaled, ("ring", seq),
                                  earliest_ns, sink)
                    if two_writes:
                        # Separate 8-byte counter update (still >= 80 wire
                        # bytes).
                        qp.post_write(region, rkey, ("counter", seq), None,
                                      8, False, None, earliest_ns, sink)
                    continue
                region, rkey = self._regions[r]
                write(sender, r, region, rkey, ("data", seq), payload,
                      size_bytes, signaled=signaled, wr_id=("ring", seq),
                      earliest_ns=earliest_ns, sink=sink)
                if two_writes:
                    write(sender, r, region, rkey, ("counter", seq), None,
                          8, signaled=False, earliest_ns=earliest_ns, sink=sink)
        finally:
            if sink is not None:
                sink.commit()
        return seq

    def _try_send_byz(self, byz: Any, seq: int, dests: Iterable[int],
                      payload: Any, size_bytes: int, earliest_ns: int,
                      sink: Any) -> int:
        """The attacked twin of :meth:`try_send`'s fan-out loop, taken
        only while a ring attack is armed on this sender.

        Per remote receiver the injector may substitute the slot's
        payload(s) — a different forgery per receiver (corrupt_ring) or
        a forged twin write into the same slot (dup_ring).  The sender's
        *local* mirror keeps the honest payload: a lying node still
        knows the truth, which is exactly what makes the receivers'
        divergence monitor-visible.  Costs are identical per write to
        the honest path, and extra writes pay full wire costs.
        """
        sender = self.sender
        two_writes = self.writes_per_message == 2
        write = self.fabric.write
        since = self._since_signal
        wires = self._wires
        interval = self.signal_interval
        direct = self.fabric._partition is None
        try:
            for r in dests:
                if r == sender:
                    rr = self._receivers[r]
                    rr._on_data(seq, payload, size_bytes)
                    if two_writes:
                        rr._on_counter(seq)
                    continue
                repl = byz.on_ring_write(self, seq, r, payload)
                pls = repl if repl is not None else (payload,)
                count = since[r] + 1
                signaled = count >= interval
                since[r] = 0 if signaled else count
                wire = wires.get(r) if direct else None
                for pl in pls:
                    if wire is not None:
                        region, rkey, qp = wire
                        qp.post_write(region, rkey, ("data", seq), pl,
                                      size_bytes, signaled, ("ring", seq),
                                      earliest_ns, sink)
                    else:
                        region, rkey = self._regions[r]
                        write(sender, r, region, rkey, ("data", seq), pl,
                              size_bytes, signaled=signaled,
                              wr_id=("ring", seq), earliest_ns=earliest_ns,
                              sink=sink)
                if two_writes:
                    if wire is not None:
                        region, rkey, qp = wire
                        qp.post_write(region, rkey, ("counter", seq), None,
                                      8, False, None, earliest_ns, sink)
                    else:
                        region, rkey = self._regions[r]
                        write(sender, r, region, rkey, ("counter", seq), None,
                              8, signaled=False, earliest_ns=earliest_ns,
                              sink=sink)
        finally:
            if sink is not None:
                sink.commit()
        return seq

    # -------------------------------------------------------------- release

    def mark_released(self, receiver: int, upto_seq: int) -> None:
        """Protocol tells the sender that ``receiver`` no longer needs
        slots below ``upto_seq`` (exclusive).  Under ON_ACCEPT this is
        driven by acceptance state; under ON_COMMIT by commit state."""
        if upto_seq > self._released.get(receiver, 0):
            self._released[receiver] = min(upto_seq, self.next_seq)
            self._admin_baseline.discard(receiver)
            self.release_gen += 1

    def exclude_from_accounting(self, receiver: int) -> None:
        """Stop a lagging/suspected-dead receiver from wedging slot
        reuse, while continuing to mirror messages to it.

        This is the quorum-flexibility escape hatch: a crashed follower
        must not stall the sender forever once the ring wraps.  On real
        hardware the sender may now overwrite slots the receiver has not
        read, so a receiver excluded for long enough needs the next
        epoch's diff to recover; the simulation's mirrors are unbounded,
        which is optimistic only in that never-exercised corner (see
        DESIGN.md)."""
        self._released.pop(receiver, None)
        self._admin_baseline.discard(receiver)
        self.release_gen += 1
        self.admin_gen += 1

    def include_in_accounting(self, receiver: int, released_upto: int) -> None:
        """Re-admit a receiver to slot accounting (start of a new epoch,
        after its diff made earlier slots irrelevant)."""
        if receiver in self._receivers:
            self._released[receiver] = min(max(released_upto, 0), self.next_seq)
            self._admin_baseline.add(receiver)
            self.release_gen += 1
            self.admin_gen += 1

    def drop_receiver(self, receiver: int) -> None:
        """Remove a receiver entirely: no more mirroring, no accounting.
        Virtual-synchrony protocols do this when a view change configures
        the node out; quorum protocols use :meth:`exclude_from_accounting`
        instead."""
        self._released.pop(receiver, None)
        self._admin_baseline.discard(receiver)
        self.release_gen += 1
        self.admin_gen += 1
        self._since_signal.pop(receiver, None)
        self._receivers.pop(receiver, None)
        self._regions.pop(receiver, None)
        self._wires.pop(receiver, None)
