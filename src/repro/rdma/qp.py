"""Reliable-connection queue pairs: lossless, FIFO, one-sided writes.

The reliable connection (RC) transport is what Acuerdo's design leans
on (§2.1): messages are delivered exactly once and in order, losses are
recovered by NIC-level go-back-N retransmission (modelled as added
delay), and completions are only generated for writes that explicitly
request them — a later completion retires all earlier unsignaled writes
on the same QP (selective signaling).
"""

from __future__ import annotations

from typing import Any

from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import Completion, Nic
from repro.rdma.params import RdmaParams
from repro.sim.engine import Engine


class SendQueueFullError(Exception):
    """Too many un-retired WQEs: the poster failed to signal often enough."""


class QueuePair:
    """One direction of a reliable connection from ``src`` to ``dst``.

    One-sided writes posted here land in a registered
    :class:`~repro.rdma.memory.MemoryRegion` on the destination host
    without waking its CPU.
    """

    def __init__(self, engine: Engine, src: Nic, dst: Nic, params: RdmaParams,
                 lane: str = "control"):
        self.engine = engine
        self.src = src
        self.dst = dst
        self.params = params
        self.lane = lane
        self._loss_rng = engine.rng(f"qp.{src.node_id}->{dst.node_id}")
        self._last_delivery_at = 0
        self._outstanding = 0  # WQEs not yet retired by a completion
        self._unsignaled_run = 0  # unsignaled writes since last signaled one
        self.posted = 0
        self.delivered = 0
        self.retransmits = 0
        # Frozen-cost snapshots for the post_write hot path.  The wire
        # sum is int + int, so precomputing it cannot move a timestamp.
        self._post_wire_ns = params.propagation_ns + params.nic_rx_ns
        self._loss_prob = params.loss_prob
        self._retransmit_timeout_ns = params.retransmit_timeout_ns
        self._max_send_queue = params.max_send_queue
        self._completion_ns = params.completion_ns

    # ----------------------------------------------------------------- write

    def post_write(self, region: MemoryRegion, rkey: int, key: Any, value: Any,
                   size_bytes: int, signaled: bool = False,
                   wr_id: Any = None, earliest_ns: int = 0,
                   sink: Any = None) -> None:
        """Post a one-sided RDMA write of ``value`` to ``region[key]``.

        The write occupies the sender's egress link, crosses the wire,
        and is applied at the destination NIC with no remote-CPU work.
        If ``signaled``, a completion covering this and all earlier
        unsignaled writes is pushed to the sender's CQ once the transport
        ACK returns.

        ``sink``: an optional :class:`~repro.sim.engine.ChainBuilder`
        collecting this write's deliver/complete steps instead of
        scheduling them — broadcast producers (SST push, ring fan-out)
        pass one sink across all destinations so the whole fan-out
        fuses into a single macro-event.  The caller must commit it.

        Raises :class:`SendQueueFullError` when more than
        ``params.max_send_queue`` WQEs are outstanding — the failure mode
        selective signaling exists to avoid.
        """
        if not self.src.powered:
            return  # crashed host: nothing leaves
        if self._outstanding >= self._max_send_queue:
            raise SendQueueFullError(
                f"QP {self.src.node_id}->{self.dst.node_id}: "
                f"{self._outstanding} outstanding WQEs (max {self._max_send_queue})")
        self.posted += 1
        self._outstanding += 1

        tx_done = self.src.occupy_tx(size_bytes, earliest_ns, lane=self.lane)
        deliver_at = tx_done + self._post_wire_ns
        if self._loss_prob and self._loss_rng.random() < self._loss_prob:
            # Go-back-N: this packet (and, through the FIFO floor below,
            # everything behind it) arrives a retransmit-timeout late.
            deliver_at += self._retransmit_timeout_ns
            self.retransmits += 1
        # RC FIFO guarantee: never deliver out of order.
        deliver_at = max(deliver_at, self._last_delivery_at + 1)
        self._last_delivery_at = deliver_at
        engine = self.engine
        now = engine.now

        obs = engine.obs
        if obs is not None:
            # Milestones for span-traced carriers (bound payloads only;
            # unbound values — SST rows, counters — miss the dict in O(1)).
            obs.mark(value, "nic_tx", tx_done)
            obs.mark(value, "wire", tx_done + self.params.propagation_ns)
            obs.mark(value, "deposit", deliver_at)

        if signaled:
            covers = self._unsignaled_run + 1
            self._unsignaled_run = 0
            if sink is not None:
                sink.add(deliver_at, self._deliver, region, rkey, key, value,
                         size_bytes, now)
                sink.add(deliver_at + self._completion_ns, self._complete,
                         wr_id, covers, now)
            elif engine.chain_enabled:
                # Deliver and completion are one frozen-offset pair on
                # this QP: fuse them into a single heap entry.
                engine._push_chain_abs([
                    (deliver_at, self._deliver,
                     (region, rkey, key, value, size_bytes, now)),
                    (deliver_at + self._completion_ns, self._complete,
                     (wr_id, covers, now)),
                ])
            else:
                engine.schedule_at(deliver_at, self._deliver, region, rkey, key,
                                   value, size_bytes, now)
                engine.schedule_at(deliver_at + self._completion_ns, self._complete,
                                   wr_id, covers, now)
        else:
            self._unsignaled_run += 1
            if sink is not None:
                sink.add(deliver_at, self._deliver, region, rkey, key, value,
                         size_bytes, now)
            else:
                engine.schedule_at(deliver_at, self._deliver, region, rkey, key,
                                   value, size_bytes, now)

    # -------------------------------------------------------------- internal

    def _deliver(self, region: MemoryRegion, rkey: int, key: Any, value: Any,
                 size_bytes: int, posted_at: int = 0) -> None:
        if not self.dst.powered:
            return  # destination host crashed; write is lost with it
        self.delivered += 1
        region.remote_write(rkey, key, value, size_bytes)
        # Poll-elision doorbell: a deposit landed in this host's memory
        # (SST row, ring slot, mailbox, log region — every one-sided
        # write funnels through here), so wake a parked poll loop.
        waker = self.dst.waker
        if waker is not None:
            waker.doorbell(posted_at)

    def _complete(self, wr_id: Any, covers: int, posted_at: int) -> None:
        self._outstanding -= covers
        if self.src.powered:
            self.src.cq.push(Completion(qp_peer=self.dst.node_id, wr_id=wr_id,
                                        covers=covers, posted_at=posted_at,
                                        completed_at=self.engine.now))
            # Completions are observed by the poster's poll loop (Mu/DARE
            # treat them as acknowledgments): ring its doorbell too.
            waker = self.src.waker
            if waker is not None:
                waker.doorbell(posted_at)

    @property
    def outstanding(self) -> int:
        """WQEs posted but not yet retired by a completion."""
        return self._outstanding
