"""Hardware cost model for the simulated RDMA fabric.

Defaults are calibrated to the paper's testbed (CloudLab ``xl170``:
dual-port Mellanox ConnectX-4 25 GbE, one Mellanox 2410 switch hop,
RoCE).  Anchors used for calibration:

- 25 Gb/s link  →  3.125 bytes/ns serialisation rate;
- one-sided write one-way latency ≈ 0.9–1.1 µs for small messages
  (PCIe + NIC processing + one switch hop), so that Acuerdo's
  client→leader→follower→SST-ack→commit path lands near the paper's
  ~10 µs small-message commit latency on 3 nodes;
- minimum wire message of 80 bytes (§4.1), which is what makes the
  one-write vs two-write distinction between Acuerdo and Derecho a 2×
  bandwidth effect for 10-byte payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import us
from repro.substrate.cost import CostModel


@dataclass
class RdmaParams(CostModel):
    """Cost model knobs for NICs, links and queue pairs.

    Attributes
    ----------
    link_bandwidth_bytes_per_ns:
        Serialisation rate of each NIC's egress link (25 Gb/s default).
    propagation_ns:
        Wire + single-switch-hop propagation delay, one way.
    nic_tx_ns / nic_rx_ns:
        Per-verb processing at the sending / receiving NIC (WQE fetch,
        PCIe DMA, packet build / validate + DMA into host memory).
    doorbell_cpu_ns:
        CPU cost charged to the *poster* of a verb (userspace doorbell
        ring); this is the only CPU involvement on the send side.
    header_bytes / min_wire_bytes:
        Transport header overhead and the minimum size of any wire
        message (80 B, per §4.1).
    loss_prob:
        Probability that a wire message needs a go-back-N retransmit;
        the reliable connection recovers transparently but the message
        (and, via FIFO, everything behind it) is delayed by
        ``retransmit_timeout_ns``.
    retransmit_timeout_ns:
        NIC retransmission timeout.
    completion_ns:
        Extra latency from remote delivery to the sender-side completion
        entry (ACK propagation + CQE write).
    max_send_queue:
        Maximum outstanding (un-retired) WQEs per QP.  Selective
        signaling must request a completion often enough to keep below
        this bound — Acuerdo signals every 1000 messages (§2.1).
    """

    backend = "rdma"

    link_bandwidth_bytes_per_ns: float = 3.125
    propagation_ns: int = 900
    nic_tx_ns: int = 200
    nic_rx_ns: int = 150
    doorbell_cpu_ns: int = 80
    header_bytes: int = 36
    min_wire_bytes: int = 80
    loss_prob: float = 0.0
    retransmit_timeout_ns: int = us(12)
    # Transport ACK + CQE DMA + CQ-poll pickup.  Deliberately expensive:
    # completions are the mechanism DARE leans on per message and §5
    # blames for its latency, while selective signaling (Acuerdo) makes
    # their cost vanish into one completion per thousand writes.
    completion_ns: int = 1_500
    max_send_queue: int = 4096
    # NIC QoS: wire messages at or above this size are scheduled on the
    # bulk lane, so small control traffic (SST rows, heartbeats, ring
    # metadata) never queues behind megabytes of data — the service
    # levels / per-QP fair queueing real RDMA NICs provide.  Control
    # traffic is a few percent of link capacity, so modelling the lanes
    # as independent introduces negligible bandwidth error.
    qos_bulk_threshold_bytes: int = 16_384

    # Wire maths (``wire_bytes``, ``tx_serialization_ns``) are inherited
    # from CostModel; only the uniform accessors are backend-specific.

    @property
    def send_cpu_ns(self) -> int:
        return self.doorbell_cpu_ns

    @property
    def recv_cpu_ns(self) -> int:
        # One-sided writes land in registered memory with zero remote-CPU
        # involvement — the paper's whole point (§1, §3).
        return 0

    @property
    def delivery_overhead_ns(self) -> int:
        return self.nic_rx_ns

    @property
    def loss_delay_ns(self) -> int:
        return self.retransmit_timeout_ns
