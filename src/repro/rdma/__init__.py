"""Simulated RDMA backend of :mod:`repro.substrate` (reliable
connections, ring buffers, SSTs).

This package is the substitution for the paper's Mellanox ConnectX-4 /
RoCE hardware (see DESIGN.md §1).  It models the mechanisms Acuerdo's
performance rests on:

- **one-sided writes** deposit into remote registered memory without any
  remote-CPU involvement (:mod:`repro.rdma.qp`);
- **reliable connections** deliver losslessly and in FIFO order, with
  go-back-N retransmission charged as extra delay on loss;
- **completions and selective signaling**: only explicitly signaled
  writes generate completion entries, and a completion retires every
  earlier unsignaled write on the same QP (:mod:`repro.rdma.nic`);
- **wire costs**: per-verb NIC processing, link serialisation at
  25 Gb/s, and the 80-byte minimum wire message that makes Acuerdo's
  one-write-per-message design twice as bandwidth-efficient as
  Derecho's two-write design for small payloads (§4.1);
- **ring buffers** with pluggable slot-release policy
  (:mod:`repro.rdma.ringbuffer`) — accept-based for Acuerdo,
  commit-based for Derecho;
- **shared state tables** with last-writer-wins overwrite semantics
  (:mod:`repro.rdma.sst`).
"""

from repro.rdma.params import RdmaParams
from repro.rdma.memory import MemoryRegion, AccessError
from repro.rdma.nic import Nic, Completion, CompletionQueue
from repro.rdma.qp import QueuePair, SendQueueFullError
from repro.rdma.fabric import RdmaEndpoint, RdmaFabric
from repro.rdma.ringbuffer import RingBuffer, RingReceiver, SlotReleasePolicy
from repro.rdma.sst import SharedStateTable
from repro.rdma.mailbox import Mailbox

__all__ = [
    "Mailbox",
    "RdmaParams",
    "MemoryRegion",
    "AccessError",
    "Nic",
    "Completion",
    "CompletionQueue",
    "QueuePair",
    "SendQueueFullError",
    "RdmaEndpoint",
    "RdmaFabric",
    "RingBuffer",
    "RingReceiver",
    "SlotReleasePolicy",
    "SharedStateTable",
]
