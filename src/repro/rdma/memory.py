"""Registered memory regions and remote-access keys.

Before a peer may write into a node's memory it must hold an ``rkey``
for a region that was explicitly registered for remote access — the same
handshake real RDMA applications perform at connection setup (§2.1).
The simulation enforces this: a one-sided write against a region whose
rkey does not match raises :class:`AccessError`, and the permission
tests assert that protocols only touch memory they were granted.

Regions do not model byte layouts (payloads are Python objects); they
model *ownership and access rights*, plus a declared byte size used by
the cost model.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

_rkey_counter = itertools.count(0xBEEF)


class AccessError(Exception):
    """A remote write presented a stale or foreign rkey."""


class MemoryRegion:
    """A pinned, registered region of one node's memory.

    Parameters
    ----------
    owner:
        node id of the host whose memory this is.
    name:
        debugging label ("ring.n0.in3", "accept_sst.n2", ...).
    size_bytes:
        declared registration size (bookkeeping only).
    on_write:
        callback ``(key, value, size_bytes) -> None`` invoked when a
        remote one-sided write lands.  It runs with *no CPU involvement*
        on the owner — the owning process only observes the effect at
        its next poll.
    """

    def __init__(self, owner: int, name: str, size_bytes: int,
                 on_write: Callable[[Any, Any, int], None]):
        self.owner = owner
        self.name = name
        self.size_bytes = size_bytes
        self._on_write = on_write
        self.rkey = next(_rkey_counter)
        self.writes_received = 0
        self.bytes_received = 0
        self._revoked = False

    def grant(self) -> int:
        """Return the rkey a remote peer needs to write here."""
        return self.rkey

    def revoke(self) -> None:
        """Invalidate all outstanding rkeys (used by tests and by the
        DARE-style connection-close discussion in §5)."""
        self._revoked = True

    def remote_write(self, rkey: int, key: Any, value: Any, size_bytes: int) -> None:
        """Apply a one-sided write.  Called by the QP at delivery time."""
        if self._revoked or rkey != self.rkey:
            raise AccessError(f"bad rkey {rkey:#x} for region {self.name}")
        self.writes_received += 1
        self.bytes_received += size_bytes
        self._on_write(key, value, size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryRegion {self.name} owner={self.owner} rkey={self.rkey:#x}>"
