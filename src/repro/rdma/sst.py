"""Shared State Table (SST): replicated last-writer-wins state rows.

Introduced by Derecho and leveraged throughout Acuerdo (§3.2, Fig. 2),
the SST is a replicated array indexed by node id.  Each node may write
only its own row and pushes updates to peers with one-sided writes that
*overwrite* the previous value — the receiver only ever cares about the
newest write, so updates always target the same remote address and a
single read of the local copy yields a consistent-enough "snapshot".

Because rows carry monotonically increasing values in every use in this
codebase (last accepted header, last committed header, current vote),
RDMA's FIFO delivery means a reader can never observe a row going
backwards — the property that makes "acknowledge only the newest
message" sound (§3.2).  Property tests assert this monotonicity.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.rdma.fabric import RdmaFabric


class SharedStateTable:
    """One named SST replicated across ``members``.

    Each member holds a complete local copy (`dict row-owner -> value`).
    ``write_local`` + ``push`` implement the paper's
    ``SST[Self] = v; SST.push_mine()`` idiom.
    """

    def __init__(self, fabric: RdmaFabric, name: str, members: Iterable[int],
                 row_size_bytes: int = 24, initial: Any = None,
                 signal_interval: int = 1000):
        self.fabric = fabric
        self.name = name
        self.members = list(members)
        self.row_size_bytes = row_size_bytes
        self.signal_interval = signal_interval
        # copies[reader][row_owner] -> latest value known to `reader`
        self.copies: dict[int, dict[int, Any]] = {
            m: {o: initial for o in self.members} for m in self.members}
        # Change counter per local copy: lets a poll loop skip predicate
        # re-evaluation when nothing has landed since its last look.
        self._versions: dict[int, int] = {m: 0 for m in self.members}
        self._regions: dict[int, tuple[Any, int]] = {}
        # Pre-seeded for every ordered member pair so push never pays the
        # .get default path.
        self._since_signal: dict[tuple[int, int], int] = {
            (m, t): 0 for m in self.members for t in self.members if m != t}
        self._write = fabric.write  # prebound: one hot call per push target
        self._wr_id = ("sst", name)  # one shared tuple, not one per push
        #: Protection-domain model: with ``protected`` True (the default,
        #: matching real RDMA registration — each member's QP is granted
        #: write access to its own row only), :meth:`remote_write_row`
        #: refuses writes to rows the writer does not own.  The
        #: adversary harness flips this off to model a substrate without
        #: per-row grants (see DESIGN.md §12).
        self.protected = True
        #: Optional row-overwrite observer ``hook(sst, holder, row, old,
        #: new)`` installed by the Byzantine injector while an SST attack
        #: is armed; None on every honest run so ``_apply`` stays on its
        #: two-line fast path.
        self._mon_hook = None
        self._sink = fabric.engine.chain_builder()  # reusable fan-out fuser
        self.pushes = 0
        for m in self.members:
            region = self.fabric.register(
                m, f"sst.{name}.{m}", size_bytes=row_size_bytes * len(self.members),
                on_write=lambda row, value, _size, m=m: self._apply(m, row, value))
            self._regions[m] = (region, region.grant())
        # Hot-path cache: (region, rkey, qp) per ordered pair, so push can
        # post straight to the QP — skipping the fabric.write indirection —
        # whenever no partition is active (the only behaviour fabric.write
        # adds on this lane).
        self._wires: dict[tuple[int, int], tuple[Any, int, Any]] = {}
        for m in self.members:
            region, rkey = self._regions[m]
            for src in self.members:
                if src != m and (src, m) in fabric.qps:
                    self._wires[(src, m)] = (region, rkey, fabric.qps[(src, m)])

    def _apply(self, holder: int, row: int, value: Any) -> None:
        hook = self._mon_hook
        if hook is not None:
            hook(self, holder, row, self.copies[holder][row], value)
        self.copies[holder][row] = value
        self._versions[holder] += 1

    def remote_write_row(self, writer: int, holder: int, row: int,
                         value: Any) -> bool:
        """Attempt a one-sided write of ``row`` in ``holder``'s copy on
        behalf of ``writer`` — *any* row, not just the writer's own.

        This is the adversarial entry point: the normal protocol path
        (:meth:`push`) only ever writes the pusher's own row.  With
        :attr:`protected` True the protection domain blocks any
        ``row != writer`` attempt before it reaches the wire (returns
        False) — the RDMA argument that a non-owner cannot forge a
        remote SST row.  Unprotected, the forged write travels the same
        QP path as a real push.  Returns True iff the write was issued.
        """
        if self.protected and row != writer:
            return False
        if holder == writer:
            self._apply(holder, row, value)
            return True
        region, rkey = self._regions[holder]
        self.fabric.write(writer, holder, region, rkey, row, value,
                          self.row_size_bytes, wr_id=("byz", self.name))
        return True

    def version(self, holder: int) -> int:
        """Monotone counter bumped whenever ``holder``'s copy changes.

        Remote bumps arrive through the QP delivery path, which also
        rings the holder's poll-elision doorbell — so a parked node never
        misses a version change (see ``repro.sim.process``)."""
        return self._versions[holder]

    def changed_since(self, holder: int, seen_version: int) -> bool:
        """True iff ``holder``'s copy changed after ``seen_version`` —
        the idle test park-ready predicates use."""
        return self._versions[holder] != seen_version

    # ------------------------------------------------------------------ API

    def read(self, reader: int, row: int) -> Any:
        """Read ``row`` from ``reader``'s local copy (pure local memory)."""
        return self.copies[reader][row]

    def snapshot(self, reader: int) -> dict[int, Any]:
        """Copy of the reader's entire local table (Fig. 7's ``votes_cpy``)."""
        return dict(self.copies[reader])

    def write_local(self, node: int, value: Any) -> None:
        """Update ``node``'s own row in its local copy (no network)."""
        self.copies[node][node] = value
        self._versions[node] += 1

    def push(self, node: int, targets: Optional[Iterable[int]] = None,
             earliest_ns: int = 0) -> None:
        """Mirror ``node``'s own row to ``targets`` (default: all peers)
        with one one-sided write each (``push_mine`` / ``push_mine_to``).

        With macro-event fusion on, the per-peer deposits of one push
        ride a single fused chain (the loop schedules nothing between
        writes, so the fused tie-break seqs are exactly the unfused
        ones; see :class:`~repro.sim.engine.ChainBuilder`).
        """
        fabric = self.fabric
        value = self.copies[node][node]
        dests = targets if targets is not None else self.members
        since = self._since_signal
        wires = self._wires
        row_bytes = self.row_size_bytes
        interval = self.signal_interval
        wr_id = self._wr_id
        direct = fabric._partition is None  # fabric.write only adds the
        pushed = 0                          # partition drop on this lane
        sink = self._sink if fabric.engine.chain_enabled else None
        try:
            for t in dests:
                if t == node:
                    continue
                k = (node, t)
                count = since[k] + 1
                signaled = count >= interval
                since[k] = 0 if signaled else count
                wire = wires.get(k) if direct else None
                if wire is not None:
                    region, rkey, qp = wire
                    qp.post_write(region, rkey, node, value, row_bytes,
                                  signaled, wr_id, earliest_ns, sink)
                else:
                    region, rkey = self._regions[t]
                    self._write(node, t, region, rkey, node, value, row_bytes,
                                signaled=signaled, wr_id=wr_id,
                                earliest_ns=earliest_ns, sink=sink)
                pushed += 1
        finally:
            self.pushes += pushed
            if sink is not None:
                sink.commit()

    def set_and_push(self, node: int, value: Any,
                     targets: Optional[Iterable[int]] = None,
                     earliest_ns: int = 0) -> None:
        """Convenience: ``write_local`` then ``push``."""
        self.write_local(node, value)
        self.push(node, targets, earliest_ns=earliest_ns)
