"""Write-based mailboxes: FaRM-style RPC inboxes over one-sided writes.

Client↔cluster traffic in the paper flows over RDMA (§4.3: "accessed by
a separate, external, client machine that can send requests via RDMA").
A :class:`Mailbox` is the minimal primitive for that: a registered inbox
the owner polls, into which any peer holding the rkey deposits records
with one-sided writes.  It is also how hash-table replicas send replies
back to clients.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.rdma.fabric import RdmaFabric


class Mailbox:
    """A pollable inbox on ``owner`` fed by one-sided writes.

    Deposits travel through the fabric's queue pairs, so they ring the
    owning host's poll-elision doorbell at delivery time: a parked owner
    wakes at its first poll tick after the record lands (``backlog``
    going 0 -> nonzero is always doorbell-covered)."""

    def __init__(self, fabric: RdmaFabric, owner: int, name: str,
                 size_bytes: int = 1 << 20, signal_interval: int = 1000):
        self.fabric = fabric
        self.owner = owner
        self.name = name
        self.signal_interval = signal_interval
        self._inbox: deque[tuple[int, Any]] = deque()
        self._region = fabric.register(owner, f"mbox.{name}", size_bytes,
                                       on_write=self._on_write)
        self._rkey = self._region.grant()
        self._since_signal: dict[int, int] = {}
        self.sent = 0

    def _on_write(self, key: Any, value: Any, _size: int) -> None:
        self._inbox.append((key, value))

    def send(self, src: int, payload: Any, size_bytes: int) -> None:
        """Deposit ``payload`` into the inbox from node ``src``."""
        self._since_signal[src] = self._since_signal.get(src, 0) + 1
        signaled = self._since_signal[src] >= self.signal_interval
        if signaled:
            self._since_signal[src] = 0
        self.fabric.write(src, self.owner, self._region, self._rkey, src,
                          payload, size_bytes, signaled=signaled,
                          wr_id=("mbox", self.name))
        self.sent += 1

    def drain(self, max_batch: Optional[int] = None) -> list[tuple[int, Any]]:
        """Pop pending ``(src, payload)`` records in arrival order."""
        out: list[tuple[int, Any]] = []
        while self._inbox and (max_batch is None or len(out) < max_batch):
            out.append(self._inbox.popleft())
        return out

    @property
    def backlog(self) -> int:
        return len(self._inbox)
