"""Shared cost accounting for every transport substrate.

The paper's Fig. 8 argument is a *substrate-shape* comparison: identical
protocol work costs an order of magnitude more over kernel TCP than over
one-sided RDMA because of where the per-message charges land.  This
module pins down the shape once so each backend only declares its
numbers:

- **wire charges** — serialisation at link rate plus propagation — are
  identical maths for every backend and implemented here exactly once
  (``wire_bytes`` / ``tx_serialization_ns``);
- **CPU charges** differ per backend and are exposed through the uniform
  accessors ``send_cpu_ns`` / ``recv_cpu_ns`` (RDMA: an 80 ns doorbell
  and *zero* receiver CPU; TCP: microseconds of kernel stack on both
  ends);
- **loss** is uniformly modelled as added delay (go-back-N retransmit on
  RDMA, RTO on TCP), surfaced as ``loss_delay_ns``;
- **delivery overhead** is the extra one-way latency between the last
  bit leaving the wire and the payload being visible to the receiver
  (RDMA: NIC rx processing; TCP: interrupt + softirq + stack).

Concrete models (:class:`~repro.rdma.params.RdmaParams`,
:class:`~repro.net.tcp.TcpParams`) subclass this and keep their
historical field names; the accessors are what substrate-generic code
(conformance tests, ``repro.harness.breakdown``) programs against.
"""

from __future__ import annotations


class CostModel:
    """Base class for per-backend cost models.

    Subclasses are dataclasses declaring the backend's fields; the class
    attributes below are fallbacks so the shared helpers work even when
    a backend has no use for a knob (e.g. TCP has no minimum wire
    message, so ``min_wire_bytes`` stays 0).

    **Freeze invariant**: cost models are never mutated after the
    substrate is built (verified by the conformance tests and relied on
    throughout the backends).  That is what makes it safe for the wire
    maths below to memoise per payload size and for backends to snapshot
    fields into plain attributes at construction time — workloads send a
    handful of distinct sizes millions of times, so both sides of the
    bargain pay off.
    """

    #: short backend tag ("rdma", "tcp", ...), mirrored by the substrate
    backend: str = "abstract"

    link_bandwidth_bytes_per_ns: float = 3.125
    propagation_ns: int = 0
    header_bytes: int = 0
    min_wire_bytes: int = 0
    loss_prob: float = 0.0

    # ------------------------------------------------------------ wire maths
    #
    # Both helpers are memoised per payload size (the memo lives in the
    # instance __dict__, invisible to dataclass eq/repr/replace).  The
    # cached values are exactly what the open-coded expressions produce,
    # so simulated timestamps are bit-identical with or without the memo.

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes actually serialised on the link for one payload."""
        try:
            return self._wire_memo[payload_bytes][0]
        except (AttributeError, KeyError):
            return self._memoize_wire(payload_bytes)[0]

    def tx_serialization_ns(self, payload_bytes: int) -> int:
        """Time the egress link is occupied by one message."""
        try:
            return self._wire_memo[payload_bytes][1]
        except (AttributeError, KeyError):
            return self._memoize_wire(payload_bytes)[1]

    def _memoize_wire(self, payload_bytes: int) -> tuple[int, int]:
        wire = max(self.min_wire_bytes, payload_bytes + self.header_bytes)
        entry = (wire, max(1, int(wire / self.link_bandwidth_bytes_per_ns)))
        try:
            self._wire_memo[payload_bytes] = entry
        except AttributeError:
            self._wire_memo = {payload_bytes: entry}
        return entry

    # ----------------------------------------------------- uniform accessors

    @property
    def send_cpu_ns(self) -> int:
        """CPU charged to the *sender* per message."""
        raise NotImplementedError

    @property
    def recv_cpu_ns(self) -> int:
        """CPU charged to the *receiver* per message picked up."""
        raise NotImplementedError

    @property
    def delivery_overhead_ns(self) -> int:
        """One-way latency beyond serialisation + propagation."""
        raise NotImplementedError

    @property
    def loss_delay_ns(self) -> int:
        """Delay a lost wire message suffers before transparent recovery."""
        raise NotImplementedError

    def cost_table(self) -> dict[str, float]:
        """The uniform charges, for rendering and cross-backend checks."""
        return {
            "send_cpu_ns": self.send_cpu_ns,
            "recv_cpu_ns": self.recv_cpu_ns,
            "delivery_overhead_ns": self.delivery_overhead_ns,
            "propagation_ns": self.propagation_ns,
            "loss_delay_ns": self.loss_delay_ns,
            "loss_prob": self.loss_prob,
            "header_bytes": self.header_bytes,
            "min_wire_bytes": self.min_wire_bytes,
            "link_bandwidth_bytes_per_ns": self.link_bandwidth_bytes_per_ns,
        }
