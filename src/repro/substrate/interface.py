"""The common transport abstraction every backend implements.

A :class:`Substrate` is one cluster-wide transport instance (the RDMA
fabric, the kernel-TCP mesh, ...).  It hands out one :class:`Endpoint`
per attached process and carries messages between them with
post/deliver/poll semantics:

- ``send`` *posts* a message on the sender's side, charging that
  backend's send-side CPU and occupying its egress link;
- the substrate *delivers* it into the destination endpoint after wire
  time, loss delay and the backend's delivery overhead;
- the owning process *polls* its endpoint (``drain``) to pick messages
  up, paying the backend's receive-side CPU charge per message.

Failure hooks (loss-as-delay, node crash, network partition) and the
trace-counter namespace (``substrate.<backend>.tx_bytes``, ``.tx_msgs``,
``.rx_msgs``, ``.retransmits``, ``.partition_drop``) are shared here so
every protocol and harness reads the same keys regardless of backend.

Backends may expose richer primitives on top — the RDMA fabric keeps
one-sided writes, rings and SSTs — but the surface in this module is
what cross-substrate code (conformance tests, cost breakdowns, the
protocol factory) is allowed to assume.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.substrate.cost import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Engine
    from repro.sim.process import Process


class Endpoint(abc.ABC):
    """One node's attachment to a substrate: an inbox plus egress state.

    Subclasses maintain the per-endpoint accounting attributes ``sent``,
    ``received``, ``tx_bytes`` and ``retransmits``; the aliases below
    give them uniform names for substrate-generic code.
    """

    #: set by subclasses
    sent: int = 0
    received: int = 0
    tx_bytes: int = 0
    retransmits: int = 0

    @property
    @abc.abstractmethod
    def node_id(self) -> int:
        """The owning process's node id."""

    @abc.abstractmethod
    def deliver(self, src: int, payload: Any, size: int) -> None:
        """Called by the substrate when a message reaches this node."""

    @abc.abstractmethod
    def drain(self, max_batch: Optional[int] = None) -> list[tuple[int, Any]]:
        """Pop pending ``(src, payload)`` messages in delivery order,
        charging this backend's per-message receive cost (if any)."""

    # ------------------------------------------------------------- uniform

    @property
    def tx_msgs(self) -> int:
        return self.sent

    @property
    def rx_msgs(self) -> int:
        return self.received

    def stats(self) -> dict[str, int]:
        """Un-namespaced per-endpoint counters."""
        return {
            "tx_msgs": self.sent,
            "rx_msgs": self.received,
            "tx_bytes": self.tx_bytes,
            "retransmits": self.retransmits,
        }


class Substrate(abc.ABC):
    """A cluster-wide transport with unified failure and cost hooks."""

    #: short backend tag; also the middle segment of the counter namespace
    backend: str = "abstract"

    def __init__(self, engine: "Engine", params: CostModel):
        self.engine = engine
        self.params = params
        self.endpoints: dict[int, Endpoint] = {}
        self._partition: Optional[list[frozenset[int]]] = None
        self.partition_drops = 0

    # ------------------------------------------------------------- wiring

    @abc.abstractmethod
    def attach(self, process: "Process") -> Endpoint:
        """Create and register ``process``'s endpoint on this substrate."""

    def endpoint(self, node_id: int) -> Endpoint:
        """The endpoint attached for ``node_id``."""
        return self.endpoints[node_id]

    # ------------------------------------------------------------ messaging

    @abc.abstractmethod
    def send(self, src: int, dst: int, payload: Any, size_bytes: int) -> None:
        """Post one message from ``src`` to ``dst``; it is delivered into
        the destination endpoint after this backend's wire costs."""

    def broadcast(self, src: int, dsts: Iterable[int], payload: Any,
                  size_bytes: int) -> None:
        """Send the same message to several peers (separate unicasts, as
        both RC queue pairs and TCP connections require)."""
        for d in dsts:
            if d != src:
                self.send(src, d, payload, size_bytes)

    # -------------------------------------------------------------- failure

    def set_partition(self, *groups: Iterable[int]) -> None:
        """Partition the network: traffic crosses only within a group.

        Nodes not named in any group are isolated.  Cross-partition
        messages are dropped (on RDMA the reliable connection would
        retransmit until its retry budget dies; on TCP the connection
        stalls — from the protocol's viewpoint the peer is unreachable
        either way)."""
        self._partition = [frozenset(g) for g in groups]

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition = None

    def _blocked(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        return not any(src in g and dst in g for g in self._partition)

    def _drop_partitioned(self) -> None:
        """Account one message dropped at a partition boundary."""
        self.partition_drops += 1
        self.engine.trace.count(f"substrate.{self.backend}.partition_drop")

    def crash_node(self, node_id: int) -> None:
        """Take a node's transport down with its host (default: no
        transport-level state to power off)."""

    # ---------------------------------------------------------- accounting

    @abc.abstractmethod
    def _raw_counters(self) -> dict[str, int]:
        """Backend totals, un-namespaced: ``tx_bytes``, ``tx_msgs``,
        ``rx_msgs``, ``retransmits`` (plus backend extras)."""

    def counters(self) -> dict[str, int]:
        """Cluster-wide totals under the unified counter namespace, as
        the same flat dotted-name shape :meth:`Tracer.summary` returns
        (routed through the metrics registry)."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.ingest_namespaced(f"substrate.{self.backend}",
                                   self._raw_counters())
        registry.record(f"substrate.{self.backend}.partition_drop",
                        self.partition_drops)
        return registry.snapshot()

    def publish_counters(self, trace=None) -> dict[str, int]:
        """Snapshot :meth:`counters` into a tracer (default: the
        engine's), so post-run analyses read transport totals from the
        same place as protocol counters.  Called by the harness after a
        run — never from the hot path, so live trace fingerprints are
        independent of transport accounting.  Publication goes through
        the metrics registry: assignment, not increment, so publishing
        twice does not double-count."""
        from repro.obs.metrics import MetricsRegistry

        tracer = trace if trace is not None else self.engine.trace
        registry = MetricsRegistry()
        registry.merge(self.counters())
        return registry.publish(tracer)

    def total_tx_bytes(self) -> int:
        """Wire bytes sent by every endpoint (bandwidth benches)."""
        return self._raw_counters()["tx_bytes"]
