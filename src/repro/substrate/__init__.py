"""Unified transport layer: every backend behind one interface.

The paper's comparison (Fig. 8, §4.1) is between *substrate shapes* —
one-sided RDMA against kernel TCP — so this package makes the substrate
a first-class, swappable layer:

- :mod:`repro.substrate.cost` — :class:`CostModel`, the shared
  per-message cost accounting (wire maths implemented once; uniform
  send/recv CPU, delivery-overhead and loss-delay accessors);
- :mod:`repro.substrate.interface` — :class:`Endpoint` and
  :class:`Substrate`, the post/deliver/poll transport abstraction with
  unified failure hooks (loss-as-delay, crash, partition) and the
  ``substrate.<backend>.*`` counter namespace;
- the two concrete backends, re-exported here: the RDMA fabric
  (:mod:`repro.rdma`) and the kernel-TCP mesh (:mod:`repro.net`),
  plus the RDMA data structures protocols build on (rings, SSTs,
  mailboxes).

Protocols and the harness import transports from here only; adding a
backend (a SmartNIC or CXL-style cost model, say) means implementing the
two ABCs and registering a builder in :data:`BACKENDS` — no protocol
changes.

Backend re-exports resolve lazily (PEP 562): the backends themselves
import :mod:`repro.substrate.cost` / :mod:`repro.substrate.interface`,
so importing them eagerly here would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.substrate.cost import CostModel
from repro.substrate.interface import Endpoint, Substrate

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.sim.engine import Engine

#: Lazily resolved re-exports: public name -> defining module.
_LAZY = {
    "Mailbox": "repro.rdma.mailbox",
    "RdmaEndpoint": "repro.rdma.fabric",
    "RdmaFabric": "repro.rdma.fabric",
    "RdmaParams": "repro.rdma.params",
    "RingBuffer": "repro.rdma.ringbuffer",
    "RingReceiver": "repro.rdma.ringbuffer",
    "SharedStateTable": "repro.rdma.sst",
    "SlotReleasePolicy": "repro.rdma.ringbuffer",
    "TcpEndpoint": "repro.net.tcp",
    "TcpNetwork": "repro.net.tcp",
    "TcpParams": "repro.net.tcp",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)


def _build_rdma(engine: "Engine", node_ids: list[int],
                params: Optional[CostModel]) -> Substrate:
    from repro.rdma.fabric import RdmaFabric

    return RdmaFabric(engine, node_ids, params)


def _build_tcp(engine: "Engine", node_ids: list[int],
               params: Optional[CostModel]) -> Substrate:
    from repro.net.tcp import TcpNetwork

    return TcpNetwork(engine, params)


#: Builders for every known backend: ``name -> (engine, node_ids, params)``.
#: ``node_ids`` pre-wires nodes for backends with connection state (RDMA
#: queue pairs); connection-per-attach backends like TCP ignore it and
#: wire lazily on :meth:`Substrate.attach`.
BACKENDS: dict[str, Callable[["Engine", list[int], Optional[CostModel]], Substrate]] = {
    "rdma": _build_rdma,
    "tcp": _build_tcp,
}


def build_substrate(backend: str, engine: "Engine",
                    node_ids: Optional[Iterable[int]] = None,
                    params: Optional[CostModel] = None) -> Substrate:
    """Instantiate the named transport backend.

    ``params`` defaults to the backend's calibrated cost model when None.
    """
    try:
        builder = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown substrate backend {backend!r}; pick from {sorted(BACKENDS)}")
    return builder(engine, list(node_ids or []), params)


__all__ = [
    "BACKENDS",
    "CostModel",
    "Endpoint",
    "Mailbox",
    "RdmaEndpoint",
    "RdmaFabric",
    "RdmaParams",
    "RingBuffer",
    "RingReceiver",
    "SharedStateTable",
    "SlotReleasePolicy",
    "Substrate",
    "TcpEndpoint",
    "TcpNetwork",
    "TcpParams",
    "build_substrate",
]
