"""Online safety monitors over the span/metrics stream.

The atomic-broadcast safety properties the paper depends on — single
leader per term (§3.3), log-prefix agreement (§2.2 Total Order),
commit-implies-quorum-accept (§3.1) and accept-based slot-reuse safety
(§4.1) — historically lived only as offline assertions in
``tests/properties``.  This package turns them into *online* monitors
that evaluate during any run:

- protocols emit a small vocabulary of **normalized monitor events**
  (``leader``, ``accept``/``accept_one``/``accept_trunc``, ``commit``,
  ``deliver``, ``slot_bind``/``slot_release``) through
  ``engine.monitors`` — the same is-None-gated hook pattern as
  ``engine.obs``, so runs without monitors stay bit-identical;
- a :class:`MonitorRegistry` demultiplexes events per consensus group
  (sharded deployments get per-group monitor instances for free) and
  feeds each registered :class:`Monitor`;
- violations are :class:`Violation` records carrying the simulated
  time, shard, protocol and the witness events, surfaced through the
  :class:`~repro.obs.metrics.MetricsRegistry` as
  ``monitor.<name>.violations`` and through CLI exit codes
  (``--check-invariants``).

Enable per run with ``RunSpec(check_invariants=True)`` or the
``--check-invariants`` CLI flag.
"""

from repro.monitors.registry import (
    DEFAULT_MONITORS,
    GroupContext,
    Monitor,
    MonitorEvent,
    MonitorRegistry,
    Violation,
)
from repro.monitors.invariants import (
    CommitQuorumAccept,
    LogPrefixAgreement,
    SingleLeaderPerTerm,
    SlotReuseSafety,
    SstMonotonic,
)

__all__ = [
    "CommitQuorumAccept",
    "DEFAULT_MONITORS",
    "GroupContext",
    "LogPrefixAgreement",
    "Monitor",
    "MonitorEvent",
    "MonitorRegistry",
    "SingleLeaderPerTerm",
    "SlotReuseSafety",
    "SstMonotonic",
    "Violation",
]
