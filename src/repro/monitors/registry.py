"""Monitor API: events, violations, the per-group registry.

The registry attaches as ``engine.monitors`` (parallel to the span
recorder's ``engine.obs``) and every emission site in the simulator is
gated by ``engine.monitors is not None`` — a run without monitors
executes no monitor code at all, which is what keeps the golden trace
fingerprints bit-identical and the monitors-off overhead at zero.

Event flow::

    protocol hook --. note(system, kind, ...) .--> MonitorRegistry
    SpanRecorder --- on_span(finished span) ----->    | per-group demux
                                                      v
                                            Monitor.on_mark / on_span

Normalized event vocabulary (the cross-protocol contract):

``leader``
    ``node`` claims *exclusive* leadership of ``term``.  Emitted by
    every backend with an exclusive-leader role (Acuerdo epoch rounds,
    Raft terms, Zab epochs, Paxos ballots, Mu/DARE terms, Derecho view
    coordinators); all-sender deployments (derecho-all) emit nothing.
``accept``
    ``node``'s *cumulative* accepted/durable frontier advanced to
    ``slot`` (it has accepted every slot up to and including it).
``accept_one``
    ``node`` accepted exactly ``slot`` with value identity ``key``
    (per-instance protocols: libpaxos, Derecho rounds).
``accept_trunc``
    ``node``'s cumulative frontier was *lowered* to ``slot`` (log
    truncation / state-transfer install of a shorter log).
``commit``
    ``node`` committed/decided ``slot`` (optionally with value
    identity ``key``).
``deliver``
    ``node`` delivered payload ``key`` to the application (emitted
    centrally by ``BroadcastSystem.record_delivery``).
``slot_bind``
    ring owner ``node`` occupied broadcast-ring sequence ``seq`` with
    the message of consensus slot ``slot`` (``extra`` = ring capacity;
    ``slot`` None for filler/null sends with no safety obligation).
``slot_release``
    ring owner ``node`` released every ring sequence below ``seq``.
``sst_row``
    row ``seq`` of SST ``key`` in holder ``node``'s copy was
    overwritten with ``slot`` (``extra`` = prior value).  Only emitted
    through the SST apply hook the Byzantine injector installs while an
    SST attack is armed — honest runs carry no ``sst_row`` traffic.

Slots only need to be *comparable and hashable within one protocol*
(Acuerdo ``MsgHdr``, integer log frontiers, Zab zxid pairs); monitors
never compare slots across protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple, Optional

_tuple_new = tuple.__new__


class MonitorEvent(NamedTuple):
    """One normalized protocol event (see module docstring)."""

    t: int                        # sim-ns
    group: Optional[int]          # consensus-group index (None: unsharded)
    protocol: str                 # system name ("acuerdo", "etcd", ...)
    kind: str                     # vocabulary entry ("leader", "accept", ...)
    node: int                     # emitting replica
    term: Any = None              # leadership term (kind == "leader")
    slot: Any = None              # consensus slot / log frontier
    key: Any = None               # value identity (payload object)
    seq: Any = None               # broadcast-ring sequence number
    extra: Any = None             # event-specific (slot_bind: ring capacity)


@dataclass(frozen=True)
class GroupContext:
    """What a monitor instance knows about its consensus group."""

    group: Optional[int]
    protocol: str
    n: int

    @property
    def quorum(self) -> int:
        """The majority floor ``n // 2 + 1`` — the weakest write quorum
        any of the nine backends relies on for safety, so it never
        false-positives on the stronger (all-replica) protocols."""
        return self.n // 2 + 1


@dataclass
class Violation:
    """One observed safety violation, with its witness events."""

    t: int                        # sim-ns at which the violation surfaced
    group: Optional[int]          # shard (consensus-group) index, if any
    protocol: str
    monitor: str                  # reporting monitor's name
    detail: str                   # human-readable statement
    witness: tuple = ()           # the MonitorEvents that prove it

    def __str__(self) -> str:
        where = f"shard {self.group} " if self.group is not None else ""
        return (f"[{self.monitor}] {where}{self.protocol} @ {self.t} ns: "
                f"{self.detail}")


class Monitor:
    """Base class for online safety monitors.

    Subclasses implement any of :meth:`on_mark` (normalized protocol
    events), :meth:`on_span` (finished message spans from the
    ``repro.obs`` stream) and :meth:`on_finish` (end-of-run checks),
    and call :meth:`report` when an invariant breaks.  One instance
    exists per (monitor class, consensus group) pair.
    """

    #: metrics/violation namespace; subclasses override.
    name = "monitor"

    #: Event kinds this monitor's :meth:`on_mark` consumes, or ``None``
    #: for every kind.  The registry dispatches per kind, so an event
    #: only ever reaches monitors that subscribe to it — this is what
    #: keeps the monitors-on overhead low on accept/commit-heavy runs.
    KINDS: Optional[frozenset] = None

    def __init__(self, registry: "MonitorRegistry", ctx: GroupContext):
        self.registry = registry
        self.ctx = ctx
        self.violations: list[Violation] = []

    # ------------------------------------------------------------- callbacks

    def bind_group(self, monitors: list["Monitor"]) -> None:
        """Called once with the group's full monitor list (after every
        instance exists); lets a monitor share state with a sibling."""

    def on_mark(self, ev: MonitorEvent) -> None:
        """One normalized protocol event for this monitor's group."""

    def on_span(self, span: Any) -> None:
        """One finished :class:`~repro.obs.spans.MessageSpan` for this
        monitor's group."""

    def on_finish(self) -> None:
        """End of run (registry ``finish()``): check closing invariants."""

    # ------------------------------------------------------------- reporting

    def report(self, detail: str, witness: tuple = (),
               t: Optional[int] = None) -> Violation:
        v = Violation(t=self.registry.now if t is None else t,
                      group=self.ctx.group, protocol=self.ctx.protocol,
                      monitor=self.name, detail=detail,
                      witness=tuple(witness))
        self.violations.append(v)
        self.registry.violations.append(v)
        return v


class _Group:
    """Per-consensus-group monitor instances, with per-kind dispatch
    lists (built lazily: the kind vocabulary is tiny and fixed)."""

    __slots__ = ("ctx", "monitors", "handlers", "span_handlers")

    def __init__(self, ctx: GroupContext, monitors: list[Monitor]):
        self.ctx = ctx
        self.monitors = monitors
        self.handlers: dict[str, list] = {}
        # Only monitors that *override* on_span get span deliveries; the
        # default set has none, so the per-span path short-circuits.
        self.span_handlers = [m.on_span for m in monitors
                              if type(m).on_span is not Monitor.on_span]
        for m in monitors:
            m.bind_group(monitors)

    def handlers_for(self, kind: str) -> list:
        hs = [m.on_mark for m in self.monitors
              if m.KINDS is None or kind in m.KINDS]
        self.handlers[kind] = hs
        return hs


class MonitorRegistry:
    """Owns the monitor instances and demultiplexes the event stream.

    Attach with ``MonitorRegistry(engine)`` (sets ``engine.monitors``);
    detach by setting ``engine.monitors = None``.  Each consensus group
    registers itself at construction (``BroadcastSystem.__init__``) and
    gets its own instance of every monitor class in ``factories`` —
    sharded deployments therefore monitor each shard independently, for
    free.
    """

    def __init__(self, engine: Any = None,
                 factories: Optional[list[Callable[..., Monitor]]] = None):
        self.engine = engine
        self.factories = list(DEFAULT_MONITORS if factories is None
                              else factories)
        self.groups: dict[Optional[int], _Group] = {}
        self.violations: list[Violation] = []
        self.events_seen = 0
        #: True once any registered monitor overrides ``on_span``; while
        #: False, :meth:`on_span` returns before parsing the label.
        self.spans_wanted = False
        self._finished = False
        if engine is not None:
            engine.monitors = self

    # ---------------------------------------------------------------- wiring

    @property
    def now(self) -> int:
        return self.engine.now if self.engine is not None else 0

    def register_group(self, system: Any) -> GroupContext:
        """Create this group's monitor instances (idempotent per group
        index).  ``system`` is the :class:`~repro.protocols.base.
        BroadcastSystem` under construction; the group handle is cached
        on it so :meth:`note` resolves it with one attribute load."""
        g = self._group(getattr(system, "group", None),
                        type(system).name, system.n)
        system._mon_group = (self, g)
        return g.ctx

    def _group(self, group: Optional[int], protocol: str, n: int) -> _Group:
        g = self.groups.get(group)
        if g is None:
            ctx = GroupContext(group=group, protocol=protocol, n=n)
            g = _Group(ctx, [make(self, ctx) for make in self.factories])
            self.groups[group] = g
            if g.span_handlers:
                self.spans_wanted = True
        return g

    # ------------------------------------------------------------- ingestion

    def note(self, system: Any, kind: str, node: int, *, term: Any = None,
             slot: Any = None, key: Any = None, seq: Any = None,
             extra: Any = None) -> None:
        """Protocol-side emission helper: one normalized event from
        ``system``'s group at the current simulated time.  This is the
        hot path — one call per protocol safety event — so the group is
        resolved through an ``id(system)`` cache and the event object is
        only built when a monitor subscribes to its kind."""
        cached = getattr(system, "_mon_group", None)
        if cached is not None and cached[0] is self:
            g = cached[1]
        else:
            g = self._group(getattr(system, "group", None),
                            type(system).name, getattr(system, "n", 0))
            system._mon_group = (self, g)
        self.events_seen += 1
        handlers = g.handlers.get(kind)
        if handlers is None:
            handlers = g.handlers_for(kind)
        if not handlers:
            return
        # tuple.__new__ skips the namedtuple's Python-level __new__
        # (~2x cheaper; this runs tens of thousands of times per run).
        ev = _tuple_new(MonitorEvent,
                        (self.engine.now, g.ctx.group, g.ctx.protocol,
                         kind, node, term, slot, key, seq, extra))
        if len(handlers) == 1:
            handlers[0](ev)
        else:
            for h in handlers:
                h(ev)

    def ingest(self, group: Optional[int], protocol: str, n: int, kind: str,
               node: int, t: int, *, term: Any = None, slot: Any = None,
               key: Any = None, seq: Any = None, extra: Any = None) -> MonitorEvent:
        """Feed one event (also the fault-seeding entry point used by
        the monitor tests to forge adversarial histories)."""
        ev = MonitorEvent(t=t, group=group, protocol=protocol, kind=kind,
                          node=node, term=term, slot=slot, key=key, seq=seq,
                          extra=extra)
        self.events_seen += 1
        g = self._group(group, protocol, n)
        handlers = g.handlers.get(kind)
        if handlers is None:
            handlers = g.handlers_for(kind)
        for h in handlers:
            h(ev)
        return ev

    def on_span(self, span: Any) -> None:
        """A finished message span (forwarded by
        :meth:`~repro.obs.spans.SpanRecorder.finish`).  Routed to the
        span's group by its ``shard.<g>.`` label prefix.  Free when no
        registered monitor overrides ``on_span`` (the default set)."""
        if not self.spans_wanted:
            return
        group: Optional[int] = None
        label = span.label
        if label.startswith("shard."):
            head = label.split(".", 2)[1]
            if head.isdigit():
                group = int(head)
        g = self.groups.get(group)
        if g is None:
            return
        for h in g.span_handlers:
            h(span)

    # ---------------------------------------------------------------- output

    def finish(self, metrics: Any = None) -> list[Violation]:
        """End-of-run hook: run every monitor's closing checks (once),
        fold ``monitor.<name>.violations`` counters into ``metrics``
        when given, and return all violations observed."""
        if not self._finished:
            self._finished = True
            for g in self.groups.values():
                for m in g.monitors:
                    m.on_finish()
        if metrics is not None:
            counts: dict[str, int] = {make.name: 0 for make in self.factories}
            for v in self.violations:
                counts[v.monitor] = counts.get(v.monitor, 0) + 1
            for name, count in sorted(counts.items()):
                metrics.record(f"monitor.{name}.violations", count)
            metrics.record("monitor.violations", len(self.violations))
            metrics.record("monitor.events", self.events_seen)
        return self.violations

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def check(self) -> None:
        """Raise ``AssertionError`` on any recorded violation."""
        self.finish()
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} safety violation(s):\n{lines}")


# Imported late to avoid a cycle (invariants imports Monitor from here).
from repro.monitors.invariants import (  # noqa: E402
    CommitQuorumAccept,
    LogPrefixAgreement,
    SingleLeaderPerTerm,
    SlotReuseSafety,
    SstMonotonic,
)

#: The monitors every ``--check-invariants`` run evaluates.
DEFAULT_MONITORS: tuple = (SingleLeaderPerTerm, LogPrefixAgreement,
                           CommitQuorumAccept, SlotReuseSafety,
                           SstMonotonic)
