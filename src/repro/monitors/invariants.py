"""The shipped safety monitors.

Each consumes only the normalized event vocabulary documented in
:mod:`repro.monitors.registry`, so one implementation covers all nine
protocol backends; per-event work is a handful of dict operations.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.monitors.registry import Monitor, MonitorEvent


def _same_value(a: Any, b: Any) -> bool:
    """Value-identity equality: payloads travel un-serialized through
    the simulator, so object identity is the fast path; `==` covers
    forged events built from equal-but-distinct objects."""
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


class SingleLeaderPerTerm(Monitor):
    """At most one node ever claims leadership of a given term.

    Acuerdo epoch rounds, Raft terms, Zab epochs, Paxos ballots, Mu and
    DARE terms and Derecho view numbers all map onto ``term``; the
    election safety argument of every one of them reduces to this
    claim-uniqueness property.
    """

    name = "single_leader_per_term"
    KINDS = frozenset({"leader"})

    def __init__(self, registry, ctx):
        super().__init__(registry, ctx)
        self._claims: dict[Any, MonitorEvent] = {}

    def on_mark(self, ev: MonitorEvent) -> None:
        first = self._claims.get(ev.term)
        if first is None:
            self._claims[ev.term] = ev
        elif first.node != ev.node:
            self.report(
                f"two leaders for term {ev.term!r}: node {first.node} "
                f"(claimed at {first.t} ns) and node {ev.node}",
                witness=(first, ev), t=ev.t)


class LogPrefixAgreement(Monitor):
    """Every pair of per-node delivery sequences is prefix-related.

    Online form of the Total Order property (§2.2): position ``i`` of
    the delivery order is fixed by whichever node delivers it first;
    any node later delivering a *different* payload at position ``i``
    is a divergent log.  Rides the central ``deliver`` events emitted
    by ``BroadcastSystem.record_delivery``, so every backend is covered
    with no per-protocol code.
    """

    name = "log_prefix_agreement"
    KINDS = frozenset({"deliver"})

    def __init__(self, registry, ctx):
        super().__init__(registry, ctx)
        #: canonical order: position -> first delivery event (pins the
        #: payload object, keeping its id() stable for the run).
        self._canon: list[MonitorEvent] = []
        self._pos: dict[int, int] = {}

    def on_mark(self, ev: MonitorEvent) -> None:
        i = self._pos.get(ev.node, 0)
        if i < len(self._canon):
            first = self._canon[i]
            # Identity check inlined: payloads travel un-serialized, so
            # matching deliveries are almost always the same object.
            if first.key is not ev.key and not _same_value(first.key, ev.key):
                self.report(
                    f"divergent delivery at position {i}: node {ev.node} "
                    f"delivered {ev.key!r} where node {first.node} "
                    f"delivered {first.key!r}",
                    witness=(first, ev), t=ev.t)
        else:
            self._canon.append(ev)
        self._pos[ev.node] = i + 1


class CommitQuorumAccept(Monitor):
    """A committed slot was accepted by a write quorum first.

    Tracks each node's cumulative accepted frontier (``accept`` /
    ``accept_trunc``) and per-slot accept sets (``accept_one``); every
    ``commit`` of a slot must be covered by at least ``n // 2 + 1``
    acceptors — the majority floor all nine backends rely on (the
    all-replica protocols satisfy it trivially).  For per-slot accepts
    carrying a value identity, only accepts of the *same* value count
    (a quorum of accepts for a different value must not justify the
    commit).
    """

    name = "commit_quorum_accept"
    KINDS = frozenset({"accept", "accept_one", "accept_trunc", "commit"})

    def __init__(self, registry, ctx):
        super().__init__(registry, ctx)
        self._cum: dict[int, Any] = {}               # node -> max slot
        self._cum_ev: dict[int, MonitorEvent] = {}
        self._per: dict[Any, dict[int, MonitorEvent]] = {}  # slot -> accepts
        self._ok: set = set()                        # slots already proven
        self._quorum = ctx.quorum

    def on_mark(self, ev: MonitorEvent) -> None:
        # Branches ordered by event frequency (accept/commit dominate).
        kind = ev.kind
        if kind == "accept":
            cur = self._cum.get(ev.node)
            if cur is None or ev.slot > cur:
                self._cum[ev.node] = ev.slot
                self._cum_ev[ev.node] = ev
        elif kind == "commit":
            if ev.slot in self._ok:
                return
            acceptors, witness = self.quorum_of(ev.slot, ev.key)
            if acceptors < self._quorum:
                self.report(
                    f"slot {ev.slot!r} committed at node {ev.node} with "
                    f"only {acceptors} accept(s), quorum is "
                    f"{self.ctx.quorum}",
                    witness=(ev, *witness), t=ev.t)
            else:
                self._ok.add(ev.slot)
        elif kind == "accept_one":
            self._per.setdefault(ev.slot, {})[ev.node] = ev
        elif kind == "accept_trunc":
            cur = self._cum.get(ev.node)
            if cur is not None and ev.slot < cur:
                self._cum[ev.node] = ev.slot
                self._cum_ev[ev.node] = ev

    def quorum_of(self, slot: Any, key: Any = None) -> tuple[int, list]:
        """(acceptor count, witness events) covering ``slot``."""
        count = 0
        witness: list[MonitorEvent] = []
        for node, frontier in self._cum.items():
            if frontier >= slot:
                count += 1
                witness.append(self._cum_ev[node])
        for aev in self._per.get(slot, {}).values():
            if key is None or aev.key is None or _same_value(aev.key, key):
                count += 1
                witness.append(aev)
        return count, witness


class SlotReuseSafety(Monitor):
    """Broadcast-ring slots are never reused while still live.

    The Acuerdo §4.1 novelty is *accept-based* slot release: a ring
    slot frees as soon as a quorum has accepted its message (Derecho
    releases later, on all-member delivery).  Two hazards are checked
    against the ``slot_bind`` / ``slot_release`` events:

    - **overwrite**: a bind at ring sequence ``s`` while ``s - floor``
      reaches the ring capacity would overwrite an unreleased slot;
    - **early release**: releasing a sequence whose message has not
      been accepted by a quorum yet (the release policy ran ahead of
      the accept frontier — replayed slots could then diverge).

    Accept bookkeeping follows the same rules as
    :class:`CommitQuorumAccept`; when that monitor runs in the same
    group (the default set), this one aliases its frontier/accept maps
    instead of keeping a second copy and unsubscribes from the accept
    events — halving the handler work on the hottest event kind without
    changing what either monitor observes.
    """

    name = "slot_reuse_safety"
    KINDS = frozenset({"accept", "accept_one", "accept_trunc",
                       "slot_bind", "slot_release"})

    def __init__(self, registry, ctx):
        super().__init__(registry, ctx)
        # per ring owner: {"cap": int|None, "floor": int, "bound": {...}}
        self._rings: dict[int, dict] = {}
        self._cum: dict[int, Any] = {}
        self._per: dict[Any, "set[int] | dict"] = {}
        self._quorum = ctx.quorum

    def bind_group(self, monitors) -> None:
        for m in monitors:
            if isinstance(m, CommitQuorumAccept):
                self._cum = m._cum
                self._per = m._per
                self.KINDS = frozenset({"slot_bind", "slot_release"})
                return

    def _ring(self, owner: int) -> dict:
        r = self._rings.get(owner)
        if r is None:
            r = {"cap": None, "floor": 0, "bound": {}}
            self._rings[owner] = r
        return r

    def on_mark(self, ev: MonitorEvent) -> None:
        # Branches ordered by event frequency (accept/bind dominate).
        kind = ev.kind
        if kind == "accept":
            cur = self._cum.get(ev.node)
            if cur is None or ev.slot > cur:
                self._cum[ev.node] = ev.slot
        elif kind == "slot_bind":
            r = self._ring(ev.node)
            if ev.extra is not None:
                r["cap"] = ev.extra
            cap = r["cap"]
            if cap is not None and ev.seq - r["floor"] >= cap:
                live = ev.seq - cap
                prior = r["bound"].get(live)
                self.report(
                    f"ring {ev.node} bound seq {ev.seq} (capacity {cap}) "
                    f"over unreleased seq {live}",
                    witness=tuple(e for e in (prior, ev) if e is not None),
                    t=ev.t)
            r["bound"][ev.seq] = ev
        elif kind == "slot_release":
            r = self._ring(ev.node)
            upto = ev.seq
            # An ``extra="admin"`` release is a membership re-baseline
            # (eviction of a suspected-dead receiver, epoch turnover
            # re-admitting it): the freed tail is recovered by the next
            # epoch's diff, not covered by the accept rule, so the
            # quorum obligation is waived.  Bound slots still pop and
            # the floor still advances — the overwrite check above
            # keeps guarding actual reuse.
            admin = ev.extra == "admin"
            for s in range(r["floor"], upto):
                bev = r["bound"].pop(s, None)
                if bev is None or bev.slot is None or admin:
                    continue   # filler/null send: no safety obligation
                if not self._quorum_accepted(bev.slot):
                    self.report(
                        f"ring {ev.node} released seq {s} (slot "
                        f"{bev.slot!r}) before a quorum of "
                        f"{self.ctx.quorum} accepted it",
                        witness=(bev, ev), t=ev.t)
            if upto > r["floor"]:
                r["floor"] = upto
        elif kind == "accept_one":
            self._per.setdefault(ev.slot, set()).add(ev.node)
        elif kind == "accept_trunc":
            cur = self._cum.get(ev.node)
            if cur is not None and ev.slot < cur:
                self._cum[ev.node] = ev.slot

    def _quorum_accepted(self, slot: Any) -> bool:
        count = sum(1 for frontier in self._cum.values() if frontier >= slot)
        count += len(self._per.get(slot, ()))
        return count >= self._quorum


class SstMonotonic(Monitor):
    """SST rows never go backwards.

    §3.2's "acknowledge only the newest message" argument rests on SST
    rows carrying monotonically increasing values under last-writer-wins
    overwrite + FIFO delivery.  A *replayed* stale row is precisely a
    row going backwards at some holder — the regression this monitor
    catches from ``sst_row`` events (emitted by the SST apply hook the
    Byzantine injector installs while an SST attack is armed; honest
    runs emit none, so this monitor is free outside adversarial
    scenarios).

    Event mapping: ``key`` = SST name, ``seq`` = row owner, ``slot`` =
    new value, ``extra`` = value being overwritten.
    """

    name = "sst_monotonic"
    KINDS = frozenset({"sst_row"})

    def on_mark(self, ev: MonitorEvent) -> None:
        old, new = ev.extra, ev.slot
        if old is None or new is None:
            return
        try:
            regressed = new < old
        except TypeError:
            regressed = False
        if regressed:
            self.report(
                f"SST {ev.key!r} row {ev.seq} at holder {ev.node} went "
                f"backwards: {old!r} -> {new!r}",
                witness=(ev,), t=ev.t)
