"""Closed-loop window client — the Fig. 8 load model.

"The client regulates the system load, ensuring that at most a fixed
number of messages (the window) are outstanding and unacknowledged."
(§4.1.)  At low windows the system shows its floor latency; as the
window grows, throughput rises until the knee where queueing takes over.

Latency is measured client-side: request → transport to the serving
node → commit → transport of the acknowledgment back.  The transport
hops use the system's ``client_hop_ns`` (one-sided-write cost for RDMA
systems, kernel-TCP cost for the others), with small jitter from a
dedicated random stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.protocols.base import BroadcastSystem
from repro.sim.engine import Engine


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop run."""

    window: int
    sent: int
    completed: int
    duration_ns: int
    latencies_ns: list[float]
    message_size: int

    @property
    def mean_latency_us(self) -> float:
        """Mean client-observed latency in microseconds."""
        if not self.latencies_ns:
            return float("nan")
        return sum(self.latencies_ns) / len(self.latencies_ns) / 1_000.0

    def percentile_latency_us(self, p: float) -> float:
        """Nearest-rank latency percentile (``p`` in [0, 100]), in us."""
        if not self.latencies_ns:
            return float("nan")
        s = sorted(self.latencies_ns)
        k = min(len(s) - 1, max(0, int(p / 100.0 * len(s))))
        return s[k] / 1_000.0

    @property
    def throughput_msgs_per_sec(self) -> float:
        """Completed messages per second of simulated time."""
        if self.duration_ns <= 0:
            return 0.0
        return self.completed / (self.duration_ns / 1e9)

    @property
    def throughput_mb_per_sec(self) -> float:
        """Goodput in MB/s of committed payload bytes — the Fig. 8 x-axis."""
        return self.throughput_msgs_per_sec * self.message_size / 1e6


class ClosedLoopClient:
    """Drives one BroadcastSystem with a fixed window of outstanding
    messages and records client-observed latency."""

    def __init__(self, system: BroadcastSystem, window: int, message_size: int,
                 payload_fn: Optional[Callable[[int], Any]] = None,
                 warmup: int = 0):
        self.system = system
        self.engine: Engine = system.engine
        self.window = window
        self.message_size = message_size
        self.payload_fn = payload_fn or (lambda i: ("cl", i))
        self.warmup = warmup
        self._rng = self.engine.rng("client.closedloop")
        self.sent = 0
        self.completed = 0
        self.latencies: list[float] = []
        self._running = False
        self._started_at = 0
        self._stopped_at: Optional[int] = None

    # ------------------------------------------------------------------ run

    def start(self) -> None:
        """Open the window.  The engine must be run by the caller."""
        self._running = True
        self._started_at = self.engine.now
        for _ in range(self.window):
            self._send_next()

    def stop(self) -> None:
        """Close the loop: in-flight messages may still complete but no
        new ones are issued."""
        self._running = False
        self._stopped_at = self.engine.now

    def _hop(self) -> int:
        base = self.system.client_hop_ns
        return base + self._rng.randrange(max(1, base // 8))

    def _send_next(self) -> None:
        if not self._running:
            return
        i = self.sent
        self.sent += 1
        t0 = self.engine.now
        # Request travels client -> serving node.
        self.engine.schedule(self._hop(), self._submit, i, t0)

    def _submit(self, i: int, t0: int, retries: int = 0) -> None:
        ok = self.system.submit(self.payload_fn(i), self.message_size,
                                lambda _x, i=i, t0=t0: self._on_commit(i, t0))
        if not ok:
            # No leader (mid-election): back off and retry, as a real
            # client library would.
            self.engine.schedule(self.system.client_hop_ns * 4,
                                 self._submit, i, t0, retries + 1)

    def _on_commit(self, i: int, t0: int) -> None:
        # Acknowledgment travels back to the client.
        self.engine.schedule(self._hop(), self._acked, i, t0)

    def _acked(self, i: int, t0: int) -> None:
        self.completed += 1
        if self.completed > self.warmup:
            self.latencies.append(self.engine.now - t0)
        self._send_next()

    # ---------------------------------------------------------------- result

    def result(self) -> ClosedLoopResult:
        """Snapshot the run into an immutable result record."""
        end = self._stopped_at if self._stopped_at is not None else self.engine.now
        return ClosedLoopResult(
            window=self.window,
            sent=self.sent,
            completed=self.completed,
            duration_ns=max(1, end - self._started_at),
            latencies_ns=self.latencies,
            message_size=self.message_size,
        )

    def run_for(self, duration_ns: int) -> ClosedLoopResult:
        """Convenience: start, run the engine, stop, return the result."""
        self.start()
        self.engine.run(until=self.engine.now + duration_ns)
        self.stop()
        return self.result()
