"""Open-loop client — the Table 1 load model.

"Our experiment ... sets the leader to propose 10-byte messages in an
open loop" (§4.2): messages are issued at a fixed rate regardless of
acknowledgments, keeping the system busy across leader failures so that
election downtime is visible as a commit gap.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.protocols.base import BroadcastSystem
from repro.sim.engine import Engine


class OpenLoopClient:
    """Issues one message every ``period_ns`` until stopped."""

    def __init__(self, system: BroadcastSystem, period_ns: int, message_size: int,
                 payload_fn: Optional[Callable[[int], Any]] = None):
        self.system = system
        self.engine: Engine = system.engine
        self.period_ns = period_ns
        self.message_size = message_size
        self.payload_fn = payload_fn or (lambda i: ("ol", i))
        self.sent = 0
        self.committed = 0
        self.commit_times: list[int] = []
        self.dropped = 0
        self._running = False

    def start(self) -> None:
        """Begin issuing messages at the fixed rate."""
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop issuing (in-flight messages may still commit)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        i = self.sent
        self.sent += 1
        ok = self.system.submit(self.payload_fn(i), self.message_size,
                                lambda _x: self._on_commit())
        if not ok:
            # Open loop: no retries — the message is simply lost to the
            # election window (what makes downtime measurable).
            self.dropped += 1
        self.engine.schedule(self.period_ns, self._tick)

    def _on_commit(self) -> None:
        self.committed += 1
        self.commit_times.append(self.engine.now)

    def longest_commit_gap(self) -> int:
        """Largest gap between consecutive commits — a downtime proxy."""
        if len(self.commit_times) < 2:
            return 0
        return max(b - a for a, b in zip(self.commit_times, self.commit_times[1:]))
