"""Open-loop client — the Table 1 load model, and the shard-farm
arrival process.

"Our experiment ... sets the leader to propose 10-byte messages in an
open loop" (§4.2): messages are issued at a fixed rate regardless of
acknowledgments, keeping the system busy across leader failures so that
election downtime is visible as a commit gap.

Beyond the paper's fixed-rate mode, the client optionally models an
*aggregate* arrival process: Poisson interarrivals (``arrival=
"poisson"``) superpose the independent request streams of many logical
users into one event per request, and Zipfian/uniform key selection
(``key_dist=``) gives each request a home key for a
:class:`~repro.shard.ShardRouter` to partition on.  Both modes draw
from one named, seeded RNG stream, so runs are deterministic and the
sharded harness and the single-group harnesses share this single
workload implementation.  The defaults (fixed rate, no keys) are
bit-identical to the historical client — they touch no RNG stream at
all.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.protocols.base import BroadcastSystem
from repro.sim.engine import Engine

#: Supported interarrival models.
ARRIVALS = ("fixed", "poisson")

#: Supported key-selection models (None disables keyed payloads).
KEY_DISTS = (None, "uniform", "zipfian")


class OpenLoopClient:
    """Issues one message every ``period_ns`` until stopped.

    Parameters
    ----------
    arrival:
        ``"fixed"`` (default) spaces messages exactly ``period_ns``
        apart; ``"poisson"`` draws exponential interarrivals with mean
        ``period_ns`` — the superposition of many independent users.
    key_dist:
        None (default) keeps the historical ``("ol", i)`` payloads.
        ``"uniform"`` / ``"zipfian"`` draw a key in ``[0, key_space)``
        per message and emit ``("ol", i, key)`` payloads (a custom
        ``payload_fn`` is then called as ``payload_fn(i, key)``).
        Zipfian skew uses the YCSB generator with parameter ``skew``.
    rng_stream:
        Engine RNG stream feeding both draws; distinct clients must use
        distinct stream names to stay decorrelated.
    """

    def __init__(self, system: BroadcastSystem, period_ns: int, message_size: int,
                 payload_fn: Optional[Callable[..., Any]] = None,
                 arrival: str = "fixed", key_dist: Optional[str] = None,
                 key_space: int = 1024, skew: float = 0.99,
                 rng_stream: str = "openloop"):
        if arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival model {arrival!r}; pick from {ARRIVALS}")
        if key_dist not in KEY_DISTS:
            raise ValueError(f"unknown key_dist {key_dist!r}; pick from {KEY_DISTS}")
        self.system = system
        self.engine: Engine = system.engine
        self.period_ns = period_ns
        self.message_size = message_size
        self.payload_fn = payload_fn
        self.arrival = arrival
        self.key_dist = key_dist
        self.key_space = key_space
        self.skew = skew
        # The RNG stream (and the zipfian state derived from it) exists
        # only when a randomised mode asks for it: the default client
        # consumes zero random draws, exactly as before.
        self._rng = (self.engine.rng(rng_stream)
                     if arrival == "poisson" or key_dist is not None else None)
        self._zipf = None
        if key_dist == "zipfian":
            from repro.workloads.ycsb import ZipfianGenerator

            self._zipf = ZipfianGenerator(key_space, skew, self._rng)
        self.sent = 0
        self.committed = 0
        self.commit_times: list[int] = []
        self.latencies_ns: list[int] = []
        self.dropped = 0
        self._running = False

    def start(self) -> None:
        """Begin issuing messages at the configured rate."""
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop issuing (in-flight messages may still commit)."""
        self._running = False

    def _gap(self) -> int:
        if self.arrival == "poisson":
            return max(1, int(self._rng.expovariate(1.0 / self.period_ns)))
        return self.period_ns

    def _next_key(self) -> int:
        if self._zipf is not None:
            return self._zipf.next()
        return self._rng.randrange(self.key_space)

    def _payload(self, i: int) -> Any:
        if self.key_dist is None:
            return self.payload_fn(i) if self.payload_fn is not None else ("ol", i)
        key = self._next_key()
        return (self.payload_fn(i, key) if self.payload_fn is not None
                else ("ol", i, key))

    def _tick(self) -> None:
        if not self._running:
            return
        i = self.sent
        self.sent += 1
        t0 = self.engine.now
        ok = self.system.submit(self._payload(i), self.message_size,
                                lambda _x: self._on_commit(t0))
        if not ok:
            # Open loop: no retries — the message is simply lost to the
            # election window (what makes downtime measurable).
            self.dropped += 1
        self.engine.schedule(self._gap(), self._tick)

    def _on_commit(self, t0: int) -> None:
        self.committed += 1
        self.commit_times.append(self.engine.now)
        self.latencies_ns.append(self.engine.now - t0)

    def longest_commit_gap(self) -> int:
        """Largest gap between consecutive commits — a downtime proxy."""
        if len(self.commit_times) < 2:
            return 0
        return max(b - a for a, b in zip(self.commit_times, self.commit_times[1:]))
