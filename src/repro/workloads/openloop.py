"""Open-loop client — the Table 1 load model, and the shard-farm
arrival process.

"Our experiment ... sets the leader to propose 10-byte messages in an
open loop" (§4.2): messages are issued at a fixed rate regardless of
acknowledgments, keeping the system busy across leader failures so that
election downtime is visible as a commit gap.

Beyond the paper's fixed-rate mode, the client optionally models an
*aggregate* arrival process: Poisson interarrivals (``arrival=
"poisson"``) superpose the independent request streams of many logical
users into one event per request, and Zipfian/uniform key selection
(``key_dist=``) gives each request a home key for a
:class:`~repro.shard.ShardRouter` to partition on.  Both modes draw
from one named, seeded RNG stream, so runs are deterministic and the
sharded harness and the single-group harnesses share this single
workload implementation.  The defaults (fixed rate, no keys) are
bit-identical to the historical client — they touch no RNG stream at
all.

With macro-event fusion on (see :mod:`repro.sim.engine`), the client
batches ``chain_batch`` consecutive arrivals into one dynamic chain:
keys and gaps are pre-drawn at batch start *in the exact per-tick
order* (key_i then gap_i), so the stream — exclusive to this client —
yields the same values, and the chain's dynamic seq allocation matches
the self-rescheduling tick's counter evolution step for step.  The
fingerprint-equivalence property tests pin that a fused run is
bit-identical to ``REPRO_CHAIN=0``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.protocols.base import BroadcastSystem
from repro.sim.engine import Engine

#: Supported interarrival models.
ARRIVALS = ("fixed", "poisson")

#: Supported key-selection models (None disables keyed payloads).
KEY_DISTS = (None, "uniform", "zipfian")


class OpenLoopClient:
    """Issues one message every ``period_ns`` until stopped.

    Parameters
    ----------
    arrival:
        ``"fixed"`` (default) spaces messages exactly ``period_ns``
        apart; ``"poisson"`` draws exponential interarrivals with mean
        ``period_ns`` — the superposition of many independent users.
    key_dist:
        None (default) keeps the historical ``("ol", i)`` payloads.
        ``"uniform"`` / ``"zipfian"`` draw a key in ``[0, key_space)``
        per message and emit ``("ol", i, key)`` payloads (a custom
        ``payload_fn`` is then called as ``payload_fn(i, key)``).
        Zipfian skew uses the YCSB generator with parameter ``skew``.
    rng_stream:
        Engine RNG stream feeding both draws; distinct clients must use
        distinct stream names to stay decorrelated.
    chain_batch:
        Arrivals fused per macro-event when the engine has chaining
        enabled (ignored otherwise, and when a custom ``payload_fn`` is
        supplied — the batch pre-builds payloads, which would move a
        stateful payload_fn's call time).
    """

    def __init__(self, system: BroadcastSystem, period_ns: int, message_size: int,
                 payload_fn: Optional[Callable[..., Any]] = None,
                 arrival: str = "fixed", key_dist: Optional[str] = None,
                 key_space: int = 1024, skew: float = 0.99,
                 rng_stream: str = "openloop", chain_batch: int = 64):
        if arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival model {arrival!r}; pick from {ARRIVALS}")
        if key_dist not in KEY_DISTS:
            raise ValueError(f"unknown key_dist {key_dist!r}; pick from {KEY_DISTS}")
        self.system = system
        self.engine: Engine = system.engine
        self.period_ns = period_ns
        self.message_size = message_size
        self.payload_fn = payload_fn
        self.arrival = arrival
        self.key_dist = key_dist
        self.key_space = key_space
        self.skew = skew
        # The RNG stream (and the zipfian state derived from it) exists
        # only when a randomised mode asks for it: the default client
        # consumes zero random draws, exactly as before.
        self._rng = (self.engine.rng(rng_stream)
                     if arrival == "poisson" or key_dist is not None else None)
        self._zipf = None
        if key_dist == "zipfian":
            from repro.workloads.ycsb import ZipfianGenerator

            self._zipf = ZipfianGenerator(key_space, skew, self._rng)
        self.sent = 0
        self.committed = 0
        self.commit_times: list[int] = []
        self.latencies_ns: list[int] = []
        self.dropped = 0
        self._running = False
        self.chain_batch = chain_batch
        self._batch = None  # handle of the pending arrival chain, if any

    def start(self) -> None:
        """Begin issuing messages at the configured rate."""
        self._running = True
        if self.engine.chain_enabled and self.payload_fn is None and self.chain_batch > 1:
            self._start_batch()
        else:
            self._tick()

    def stop(self) -> None:
        """Stop issuing (in-flight messages may still commit).

        Like the classic tick, the next already-materialised arrival
        still fires as a no-op before the schedule dies — so the fused
        and unfused event counts agree.  A batch pre-draws its keys and
        gaps, so restarting a stopped client mid-batch resumes from a
        further-advanced RNG stream than the unfused client would; no
        harness restarts a client, and the stream is exclusive, so
        nothing else observes the difference."""
        self._running = False

    def _gap(self) -> int:
        if self.arrival == "poisson":
            return max(1, int(self._rng.expovariate(1.0 / self.period_ns)))
        return self.period_ns

    def _next_key(self) -> int:
        if self._zipf is not None:
            return self._zipf.next()
        return self._rng.randrange(self.key_space)

    def _payload(self, i: int) -> Any:
        if self.key_dist is None:
            return self.payload_fn(i) if self.payload_fn is not None else ("ol", i)
        key = self._next_key()
        return (self.payload_fn(i, key) if self.payload_fn is not None
                else ("ol", i, key))

    def _tick(self) -> None:
        if not self._running:
            return
        i = self.sent
        self.sent += 1
        t0 = self.engine.now
        ok = self.system.submit(self._payload(i), self.message_size,
                                lambda _x: self._on_commit(t0))
        if not ok:
            # Open loop: no retries — the message is simply lost to the
            # election window (what makes downtime measurable).
            self.dropped += 1
        self.engine.schedule(self._gap(), self._tick)

    # ------------------------------------------------------ fused arrivals

    # One batch = one heap entry for chain_batch ticks.  Equivalence with
    # the per-tick schedule rests on three alignments, each pinned by the
    # chain-equivalence property tests:
    #   * RNG: the pre-draw loop consumes (key_i, gap_i) pairs in exactly
    #     the order the ticks would — same exclusive stream, same values.
    #   * seqs: schedule_chain(dynamic=True) allocates one tie-break seq
    #     after each step returns, precisely when the tick's
    #     engine.schedule call would have (after submit's own
    #     allocations).
    #   * timestamps: step times are the prefix sums of the pre-drawn
    #     gaps — the very times the ticks would fire at; _exec_chain
    #     advances now to each and yields to any earlier heap entry.

    def _start_batch(self) -> None:
        if not self._running:
            if self._batch is not None:
                self._batch.cancel()
                self._batch = None
            return
        i = self.sent
        self._submit_one(self._payload(i))
        steps = []
        off = self._gap()
        for m in range(1, self.chain_batch):
            payload = self._payload(i + m)
            steps.append((off, self._chain_arrival, (payload,)))
            off += self._gap()
        steps.append((off, self._start_batch, ()))
        self._batch = self.engine.schedule_chain(steps, dynamic=True)

    def _chain_arrival(self, payload: Any) -> None:
        if not self._running:
            # The classic schedule fires exactly one no-op tick after
            # stop(); mirror it, then kill the remaining steps.
            if self._batch is not None:
                self._batch.cancel()
                self._batch = None
            return
        self._submit_one(payload)

    def _submit_one(self, payload: Any) -> None:
        self.sent += 1
        t0 = self.engine.now
        ok = self.system.submit(payload, self.message_size,
                                lambda _x: self._on_commit(t0))
        if not ok:
            self.dropped += 1

    def _on_commit(self, t0: int) -> None:
        self.committed += 1
        self.commit_times.append(self.engine.now)
        self.latencies_ns.append(self.engine.now - t0)

    def longest_commit_gap(self) -> int:
        """Largest gap between consecutive commits — a downtime proxy."""
        if len(self.commit_times) < 2:
            return 0
        return max(b - a for a, b in zip(self.commit_times, self.commit_times[1:]))
