"""Workload generators and clients for the paper's experiments.

- :mod:`repro.workloads.closedloop` — the Fig. 8 load model: a client
  keeps a fixed window of outstanding messages and measures latency and
  throughput at the knee;
- :mod:`repro.workloads.openloop` — the Table 1 load model: messages at
  a fixed rate regardless of acknowledgments;
- :mod:`repro.workloads.ycsb` — the Fig. 9 load model: YCSB-load's
  Zipfian(0.99)-skewed write stream over a keyspace.
"""

from repro.workloads.closedloop import ClosedLoopClient, ClosedLoopResult
from repro.workloads.openloop import OpenLoopClient
from repro.workloads.ycsb import ZipfianGenerator, YcsbLoadWorkload

__all__ = [
    "ClosedLoopClient",
    "ClosedLoopResult",
    "OpenLoopClient",
    "ZipfianGenerator",
    "YcsbLoadWorkload",
]
