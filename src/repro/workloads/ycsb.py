"""YCSB-load workload: Zipfian-skewed writes (Fig. 9).

"We specifically use the YCSB-load test, which continually applies
writes in a .99 skewed zipfian distribution" (§4.3).  The generator
reproduces YCSB's key model: record keys ``user<N>`` drawn from a
Zipfian(θ=0.99) distribution over the keyspace, values of a fixed size,
and a write-only op mix (create/set/delete in proportions that keep the
table populated).
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.hashtable import KvOp


class ZipfianGenerator:
    """Zipfian-distributed integers in ``[0, n)`` — the Gray et al.
    rejection-free method YCSB itself uses.

    theta = 0.99 matches YCSB's default skew: a small set of hot keys
    receives most of the traffic.
    """

    def __init__(self, n: int, theta: float = 0.99, rng=None):
        if n <= 0:
            raise ValueError("n must be positive")
        if not (0 < theta < 1):
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = rng
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self.zeta2 / self.zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        """Draw the next Zipfian-distributed rank in ``[0, n)``."""
        u = self._rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)


#: YCSB core-workload read fractions (update = 1 - read).
YCSB_MIXES = {
    "load": 0.0,   # 100% writes — the paper's Fig. 9 workload
    "a": 0.5,      # update heavy
    "b": 0.95,     # read mostly
    "c": 1.0,      # read only
}


class YcsbMixedWorkload:
    """YCSB core workloads A/B/C: Zipfian key choice, read/update mix.

    Reads return ``("get", key)`` markers; the caller serves them from
    any replica's local copy (§4.3: gets bypass the broadcast).  Updates
    are :class:`KvOp` instances for the broadcast path.
    """

    def __init__(self, engine, mix: str = "b", record_count: int = 10_000,
                 value_size: int = 100, theta: float = 0.99):
        if mix not in YCSB_MIXES:
            raise ValueError(f"unknown mix {mix!r}; pick from {sorted(YCSB_MIXES)}")
        self.mix = mix
        self.read_fraction = YCSB_MIXES[mix]
        self.record_count = record_count
        self.value_size = value_size
        self._rng = engine.rng(f"ycsb.{mix}")
        self.zipf = ZipfianGenerator(record_count, theta, self._rng)

    def key(self, i: int) -> str:
        """Spread the zipfian rank over the keyspace (YCSB's key hash)."""
        return f"user{(i * 2654435761) % self.record_count}"

    def next_op(self):
        """Either a ``("get", key)`` tuple or a write :class:`KvOp`."""
        k = self.key(self.zipf.next())
        if self._rng.random() < self.read_fraction:
            return ("get", k)
        return KvOp("set", k, "x" * self.value_size)


class YcsbLoadWorkload:
    """Generates the YCSB-load op stream for the replicated hash table."""

    def __init__(self, engine, record_count: int = 10_000, value_size: int = 100,
                 theta: float = 0.99, delete_fraction: float = 0.05):
        self.record_count = record_count
        self.value_size = value_size
        self.delete_fraction = delete_fraction
        self._rng = engine.rng("ycsb")
        self.zipf = ZipfianGenerator(record_count, theta, self._rng)
        self._issued = 0

    def key(self, i: int) -> str:
        """Spread the zipfian rank over the keyspace (YCSB's key hash)."""
        return f"user{(i * 2654435761) % self.record_count}"

    def next_op(self) -> KvOp:
        """One write op: mostly set/create, a small delete fraction."""
        self._issued += 1
        k = self.key(self.zipf.next())
        if self._rng.random() < self.delete_fraction:
            return KvOp("delete", k)
        value = "x" * self.value_size
        kind = "create" if self._rng.random() < 0.5 else "set"
        return KvOp(kind, k, value)

    def ops(self, count: int) -> Iterator[KvOp]:
        """Yield ``count`` ops from the stream."""
        for _ in range(count):
            yield self.next_op()
