"""Fig. 8: broadcast latency vs throughput under varying window load.

For each system the driver sweeps the client window over powers of two
(starting at 1, as in §4.1) and reports one ``(throughput, latency)``
point per window; the sweep stops once throughput saturates — the knee.

The entry points consume a :class:`~repro.harness.runspec.RunSpec`
(:func:`point`, :func:`sweep`); the retired keyword signatures
(:func:`fig8_point`, :func:`fig8_sweep`) raise a ``TypeError`` naming
the RunSpec fields that replaced their keywords.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.factory import build_from_spec, settle
from repro.harness.runspec import RunSpec
from repro.sim.engine import ms
from repro.substrate import CostModel
from repro.workloads.closedloop import ClosedLoopClient


@dataclass
class Fig8Point:
    """One point of a Fig. 8 curve."""

    system: str
    n: int
    message_size: int
    window: int
    throughput_mb_s: float
    throughput_msgs_s: float
    mean_latency_us: float
    p99_latency_us: float
    completed: int
    #: transport totals over the run, read from the unified
    #: ``substrate.<backend>.*`` counters (same keys for every system).
    wire_bytes: int = 0
    wire_msgs: int = 0


def point(spec: RunSpec, min_completions: int = 400,
          substrate_params: Optional[CostModel] = None,
          collect: Optional[dict] = None) -> Fig8Point:
    """Measure one Fig. 8 point on a fresh cluster described by ``spec``.

    The run length adapts to the system's speed: it extends in chunks
    until ``min_completions`` messages have been measured or the
    ``spec.duration_ms`` sim-time budget is exhausted (the slow TCP
    systems need far more simulated time per message than the RDMA
    ones)."""
    engine = spec.make_engine()
    system = build_from_spec(spec, engine, substrate_params=substrate_params)
    settle(system)
    if spec.crashes:
        from repro.sim.failure import schedule_crashes

        schedule_crashes(engine, system.processes(), spec.crashes)
    if spec.partitions:
        from repro.sim.failure import schedule_partitions

        schedule_partitions(engine, system.substrate, spec.partitions,
                            processes=system.processes())
    if spec.byz:
        from repro.sim.failure import schedule_byz

        schedule_byz(engine, system, spec.byz)
    client = ClosedLoopClient(system, window=spec.window,
                              message_size=spec.payload_bytes,
                              warmup=min(50, 2 * spec.window))
    client.start()
    chunk = ms(2)
    deadline = engine.now + ms(spec.duration_ms)
    while len(client.latencies) < min_completions and engine.now < deadline:
        engine.run(until=engine.now + chunk)
        chunk = min(chunk * 2, ms(32))
    client.stop()
    res = client.result()
    counters = system.substrate_counters()
    backend = system.substrate.backend if system.substrate else ""
    violations = (engine.monitors.finish()
                  if engine.monitors is not None else [])
    if collect is not None:
        # Host-cost side channel (Fig8Point itself is frozen: it is the
        # behavioral fingerprint recorded in BENCH_host_perf.json).
        collect["events_executed"] = engine.events_executed
        collect["sim_ns"] = engine.now
        collect["violations"] = len(violations)
    return Fig8Point(
        system=spec.system,
        n=spec.n,
        message_size=spec.payload_bytes,
        window=spec.window,
        throughput_mb_s=res.throughput_mb_per_sec,
        throughput_msgs_s=res.throughput_msgs_per_sec,
        mean_latency_us=res.mean_latency_us,
        p99_latency_us=res.percentile_latency_us(99),
        completed=res.completed,
        wire_bytes=counters.get(f"substrate.{backend}.tx_bytes", 0),
        wire_msgs=counters.get(f"substrate.{backend}.tx_msgs", 0),
    )


def fig8_point(*args, **kwargs):
    """Retired keyword entry point; raises with migration guidance."""
    raise TypeError(
        "fig8_point(system_name, n, message_size, window, ...) was "
        "retired: build a RunSpec (system_name -> RunSpec.system, "
        "message_size -> RunSpec.payload_bytes, max_sim_ms -> "
        "RunSpec.duration_ms; n/window/seed keep their names) and call "
        "fig8.point(spec, min_completions=...)")


def sweep(spec: RunSpec, max_window: int = 1024, min_completions: int = 400,
          saturation_gain: float = 1.08, latency_blowup: float = 12.0,
          substrate_params: Optional[CostModel] = None,
          workers: Optional[int] = None) -> list[Fig8Point]:
    """Sweep windows 1, 2, 4, ... until saturation (§4.1's load sweep).

    Stops when doubling the window no longer buys ``saturation_gain``
    in throughput, or when latency exceeds ``latency_blowup`` x the
    floor — the region past the knee carries no information.

    ``workers`` defaults to ``spec.workers``.  With more than one, the
    next ``workers`` windows are evaluated *speculatively* in parallel
    (each point is an independent, deterministic simulation) and the
    sequential stopping rule is then applied to them in window order —
    the returned points are identical to a ``workers=1`` sweep;
    past-the-knee speculation is discarded.
    """
    from repro.harness.parallel import run_points

    nworkers = workers if workers is not None else spec.workers
    points: list[Fig8Point] = []
    floor_latency: Optional[float] = None
    window = 1
    wave_size = max(1, int(nworkers))
    while window <= max_window:
        wave = []
        w = window
        while w <= max_window and len(wave) < wave_size:
            wave.append((spec.replace(window=w), min_completions,
                         substrate_params))
            w *= 2
        window = w
        for p in run_points(point, wave, workers=nworkers):
            points.append(p)
            if floor_latency is None and p.completed > 0:
                floor_latency = p.mean_latency_us
            if len(points) >= 3 and points[-2].throughput_mb_s > 0:
                gain = p.throughput_mb_s / points[-2].throughput_mb_s
                blowup = (floor_latency is not None
                          and p.mean_latency_us > latency_blowup * floor_latency)
                if gain < saturation_gain or blowup:
                    return points
    return points


def fig8_sweep(*args, **kwargs):
    """Retired keyword entry point; raises with migration guidance."""
    raise TypeError(
        "fig8_sweep(system_name, n, message_size, ...) was retired: "
        "build a RunSpec (system_name -> RunSpec.system, message_size "
        "-> RunSpec.payload_bytes, workers -> RunSpec.workers; n/seed "
        "keep their names) and call fig8.sweep(spec, max_window=..., "
        "min_completions=...)")


def knee(points: list[Fig8Point]) -> Fig8Point:
    """The saturation point: maximum throughput over the sweep."""
    return max(points, key=lambda p: p.throughput_mb_s)


def floor(points: list[Fig8Point]) -> Fig8Point:
    """The unloaded-latency point (window = 1)."""
    return min(points, key=lambda p: p.window)
