"""Wall-clock (host-side) performance harness for the simulator.

Simulated time is a pure function of seed and configuration; *wall-clock*
time is how long the host needs to execute that simulation, and is the
quantity every Fig. 8 / Fig. 9 / Table 1 regeneration pays dozens of
times over.  This module pins a **fixed reference workload** — one
mid-size Fig. 8 point per substrate backend, fixed seed — and times it,
so host-side optimizations can be quantified and tracked in a checked-in
``BENCH_host_perf.json`` file.

Two invariants are enforced alongside the timing:

- **behavioral**: the reference points' simulated results (throughput,
  latencies, completions, wire totals) are recorded in the BENCH file
  and re-checked on every run — they are machine-independent, so any
  drift means an optimization changed simulated behaviour, not just
  host speed (the per-protocol golden fingerprint tests guard the same
  property at finer grain);
- **parallel == sequential**: a small Fig. 8 sweep is rendered through
  :func:`repro.harness.parallel.run_points` with ``workers=1`` and
  ``workers=N`` and the artifact text must match byte for byte.

Usage::

    PYTHONPATH=src python -m repro.harness.hostperf --capture-baseline
    PYTHONPATH=src python -m repro.harness.hostperf            # fill "after"
    PYTHONPATH=src python -m repro.harness.hostperf --check    # CI gate

The "before" numbers are only meaningful relative to "after" numbers
measured on the same machine; the behavioral reference values are
meaningful everywhere.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import pathlib
import sys
import time
from dataclasses import asdict
from typing import Any, Optional

from repro.harness.fig8 import point
from repro.harness.runspec import RunSpec

SCHEMA = "repro.host_perf/v1"

DEFAULT_PATH = pathlib.Path("BENCH_host_perf.json")

#: The fixed reference workload: one mid-size Fig. 8 point per backend,
#: named by a :class:`RunSpec` plus its completion target.  Frozen —
#: editing these invalidates every recorded number in the BENCH file
#: (capture a fresh baseline if you must change them).
REFERENCE_POINTS: dict[str, dict[str, Any]] = {
    "rdma": {"spec": RunSpec(system="acuerdo", n=3, payload_bytes=1000,
                             window=32, seed=3, duration_ms=2000.0),
             "min_completions": 3000},
    "tcp": {"spec": RunSpec(system="zookeeper", n=3, payload_bytes=1000,
                            window=32, seed=3, duration_ms=4000.0),
            "min_completions": 2000},
}

#: The sweep-equivalence check workload (kept tiny: it runs the sweep
#: twice).
SWEEP_CHECK_SPEC = RunSpec(system="acuerdo", n=3, payload_bytes=100, seed=5)
SWEEP_CHECK = dict(min_completions=60, max_window=8)

#: The poll-elision showcase: a low-rate Acuerdo deployment where most
#: polls observe nothing, so the doorbell/parking machinery should elide
#: the bulk of the executed events without changing the simulated
#: result.  The commit-push (heartbeat) period is widened to 20 us — a
#: lightly loaded deployment — because the heartbeat cadence is the
#: floor on how long an idle replica can stay parked.
DOORBELL_POINT: dict[str, Any] = {
    "system": "acuerdo",
    "n": 3,
    "seed": 7,
    "payload_bytes": 64,
    "period_ns": 50_000,          # one open-loop message per 50 us
    "duration_ms": 50,
    "commit_push_period_ns": 20_000,
}

#: Parking must buy at least this factor in executed events on the
#: doorbell point (the acceptance bar for the elision machinery).
DOORBELL_MIN_EVENT_REDUCTION = 3.0

#: Executed-event ceilings for the reference points with parking on
#: (machine-independent, like the behavioral fingerprints).  ``--check``
#: fails if a reference run executes more events than this — the
#: bench-smoke guard against poll-elision regressions.  Values are the
#: measured counts plus ~25% headroom.
EVENT_CEILINGS: dict[str, int] = {
    "rdma": 95_000,     # measured 73_901 with parking on
    "tcp": 145_000,     # measured 112_533 with parking on
}

#: The shard-farm reference point: an 8-group Acuerdo farm serving 10^5
#: logical users under Zipfian(0.99) skew at 500k req/s aggregate.
#: Exercises the scale-out path (router, scoped groups, aggregate
#: arrivals) the same way the backend points exercise the substrates.
SHARD_POINT = RunSpec(system="acuerdo", n=3, seed=9, payload_bytes=64,
                      workload="openloop", duration_ms=20.0, shards=8,
                      users=100_000, skew=0.99, arrival_rate=500_000.0)

#: Executed-event ceiling for :data:`SHARD_POINT` (measured 301_200 with
#: parking on and the farm heartbeat, plus ~25% headroom).  Guards the
#: per-group event cost of the farm: a regression here multiplies by the
#: shard count.  Macro-event fusion does not move this number — chains
#: change how events are *stored*, every step still executes and counts.
SHARD_EVENT_CEILING = 375_000

#: Heap-push reduction macro-event fusion must buy on the shard farm
#: (``--check`` gate; machine-independent, like the event ceilings).
#: Most farm pushes are unfusable poll/park singletons, so the whole-farm
#: ratio is modest even though fused fan-outs shrink ~8x; measured
#: 384_485 / 364_708 = 1.054x.
CHAIN_MIN_PUSH_REDUCTION = 1.03

#: Slice workers for the shard-parallel reference measurement: the
#: 8-group farm splits into this many contiguous 2-group slices.
PARALLEL_WORKERS = 4

#: Wall-clock factor the space-parallel farm must buy at
#: :data:`PARALLEL_WORKERS` workers vs the serial engine (``--check``
#: gate).  On hosts with fewer CPUs than workers the gate applies to
#: ``projected_speedup`` — serial seconds over the slowest slice's
#: *inner* seconds from a sequential-slices run — since concurrent
#: slices on a starved host measure queueing, not the parallel design.
FARM_PARALLEL_MIN_SPEEDUP = 3.0

#: Worst acceptable wall-clock ratio (monitors on / monitors off) for
#: the rdma reference point with ``check_invariants`` set.  The
#: monitors subscribe to protocol-emitted safety events (``engine.
#: monitors`` gates every emission site, so "off" costs one attribute
#: load per site); "on" pays event construction plus the incremental
#: invariant checks.  The reference point is a monitor-density worst
#: case — ~37k safety events against ~74k simulator events, about 2 us
#: of dispatch+check per event — and measures ~1.12-1.16x best-of
#: interleaved on this class of host, drifting to ~1.28x under shared-
#: host load.  The bar is a regression tripwire (pre-optimization
#: dispatch measured 1.5x), not a certification of the third decimal,
#: so it clears the observed noise band.  ``--check`` gate.
MONITOR_MAX_OVERHEAD = 1.35


@contextlib.contextmanager
def _gc_paused():
    """Collector off for a timed section.

    The simulations allocate heavily but are acyclic at the rates that
    matter; generational GC pauses are host noise in the wall numbers
    (~9% on the shard farm), so the timed sections measure with the
    collector off and restore it afterwards."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def run_reference_point(backend: str, collect: Optional[dict] = None):
    """Execute the reference workload for one backend; returns Fig8Point."""
    ref = REFERENCE_POINTS[backend]
    return point(ref["spec"], min_completions=ref["min_completions"],
                 collect=collect)


def measure(repeats: int = 3) -> dict[str, dict[str, Any]]:
    """Best-of-``repeats`` wall-clock seconds per backend, plus the
    simulated result (identical across repeats — it is asserted) and the
    executed-event count with its events/wall-second rate.

    ``repeats`` is clamped to >= 3: a single sample confounds host
    scheduling noise with real cost, and best-of needs a population."""
    out: dict[str, dict[str, Any]] = {}
    for backend in sorted(REFERENCE_POINTS):
        best = float("inf")
        point = None
        events = None
        for _ in range(max(3, repeats)):
            collect: dict[str, Any] = {}
            with _gc_paused():
                t0 = time.perf_counter()
                p = run_reference_point(backend, collect)
                best = min(best, time.perf_counter() - t0)
            if point is None:
                point, events = p, collect["events_executed"]
            elif point != p or events != collect["events_executed"]:
                raise AssertionError(
                    f"{backend}: reference point not deterministic across repeats")
        out[backend] = {"seconds": round(best, 4),
                        "events": events,
                        "events_per_wall_s": round(events / best) if best else 0,
                        "point": asdict(point)}
    return out


def _run_doorbell_point() -> tuple[float, int, dict[str, Any]]:
    """One execution of the doorbell workload under the current
    ``REPRO_PARK`` setting: (wall seconds, executed events, behaviour)."""
    from repro.core.cluster import AcuerdoCluster
    from repro.core.config import AcuerdoConfig
    from repro.sim.engine import Engine, ms
    from repro.workloads.openloop import OpenLoopClient

    ref = DOORBELL_POINT
    with _gc_paused():
        t0 = time.perf_counter()
        engine = Engine(seed=ref["seed"])
        cfg = AcuerdoConfig(commit_push_period_ns=ref["commit_push_period_ns"])
        cluster = AcuerdoCluster(engine, ref["n"], config=cfg)
        cluster.preseed_leader(0)
        cluster.start()
        client = OpenLoopClient(cluster, period_ns=ref["period_ns"],
                                message_size=ref["payload_bytes"])
        client.start()
        engine.run(until=engine.now + ms(ref["duration_ms"]))
        client.stop()
        secs = time.perf_counter() - t0
    behaviour = {
        "committed": client.committed,
        "delivered": sorted(cluster.deliveries.counts.items()),
        "fingerprint": repr(engine.trace.fingerprint()),
        "leader": cluster.leader_id(),
        "sim_now_ns": engine.now,
    }
    return secs, engine.events_executed, behaviour


def doorbell_section() -> dict[str, Any]:
    """Run the low-rate doorbell point with parking on and off.

    Returns wall time and executed events for both, the event-reduction
    factor, and whether the simulated results matched (they must: the
    park/wake machinery is defined to be behaviour-preserving)."""
    out: dict[str, Any] = {}
    prior = os.environ.get("REPRO_PARK")
    try:
        for label, flag in (("parked", "1"), ("unparked", "0")):
            os.environ["REPRO_PARK"] = flag
            best = float("inf")
            events = None
            behaviour = None
            for _ in range(2):
                secs, ev, beh = _run_doorbell_point()
                best = min(best, secs)
                if events is None:
                    events, behaviour = ev, beh
                elif events != ev or behaviour != beh:
                    raise AssertionError(
                        "doorbell point not deterministic across repeats")
            out[label] = {"seconds": round(best, 4), "events": events,
                          "point": behaviour}
    finally:
        if prior is None:
            os.environ.pop("REPRO_PARK", None)
        else:
            os.environ["REPRO_PARK"] = prior
    parked, unparked = out["parked"], out["unparked"]
    out["event_reduction"] = round(unparked["events"] / parked["events"], 2) \
        if parked["events"] else float("inf")
    out["wall_speedup"] = round(unparked["seconds"] / parked["seconds"], 3) \
        if parked["seconds"] else float("inf")
    out["identical_point"] = parked["point"] == unparked["point"]
    return out


def shard_section(repeats: int = 3) -> dict[str, Any]:
    """Run :data:`SHARD_POINT` ``repeats`` (>= 3) times: wall time (best
    of), executed events, events/wall-second, and the simulated result.

    The simulated result must be identical across repeats (the farm is
    a pure function of the spec) — a mismatch is raised, not reported.
    """
    from repro.harness.shardsweep import shard_point

    best = float("inf")
    result = None
    for _ in range(max(3, repeats)):
        with _gc_paused():
            t0 = time.perf_counter()
            p = shard_point(SHARD_POINT)
            best = min(best, time.perf_counter() - t0)
        if result is None:
            result = p
        elif result != p:
            raise AssertionError(
                "shard-farm point not deterministic across repeats")
    return {"seconds": round(best, 4),
            "events": result.events_executed,
            "events_per_wall_s": round(result.events_executed / best) if best else 0,
            "point": asdict(result)}


def shard_parallel_section(serial: dict[str, Any],
                           repeats: int = 3) -> dict[str, Any]:
    """Run :data:`SHARD_POINT` space-parallel at :data:`PARALLEL_WORKERS`
    slice workers and compare against the serial farm (``serial`` is
    :func:`shard_section`'s result, reused as the timing baseline).

    Four measurements:

    - one serial run with the per-shard fingerprint side channel (the
      equivalence oracle; untimed),
    - best-of-``repeats`` parallel runs through the real process pool
      (``wall_speedup``),
    - one sequential-slices run (``pool_workers=1``) whose per-slice
      *inner* seconds give ``projected_speedup`` — the honest parallel
      bound on hosts with fewer CPUs than workers, where concurrent
      slices would measure scheduler queueing,
    - one monitored parallel run, which must report zero violations and
      the same fingerprints (monitors are pure observers).

    ``identical_point`` requires bit-identical per-shard fingerprints
    AND an identical :class:`ShardPoint` minus the host-cost fields
    (``events_executed``/``heap_pushes`` sum over worker engines;
    ``workers`` is self-describing by design).
    """
    from repro.harness.shardsweep import shard_point
    from repro.shard.parallel import parallel_shard_point

    spec = SHARD_POINT.replace(workers=PARALLEL_WORKERS)
    serial_collect: dict[str, Any] = {}
    serial_point = shard_point(SHARD_POINT, collect=serial_collect)

    best = float("inf")
    par_point = None
    par_collect: dict[str, Any] = {}
    for _ in range(max(3, repeats)):
        collect: dict[str, Any] = {}
        with _gc_paused():
            t0 = time.perf_counter()
            p = parallel_shard_point(spec, collect=collect)
            best = min(best, time.perf_counter() - t0)
        if par_point is None:
            par_point, par_collect = p, collect
        elif (par_point != p or par_collect["shard_fingerprints"]
                != collect["shard_fingerprints"]):
            raise AssertionError(
                "shard-parallel point not deterministic across repeats")

    # Per-slice inner seconds, best-of-2 per slice: the serial baseline
    # is a best-of too, and the projected-speedup gate is a ratio of the
    # two, so both sides get the same de-noising.
    slice_secs: "list[float]" = []
    for _ in range(2):
        seq_collect: dict[str, Any] = {}
        with _gc_paused():
            parallel_shard_point(spec, collect=seq_collect, pool_workers=1)
        secs = seq_collect["slice_seconds"]
        slice_secs = (secs if not slice_secs
                      else [min(a, b) for a, b in zip(slice_secs, secs)])

    mon_collect: dict[str, Any] = {}
    parallel_shard_point(spec.replace(check_invariants=True),
                         collect=mon_collect)

    host_cost = {"events_executed", "heap_pushes", "workers"}
    serial_beh = {k: v for k, v in asdict(serial_point).items()
                  if k not in host_cost}
    par_beh = {k: v for k, v in asdict(par_point).items()
               if k not in host_cost}
    return {
        "workers": PARALLEL_WORKERS,
        "host_cpus": os.cpu_count() or 1,
        "slices": [list(s) for s in par_collect["slices"]],
        "serial_seconds": serial["seconds"],
        "seconds": round(best, 4),
        "wall_speedup": round(serial["seconds"] / best, 3)
            if best else float("inf"),
        "slice_inner_seconds": [round(s, 4) for s in slice_secs],
        "projected_speedup": round(serial["seconds"] / max(slice_secs), 3)
            if max(slice_secs) else float("inf"),
        "identical_point": (
            par_beh == serial_beh
            and par_collect["shard_fingerprints"]
                == serial_collect["shard_fingerprints"]
            and mon_collect["shard_fingerprints"]
                == serial_collect["shard_fingerprints"]),
        "monitored_violations": len(mon_collect["violations"]),
        "foreign_total": par_collect["foreign"],
        "point": asdict(par_point),
    }


def chain_section(repeats: int = 3) -> dict[str, Any]:
    """Run :data:`SHARD_POINT` with macro-event fusion on and off.

    Fusion is defined to be behaviour-preserving, so the two simulated
    results — with the host-cost ``heap_pushes`` field stripped — must
    be identical, including ``events_executed`` (chains change how
    events are stored, not whether they run).  Reported alongside:
    ``push_reduction`` (heap pushes off/on — machine-independent, the
    quantity :data:`CHAIN_MIN_PUSH_REDUCTION` gates) and
    ``wall_speedup`` (host-dependent)."""
    from repro.harness.shardsweep import shard_point

    out: dict[str, Any] = {}
    prior = os.environ.get("REPRO_CHAIN")
    try:
        for label, flag in (("fused", "1"), ("unfused", "0")):
            os.environ["REPRO_CHAIN"] = flag
            best = float("inf")
            result = None
            for _ in range(max(3, repeats)):
                with _gc_paused():
                    t0 = time.perf_counter()
                    p = shard_point(SHARD_POINT)
                    best = min(best, time.perf_counter() - t0)
                if result is None:
                    result = p
                elif result != p:
                    raise AssertionError(
                        f"shard-farm point ({label}) not deterministic "
                        "across repeats")
            behaviour = asdict(result)
            pushes = behaviour.pop("heap_pushes")
            out[label] = {"seconds": round(best, 4),
                          "heap_pushes": pushes,
                          "point": behaviour}
    finally:
        if prior is None:
            os.environ.pop("REPRO_CHAIN", None)
        else:
            os.environ["REPRO_CHAIN"] = prior
    fused, unfused = out["fused"], out["unfused"]
    out["identical_point"] = fused["point"] == unfused["point"]
    out["push_reduction"] = round(
        unfused["heap_pushes"] / fused["heap_pushes"], 3) \
        if fused["heap_pushes"] else float("inf")
    out["wall_speedup"] = round(unfused["seconds"] / fused["seconds"], 3) \
        if fused["seconds"] else float("inf")
    return out


def monitors_section(repeats: int = 3) -> dict[str, Any]:
    """Run the rdma reference point with the safety monitors off and on.

    The monitors are observers: the simulated :class:`Fig8Point` must be
    identical with ``check_invariants`` on and off (asserted by the
    caller via ``identical_point``), the audited run must report zero
    violations, and the wall-clock overhead must stay under
    :data:`MONITOR_MAX_OVERHEAD`.

    The off/on runs are *interleaved* round by round (off, on, off, on,
    ...) rather than timed as two sequential blocks: the overhead being
    measured (~10%) is the same magnitude as multi-second host-load
    swings on a shared machine, and interleaving exposes both
    configurations to the same load phases so best-of-rounds compares
    like with like."""
    ref = REFERENCE_POINTS["rdma"]
    configs = (("off", False), ("on", True))
    best = {label: float("inf") for label, _ in configs}
    results: dict[str, Any] = {}
    violations: dict[str, int] = {}
    # One extra interleaved round vs the other sections: the gate is a
    # ratio of two best-ofs, so its noise compounds.
    for _ in range(max(4, repeats)):
        for label, checked in configs:
            spec = ref["spec"].replace(check_invariants=checked)
            collect: dict[str, Any] = {}
            with _gc_paused():
                t0 = time.perf_counter()
                p = point(spec, min_completions=ref["min_completions"],
                          collect=collect)
                best[label] = min(best[label], time.perf_counter() - t0)
            if label not in results:
                results[label] = p
                violations[label] = collect.get("violations", 0)
            elif (results[label] != p
                  or violations[label] != collect.get("violations", 0)):
                raise AssertionError(
                    f"monitored reference point ({label}) not deterministic "
                    "across repeats")
    out: dict[str, Any] = {
        label: {"seconds": round(best[label], 4),
                "point": asdict(results[label]),
                "violations": violations[label]}
        for label, _ in configs}
    out["identical_point"] = out["on"]["point"] == out["off"]["point"]
    out["overhead"] = round(out["on"]["seconds"] / out["off"]["seconds"], 3) \
        if out["off"]["seconds"] else float("inf")
    return out


def sweep_equivalence(workers: int = 4) -> dict[str, Any]:
    """Render the same small Fig. 8 sweep with ``workers=1`` and
    ``workers=N``; the artifact text must be identical."""
    from repro.harness.fig8 import sweep
    from repro.harness.render import render_table

    def render(workers: int) -> str:
        pts = sweep(SWEEP_CHECK_SPEC, workers=workers, **SWEEP_CHECK)
        rows = [[p.window, round(p.throughput_mb_s, 3),
                 round(p.mean_latency_us, 1), round(p.p99_latency_us, 1),
                 p.completed, p.wire_bytes] for p in pts]
        return render_table(
            "host-perf sweep equivalence workload",
            ["window", "tput_MB_s", "mean_lat_us", "p99_lat_us",
             "completed", "wire_bytes"], rows)

    seq, par = render(1), render(workers)
    return {"workers": workers, "identical_artifacts": seq == par,
            "artifact_lines": len(seq.splitlines())}


def _speedups(before: dict, after: dict) -> dict[str, float]:
    out = {}
    total_b = total_a = 0.0
    for backend in sorted(REFERENCE_POINTS):
        b, a = before[backend]["seconds"], after[backend]["seconds"]
        total_b += b
        total_a += a
        out[backend] = round(b / a, 3) if a else float("inf")
    out["total"] = round(total_b / total_a, 3) if total_a else float("inf")
    return out


def _reference_drift(recorded: dict, current: dict) -> list[str]:
    """Backends whose simulated reference results changed (machine-
    independent — any entry here is a behavioral regression)."""
    return [b for b in sorted(REFERENCE_POINTS)
            if recorded[b]["point"] != current[b]["point"]]


def write_bench(path: pathlib.Path, repeats: int = 3,
                capture_baseline: bool = False, check: bool = False,
                sweep_workers: int = 4) -> int:
    """Measure and (re)write the BENCH file; returns a process exit code."""
    repeats = max(3, repeats)  # best-of needs a population (see measure)
    existing: Optional[dict] = None
    if path.exists():
        existing = json.loads(path.read_text())
    current = measure(repeats=repeats)

    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "workload": {k: {"spec": v["spec"].to_dict(),
                         "min_completions": v["min_completions"]}
                     for k, v in REFERENCE_POINTS.items()},
        "units": "wall-clock seconds, best of repeats, per reference point",
        "repeats": repeats,
    }
    failures: list[str] = []

    if capture_baseline or existing is None or "before" not in existing:
        doc["before"] = current
        doc["after"] = None
        doc["speedup"] = None
    else:
        doc["before"] = existing["before"]
        doc["after"] = current
        doc["speedup"] = _speedups(existing["before"], current)
        drift = _reference_drift(existing["before"], current)
        if drift:
            failures.append(
                f"reference fingerprints drifted for backends {drift}: "
                "simulated behaviour changed, not just host speed")

    if check:
        for backend in sorted(REFERENCE_POINTS):
            ceiling = EVENT_CEILINGS.get(backend)
            got = current[backend]["events"]
            if ceiling is not None and got > ceiling:
                failures.append(
                    f"{backend}: reference point executed {got} events, "
                    f"over the EVENT_CEILINGS bench-smoke bound {ceiling} "
                    "(poll-elision regression?)")

    db = doorbell_section()
    doc["doorbell"] = db
    if not db["identical_point"]:
        failures.append(
            "doorbell point: parked and unparked runs produced different "
            "simulated results (poll elision changed behaviour)")
    if db["event_reduction"] < DOORBELL_MIN_EVENT_REDUCTION:
        failures.append(
            f"doorbell point: event reduction {db['event_reduction']}x is "
            f"below the {DOORBELL_MIN_EVENT_REDUCTION}x bar")

    farm = shard_section(repeats=repeats)
    doc["shard_farm"] = farm
    if check and farm["events"] > SHARD_EVENT_CEILING:
        failures.append(
            f"shard farm: reference point executed {farm['events']} events, "
            f"over the SHARD_EVENT_CEILING bench-smoke bound "
            f"{SHARD_EVENT_CEILING}")

    par = shard_parallel_section(farm, repeats=repeats)
    doc["shard_farm_parallel"] = par
    if not par["identical_point"]:
        failures.append(
            f"shard-parallel farm: workers={par['workers']} produced "
            "different per-shard fingerprints or a different simulated "
            "point than the serial farm (space-partitioning must be "
            "behaviour-preserving)")
    if par["monitored_violations"]:
        failures.append(
            f"shard-parallel farm: the monitored run reported "
            f"{par['monitored_violations']} safety violation(s)")
    if check:
        if par["host_cpus"] >= par["workers"]:
            speedup, basis = par["wall_speedup"], "wall"
        else:
            speedup, basis = par["projected_speedup"], "projected"
        if speedup < FARM_PARALLEL_MIN_SPEEDUP:
            failures.append(
                f"shard-parallel farm: {basis} speedup {speedup}x at "
                f"workers={par['workers']} is below the "
                f"FARM_PARALLEL_MIN_SPEEDUP bar {FARM_PARALLEL_MIN_SPEEDUP}x")

    chain = chain_section(repeats=repeats)
    doc["chain_fusion"] = chain
    if not chain["identical_point"]:
        failures.append(
            "chain fusion: fused and unfused shard-farm runs produced "
            "different simulated results (macro-event fusion changed "
            "behaviour)")
    if check and chain["push_reduction"] < CHAIN_MIN_PUSH_REDUCTION:
        failures.append(
            f"chain fusion: heap-push reduction {chain['push_reduction']}x "
            f"is below the CHAIN_MIN_PUSH_REDUCTION bar "
            f"{CHAIN_MIN_PUSH_REDUCTION}x")

    mon = monitors_section(repeats=repeats)
    doc["monitors"] = mon
    if not mon["identical_point"]:
        failures.append(
            "monitors: the audited rdma reference run produced a different "
            "simulated result than the unaudited one (the safety monitors "
            "must be pure observers)")
    if mon["on"]["violations"]:
        failures.append(
            f"monitors: the rdma reference run reported "
            f"{mon['on']['violations']} safety violation(s)")
    if check and mon["overhead"] > MONITOR_MAX_OVERHEAD:
        failures.append(
            f"monitors: wall-clock overhead {mon['overhead']}x is over the "
            f"MONITOR_MAX_OVERHEAD bar {MONITOR_MAX_OVERHEAD}x")

    if not capture_baseline:
        eq = sweep_equivalence(workers=sweep_workers)
        doc["sweep_scaling"] = eq
        if not eq["identical_artifacts"]:
            failures.append(
                f"fig8 sweep with workers={sweep_workers} produced a "
                "different artifact than workers=1")

    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    print(f"wrote {path}")
    if doc.get("speedup"):
        print(f"speedup vs baseline: {doc['speedup']}")
    return 1 if (check and failures) else 0


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_PATH)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--capture-baseline", action="store_true",
                    help="record the current tree's timing as 'before'")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero on reference drift or a "
                         "parallel/sequential artifact mismatch")
    ap.add_argument("--sweep-workers", type=int, default=4)
    args = ap.parse_args(argv)
    return write_bench(args.out, repeats=args.repeats,
                       capture_baseline=args.capture_baseline,
                       check=args.check, sweep_workers=args.sweep_workers)


if __name__ == "__main__":
    raise SystemExit(main())
