"""Shard-farm sweeps: aggregate throughput/latency vs shard count × skew.

The single-group harnesses answer "how fast is one group"; this one
answers the deployment question — how does an N-group farm behave as the
shard count grows and the key popularity skews?  Each point builds a
:class:`~repro.shard.ShardedDeployment` of ``spec.shards`` groups,
drives it with the aggregate Poisson/Zipfian arrival process of
``spec.users`` logical users at ``spec.arrival_rate`` requests/second,
and reports farm-wide throughput, commit-latency percentiles and the
hottest shard's load share (the skew's routing signature).

Every point is an independent deterministic simulation, so
:func:`shard_sweep` fans the grid through
:func:`~repro.harness.parallel.run_points` — and the router's stable
key hash guarantees worker processes route identically to a sequential
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import AcuerdoConfig
from repro.harness.runspec import RunSpec
from repro.sim.engine import ms, us

#: Default widened Acuerdo heartbeat for farm runs, in µs.  At the
#: single-group default (2 µs) every idle group burns a commit-push
#: event 500k times per simulated second; at 20 µs idle groups park
#: between arrivals and a 64-group farm stays inside the CI budget.
FARM_HEARTBEAT_US = 20


@dataclass(frozen=True)
class ShardPoint:
    """One point of a shard-farm sweep."""

    system: str
    shards: int
    n: int
    users: int
    skew: float
    arrival_rate: float
    duration_ms: float
    submitted: int
    committed: int
    dropped: int
    throughput_rps: float
    mean_latency_us: float
    p50_latency_us: float
    p99_latency_us: float
    #: Load share of the most-loaded shard (1/shards when uniform;
    #: rises with Zipfian skew — the routing signature of hot keys).
    hottest_share: float
    #: Host-cost proxy: events the engine executed for this point.
    events_executed: int
    #: Heap operations actually paid: with macro-event fusion on, whole
    #: fan-outs and arrival batches ride single entries, so this drops
    #: well below ``events_executed`` (they are equal-ish unfused).
    heap_pushes: int = 0
    #: Safety violations the runtime monitors observed (0 unless the
    #: spec set ``check_invariants``; always 0 on a healthy farm).
    violations: int = 0
    #: Slice workers that produced this point (1 = one serial engine;
    #: k = ``repro.shard.parallel`` ran k group slices) — recorded so
    #: BENCH artifacts are self-describing.
    workers: int = 1


def _percentile(sorted_vals: list[int], pct: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(len(sorted_vals) * pct / 100.0))
    return sorted_vals[idx]


def farm_group_config(spec: RunSpec,
                      heartbeat_us: Optional[int] = None) -> "dict | None":
    """Per-group constructor kwargs for a farm run of ``spec``.

    For Acuerdo groups this widens ``commit_push_period_ns`` to
    ``heartbeat_us`` (default :data:`FARM_HEARTBEAT_US`) so idle groups
    park between arrivals; other systems need no tuning and get None.
    """
    if spec.system != "acuerdo":
        return None
    hb = FARM_HEARTBEAT_US if heartbeat_us is None else heartbeat_us
    return {"config": AcuerdoConfig(commit_push_period_ns=us(hb))}


def shard_point(spec: RunSpec, heartbeat_us: Optional[int] = None,
                collect: Optional[dict] = None) -> ShardPoint:
    """Measure one shard-farm point described by ``spec``.

    ``spec.shards`` groups of ``spec.n`` nodes are settled, then the
    aggregate client issues requests for ``spec.duration_ms`` of
    simulated time; commits still in flight at the deadline drain for
    one extra millisecond.  Module-level and argument-picklable, so
    :func:`~repro.harness.parallel.run_points` can fan it out.

    With ``spec.workers > 1`` the farm's groups are sliced across that
    many worker processes by :func:`repro.shard.parallel.
    parallel_shard_point` — per-shard results are bit-identical either
    way (only the host-cost fields differ); ``collect`` is that path's
    side channel and, when given here, is filled for the serial path
    too (``shard_fingerprints``, ``violations``).
    """
    from repro.shard import ShardedDeployment, aggregate_client
    from repro.sim.failure import check_group_schedules

    if spec.users < 1 or spec.arrival_rate <= 0:
        raise ValueError("shard_point needs spec.users >= 1 and "
                         f"spec.arrival_rate > 0, got users={spec.users}, "
                         f"arrival_rate={spec.arrival_rate}")
    check_group_schedules(spec.shards, spec.crashes, spec.partitions,
                          spec.byz)
    if spec.workers > 1 and spec.shards > 1:
        from repro.shard.parallel import parallel_shard_point

        return parallel_shard_point(spec, heartbeat_us, collect=collect)
    engine = spec.make_engine()
    dep = ShardedDeployment(engine, system=spec.system, shards=spec.shards,
                            n=spec.n,
                            group_config=farm_group_config(spec, heartbeat_us))
    dep.settle()
    if spec.crashes:
        from repro.sim.failure import schedule_crashes

        schedule_crashes(engine, dep.processes(), spec.crashes)
    if spec.partitions:
        from repro.shard.deployment import schedule_farm_partitions

        schedule_farm_partitions(dep, spec.partitions)
    if spec.byz:
        # check_group_schedules restricted byz to single-group farms.
        from repro.sim.failure import schedule_byz

        schedule_byz(engine, dep.groups[0], spec.byz)
    client = aggregate_client(dep, users=spec.users,
                              rate_rps=spec.arrival_rate, skew=spec.skew,
                              message_size=spec.payload_bytes)
    t_start = engine.now
    client.start()
    engine.run(until=t_start + ms(spec.duration_ms))
    client.stop()
    engine.run(until=t_start + ms(spec.duration_ms) + ms(1))
    elapsed_s = (engine.now - t_start) / 1e9
    lats = sorted(dep.all_latencies_ns())
    total_sub = dep.total_submitted()
    vio_list = (engine.monitors.finish()
                if engine.monitors is not None else [])
    violations = len(vio_list)
    if collect is not None:
        collect["shard_fingerprints"] = dep.shard_fingerprints(vio_list)
        collect["violations"] = [str(v) for v in vio_list]
        collect["foreign"] = dep.foreign
    return ShardPoint(
        system=spec.system,
        shards=spec.shards,
        n=spec.n,
        users=spec.users,
        skew=spec.skew,
        arrival_rate=spec.arrival_rate,
        duration_ms=spec.duration_ms,
        submitted=total_sub,
        committed=dep.total_committed(),
        dropped=sum(dep.dropped),
        throughput_rps=dep.total_committed() / elapsed_s if elapsed_s > 0 else 0.0,
        mean_latency_us=(sum(lats) / len(lats)) / 1e3 if lats else 0.0,
        p50_latency_us=_percentile(lats, 50) / 1e3,
        p99_latency_us=_percentile(lats, 99) / 1e3,
        hottest_share=max(dep.submitted) / total_sub if total_sub else 0.0,
        events_executed=engine.events_executed,
        heap_pushes=engine.heap_pushes,
        violations=violations,
    )


def shard_sweep(spec: RunSpec, shard_counts: Iterable[int],
                skews: Iterable[float],
                workers: Optional[int] = None,
                heartbeat_us: Optional[int] = None) -> list[ShardPoint]:
    """The shard-count × skew grid, in row-major (shards, skew) order.

    Points fan across :func:`~repro.harness.parallel.run_points`
    workers; results come back in grid order regardless of worker
    count (each point is a pure function of its spec).
    ``heartbeat_us`` (and ``spec.workers``, the per-point slice width)
    thread through to *every* point.  When points slice themselves
    across processes (``spec.workers > 1``) the sweep fan-out defaults
    to sequential so the two pools don't multiply: pass ``workers=``
    explicitly to stack them anyway.
    """
    from repro.harness.parallel import run_points

    grid = [(spec.replace(shards=s, skew=k), heartbeat_us)
            for s in shard_counts for k in skews]
    if workers is not None:
        nworkers = workers
    else:
        nworkers = 1 if spec.workers > 1 else spec.workers
    return run_points(shard_point, grid, workers=nworkers)
