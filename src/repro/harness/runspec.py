"""RunSpec: the one description of a simulation run.

Historically every figure driver grew its own keyword pile
(``system_name, n, message_size, window, seed, ...``), and the CLI,
benchmarks and hostperf each re-spelled it.  :class:`RunSpec` collapses
them: one frozen dataclass names the run — which system, over which
backend, under what workload, for how long, from which seed — and every
harness entry point (:mod:`~repro.harness.fig8`,
:mod:`~repro.harness.fig9`, :mod:`~repro.harness.table1`,
:mod:`~repro.harness.hostperf`, ``repro`` CLI, ``repro trace``)
consumes it.  The old keyword signatures are retired: calling one
raises a ``TypeError`` that names the ``RunSpec`` field replacing each
keyword.

Frozen + hashable + picklable: a spec can key a result cache, travel
through the :mod:`~repro.harness.parallel` process pool, and be
serialised into ``BENCH_host_perf.json`` verbatim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Optional

#: Workload models a spec can name.
WORKLOADS = ("closedloop", "openloop", "ycsb")


@dataclass(frozen=True)
class RunSpec:
    """Complete description of one simulation run.

    ``backend`` is normally derived from the system
    (:data:`~repro.harness.factory.SUBSTRATE_OF`); passing it explicitly
    is a consistency assertion, not a override — naming the wrong
    backend for a system raises at construction.
    """

    system: str = "acuerdo"
    backend: Optional[str] = None
    n: int = 3
    payload_bytes: int = 64
    window: int = 8
    workload: str = "closedloop"
    duration_ms: float = 400.0
    seed: int = 1
    workers: int = 1
    capture_spans: bool = False
    # Sharded-deployment extension (repro.shard); the defaults describe
    # a plain single-group run, so existing call sites are untouched.
    shards: int = 1
    users: int = 0
    skew: float = 0.0
    arrival_rate: float = 0.0
    # Runtime-safety extension (repro.monitors): evaluate the online
    # safety monitors during the run and surface violations in the
    # metrics / CLI exit code.
    check_invariants: bool = False
    #: Crash schedule: ``"node@ms"`` / ``"group:node@ms"`` entries
    #: (see :func:`repro.sim.failure.parse_crash`), applied relative to
    #: workload start by the drivers that support failure injection.
    crashes: "tuple[str, ...]" = ()
    #: Partition schedule: ``"GROUPS@MS"`` / ``"GROUPS@MS-MS"`` entries
    #: (see :func:`repro.sim.failure.parse_partition`), applied against
    #: the deployment's substrate relative to workload start.
    partitions: "tuple[str, ...]" = ()
    #: Byzantine attack schedule: ``"MODE:ADDR@MS"`` entries (see
    #: :func:`repro.sim.byzantine.parse_byz`), applied relative to
    #: workload start.  Empty means no injector is attached at all, so
    #: the run stays bit-identical to the golden fingerprints.
    byz: "tuple[str, ...]" = ()

    def __post_init__(self) -> None:
        from repro.harness.factory import EXTENSION_SYSTEMS, SUBSTRATE_OF, SYSTEMS

        if self.system not in SYSTEMS + EXTENSION_SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; pick from "
                             f"{SYSTEMS + EXTENSION_SYSTEMS}")
        derived = SUBSTRATE_OF[self.system]
        if self.backend is not None and self.backend != derived:
            raise ValueError(f"system {self.system!r} runs over {derived!r}, "
                             f"not {self.backend!r}")
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}; pick from "
                             f"{WORKLOADS}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.payload_bytes < 1:
            raise ValueError(f"payload_bytes must be >= 1, got {self.payload_bytes}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.duration_ms <= 0:
            raise ValueError(f"duration_ms must be > 0, got {self.duration_ms}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.users < 0:
            raise ValueError(f"users must be >= 0, got {self.users}")
        if not 0.0 <= self.skew < 1.0:
            raise ValueError(f"skew must be in [0, 1), got {self.skew}")
        if self.arrival_rate < 0:
            raise ValueError(f"arrival_rate must be >= 0, got {self.arrival_rate}")
        # Normalise (lists arrive from from_dict / CLI argparse) and
        # validate eagerly so a bad entry fails at spec construction,
        # not mid-run.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "byz", tuple(self.byz))
        from repro.sim.failure import parse_byz, parse_crash, parse_partition

        for entry in self.crashes:
            parse_crash(entry)
        for entry in self.partitions:
            parse_partition(entry)
        for entry in self.byz:
            parse_byz(entry)

    # -------------------------------------------------------------- derived

    @property
    def resolved_backend(self) -> str:
        """The substrate backend this run deploys over."""
        if self.backend is not None:
            return self.backend
        from repro.harness.factory import SUBSTRATE_OF

        return SUBSTRATE_OF[self.system]

    def replace(self, **changes: Any) -> "RunSpec":
        """A copy with the named fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------- builders

    def make_engine(self) -> Any:
        """A fresh :class:`~repro.sim.engine.Engine` for this run, with a
        :class:`~repro.obs.spans.SpanRecorder` attached as ``engine.obs``
        when ``capture_spans`` is set and a
        :class:`~repro.monitors.MonitorRegistry` attached as
        ``engine.monitors`` when ``check_invariants`` is set."""
        from repro.sim.engine import Engine

        engine = Engine(seed=self.seed)
        if self.capture_spans:
            from repro.obs.spans import SpanRecorder

            SpanRecorder(engine)
        if self.check_invariants:
            from repro.monitors import MonitorRegistry

            MonitorRegistry(engine)
        return engine

    # ---------------------------------------------------------------- (de)ser

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-serialisable form (used by hostperf's BENCH doc)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        return cls(**dict(data))
