"""Experiment harness: build systems, drive workloads, render results.

One module per paper artifact:

- :mod:`repro.harness.fig8` — broadcast latency/throughput sweeps;
- :mod:`repro.harness.table1` — election duration vs replica count;
- :mod:`repro.harness.fig9` — YCSB-load over the replicated hash table;
- :mod:`repro.harness.ablations` — the design-decision ablations from
  DESIGN.md §4 (wire efficiency, slow-node tolerance, slot-release
  policy, election mechanisms).

Cross-cutting plumbing:

- :mod:`repro.harness.runspec` — the :class:`RunSpec` every canonical
  entry point (and the ``repro`` CLI) consumes;
- :mod:`repro.harness.parallel` — the process-pool sweep runner every
  driver fans its independent points through;
- :mod:`repro.harness.hostperf` — wall-clock timing of a fixed
  reference workload (``BENCH_host_perf.json``);
- :mod:`repro.harness.shardsweep` — shard-farm sweeps over the
  :mod:`repro.shard` scale-out deployment (shard count × key skew).

The benchmarks in ``benchmarks/`` are thin wrappers over these drivers.
"""

from repro.harness.factory import SYSTEMS, build_from_spec, build_system, settle
from repro.harness.fig8 import fig8_sweep, fig8_point, Fig8Point
from repro.harness.parallel import default_workers, run_points
from repro.harness.runspec import WORKLOADS, RunSpec
from repro.harness.table1 import table1_elections, table1_all
from repro.harness.fig9 import fig9_grid, fig9_ycsb
from repro.harness.render import render_table, render_series
from repro.harness.shardsweep import ShardPoint, shard_point, shard_sweep

__all__ = [
    "SYSTEMS",
    "WORKLOADS",
    "RunSpec",
    "build_from_spec",
    "build_system",
    "settle",
    "fig8_sweep",
    "fig8_point",
    "Fig8Point",
    "run_points",
    "default_workers",
    "table1_elections",
    "table1_all",
    "fig9_grid",
    "fig9_ycsb",
    "render_table",
    "render_series",
    "ShardPoint",
    "shard_point",
    "shard_sweep",
]
