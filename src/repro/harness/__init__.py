"""Experiment harness: build systems, drive workloads, render results.

One module per paper artifact:

- :mod:`repro.harness.fig8` — broadcast latency/throughput sweeps;
- :mod:`repro.harness.table1` — election duration vs replica count;
- :mod:`repro.harness.fig9` — YCSB-load over the replicated hash table;
- :mod:`repro.harness.ablations` — the design-decision ablations from
  DESIGN.md §4 (wire efficiency, slow-node tolerance, slot-release
  policy, election mechanisms).

The benchmarks in ``benchmarks/`` are thin wrappers over these drivers.
"""

from repro.harness.factory import SYSTEMS, build_system, settle
from repro.harness.fig8 import fig8_sweep, fig8_point, Fig8Point
from repro.harness.table1 import table1_elections
from repro.harness.fig9 import fig9_ycsb
from repro.harness.render import render_table, render_series

__all__ = [
    "SYSTEMS",
    "build_system",
    "settle",
    "fig8_sweep",
    "fig8_point",
    "Fig8Point",
    "table1_elections",
    "fig9_ycsb",
    "render_table",
    "render_series",
]
