"""Experiment harness: build systems, drive workloads, render results.

One module per paper artifact:

- :mod:`repro.harness.fig8` — broadcast latency/throughput sweeps;
- :mod:`repro.harness.table1` — election duration vs replica count;
- :mod:`repro.harness.fig9` — YCSB-load over the replicated hash table;
- :mod:`repro.harness.ablations` — the design-decision ablations from
  DESIGN.md §4 (wire efficiency, slow-node tolerance, slot-release
  policy, election mechanisms).

Cross-cutting plumbing:

- :mod:`repro.harness.runspec` — the :class:`RunSpec` every entry point
  (and the ``repro`` CLI) consumes;
- :mod:`repro.harness.parallel` — the process-pool sweep runner every
  driver fans its independent points through;
- :mod:`repro.harness.hostperf` — wall-clock timing of a fixed
  reference workload (``BENCH_host_perf.json``);
- :mod:`repro.harness.shardsweep` — shard-farm sweeps over the
  :mod:`repro.shard` scale-out deployment (shard count × key skew).

The benchmarks in ``benchmarks/`` are thin wrappers over these drivers.

Every entry point consumes a :class:`RunSpec`.  The historical keyword
entry points (``build_system``, ``fig8_point``, ``fig8_sweep``,
``fig9_point``, ``table1_elections``) are retired: they remain
importable, but calling one raises a ``TypeError`` that names the
RunSpec field replacing each keyword.
"""

from repro.harness.factory import SYSTEMS, build_from_spec, build_system, settle
from repro.harness.fig8 import Fig8Point, fig8_point, fig8_sweep
from repro.harness.fig9 import fig9_grid, fig9_point, fig9_ycsb
from repro.harness.parallel import default_workers, run_points
from repro.harness.render import render_series, render_table
from repro.harness.runspec import WORKLOADS, RunSpec
from repro.harness.shardsweep import ShardPoint, shard_point, shard_sweep
from repro.harness.table1 import table1_all, table1_elections

__all__ = [
    "SYSTEMS",
    "WORKLOADS",
    "RunSpec",
    "build_from_spec",
    "settle",
    "Fig8Point",
    "run_points",
    "default_workers",
    "table1_all",
    "fig9_grid",
    "fig9_ycsb",
    "render_table",
    "render_series",
    "ShardPoint",
    "shard_point",
    "shard_sweep",
]
