"""Per-message latency and wire-cost breakdowns (where do the 10 µs go?).

Two views, both reading uniform surfaces so every system is comparable:

- :class:`LatencyAnatomy` instruments one Acuerdo cluster to timestamp
  each stage of a message's life — client submit, leader broadcast,
  follower acceptance, quorum commit, client acknowledgment;
- :func:`substrate_breakdown` renders any system's transport totals and
  per-message charges from the unified ``substrate.<backend>.*``
  counters and :meth:`~repro.substrate.cost.CostModel.cost_table`, so
  the wire-efficiency and CPU-cost comparisons read the same keys for
  RDMA and TCP deployments alike.

Used by the ``latency_anatomy`` example and the calibration tests to
keep the cost model honest about *where* time is spent, not just the
total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cluster import AcuerdoCluster
from repro.core.node import AcuerdoNode
from repro.core.types import MsgHdr
from repro.protocols.base import BroadcastSystem
from repro.sim.engine import Engine


@dataclass
class Stages:
    """Timestamps (ns) of one message's milestones."""

    submitted: int = 0
    broadcast: Optional[int] = None        # left the leader's ring
    first_accept: Optional[int] = None     # earliest follower acceptance
    quorum_accept: Optional[int] = None    # acceptance reaching quorum
    committed: Optional[int] = None        # leader commit
    acked: Optional[int] = None            # client callback

    def rows(self) -> list[tuple[str, float]]:
        """(stage, elapsed µs since submit) rows, in order."""
        out = []
        for name in ("broadcast", "first_accept", "quorum_accept",
                     "committed", "acked"):
            v = getattr(self, name)
            if v is not None:
                out.append((name, (v - self.submitted) / 1000.0))
        return out


class LatencyAnatomy:
    """Instruments an AcuerdoCluster and records per-message stages.

    Works by wrapping node methods — no protocol changes, so the
    measured path is exactly the production one (the wrappers add zero
    simulated time).
    """

    def __init__(self, cluster: AcuerdoCluster):
        self.cluster = cluster
        self.engine: Engine = cluster.engine
        self.stages: dict[int, Stages] = {}
        self._hdr_to_probe: dict[MsgHdr, int] = {}
        self._install()

    def _install(self) -> None:
        anatomy = self

        for node in self.cluster.nodes.values():
            orig_accept = node._accept
            orig_deliver = node._deliver

            def accept(msg, node=node, orig=orig_accept):
                out = orig(msg)
                probe = anatomy._hdr_to_probe.get(msg.hdr)
                if probe is not None:
                    st = anatomy.stages[probe]
                    now = anatomy.engine.now
                    if node.node_id != msg.hdr.e.leader:
                        if st.first_accept is None:
                            st.first_accept = now
                        elif st.quorum_accept is None:
                            st.quorum_accept = now
                return out

            def deliver(m, node=node, orig=orig_deliver):
                probe = anatomy._hdr_to_probe.get(m.hdr)
                if probe is not None and node.node_id == m.hdr.e.leader:
                    st = anatomy.stages[probe]
                    if st.committed is None:
                        st.committed = anatomy.engine.now
                orig(m)

            node._accept = accept
            node._deliver = deliver

    def probe(self, probe_id: int, payload, size: int = 10) -> None:
        """Submit one instrumented message."""
        st = Stages(submitted=self.engine.now)
        self.stages[probe_id] = st
        ldr = self.cluster.leader_id()
        node: AcuerdoNode = self.cluster.nodes[ldr]

        def on_commit(hdr):
            st.acked = self.engine.now

        # The leader assigns counts sequentially, so the header of this
        # message is predictable at submit time.
        hdr = MsgHdr(node.E_new, node.Count + len(node.pending_client) + 1)
        node.client_broadcast(payload, size, on_commit)
        self._hdr_to_probe[hdr] = probe_id

        # Record broadcast time: next time Count reaches our header.
        def watch():
            if node.Count >= hdr.cnt and st.broadcast is None:
                st.broadcast = self.engine.now
                return
            self.engine.schedule(100, watch)

        self.engine.schedule(0, watch)

    def render(self) -> str:
        """Average stage-elapsed table across all probes."""
        from repro.harness.render import render_table

        names = ("broadcast", "first_accept", "quorum_accept", "committed", "acked")
        sums: dict[str, list[float]] = {n: [] for n in names}
        for st in self.stages.values():
            for name, el in st.rows():
                sums[name].append(el)
        rows = [[n, round(sum(v) / len(v), 2) if v else float("nan"), len(v)]
                for n, v in sums.items()]
        return render_table("Acuerdo latency anatomy (us since client submit)",
                            ["stage", "mean_us", "samples"], rows)


def substrate_counters(system: BroadcastSystem,
                       publish: bool = False) -> dict[str, int]:
    """The system's transport totals under the unified namespace.

    With ``publish=True`` the snapshot is also folded into the engine's
    tracer, so post-run analyses find ``substrate.<backend>.*`` next to
    the protocol counters.
    """
    if system.substrate is None:
        return {}
    if publish:
        return system.substrate.publish_counters()
    return system.substrate.counters()


def substrate_breakdown(system: BroadcastSystem) -> str:
    """Render any system's wire totals and per-message cost charges.

    Reads only the substrate interface — identical keys and rows for
    every backend, which is what makes cross-system wire-efficiency
    tables possible without per-protocol plumbing.
    """
    from repro.harness.render import render_table

    sub = system.substrate
    if sub is None:
        raise ValueError(f"{system.name}: no substrate attached")
    rows = [[k, v] for k, v in sorted(sub.counters().items())]
    rows += [[f"cost.{k}", v] for k, v in sub.params.cost_table().items()]
    return render_table(
        f"{system.name} substrate breakdown ({sub.backend})",
        ["counter", "value"], rows)
