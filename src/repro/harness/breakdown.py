"""Per-message latency and wire-cost breakdowns (where do the 10 µs go?).

Two views, both reading uniform surfaces so every system is comparable:

- :class:`LatencyAnatomy` derives each probe message's stage milestones
  — client submit, leader broadcast, follower acceptance, quorum
  commit, client acknowledgment — from the span recorder
  (:mod:`repro.obs`), the same always-on instrumentation ``repro
  trace`` exports, so the anatomy and the Chrome trace can never
  disagree about where time went;
- :func:`substrate_breakdown` renders any system's transport totals and
  per-message charges from the unified ``substrate.<backend>.*``
  counters and :meth:`~repro.substrate.cost.CostModel.cost_table`, so
  the wire-efficiency and CPU-cost comparisons read the same keys for
  RDMA and TCP deployments alike.

Used by the ``latency_anatomy`` example and the calibration tests to
keep the cost model honest about *where* time is spent, not just the
total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.spans import MessageSpan, SpanRecorder
from repro.protocols.base import BroadcastSystem
from repro.sim.engine import Engine

_PROBE_PREFIX = "probe."


@dataclass
class Stages:
    """Timestamps (ns) of one message's milestones."""

    submitted: int = 0
    broadcast: Optional[int] = None        # left the leader's ring
    first_accept: Optional[int] = None     # earliest follower acceptance
    quorum_accept: Optional[int] = None    # acceptance reaching quorum
    committed: Optional[int] = None        # leader commit
    acked: Optional[int] = None            # client callback

    def rows(self) -> list[tuple[str, float]]:
        """(stage, elapsed µs since submit) rows, in order."""
        out = []
        for name in ("broadcast", "first_accept", "quorum_accept",
                     "committed", "acked"):
            v = getattr(self, name)
            if v is not None:
                out.append((name, (v - self.submitted) / 1000.0))
        return out


class _ProbeRecorder(SpanRecorder):
    """A :class:`SpanRecorder` that also keeps the *raw* milestone list
    of every finished span.

    The segment tree retains only the earliest mark per phase
    (critical-path semantics); the anatomy additionally wants the
    *second* follower acceptance (quorum for n=3), so it needs every
    accept mark, not just the first.
    """

    def __init__(self, engine: Any = None, tracer: Any = None):
        super().__init__(engine, tracer)
        self.raw_marks: dict[str, list[tuple[int, str]]] = {}

    def finish(self, payload: Any, t: int) -> Optional[MessageSpan]:
        rec = self._open.get(id(payload))
        if rec is not None:
            self.raw_marks[rec.label] = list(rec.marks)
        return super().finish(payload, t)


class LatencyAnatomy:
    """Per-message stage milestones for an AcuerdoCluster, from spans.

    Probes travel the exact production path: the milestones come from
    the same ``engine.obs``-gated hooks every system carries (see
    :mod:`repro.obs.spans`), which record host-side only — attaching
    the recorder adds zero simulated time, so an instrumented run's
    timeline is bit-identical to a plain one.
    """

    def __init__(self, cluster: Any):
        self.cluster = cluster
        self.engine: Engine = cluster.engine
        self._stages: dict[int, Stages] = {}
        recorder = getattr(self.engine, "obs", None)
        if recorder is None:
            recorder = _ProbeRecorder(self.engine)
        self.recorder: SpanRecorder = recorder
        self._collected = 0

    @property
    def stages(self) -> dict[int, Stages]:
        """Probe id → :class:`Stages`, refreshed from finished spans."""
        self._collect()
        return self._stages

    def probe(self, probe_id: int, payload, size: int = 10) -> None:
        """Submit one instrumented message through the cluster."""
        st = Stages(submitted=self.engine.now)
        self._stages[probe_id] = st
        # Open the span under a recognisable label before submit();
        # the cluster's own obs_begin is then an idempotent re-begin.
        self.recorder.begin(payload, self.engine.now,
                            label=f"{_PROBE_PREFIX}{probe_id}")

        def on_commit(hdr):
            st.acked = self.engine.now

        if not self.cluster.submit(payload, size, on_commit):
            self.recorder.discard(payload)

    # ------------------------------------------------------------ collection

    def _collect(self) -> None:
        messages = self.recorder.messages
        raw = getattr(self.recorder, "raw_marks", {})
        for span in messages[self._collected:]:
            if not span.label.startswith(_PROBE_PREFIX):
                continue
            try:
                pid = int(span.label[len(_PROBE_PREFIX):])
            except ValueError:
                continue
            st = self._stages.get(pid)
            if st is None:
                continue
            marks = raw.get(span.label)
            if marks is not None:
                self._fill_from_marks(st, marks)
            else:
                self._fill_from_span(st, span)
        self._collected = len(messages)

    @staticmethod
    def _fill_from_marks(st: Stages, marks: list[tuple[int, str]]) -> None:
        proposes = sorted(t for t, p in marks if p == "propose")
        accepts = sorted(t for t, p in marks if p == "accept")
        commits = sorted(t for t, p in marks if p == "commit")
        if proposes:
            st.broadcast = proposes[0]
        if accepts:
            st.first_accept = accepts[0]
            if len(accepts) > 1:
                st.quorum_accept = accepts[1]
        if commits:
            st.committed = commits[0]

    @staticmethod
    def _fill_from_span(st: Stages, span: MessageSpan) -> None:
        # A foreign recorder (no raw marks) still yields the earliest
        # milestone per phase: each segment *ends* at its phase's mark.
        for phase, field in (("propose", "broadcast"),
                             ("accept", "first_accept"),
                             ("quorum", "quorum_accept"),
                             ("commit", "committed")):
            bounds = span.phase_bounds(phase)
            if bounds is not None:
                setattr(st, field, bounds[1])

    # --------------------------------------------------------------- render

    def render(self) -> str:
        """Average stage-elapsed table across all probes."""
        from repro.harness.render import render_table

        names = ("broadcast", "first_accept", "quorum_accept", "committed", "acked")
        sums: dict[str, list[float]] = {n: [] for n in names}
        for st in self.stages.values():
            for name, el in st.rows():
                sums[name].append(el)
        rows = [[n, round(sum(v) / len(v), 2) if v else float("nan"), len(v)]
                for n, v in sums.items()]
        return render_table("Acuerdo latency anatomy (us since client submit)",
                            ["stage", "mean_us", "samples"], rows)


def substrate_counters(system: BroadcastSystem,
                       publish: bool = False) -> dict[str, int]:
    """The system's transport totals under the unified namespace.

    With ``publish=True`` the snapshot is also folded into the engine's
    tracer, so post-run analyses find ``substrate.<backend>.*`` next to
    the protocol counters.
    """
    if system.substrate is None:
        return {}
    if publish:
        return system.substrate.publish_counters()
    return system.substrate.counters()


def substrate_breakdown(system: BroadcastSystem) -> str:
    """Render any system's wire totals and per-message cost charges.

    Reads only the substrate interface — identical keys and rows for
    every backend, which is what makes cross-system wire-efficiency
    tables possible without per-protocol plumbing.
    """
    from repro.harness.render import render_table

    sub = system.substrate
    if sub is None:
        raise ValueError(f"{system.name}: no substrate attached")
    rows = [[k, v] for k, v in sorted(sub.counters().items())]
    rows += [[f"cost.{k}", v] for k, v in sub.params.cost_table().items()]
    return render_table(
        f"{system.name} substrate breakdown ({sub.backend})",
        ["counter", "value"], rows)
