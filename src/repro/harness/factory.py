"""Build any of the evaluated systems from a RunSpec.

:func:`build_from_spec` is the factory entry point; the retired
keyword form (``build_system(name, engine, n, ...)``) raises a
``TypeError`` pointing at the RunSpec fields that replaced it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cluster import AcuerdoCluster
from repro.protocols.apus import ApusCluster
from repro.protocols.base import BroadcastSystem
from repro.protocols.derecho import DerechoCluster, DerechoConfig
from repro.protocols.paxos import PaxosCluster
from repro.protocols.raft import RaftCluster
from repro.protocols.zab import ZabCluster
from repro.sim.engine import Engine, ms
from repro.substrate import CostModel

#: All systems of §4, by benchmark name.
SYSTEMS = [
    "acuerdo",
    "derecho-leader",
    "derecho-all",
    "apus",
    "libpaxos",
    "zookeeper",
    "etcd",
]

#: The §5 systems the paper discusses but does not (or could not)
#: benchmark, plus the Byzantine-tolerant reliable-broadcast baselines
#: the adversary harness compares against; built the same way, used by
#: the extension benches.
EXTENSION_SYSTEMS = ["dare", "mu", "dolev", "bracha"]

#: Which substrate backend each system deploys over (the x-axis of the
#: paper's substrate-shape comparison).
SUBSTRATE_OF = {
    "acuerdo": "rdma",
    "derecho-leader": "rdma",
    "derecho-all": "rdma",
    "apus": "rdma",
    "dare": "rdma",
    "mu": "rdma",
    "libpaxos": "tcp",
    "zookeeper": "tcp",
    "etcd": "tcp",
    "dolev": "tcp",
    "bracha": "tcp",
}

#: Cluster-constructor kwarg that carries the cost model, per backend.
_PARAMS_KWARG = {"rdma": "rdma_params", "tcp": "tcp_params"}

#: How long (sim time) each system needs to elect/settle from cold.
SETTLE_MS = {
    "acuerdo": 1,
    "derecho-leader": 1,
    "derecho-all": 1,
    "apus": 1,
    "libpaxos": 1,
    "zookeeper": 8,
    "etcd": 15,
    "dolev": 1,
    "bracha": 1,
}


def build_system(*args, **kwargs):
    """Retired keyword entry point; raises with migration guidance."""
    raise TypeError(
        "build_system(name, engine, n, ...) was retired: build a "
        "RunSpec(system=<name>, n=<n>, ...) and call "
        "build_from_spec(spec, engine, ...) — the name maps to "
        "RunSpec.system and the replica count to RunSpec.n")


def _build_named(name: str, engine: Engine, n: int,
                 record_deliveries: bool = False,
                 substrate_params: Optional[CostModel] = None,
                 **kwargs) -> BroadcastSystem:
    """Instantiate (but do not start) the named system.

    ``substrate_params`` overrides the transport cost model through the
    uniform substrate surface, whatever backend the system deploys over
    (it is routed to the backend-specific constructor kwarg); per-system
    ablations can still pass ``rdma_params=`` / ``tcp_params=`` directly.
    """
    if substrate_params is not None:
        backend = SUBSTRATE_OF.get(name)
        if backend is None:
            raise ValueError(f"unknown system {name!r}; pick from "
                             f"{SYSTEMS + EXTENSION_SYSTEMS}")
        kwargs.setdefault(_PARAMS_KWARG[backend], substrate_params)
    if name == "acuerdo":
        return AcuerdoCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "derecho-leader":
        cfg = kwargs.pop("config", DerechoConfig(mode="leader"))
        return DerechoCluster(engine, n, config=cfg,
                              record_deliveries=record_deliveries, **kwargs)
    if name == "derecho-all":
        cfg = kwargs.pop("config", DerechoConfig(mode="all"))
        return DerechoCluster(engine, n, config=cfg,
                              record_deliveries=record_deliveries, **kwargs)
    if name == "apus":
        return ApusCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "libpaxos":
        return PaxosCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "zookeeper":
        return ZabCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "etcd":
        return RaftCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "dare":
        from repro.protocols.dare import DareCluster

        return DareCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "mu":
        from repro.protocols.mu import MuCluster

        return MuCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "dolev":
        from repro.protocols.dolev import DolevCluster

        return DolevCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    if name == "bracha":
        from repro.protocols.bracha import BrachaCluster

        return BrachaCluster(engine, n, record_deliveries=record_deliveries, **kwargs)
    raise ValueError(
        f"unknown system {name!r}; pick from {SYSTEMS + EXTENSION_SYSTEMS}")


def build_from_spec(spec, engine: Optional[Engine] = None,
                    record_deliveries: bool = False,
                    substrate_params: Optional[CostModel] = None,
                    **kwargs) -> BroadcastSystem:
    """Instantiate the system a :class:`~repro.harness.runspec.RunSpec`
    names — the one factory entry point.  Without an explicit
    ``engine``, a fresh one is built from the spec (seeded, span
    recorder attached if ``capture_spans``, monitor registry if
    ``check_invariants``)."""
    if engine is None:
        engine = spec.make_engine()
    return _build_named(spec.system, engine, spec.n,
                        record_deliveries=record_deliveries,
                        substrate_params=substrate_params, **kwargs)


def settle(system: BroadcastSystem, preseed: bool = True,
           timeout_ms: Optional[int] = None) -> None:
    """Start the system and wait until it is serving.

    Acuerdo can be preseeded into steady state (benchmark fast-path);
    every other system runs its real start-up protocol.
    """
    if preseed and isinstance(system, AcuerdoCluster):
        system.preseed_leader(0)
        system.start()
        return
    system.start()
    budget = timeout_ms if timeout_ms is not None else SETTLE_MS.get(system.name, 10)
    deadline = system.engine.now + ms(budget * 4)
    while system.leader_id() is None and system.engine.now < deadline:
        system.engine.run(until=system.engine.now + ms(1))
    if system.leader_id() is None:
        raise RuntimeError(f"{system.name}: no leader after settle window")
