"""Table 1: Acuerdo election duration as a function of replica count.

Method, following §4.2 precisely: the leader proposes 10-byte messages
in an open loop; "we then repeatedly cause the leader to sleep five
seconds after winning its election" — here a long deschedule, scaled to
simulation time.  Each election is timed at the *winner*, from the
moment it detects the old leader as down until it can begin sending
(election protocol + diff transfer, excluding detection time) — exactly
the window the node records into ``acuerdo.election_duration_ns``.

The paper found durations "far more sensitive to the proportion of
long-latency nodes than to the overall number of replicas"; larger
CloudLab allocations inevitably contained more long-latency machines.
We reproduce that environment: a growing number of replicas are marked
long-latency (slow *response* cadence — large, jittered poll intervals —
with full processing capacity, so they batch-catch-up like real
descheduled machines).  Elections that can form a quorum from fast
nodes stay sub-millisecond; elections that need a long-latency voter
wait on its response cadence, which is where the growth and the
7-to-9-node plateau come from.

The entry point consumes a :class:`~repro.harness.runspec.RunSpec`
(:func:`elections`, an open-loop run whose ``duration_ms`` spans
``kills`` kill periods); the retired keyword signature
(:func:`table1_elections`) raises a ``TypeError`` naming the RunSpec
fields that replaced it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cluster import AcuerdoCluster
from repro.harness.runspec import RunSpec
from repro.sim.engine import ms, us
from repro.workloads.openloop import OpenLoopClient

#: Long-latency replicas per cluster size.  Chosen so that once the
#: current leader is asleep, a quorum cannot be formed from fast nodes
#: alone at n >= 5 — the paper's account of why Table 1 grows with n and
#: plateaus from 7 to 9.
DEFAULT_SLOW_NODES = {3: 0, 5: 2, 7: 3, 9: 4}

#: Response cadence of a long-latency node (poll interval + jitter).
SLOW_POLL_NS = us(800)

#: How long a deposed leader stays descheduled (the paper's 5 s sleep,
#: scaled to simulation time).
SLEEP_NS = ms(25)


def elections(spec: RunSpec, kills: int = 6,
              slow_nodes: Optional[int] = None) -> list[float]:
    """Run the §4.2 experiment described by ``spec``.

    ``spec.duration_ms`` spans the whole kill schedule: each of the
    ``kills`` leader sleeps is preceded by one ``duration_ms / kills``
    run period.  Returns measured election durations in milliseconds
    (one per successful fail-over election).
    """
    kill_period_ms = spec.duration_ms / kills
    engine = spec.make_engine()
    cluster = AcuerdoCluster(engine, spec.n, record_deliveries=False)
    cluster.start()
    engine.run(until=ms(1))

    n_slow = (slow_nodes if slow_nodes is not None
              else DEFAULT_SLOW_NODES.get(spec.n, spec.n // 3))
    # The long-latency machines are the highest-id replicas; elections
    # do not know that and must wait whenever a quorum needs one.
    for node_id in sorted(cluster.node_ids, reverse=True)[:n_slow]:
        node = cluster.nodes[node_id]
        node.config.poll_interval_ns = SLOW_POLL_NS
        node.config.poll_jitter_ns = SLOW_POLL_NS

    client = OpenLoopClient(cluster, period_ns=us(5),
                            message_size=spec.payload_bytes)
    client.start()

    slept = 0
    while slept < kills:
        engine.run(until=engine.now + ms(kill_period_ms))
        ldr = cluster.leader_id()
        if ldr is None:
            continue
        # The paper's trigger: the winning leader goes to sleep.
        cluster.nodes[ldr].deschedule(SLEEP_NS)
        slept += 1
    engine.run(until=engine.now + ms(2 * kill_period_ms))
    client.stop()

    if engine.monitors is not None:
        # Election churn is exactly what the safety monitors exist to
        # audit; a check_invariants spec makes the run self-verifying.
        engine.monitors.check()
    durations_ns = engine.trace.series("acuerdo.election_duration_ns")
    return [d / 1e6 for d in durations_ns]


def table1_elections(*args, **kwargs):
    """Retired keyword entry point; raises with migration guidance."""
    raise TypeError(
        "table1_elections(n, seed, kills, kill_period_ms, ...) was "
        "retired: build a RunSpec (system='acuerdo', payload_bytes=10, "
        "workload='openloop', duration_ms=kills * kill_period_ms; "
        "n/seed keep their names) and call table1.elections(spec, "
        "kills=..., slow_nodes=...)")


def election_spec(n: int, seed: int = 1, kills: int = 6,
                  kill_period_ms: float = 8.0) -> RunSpec:
    """The RunSpec for one §4.2 election run: an open-loop 10-byte
    stream spanning ``kills`` kill periods."""
    return RunSpec(system="acuerdo", n=n, payload_bytes=10,
                   workload="openloop", duration_ms=kills * kill_period_ms,
                   seed=seed)


def table1_all(sizes=(3, 5, 7, 9), seed: int = 1,
               kills_per_size: int = 6, workers: int = 1) -> dict[int, float]:
    """Average election duration (ms) per replica count — the table row.

    Each replica count is an independent simulation; ``workers`` fans
    them across processes without changing any measured duration."""
    from repro.harness.parallel import run_points

    runs = run_points(elections,
                      [(election_spec(n, seed=seed, kills=kills_per_size),
                        kills_per_size) for n in sizes],
                      workers=workers)
    return {n: (sum(d) / len(d) if d else float("nan"))
            for n, d in zip(sizes, runs)}
