"""Fig. 9: YCSB-load throughput (ops/sec) vs node count.

Method, following §4.3: a replicated hash table sits at every replica;
update commands are replicated through the broadcast system and applied
(and acknowledged) on commit; the client applies YCSB-load's
Zipfian(0.99) write stream through a closed-loop window sized well past
each system's knee so the number reported is saturated throughput.

The paper compares the Acuerdo-backed table against ZooKeeper and etcd
(both effectively in-memory-equivalent deployments of the same state).

The entry point consumes a :class:`~repro.harness.runspec.RunSpec`
(:func:`point`); the retired keyword signature (:func:`fig9_point`)
raises a ``TypeError`` naming the RunSpec fields that replaced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.hashtable import ReplicatedHashTable
from repro.harness.factory import build_from_spec, settle
from repro.harness.runspec import RunSpec
from repro.sim.engine import ms
from repro.substrate import CostModel
from repro.workloads.closedloop import ClosedLoopClient
from repro.workloads.ycsb import YcsbLoadWorkload

#: The Fig. 9 systems.
FIG9_SYSTEMS = ["acuerdo", "zookeeper", "etcd"]


@dataclass
class Fig9Point:
    system: str
    n: int
    ops_per_sec: float
    completed: int


#: Per-op KV request processing at the serving replica (parse the RDMA
#: request, apply to the hash table, post the reply write) — FaRM-style
#: services spend a few microseconds here, which is what separates the
#: ~10^5 ops/s KV service from the ~10^6 raw broadcast engine.
KV_SERVICE_CPU_NS = 3_500


def point(spec: RunSpec, min_completions: int = 500,
          record_count: int = 2_000,
          substrate_params: Optional[CostModel] = None) -> Fig9Point:
    """Measure saturated YCSB-load ops/sec for ``spec``.

    ``spec.payload_bytes`` is the wire size of one update op: 8 bytes of
    key plus the YCSB value (so the value size is ``payload_bytes - 8``).
    """
    engine = spec.make_engine()
    kwargs = {}
    if spec.system == "acuerdo":
        from repro.core.config import AcuerdoConfig

        cfg = AcuerdoConfig()
        cfg.broadcast_cpu_ns += KV_SERVICE_CPU_NS
        kwargs["config"] = cfg
    system = build_from_spec(spec, engine,
                             substrate_params=substrate_params, **kwargs)
    settle(system)
    table = ReplicatedHashTable(system)
    value_size = max(1, spec.payload_bytes - 8)
    workload = YcsbLoadWorkload(engine, record_count=record_count,
                                value_size=value_size)
    ops = [workload.next_op() for _ in range(4096)]

    client = ClosedLoopClient(system, window=spec.window,
                              message_size=8 + value_size,
                              payload_fn=lambda i: ops[i % len(ops)],
                              warmup=min(100, 2 * spec.window))
    client.start()
    chunk = ms(4)
    deadline = engine.now + ms(spec.duration_ms)
    while len(client.latencies) < min_completions and engine.now < deadline:
        engine.run(until=engine.now + chunk)
        chunk = min(chunk * 2, ms(64))
    client.stop()
    res = client.result()
    return Fig9Point(system=spec.system, n=spec.n,
                     ops_per_sec=res.throughput_msgs_per_sec,
                     completed=res.completed)


def fig9_point(*args, **kwargs):
    """Retired keyword entry point; raises with migration guidance."""
    raise TypeError(
        "fig9_point(system_name, n, ...) was retired: build a RunSpec "
        "(system_name -> RunSpec.system, 8 + value_size -> "
        "RunSpec.payload_bytes, max_sim_ms -> RunSpec.duration_ms, "
        "workload='ycsb'; n/window/seed keep their names) and call "
        "fig9.point(spec, min_completions=..., record_count=...)")


def grid_spec(system: str, n: int, seed: int = 1, window: int = 96,
              value_size: int = 100) -> RunSpec:
    """The RunSpec for one Fig. 9 grid cell (YCSB update stream whose
    wire size is 8 key bytes + the value)."""
    return RunSpec(system=system, n=n, payload_bytes=8 + value_size,
                   window=window, workload="ycsb", duration_ms=2_000.0,
                   seed=seed)


def fig9_grid(sizes=(3, 5, 7, 9), systems=FIG9_SYSTEMS, seed: int = 1,
              workers: int = 1, min_completions: int = 500) -> list[Fig9Point]:
    """Evaluate every (system, n) cell — independent simulations, fanned
    across ``workers`` processes — in deterministic grid order."""
    from repro.harness.parallel import run_points

    cells = [(grid_spec(name, n, seed=seed), min_completions)
             for name in systems for n in sizes]
    return run_points(point, cells, workers=workers)


def fig9_ycsb(sizes=(3, 5, 7, 9), systems=FIG9_SYSTEMS, seed: int = 1,
              workers: int = 1,
              min_completions: int = 500) -> dict[str, dict[int, float]]:
    """The full Fig. 9 grid: ``{system: {n: ops/sec}}``."""
    pts = fig9_grid(sizes, systems, seed=seed, workers=workers,
                    min_completions=min_completions)
    out: dict[str, dict[int, float]] = {name: {} for name in systems}
    for p in pts:
        out[p.system][p.n] = p.ops_per_sec
    return out
