"""Process-pool sweep runner for independent simulation points.

Every paper artifact is a sweep of *independent, deterministic*
simulations: each (system, n, size, window) point builds its own
:class:`~repro.sim.engine.Engine` from a fixed seed and shares no state
with any other point.  That makes the sweeps embarrassingly parallel —
the same shape as the evaluation matrices in *The Impact of RDMA on
Agreement* and *Velos* — and this module is the one place that fans
them across cores.

Guarantees of :func:`run_points`:

- **deterministic collection** — results come back in submission order,
  whatever order workers finish in, so a parallel sweep is
  point-for-point identical to the sequential one (each point is a pure
  function of its arguments);
- **sequential fallback** — ``workers=1`` (or an unavailable process
  pool: sandboxed CI, restricted containers) runs the same loop in
  process, no behavioural difference;
- **failure transparency** — a crashing point re-raises its original
  exception at the call site instead of hanging the sweep (remaining
  futures are cancelled).

Functions handed to :func:`run_points` must be module-level (picklable);
each point is a tuple of positional arguments.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Sequence

#: Environment knob for the benchmark drivers: number of sweep workers
#: (unset / "0" / "1" means sequential).
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker count for sweeps: ``$REPRO_WORKERS`` if set, else the
    machine's core count (capped — sweeps rarely have >8 ready points)."""
    env = os.environ.get(WORKERS_ENV)
    if env:
        return max(1, int(env))
    return min(os.cpu_count() or 1, 8)


def _run_sequential(fn: Callable[..., Any], points: Sequence[tuple]) -> list[Any]:
    return [fn(*p) for p in points]


def run_points(fn: Callable[..., Any], points: Iterable[tuple],
               workers: int | None = None) -> list[Any]:
    """Evaluate ``fn(*point)`` for every point, fanning across processes.

    Results are returned in submission order.  ``workers=None`` resolves
    through :func:`default_workers`; ``workers=1`` (or a single point)
    stays in process.  When the host cannot fork a pool at all (sandbox,
    missing ``/dev/shm``), the sweep silently degrades to sequential —
    same results, just slower.

    A point that raises propagates its original exception; in the pool
    case the executor is shut down first so no worker is left running.
    """
    pts = [p if isinstance(p, tuple) else (p,) for p in points]
    n_workers = default_workers() if workers is None else max(1, int(workers))
    if n_workers <= 1 or len(pts) <= 1:
        return _run_sequential(fn, pts)

    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
        executor = ProcessPoolExecutor(max_workers=min(n_workers, len(pts)))
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return _run_sequential(fn, pts)

    try:
        futures = [executor.submit(fn, *p) for p in pts]
        # Submission order, not completion order: determinism.
        results = [f.result() for f in futures]
    except (BrokenProcessPool, OSError, PermissionError):
        # The pool never came up (or died under us) for environmental
        # reasons; the points themselves are pure, so rerunning
        # sequentially is safe and identical.
        executor.shutdown(wait=False, cancel_futures=True)
        return _run_sequential(fn, pts)
    except BaseException:
        # A point crashed: surface its original exception without
        # waiting out the rest of the sweep.
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    executor.shutdown()
    return results
