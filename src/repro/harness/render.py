"""Plain-text rendering of benchmark results (tables and series).

The benchmarks print the same rows/series the paper's tables and figures
report, so a run of ``pytest benchmarks/ --benchmark-only -s`` doubles
as the reproduction log recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(v: Any) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    if isinstance(v, int) and abs(v) >= 1000:
        return f"{v:,d}"
    return str(v)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width table with a title rule."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [title, "=" * len(title)]
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in srows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, series: dict[str, list[tuple[float, float]]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render named (x, y) series as aligned columns — one block per
    series, the text twin of one figure panel."""
    lines = [title, "=" * len(title)]
    for name in sorted(series):
        lines.append(f"-- {name} ({x_label} -> {y_label})")
        for x, y in series[name]:
            lines.append(f"   {_fmt(x):>12}  {_fmt(y):>12}")
    return "\n".join(lines)
