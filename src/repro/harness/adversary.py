"""Adversarial scenario suite: every attack against every backend.

The suite closes the loop the ISSUE describes: the Byzantine injector
(:mod:`repro.sim.byzantine`) supplies the *attacks*, the runtime safety
monitors (:mod:`repro.monitors`) supply the *oracle*, and this harness
runs the cross product and classifies each cell:

``detected``
    the attack produced observable traffic and a monitor reported at
    least one violation — the system's safety argument does not cover
    this behaviour, but the oracle catches it;
``neutralized``
    every attack attempt was stopped by a protection domain before
    reaching the wire (the RDMA argument: a non-owner cannot forge a
    remote SST row it was never granted);
``absorbed``
    forged traffic reached victims and the system stayed clean — the
    protocol's own quorum structure defeated it (the Dolev/Bracha
    claim);
``n/a``
    the attack's target surface does not exist on this system (no SST
    to replay into, no ring slots to corrupt, no data on the hooked
    send path).

``acuerdo-unprotected`` is the ablation row: the same Acuerdo
deployment with per-row SST write protection switched off, isolating
how much of Acuerdo's resilience is the substrate's and how much is the
protocol's.

Entry points: :func:`run_attack` (one cell), :func:`attack_matrix` (the
full product), and the ``repro adversary`` CLI subcommand.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.harness.factory import settle
from repro.monitors import MonitorRegistry
from repro.sim.byzantine import BYZ_MODES, ByzantineInjector
from repro.sim.engine import Engine, ms, us

#: The systems the adversary matrix sweeps: the flagship (protected and
#: unprotected), the three TCP baselines with distinct quorum
#: structures, and the two Byzantine-tolerant reliable broadcasts.
ADVERSARY_SYSTEMS = ("acuerdo", "acuerdo-unprotected", "zookeeper",
                     "etcd", "libpaxos", "dolev", "bracha")

#: Backends where the attacker role is positional (sequencer/source)
#: rather than elected.
_SEQUENCED = ("dolev", "bracha")


@dataclass(frozen=True)
class AttackOutcome:
    """One classified cell of the attack × system matrix."""

    system: str
    mode: str
    attacker: int
    outcome: str                  # detected | neutralized | absorbed | n/a | no-effect
    attempts: int
    landed: int
    blocked: int
    violations: int
    by_monitor: "tuple[tuple[str, int], ...]" = ()
    witness: str = ""             # first violation's detail, if any
    completed: int = 0            # client commits observed during the run

    def to_dict(self) -> dict[str, Any]:
        d = dataclasses.asdict(self)
        d["by_monitor"] = dict(self.by_monitor)
        return d


def _build(system_name: str, engine: Engine, n: int):
    """Build one adversary-matrix system (resolving the ablation row)."""
    from repro.harness.factory import _build_named

    if system_name == "acuerdo-unprotected":
        system = _build_named("acuerdo", engine, n, record_deliveries=True)
        for sst in (system.accept_sst, system.vote_sst, system.commit_sst):
            sst.protected = False
        return system
    return _build_named(system_name, engine, n, record_deliveries=True)


def _pick_attacker(system_name: str, system: Any, mode: str, n: int) -> int:
    """The deterministic attacker for each cell.

    Sequenced backends: the sequencer/source is the only node whose
    sends carry data (equivocate/tamper/duplicate); vector inflation is
    a *relayer* attack, so a follower mounts it.  Leader-based
    backends: forging leadership, replaying SST state or inflating the
    leader's accept vector is a *follower* attack by construction,
    while payload forgery needs the node that sends the payloads — the
    leader.
    """
    if system_name in _SEQUENCED:
        return 0 if mode in ("equivocate", "tamper", "duplicate") else 1
    ldr = system.leader_id() or 0
    if mode in ("equivocate", "replay_sst", "inflate"):
        return (ldr + 1) % n
    return ldr


def classify(byz: ByzantineInjector, mode: str, violations: int) -> str:
    attempts = byz.attempts[mode]
    landed = byz.landed[mode]
    blocked = byz.blocked[mode]
    if attempts == 0:
        return "n/a"
    if violations > 0:
        return "detected"
    if blocked > 0 and landed == 0:
        return "neutralized"
    if landed > 0:
        return "absorbed"
    return "no-effect"


def run_attack(system_name: str, mode: str, *, n: int = 4, seed: int = 7,
               duration_ms: float = 10.0, at_ms: float = 1.0,
               messages: int = 80, protection: bool = True) -> AttackOutcome:
    """Run one attack × system cell and classify the outcome.

    A monitored deployment settles through its *real* election (no
    preseed: the forged-leadership half of equivocation must conflict
    with an actually claimed term), serves an open message pump, and is
    attacked ``at_ms`` after workload start.
    """
    if mode not in BYZ_MODES:
        raise ValueError(f"unknown attack mode {mode!r}; pick from {BYZ_MODES}")
    if not protection and system_name == "acuerdo":
        system_name = "acuerdo-unprotected"
    engine = Engine(seed=seed)
    registry = MonitorRegistry(engine)
    system = _build(system_name, engine, n)
    settle(system, preseed=False)
    byz = ByzantineInjector(engine, system)
    state = {"submitted": 0, "completed": 0, "attacker": -1}

    def arm() -> None:
        # The attacker role is positional relative to the *current*
        # leader — resolved at arm time, because elected leadership may
        # have moved between settle and the attack (etcd churns).
        attacker = _pick_attacker(system_name, system, mode, n)
        state["attacker"] = attacker
        byz.arm(mode, attacker)

    engine.schedule(ms(at_ms), arm)

    def on_commit(_slot: Any) -> None:
        state["completed"] += 1

    def pump() -> None:
        if state["submitted"] < messages:
            if system.submit(("cl", state["submitted"]), 64,
                             on_commit=on_commit):
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(duration_ms))
    violations = registry.finish()
    by_monitor: dict[str, int] = {}
    for v in violations:
        by_monitor[v.monitor] = by_monitor.get(v.monitor, 0) + 1
    return AttackOutcome(
        system=system_name, mode=mode, attacker=state["attacker"],
        outcome=classify(byz, mode, len(violations)),
        attempts=byz.attempts[mode], landed=byz.landed[mode],
        blocked=byz.blocked[mode], violations=len(violations),
        by_monitor=tuple(sorted(by_monitor.items())),
        witness=str(violations[0]) if violations else "",
        completed=state["completed"])


def attack_matrix(systems: "tuple[str, ...]" = ADVERSARY_SYSTEMS,
                  modes: "tuple[str, ...]" = BYZ_MODES, *, n: int = 4,
                  seed: int = 7, duration_ms: float = 10.0,
                  at_ms: float = 1.0,
                  messages: int = 80) -> "list[AttackOutcome]":
    """The full attack × system product, row-major by system."""
    return [run_attack(s, m, n=n, seed=seed, duration_ms=duration_ms,
                       at_ms=at_ms, messages=messages)
            for s in systems for m in modes]


def render_matrix(outcomes: "list[AttackOutcome]") -> str:
    """Fixed-width text table of :func:`attack_matrix` results."""
    systems = list(dict.fromkeys(o.system for o in outcomes))
    modes = list(dict.fromkeys(o.mode for o in outcomes))
    cell = {(o.system, o.mode): o.outcome for o in outcomes}
    w0 = max(len("system"), *(len(s) for s in systems)) + 2
    widths = [max(len(m), 11) + 2 for m in modes]
    lines = ["".join(["system".ljust(w0)]
                     + [m.ljust(w) for m, w in zip(modes, widths)])]
    for s in systems:
        lines.append("".join(
            [s.ljust(w0)] + [cell.get((s, m), "-").ljust(w)
                             for m, w in zip(modes, widths)]))
    return "\n".join(lines)
