"""ASCII scatter plots: a terminal twin of the paper's figures.

``ascii_plot`` renders named (x, y) series on an optionally log-scaled
grid using one marker letter per series — close enough to Fig. 8's
log-y latency/throughput panels to eyeball knees and band separation
straight from a benchmark log.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "abcdefghijklmnopqrstuvwxyz"


def _transform(v: float, log: bool) -> float:
    if log:
        return math.log10(max(v, 1e-12))
    return v


def _fmt_tick(v: float, log: bool) -> str:
    if log:
        return f"1e{v:.0f}"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    return f"{v:.3g}"


def ascii_plot(series: Mapping[str, Sequence[tuple[float, float]]],
               width: int = 64, height: int = 18,
               log_x: bool = False, log_y: bool = True,
               x_label: str = "x", y_label: str = "y",
               title: str = "") -> str:
    """Render named series as an ASCII scatter plot.

    Each series gets a letter marker; collisions print ``*``.  Returns
    the multi-line plot including a legend, axis labels and tick marks.
    """
    pts = [(name, x, y) for name, sxy in series.items() for x, y in sxy
           if (not log_x or x > 0) and (not log_y or y > 0)]
    if not pts:
        return f"{title}\n(no data)"
    xs = [_transform(x, log_x) for _n, x, _y in pts]
    ys = [_transform(y, log_y) for _n, _x, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    marker_of = {name: _MARKERS[i % len(_MARKERS)]
                 for i, name in enumerate(series)}
    for name, x, y in pts:
        cx = int((_transform(x, log_x) - x_lo) / (x_hi - x_lo) * (width - 1))
        cy = int((_transform(y, log_y) - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - cy
        cell = grid[row][cx]
        grid[row][cx] = marker_of[name] if cell in (" ", marker_of[name]) else "*"

    lines = []
    if title:
        lines += [title, "=" * min(len(title), width + 10)]
    top_tick = _fmt_tick(y_hi, log_y)
    bot_tick = _fmt_tick(y_lo, log_y)
    label_w = max(len(top_tick), len(bot_tick), len(y_label)) + 1
    lines.append(f"{y_label:>{label_w}}")
    for i, row in enumerate(grid):
        tick = top_tick if i == 0 else (bot_tick if i == height - 1 else "")
        lines.append(f"{tick:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    left = _fmt_tick(x_lo, log_x)
    right = _fmt_tick(x_hi, log_x)
    pad = width - len(left) - len(right)
    lines.append(" " * (label_w + 2) + left + " " * max(1, pad) + right
                 + f"   ({x_label})")
    legend = "  ".join(f"{m}={n}" for n, m in marker_of.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
