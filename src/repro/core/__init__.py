"""Acuerdo: the paper's atomic broadcast protocol (Sections 3.1-3.4).

Public surface:

- :mod:`repro.core.types` — epochs, message headers, votes and messages
  (Fig. 1), ordered exactly by the paper's left-to-right tuple rule;
- :mod:`repro.core.log` — the ordered message log;
- :mod:`repro.core.election` — the pure vote rules of Fig. 7, separated
  from the node so they can be unit- and property-tested directly;
- :mod:`repro.core.node` — the node state machine: broadcasting
  (Fig. 4), accepting incl. diffs (Fig. 5), committing incl. diffs
  (Fig. 6), election and leader transition (Fig. 7);
- :mod:`repro.core.cluster` — wiring of nodes, ring buffers and the
  Accept/Vote/Commit SSTs over the simulated RDMA fabric, plus the
  client-facing API.
"""

from repro.core.types import (
    Epoch,
    MsgHdr,
    Vote,
    Message,
    CommitRow,
    EPOCH_ZERO,
    HDR_ZERO,
    VOTE_ZERO,
)
from repro.core.log import MessageLog
from repro.core.election import max_vote, new_bigger_epoch, decide_vote, VoteDecision
from repro.core.config import AcuerdoConfig
from repro.core.node import AcuerdoNode, Role
from repro.core.cluster import AcuerdoCluster

__all__ = [
    "Epoch",
    "MsgHdr",
    "Vote",
    "Message",
    "CommitRow",
    "EPOCH_ZERO",
    "HDR_ZERO",
    "VOTE_ZERO",
    "MessageLog",
    "max_vote",
    "new_bigger_epoch",
    "decide_vote",
    "VoteDecision",
    "AcuerdoConfig",
    "AcuerdoNode",
    "Role",
    "AcuerdoCluster",
]
