"""Tunable parameters of an Acuerdo deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import ms, us
from repro.sim.process import ProcessConfig


@dataclass
class AcuerdoConfig:
    """Protocol and cost knobs for one Acuerdo cluster.

    CPU costs are per-message charges on the node's serial CPU; they are
    deliberately small because Acuerdo's handlers are a few dozen
    instructions plus a doorbell (§3.2).  Timeouts are simulation-scale:
    the heartbeat period and leader timeout are far below the paper's
    (seconds-scale) values so that fail-over experiments run quickly,
    but their *ratios* match (timeout = several heartbeat periods).
    """

    ring_capacity: int = 8192
    signal_interval: int = 1000          # selective signaling (§2.1)
    accept_cpu_ns: int = 300             # log insert + SST row update
    commit_cpu_ns: int = 250             # quorum check + deliver
    broadcast_cpu_ns: int = 600          # header compute + ring write setup
    election_cpu_ns: int = 250           # one election step
    commit_push_period_ns: int = us(2)   # Commit_SST push / heartbeat period
    # Timeouts leave headroom over a fully loaded poll turn (~100 us of
    # charged work), or load would masquerade as leader failure.  They
    # are still ~1000x below the paper's (seconds-scale) production
    # values so fail-over experiments run quickly.
    leader_timeout_ns: int = us(400)     # heartbeat silence before election
    candidate_timeout_ns: int = us(120)  # stalled-candidate timeout (Fig. 7)
    max_commits_per_poll: int = 256      # batch drain bound per event-loop turn
    gc_period_ns: int = ms(1)            # log garbage-collection cadence
    max_broadcasts_per_poll: int = 64    # client intake per event-loop turn,
                                         # so heartbeats interleave with bursts
    process: ProcessConfig = field(default_factory=ProcessConfig)

    def quorum(self, n: int) -> int:
        """Majority size for an ``n = 2f + 1`` cluster."""
        return n // 2 + 1
