"""Acuerdo's wire types (Fig. 1 of the paper).

All tuples are ordered by their values left to right — we use
``typing.NamedTuple`` so the comparison operators implement exactly the
paper's rule:

- epochs order by ``(round, leader_id)``;
- message headers by ``(epoch, count)``, so every message of a later
  epoch follows every message of an earlier one, and within an epoch the
  leader-assigned count orders messages;
- votes by ``(proposed epoch, candidate's last-accepted header)``, which
  is what makes the election a monotone fixed-point computation.
"""

from __future__ import annotations

from typing import Any, NamedTuple


class Epoch(NamedTuple):
    """A leader's period of sovereignty: ``(round number, leader id)``."""

    round: int
    leader: int


class MsgHdr(NamedTuple):
    """Global position of a message: ``(epoch proposed in, count)``.

    ``cnt == 0`` is reserved for the diff message that opens an epoch
    (§3.4); normal broadcasts start at 1.
    """

    e: Epoch
    cnt: int

    def next(self) -> "MsgHdr":
        """Header directly after this one within the same epoch."""
        return MsgHdr(self.e, self.cnt + 1)


class Vote(NamedTuple):
    """One row of the Vote SST: the epoch the voter wants to join and the
    last message its candidate has accepted."""

    e_new: Epoch
    acpt: MsgHdr


class Message(NamedTuple):
    """A log entry: header, opaque payload, and payload size in bytes
    (sizes feed the wire-cost model, payloads are never serialised)."""

    hdr: MsgHdr
    payload: Any
    size: int

    @property
    def is_diff(self) -> bool:
        """True for the epoch-opening diff message (count zero)."""
        return self.hdr.cnt == 0


class CommitRow(NamedTuple):
    """One row of the Commit SST.

    The paper's Commit_SST row carries only the last committed header;
    a real deployment additionally needs liveness information on the
    same row (an idle leader would otherwise look dead, since an
    unchanged header is indistinguishable from a crashed peer under
    overwrite semantics).  We piggyback a heartbeat counter, bumped on
    every periodic push, exactly as production SST implementations do.
    Ordering/commit logic only ever reads ``committed``.
    """

    committed: MsgHdr
    heartbeat: int


EPOCH_ZERO = Epoch(0, 0)
HDR_ZERO = MsgHdr(EPOCH_ZERO, 0)
VOTE_ZERO = Vote(EPOCH_ZERO, HDR_ZERO)

#: Serialized sizes (bytes) used by the wire-cost model: epoch = 2 x u32,
#: count = u32, so a header is 12 B; a vote is epoch + header = 20 B.
HDR_BYTES = 12
VOTE_BYTES = 20
COMMIT_ROW_BYTES = HDR_BYTES + 8


def diff_payload_size(entries: list[Message]) -> int:
    """Wire size of a diff: the included messages plus a header each."""
    return sum(m.size + HDR_BYTES for m in entries) + HDR_BYTES
