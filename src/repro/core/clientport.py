"""A real RDMA client path for Acuerdo (§4.3's external client machine).

The closed-loop clients in :mod:`repro.workloads` model the client hop
as a fixed delay; this module provides the fully simulated alternative:
an external client *process* with its own NIC that deposits requests
into a per-leader :class:`~repro.rdma.mailbox.Mailbox` with one-sided
writes, and receives replies the same way.  The leader polls its
request mailbox as part of its event loop and replies after commit.

Used by the hash-table example and by integration tests that validate
the delay-model clients against the real path (they agree to within the
poll jitter).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.core.cluster import AcuerdoCluster
from repro.substrate import Mailbox
from repro.sim.process import Process, ProcessConfig

_client_ids = itertools.count(1000)


class AcuerdoClientPort(Process):
    """An external RDMA client of an Acuerdo cluster.

    The client is a first-class simulated process: request submission
    costs a doorbell on its CPU, requests cross the fabric as one-sided
    writes, and replies land in the client's own mailbox where its poll
    loop discovers them.
    """

    def __init__(self, cluster: AcuerdoCluster, config: ProcessConfig | None = None):
        node_id = next(_client_ids)
        super().__init__(cluster.engine, node_id, config, name=f"client{node_id}")
        self.cluster = cluster
        fabric = cluster.fabric
        # Reply deposits into the client's mailbox ring its doorbell, so
        # the poll loop can park between replies.
        fabric.add_node(node_id).waker = self
        # Request mailboxes live at every replica (any of them may lead).
        self._req_boxes: dict[int, Mailbox] = {
            nid: Mailbox(fabric, nid, f"req.{node_id}.{nid}")
            for nid in cluster.node_ids}
        self._reply_box = Mailbox(fabric, node_id, f"rep.{node_id}")
        self._next_req = 0
        self._pending: dict[int, Callable[[int], None]] = {}
        self.replies = 0
        # The replicas poll client mailboxes through this registry.
        cluster.register_client_port(self)

    # ------------------------------------------------------------- client API

    def request(self, payload: Any, size_bytes: int,
                on_reply: Optional[Callable[[int], None]] = None) -> int:
        """Send one request to the current leader; returns the request id.

        ``on_reply(req_id)`` fires when the commit acknowledgment lands
        back in the client's mailbox.
        """
        req_id = self._next_req
        self._next_req += 1
        if on_reply is not None:
            self._pending[req_id] = on_reply
        ldr = self.cluster.leader_id()
        target = ldr if ldr is not None else self.cluster.node_ids[0]
        self._charge_doorbell()
        self._req_boxes[target].send(self.node_id, (req_id, payload, size_bytes),
                                     size_bytes + 16)
        # request() runs outside on_poll and advances this CPU's
        # busy_until; a parked loop must resume so its poll schedule
        # re-derives from the new busy time exactly as an unparked one.
        self.request_poll()
        return req_id

    def _charge_doorbell(self) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + \
            self.cluster.fabric.params.doorbell_cpu_ns

    def on_poll(self) -> None:
        for _src, (req_id,) in [(s, (p,)) for s, p in self._reply_box.drain()]:
            self.replies += 1
            cb = self._pending.pop(req_id, None)
            if cb is not None:
                cb(req_id)

    def park_ready(self) -> bool:
        # Idle whenever no reply is waiting; reply deposits and request()
        # both ring the doorbell.
        return self._reply_box.backlog == 0

    def request_backlog(self, replica_id: int) -> int:
        """Requests deposited at ``replica_id`` and not yet drained (the
        replica's park-ready predicate checks this)."""
        return self._req_boxes[replica_id].backlog

    # ---------------------------------------------------------- replica side

    def drain_requests_at(self, replica_id: int) -> list[tuple[int, Any, int]]:
        """Called from a replica's poll: pop requests deposited in its
        mailbox.  Non-leaders drop what they find (clients re-send)."""
        return [payload for _src, payload in self._req_boxes[replica_id].drain()]

    def post_reply(self, replica_id: int, req_id: int) -> None:
        """Leader acknowledges a committed request with a one-sided write
        back into the client's mailbox."""
        self._reply_box.send(replica_id, req_id, 16)
