"""The Acuerdo node state machine.

One :class:`AcuerdoNode` implements all three modes of §3:

- **broadcast** (Fig. 4): the leader stamps client payloads with
  ``(E_new, ++Count)`` headers and pipelines them through its RDMA ring
  buffer to every node (including itself) without waiting for any
  acknowledgment;
- **accept / commit** (Figs. 5, 6): every node drains its incoming ring
  mirrors in receiver-side batches, logs messages, acknowledges only the
  *newest* accepted header through the Accept SST (FIFO delivery makes
  that acknowledgment cumulative), and commits in log order once a
  quorum has accepted (leader) or the leader's Commit-SST row says so
  (follower);
- **election / transition** (Fig. 7, §3.4): the fixed-point vote rules
  from :mod:`repro.core.election`, followed by per-node diff messages
  that carry exactly what each follower is missing.

Deviations from the paper's pseudocode, all noted inline and in
DESIGN.md:

1. the Commit-SST row carries a heartbeat counter next to the committed
   header, because with pure overwrite semantics an idle leader is
   indistinguishable from a dead one;
2. a freshly elected leader broadcasts one no-op message right after its
   diffs.  Fig. 6's follower commit rule only fires once the leader's
   Commit-SST row carries the *new* epoch, which first happens when
   message ``(E, 1)`` commits — without traffic, followers would never
   deliver the diff contents.  The no-op provides that first message
   (the same trick Raft uses at term start); it is never delivered to
   the application;
3. a leader evicts a receiver from its ring-slot accounting after a long
   heartbeat silence so a crashed follower cannot wedge the ring once it
   wraps; the evicted node rejoins through the next election's diff.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.core.config import AcuerdoConfig
from repro.core.election import decide_vote, max_vote, won_election, VoteDecision
from repro.core.log import MessageLog
from repro.core.types import (
    CommitRow,
    Epoch,
    HDR_ZERO,
    Message,
    MsgHdr,
    VOTE_ZERO,
    Vote,
    diff_payload_size,
)
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cluster import AcuerdoCluster


class Role(enum.Enum):
    """A node's role within its current epoch (Fig. 1 line 17)."""

    ELECTING = "electing"
    LEADER = "leader"
    FOLLOWER = "follower"


class _Noop:
    """Sentinel payload for the epoch-opening no-op (never app-delivered)."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<noop>"


NOOP = _Noop()


class AcuerdoNode(Process):
    """One replica of an Acuerdo instance."""

    def __init__(self, cluster: "AcuerdoCluster", node_id: int, config: AcuerdoConfig):
        # Every node gets a private ProcessConfig copy so slow-node
        # injection on one replica does not leak to the others.
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(config.process), name=f"acuerdo{node_id}")
        self.cluster = cluster
        self.cfg = config
        self.peers = list(cluster.node_ids)
        self.quorum = config.quorum(len(self.peers))

        # --- Fig. 1 state ---
        self.E_cur: Epoch = Epoch(0, 0)
        self.E_new: Epoch = Epoch(0, 0)
        self.Accepted: MsgHdr = HDR_ZERO
        self.Committed: MsgHdr = HDR_ZERO
        self.Next: MsgHdr = HDR_ZERO
        self.Count: int = 0
        self.role: Role = Role.ELECTING
        self.log = MessageLog()

        # --- broadcast plumbing ---
        self.pending_client: list[tuple[Any, int, Optional[Callable[[MsgHdr], None]]]] = []
        self._epoch_msg_seq: dict[int, int] = {}   # cnt -> own-ring seq (current epoch)
        self._diff_seq: dict[int, int] = {}        # follower -> seq of its diff
        self._pending_diffs: list[tuple[int, Message]] = []
        self._on_commit_cb: dict[MsgHdr, Callable[[MsgHdr], None]] = {}

        # --- failure detection / election bookkeeping ---
        self._hb_seq = 0
        self._last_commit_push = 0
        self._peer_hb: dict[int, tuple[int, int]] = {p: (-1, 0) for p in self.peers}
        self._last_mx: Vote = VOTE_ZERO
        self._mx_changed_at = 0
        self._election_started_at: Optional[int] = None
        self._evicted: set[int] = set()
        self.deposed_epochs = 0
        self._last_gc = 0
        self._last_stranded_react = 0

        # --- hot-path shorthand ---
        # The cluster builds rings and SSTs before any node, and they
        # live for the whole run, so plain attributes replace property
        # indirection on every poll.  The mirror list is fixed too:
        # Acuerdo never drops a ring receiver (it only excludes them
        # from slot accounting), so the mirrors this node polls are
        # exactly the ones present at construction.
        self._accept_sst = cluster.accept_sst
        self._vote_sst = cluster.vote_sst
        self._commit_sst = cluster.commit_sst
        self._ring = cluster.rings[node_id]
        # Same list object the cluster appends registered ports to.
        self._client_ports = cluster.client_ports
        self._ring_mirrors = [ring.receiver(node_id)
                              for ring in cluster.rings.values()
                              if node_id in ring._receivers]
        # Commit-SST version at the last heartbeat observation: lets the
        # failure detector skip the per-peer row scan when no commit-row
        # write has landed since (the scan is a no-op in that case).
        self._hb_seen_version = -1
        # Vote-SST max_vote cache: max_vote is a pure function of this
        # node's local copy, and the copy's version counter bumps on
        # every change — so re-scanning at an unchanged version must
        # return the identical Vote.  park_ready and the stranded-voter
        # check hit this on every leader poll.
        self._mx_cache_version = -1
        self._mx_cache: Vote = VOTE_ZERO
        # _commit_ready negative cache: while (role, Accept/Commit-SST
        # version, Next, E_cur) are unchanged, a re-evaluation reads the
        # same rows and must return the same False (True results advance
        # Next immediately, so only False is worth remembering).  Next
        # and E_cur are replaced-on-change immutable values, so identity
        # comparison is exact and costs no dataclass __eq__.
        self._cr_version = -1
        self._cr_next: Any = None
        self._cr_ecur: Any = None
        self._cr_role: Any = None
        # Eviction-scan guard (see _evict_dead_receivers): re-scan only
        # when a heartbeat landed or the earliest recorded expiry passed.
        self._evict_guard_version = -2
        self._evict_next_due = -1
        # Generation counter bumped on every eviction-state / send-map
        # mutation outside _release_slots, so the slot-release scan can
        # skip when none of its inputs (accept rows, sent seq maps,
        # eviction set) moved since the last scan.
        self._evict_gen = 0
        self._rs_ver = -1
        self._rs_ns = -1
        self._rs_gen = -1
        # Highest ring-release floor reported to engine.monitors (the
        # slot_release event stream is monotonic per ring owner), plus
        # the ring release generation it was computed at.
        self._mon_floor = 0
        self._mon_release_gen = -1
        self._mon_admin_gen = 0
        # Set by on_poll when the fused no-op guard fired this tick, so
        # park_ready can return True without re-deriving the verdict.
        self._was_noop = False

    def _charge(self, cost_ns: int) -> None:
        """Charge protocol CPU work for this poll iteration."""
        cpu = self.cpu
        sf = cpu.speed_factor
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + (
            cost_ns if sf == 1.0 and type(cost_ns) is int else int(cost_ns * sf))

    def _mon_note_floor(self, monitors: Any) -> None:
        """Report ring slot reuse to the monitors: one ``slot_release``
        event each time the effective release floor advances (eviction
        can move the floor outside ``_release_slots``, so bind sites
        sync it too).  Gated on the ring's release generation so the
        per-poll call is one int compare when nothing was released."""
        ring = self._ring
        if ring.release_gen == self._mon_release_gen:
            return
        self._mon_release_gen = ring.release_gen
        floor = ring.released_floor()
        if floor > self._mon_floor:
            self._mon_floor = floor
            # Two release paths carry no quorum-accept obligation and
            # are tagged ``admin`` for the slot-reuse monitor: a floor
            # advance coinciding with a membership change (eviction /
            # epoch re-baselining jumps past the evictee's unaccepted
            # tail), and any advance while fewer than a quorum of
            # receivers remain in accounting (the escape-hatch regime:
            # excluded laggards recover via the next epoch's diff, and
            # nothing released sub-quorum can have committed).
            admin = (ring.admin_gen != self._mon_admin_gen
                     or ring.accept_accounted < self.quorum)
            self._mon_admin_gen = ring.admin_gen
            monitors.note(self.cluster, "slot_release", self.node_id, seq=floor,
                          extra="admin" if admin else None)
        else:
            self._mon_admin_gen = ring.admin_gen

    # ------------------------------------------------------------ event loop

    def on_poll(self) -> None:
        # Fused no-op guard: most polls after a wake discover there is
        # nothing left to do and park again.  _poll_noop mirrors every
        # sub-step's own guard (version counters, period clocks, queue
        # emptiness), so skipping the dispatch entirely is behaviourally
        # invisible — and park_ready reuses the verdict via _was_noop.
        if self._poll_noop():
            self._was_noop = True
            return
        self._was_noop = False
        self._drain_rings()
        if self.role is Role.ELECTING:
            self._election_step(timeout_fired=False)
        else:
            if self._client_ports:
                self._serve_client_ports()
            self._commit_loop()
            if self.role is Role.LEADER:
                if self.pending_client or self._pending_diffs:
                    self._pump_client_queue()
                self._release_slots()
                self._evict_dead_receivers()
                self._check_stranded_voters()
            else:
                self._check_leader_alive()
        # Period guards inlined: both methods re-check, so calling them
        # only when due is behaviourally identical and skips two calls
        # on the vast majority of polls.
        now = self.engine.now
        cfg = self.cfg
        if now - self._last_commit_push >= cfg.commit_push_period_ns:
            self._maybe_push_commit_row()
        if now - self._last_gc >= cfg.gc_period_ns:
            self._maybe_gc()

    def _poll_noop(self) -> bool:
        """True iff every step of on_poll is guaranteed to do nothing.

        Each clause restates one sub-step's own skip condition: the
        commit-ready negative cache, the release/eviction scan guards,
        the heartbeat-observation version, the period clocks, and queue
        emptiness.  A True verdict therefore proves the full dispatch
        would leave every piece of node state untouched."""
        role = self.role
        e_cur = self.E_cur
        # Covers the ELECTING branch too: _commit_ready never caches a
        # verdict under ELECTING, so the role identity check fails.
        if (self.Next is not self._cr_next or e_cur is not self._cr_ecur
                or role is not self._cr_role):
            return False
        now = self.engine.now
        if role is Role.LEADER:
            ver = self._accept_sst._versions[self.node_id]
            if ver != self._cr_version:
                return False
            if self.pending_client or self._pending_diffs:
                return False
            if (ver != self._rs_ver or self._ring.next_seq != self._rs_ns
                    or self._evict_gen != self._rs_gen):
                return False
            if (self._commit_sst._versions[self.node_id] != self._hb_seen_version
                    or self._hb_seen_version != self._evict_guard_version
                    or now >= self._evict_next_due):
                return False
            if self._max_vote_cached().e_new > e_cur:
                return False
        else:
            ver = self._commit_sst._versions[self.node_id]
            if ver != self._cr_version or ver != self._hb_seen_version:
                return False
            ldr = e_cur.leader
            if (ldr != self.node_id
                    and now - self._peer_hb.get(ldr, (-1, 0))[1]
                    > self.cfg.leader_timeout_ns):
                return False
        cfg = self.cfg
        if (now - self._last_commit_push >= cfg.commit_push_period_ns
                or now - self._last_gc >= cfg.gc_period_ns):
            return False
        for rr in self._ring_mirrors:
            if rr._ready:
                return False
        for port in self._client_ports:
            if port.request_backlog(self.node_id):
                return False
        return True

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        """on_poll is a no-op right now iff nothing is drainable and no
        commit is ready.  Every input that can change that rings the
        doorbell: ring deposits, SST writes and mailbox deposits all ride
        the QP delivery path, and client_broadcast calls request_poll."""
        if self._was_noop:
            # This tick's on_poll proved a strict superset of the checks
            # below (nothing between the two calls mutates node state).
            return True
        if self.role is Role.ELECTING:
            return False
        for rr in self._ring_mirrors:
            if rr._ready:
                return False
        for port in self._client_ports:
            if port.request_backlog(self.node_id):
                return False
        if self._commit_ready():
            return False
        if self.role is Role.LEADER:
            if self.pending_client or self._pending_diffs:
                return False
            # A persistent higher-epoch vote awaits the rate-limited
            # stranded-voter reaction: keep polling through it.
            if self._max_vote_cached().e_new > self.E_cur:
                return False
        return True

    def _max_vote_cached(self) -> Vote:
        """max_vote over this node's Vote-SST copy, re-scanned only when
        the copy's version moved (max_vote is pure, so this is exact)."""
        ver = self._vote_sst._versions[self.node_id]
        if ver != self._mx_cache_version:
            self._mx_cache_version = ver
            self._mx_cache = max_vote(self._vote_sst.copies[self.node_id])
        return self._mx_cache

    def park_deadline(self) -> Optional[int]:
        """Earliest instant a time-triggered branch of on_poll could act:
        the commit-row heartbeat push, log GC, and the failure-detector
        expiries (peer eviction for leaders, leader timeout for
        followers).  Early bounds are safe — an over-woken poll re-parks."""
        cfg = self.cfg
        d = self._last_commit_push + cfg.commit_push_period_ns
        t = self._last_gc + cfg.gc_period_ns
        if t < d:
            d = t
        if self.role is Role.LEADER:
            # The eviction scan maintains exactly this minimum (earliest
            # non-evicted expiry) in _evict_next_due; heartbeats observed
            # since can only move the true minimum later, so the cached
            # value is early-or-exact — safe per the contract above.  -1
            # means invalidated (fresh leader): fall back to the scan.
            nd = self._evict_next_due
            if nd >= 0:
                if nd < d:
                    d = nd
            else:
                horizon = 3 * cfg.leader_timeout_ns + 1
                for p in self.peers:
                    if p == self.node_id or p in self._evicted:
                        continue
                    t = self._peer_hb.get(p, (-1, 0))[1] + horizon
                    if t < d:
                        d = t
        else:
            ldr = self.E_cur.leader
            if ldr != self.node_id:
                t = self._peer_hb.get(ldr, (-1, 0))[1] + cfg.leader_timeout_ns + 1
                if t < d:
                    d = t
        return d

    # ------------------------------------------------------ Fig. 4: broadcast

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[Callable[[MsgHdr], None]] = None) -> None:
        """Enqueue a client payload for broadcast.

        Callable from any context; the message leaves at the leader's
        next poll (Fig. 4's precondition ``Role == LEADER`` is enforced
        there — a deposed leader's queue is re-routed by the cluster).
        """
        self.pending_client.append((payload, size, on_commit))
        # Local-state doorbell: a parked leader resumes polling at the
        # first tick that would see this entry (no-op when unparked).
        self.request_poll()

    def _pump_client_queue(self) -> None:
        monitors = self.engine.monitors
        if monitors is not None:
            self._mon_note_floor(monitors)
        while self._pending_diffs:
            j, msg = self._pending_diffs[0]
            seq = self._ring.try_send(msg, msg.size, targets=[j])
            if seq is None:
                return
            self._diff_seq[j] = seq
            self._pending_diffs.pop(0)
            if monitors is not None:
                # Diffs occupy ring slots but are released per receiver
                # by epoch bookkeeping, not quorum accept: bind with a
                # None slot (no reuse-safety obligation of their own).
                monitors.note(self.cluster, "slot_bind", self.node_id,
                              seq=seq, extra=self._ring.capacity)
        budget = self.cfg.max_broadcasts_per_poll
        while self.pending_client and budget > 0:
            budget -= 1
            payload, size, on_commit = self.pending_client[0]
            hdr = MsgHdr(self.E_new, self.Count + 1)
            msg = Message(hdr, payload, size)
            if self._ring.free_slots() <= 0:
                # Ring full under the release policy: retry next poll.
                self._ring.stalls += 1
                self.engine.trace.count("acuerdo.ring_full")
                return
            self._charge(self.cfg.broadcast_cpu_ns)
            obs = self.engine.obs
            if obs is not None:
                # The wire object for this payload is the Message; bind it
                # so the QP's nic_tx/wire/deposit milestones attribute.
                obs.bind(msg, payload)
                obs.mark(payload, "propose", self.engine.now)
            seq = self._ring.try_send(msg, size, earliest_ns=self.cpu.busy_until)
            self.pending_client.pop(0)
            self.Count += 1
            self._epoch_msg_seq[hdr.cnt] = seq
            if monitors is not None:
                monitors.note(self.cluster, "slot_bind", self.node_id,
                              slot=hdr, seq=seq, extra=self._ring.capacity)
            if on_commit is not None:
                self._on_commit_cb[hdr] = on_commit
            self.engine.trace.count("acuerdo.broadcast")

    def _serve_client_ports(self) -> None:
        """Drain external clients' request mailboxes (§4.3 client path).

        Only the leader turns requests into broadcasts; other replicas
        drop what lands in their mailboxes (clients re-send after a
        timeout, as with any leader-based service)."""
        for port in self._client_ports:
            reqs = port.drain_requests_at(self.node_id)
            if self.role is not Role.LEADER:
                if reqs:
                    self.engine.trace.count("acuerdo.client_req_dropped", len(reqs))
                continue
            for req_id, payload, size in reqs:
                self.client_broadcast(
                    payload, size,
                    on_commit=lambda hdr, p=port, r=req_id:
                        p.post_reply(self.node_id, r))
                self._charge(self.cfg.broadcast_cpu_ns // 2)

    # ------------------------------------------------------- Fig. 5: accept

    def _drain_rings(self) -> None:
        accepted_any = False
        mon_prev = self.Accepted
        for rr in self._ring_mirrors:
            if not rr._ready:
                continue
            for _seq, msg in rr.poll():
                accepted_any |= self._accept(msg)
        if accepted_any:
            # One acknowledgment per drained batch: the Accept-SST row is
            # overwriting, so pushing only the *newest* accepted header
            # implicitly acknowledges the whole batch (§3.2 — "accept the
            # later message, implicitly acknowledging the earlier one").
            ldr = self.E_cur.leader
            if ldr != self.node_id:
                self._accept_sst.push(self.node_id, targets=[ldr],
                                      earliest_ns=self.cpu.busy_until)
        if self.Accepted != mon_prev:
            monitors = self.engine.monitors
            if monitors is not None:
                # Cumulative accept frontier, batched exactly like the
                # Accept-SST acknowledgment above: the newest header
                # implicitly covers the whole drained batch, and it is
                # the only frontier any quorum observer ever sees.
                monitors.note(self.cluster, "accept", self.node_id,
                              slot=self.Accepted)

    def _accept(self, msg: Message) -> bool:
        """Handle one incoming message; returns True when a normal accept
        updated the Accept-SST row (push is batched by the caller)."""
        e = msg.hdr.e
        if e == self.E_new and e == self.E_cur:
            # Normal acceptance (Fig. 5 lines 47-53).  Thanks to FIFO
            # delivery, storing only the newest header in the Accept SST
            # implicitly acknowledges everything before it.
            self._charge(self.cfg.accept_cpu_ns)
            self.log.insert(msg)
            self.Accepted = msg.hdr
            self._accept_sst.write_local(self.node_id, msg.hdr)
            self.engine.trace.count("acuerdo.accept")
            # Monitor accept events are emitted per drained batch by
            # _drain_rings (same batching as the Accept-SST push).
            if e.leader != self.node_id:
                obs = self.engine.obs
                if obs is not None:
                    obs.mark(msg, "accept", self.engine.now)
                return True
            return False
        elif self.E_new <= e:
            self._accept_diff(msg)
        else:
            # Stale epoch: a deposed leader's leftovers; drop silently.
            self.engine.trace.count("acuerdo.stale_drop")
        return False

    def _accept_diff(self, msg: Message) -> None:
        """Diff acceptance and transition into broadcast (Fig. 5, 54-66)."""
        assert msg.hdr.cnt == 0, "epoch-opening message must have count 0"
        e = msg.hdr.e
        if self.E_cur != e and self.role is Role.LEADER:
            self.deposed_epochs += 1
        self.E_new = e
        self.E_cur = e
        if e.leader != self.node_id:
            self.role = Role.FOLLOWER
        entries: list[Message] = list(msg.payload)
        if entries:
            # Replace the uncommitted tail with the leader's view.
            self.log.truncate_from(entries[0].hdr)
            for m in entries:
                self.log.insert(m)
        else:
            # Leader knows of nothing we are missing: drop any
            # uncommitted leftovers from deposed epochs.
            self.log.truncate_from(self.Committed.next())
        self._charge(self.cfg.accept_cpu_ns * (1 + len(entries)))
        self.Accepted = msg.hdr
        self._accept_sst.write_local(self.node_id, msg.hdr)
        monitors = self.engine.monitors
        if monitors is not None:
            # Accepting the epoch-opening diff means adopting the new
            # leader's whole log prefix: the frontier jumps to (e, 0).
            monitors.note(self.cluster, "accept", self.node_id, slot=msg.hdr)
        if e.leader != self.node_id:
            self._accept_sst.push(self.node_id, targets=[e.leader],
                                  earliest_ns=self.cpu.busy_until)
        self.Next = MsgHdr(e, 0)
        # Joining an epoch resets failure-detection state.
        self._peer_hb[e.leader] = (self._peer_hb.get(e.leader, (-1, 0))[0], self.engine.now)
        self._election_started_at = None
        self._evict_next_due = -1  # peer_hb touched outside the version path
        self.engine.trace.count("acuerdo.diff_accept")

    # -------------------------------------------------------- Fig. 6: commit

    def _commit_ready(self) -> bool:
        role = self.role
        nxt = self.Next
        e_cur = self.E_cur
        if role is Role.LEADER:
            ver = self._accept_sst._versions[self.node_id]
            if (ver == self._cr_version and nxt is self._cr_next
                    and e_cur is self._cr_ecur and role is self._cr_role):
                return False
            # Direct read of this node's local SST copy (read() is two
            # dict hops + a call per peer; this loop runs per commit).
            accept_copy = self._accept_sst.copies[self.node_id]
            n_ok = 0
            for k in self.peers:
                h = accept_copy[k]
                if h is not None and h >= nxt and h.e == e_cur:
                    n_ok += 1
            if n_ok >= self.quorum:
                return True
        else:
            ver = self._commit_sst._versions[self.node_id]
            if (ver == self._cr_version and nxt is self._cr_next
                    and e_cur is self._cr_ecur and role is self._cr_role):
                return False
            row: CommitRow = self._commit_sst.read(self.node_id, e_cur.leader)
            if (row is not None and row.committed >= nxt
                    and row.committed.e == e_cur):
                return True
        self._cr_version = ver
        self._cr_next = nxt
        self._cr_ecur = e_cur
        self._cr_role = role
        return False

    def _commit_loop(self) -> None:
        # Drain as many commits as are ready this turn (receiver-side
        # batching: the batch size is whatever accumulated since the
        # last poll), bounded to keep single poll turns finite.
        for _ in range(self.cfg.max_commits_per_poll):
            if not self._commit_ready():
                return
            self._charge(self.cfg.commit_cpu_ns)
            if self.Next.cnt != 0:
                m = self.log.get(self.Next)
                if m is None:
                    # Cannot happen on a single FIFO channel per pair
                    # (the commit row was written after the message);
                    # trace defensively rather than skipping a message.
                    self.engine.trace.count("acuerdo.commit_gap_anomaly")
                    return
                self._deliver(m)
                self.Committed = self.Next
            else:
                # Diff commit (Fig. 6 lines 83-89): deliver everything in
                # the diff that we have not delivered before.
                for m in list(self.log.range(self.Committed, self.Next,
                                             inclusive_hi=False)):
                    self._deliver(m)
                    self.Committed = m.hdr
            self.Next = self.Next.next()

    def _deliver(self, m: Message) -> None:
        self.engine.trace.count("acuerdo.commit")
        obs = self.engine.obs
        if obs is not None and m.payload is not NOOP:
            obs.mark(m, "commit", self.engine.now)
        monitors = self.engine.monitors
        if monitors is not None:
            # Every commit (no-ops included) must be quorum-covered.
            # Headers are totally ordered and each node commits them in
            # order, so only the group-wide *first* commit of a slot
            # carries a new proof obligation — later replicas re-commit
            # slots already checked (the monitor would dedup them by
            # slot anyway); suppressing them at the source keeps the
            # monitored hot path cheap.
            cluster = self.cluster
            hwm = cluster._mon_commit_hwm
            if hwm is None or m.hdr > hwm:
                cluster._mon_commit_hwm = m.hdr
                monitors.note(cluster, "commit", self.node_id, slot=m.hdr)
        cb = self._on_commit_cb.pop(m.hdr, None)
        if cb is not None:
            # The client-visible acknowledgment leaves once the commit
            # handler's CPU work is done.
            self.engine.schedule_at(max(self.engine.now, self.cpu.busy_until),
                                    cb, m.hdr)
        if m.payload is NOOP:
            return
        self.cluster.record_delivery(self.node_id, m)

    def _maybe_push_commit_row(self) -> None:
        now = self.engine.now
        if now - self._last_commit_push < self.cfg.commit_push_period_ns:
            return
        self._last_commit_push = now
        self._hb_seq += 1
        self._commit_sst.set_and_push(self.node_id, CommitRow(self.Committed, self._hb_seq))

    def _maybe_gc(self) -> None:
        """Garbage-collect the log below the cluster-wide commit frontier.

        Entries are only needed for (a) local delivery — covered once
        committed here — and (b) diff construction if we win an election,
        which reaches back to the *receiver's* committed header (Fig. 7
        line 124).  Trimming below the minimum committed header across
        *all* peers' Commit-SST rows is therefore safe: no future diff
        can need a trimmed entry.  The cost of that safety is that a
        crashed peer's frozen row pins the log from its crash point on —
        a production deployment would add snapshot transfer (as
        ZooKeeper does) to reclaim it; see DESIGN.md."""
        now = self.engine.now
        if now - self._last_gc < self.cfg.gc_period_ns:
            return
        self._last_gc = now
        frontier = self.Committed
        for p in self.peers:
            if p == self.node_id:
                continue
            row: CommitRow = self._commit_sst.read(self.node_id, p)
            if row is None:
                return
            if row.committed < frontier:
                frontier = row.committed
        trimmed = self.log.trim_below(frontier)
        if trimmed:
            self.engine.trace.count("acuerdo.gc_trimmed", trimmed)

    # --------------------------------------------- slot release & liveness

    def _release_slots(self) -> None:
        """Accept-based slot reuse (§4.1): a slot is free once the
        receiver has accepted the message, long before commit.

        The scan is a pure function of the accept rows (version-counted),
        the sent-seq maps (every mutation bumps the ring's ``next_seq``
        or ``_evict_gen``) and the eviction set (``_evict_gen``): with
        all three unchanged it would repeat the identical idempotent
        ``mark_released`` calls, so it is skipped."""
        ring = self._ring
        ver = self._accept_sst._versions[self.node_id]
        nxt_seq = ring.next_seq
        if (ver == self._rs_ver and nxt_seq == self._rs_ns
                and self._evict_gen == self._rs_gen):
            return
        self._rs_ver = ver
        self._rs_ns = nxt_seq
        self._rs_gen = self._evict_gen
        accept_copy = self._accept_sst.copies[self.node_id]
        e_cur = self.E_cur
        for k in self.peers:
            if k in self._evicted:
                continue
            h = accept_copy[k]
            if h is None or h.e != e_cur:
                continue
            seq = self._diff_seq.get(k) if h.cnt == 0 else self._epoch_msg_seq.get(h.cnt)
            if seq is not None:
                ring.mark_released(k, seq + 1)
        monitors = self.engine.monitors
        if monitors is not None:
            self._mon_note_floor(monitors)

    def _observe_peer_heartbeats(self) -> None:
        # Version guard: commit-row versions bump exactly when a row in
        # this node's copy changes, so an unchanged version means every
        # ``hb != last_hb`` test below would fail — skipping the scan
        # records exactly the same (hb, seen_at) pairs.
        ver = self._commit_sst._versions[self.node_id]
        if ver == self._hb_seen_version:
            return
        self._hb_seen_version = ver
        now = self.engine.now
        commit_copy = self._commit_sst.copies[self.node_id]
        peer_hb = self._peer_hb
        for p in self.peers:
            if p == self.node_id:
                continue
            row: CommitRow = commit_copy[p]
            hb = row.heartbeat if row is not None else 0
            last_hb, _ = peer_hb.get(p, (-1, 0))
            if hb != last_hb:
                peer_hb[p] = (hb, now)

    def _check_leader_alive(self) -> None:
        self._observe_peer_heartbeats()
        ldr = self.E_cur.leader
        if ldr == self.node_id:
            return
        _, seen_at = self._peer_hb.get(ldr, (-1, 0))
        if self.engine.now - seen_at > self.cfg.leader_timeout_ns:
            self._start_election()

    def _evict_dead_receivers(self) -> None:
        self._observe_peer_heartbeats()
        now = self.engine.now
        # The scan's outcome is a function of (peer_hb, evicted, now):
        # peer_hb only moves with the commit-SST version, evictions only
        # flip by time passing an expiry or a version change, and the
        # scan below records the earliest future expiry — so skipping
        # until either the version moves or that expiry arrives repeats
        # the identical no-op scans for free.  _become_leader and
        # _accept_diff invalidate the guard when they touch this state.
        if self._hb_seen_version == self._evict_guard_version and now < self._evict_next_due:
            return
        self._evict_guard_version = self._hb_seen_version
        horizon = 3 * self.cfg.leader_timeout_ns
        next_due = 1 << 62  # effectively never
        for p in self.peers:
            if p == self.node_id:
                continue
            _, seen_at = self._peer_hb.get(p, (-1, 0))
            if now - seen_at > horizon:
                if p not in self._evicted:
                    # Keep mirroring (the node may be alive-but-slow and
                    # will catch up) but stop letting it wedge slot reuse.
                    self._evicted.add(p)
                    self._evict_gen += 1
                    self._ring.exclude_from_accounting(p)
                    self.engine.trace.count("acuerdo.receiver_evicted")
            else:
                if p in self._evicted:
                    # Fresh heartbeat from an evicted peer: re-admit it;
                    # the release state resumes from its next acceptance.
                    self._evicted.discard(p)
                    self._evict_gen += 1
                    self._ring.include_in_accounting(p, self._ring.next_seq)
                due = seen_at + horizon + 1
                if due < next_due:
                    next_due = due
        self._evict_next_due = next_due

    def _check_stranded_voters(self) -> None:
        """Recover peers stranded mid-election (partition healed, vote
        lost).  A node that raised ``E_new`` by voting can no longer
        accept messages of the current epoch, and its candidacy can
        never win against a healthy majority that is not electing — so
        it would starve forever.  The paper's machinery for bringing a
        node up to date is the epoch-opening diff, so the leader reacts
        to a persistent higher-epoch vote by running a fresh election
        itself: it wins (it dominates the quorum's accepted state, and
        its new epoch exceeds the stranded vote), and the new epoch's
        diffs re-admit everyone.  Rate-limited to avoid churn."""
        now = self.engine.now
        if now - self._last_stranded_react < 4 * self.cfg.leader_timeout_ns:
            return
        mx = self._max_vote_cached()
        if mx.e_new > self.E_cur:
            self._last_stranded_react = now
            self.engine.trace.count("acuerdo.stranded_voter_recovery")
            self._start_election()

    # --------------------------------------------------- Fig. 7: election

    def _start_election(self) -> None:
        if self.role is not Role.ELECTING:
            self.role = Role.ELECTING
            self._election_started_at = self.engine.now
            self._mx_changed_at = self.engine.now
            self.engine.trace.count("acuerdo.elections_started")
            self._election_step(timeout_fired=True)

    def _election_step(self, timeout_fired: bool) -> None:
        now = self.engine.now
        votes = self._vote_sst.snapshot(self.node_id)
        mx = max_vote(votes)
        if mx != self._last_mx:
            self._last_mx = mx
            self._mx_changed_at = now
        own = votes.get(self.node_id) or VOTE_ZERO
        candidate_stalled = (
            mx.e_new.leader != self.node_id
            and now - self._mx_changed_at > self.cfg.candidate_timeout_ns)
        nobody_voted = mx == VOTE_ZERO
        action = decide_vote(self.node_id, own, self.E_new, self.Accepted, votes,
                             timed_out=timeout_fired or candidate_stalled or nobody_voted)
        if action.decision is not VoteDecision.HOLD:
            self.E_new = action.new_e_new
            self._vote_sst.set_and_push(self.node_id, action.new_vote)
            self._charge(self.cfg.election_cpu_ns)
            self.engine.trace.count(f"acuerdo.vote_{action.decision.value}")
            votes = self._vote_sst.snapshot(self.node_id)
        own = votes.get(self.node_id) or VOTE_ZERO
        if won_election(self.node_id, votes, own, self.quorum):
            self._become_leader()

    def _become_leader(self) -> None:
        """Fig. 7 lines 116-127: transition to leader and send diffs."""
        self.role = Role.LEADER
        self.Count = 0
        self._epoch_msg_seq = {}
        self._diff_seq = {}
        self._evict_gen += 1  # seq maps reset without a next_seq bump
        # A new epoch starts with a clean slate: every peer gets a diff
        # (even previously evicted ones — the diff is their way back in)
        # and rejoins slot accounting from the diff onward.
        base = self._ring.next_seq
        for j in list(self._evicted):
            self._evicted.discard(j)
            self._ring.include_in_accounting(j, base)
        self._evict_next_due = -1  # eviction state changed outside the scan
        monitors = self.engine.monitors
        if monitors is not None:
            # Exclusive leadership claim for this epoch (the term of the
            # single-leader invariant).  The full ``(round, leader)``
            # pair is the term: like Paxos ballots, distinct candidates
            # may race distinct epochs sharing a round number.
            monitors.note(self.cluster, "leader", self.node_id,
                          term=self.E_new)
        comm_cpy = self._commit_sst.snapshot(self.node_id)
        hdr = MsgHdr(self.E_new, 0)
        for j in self.peers:
            row = comm_cpy.get(j)
            lo = row.committed if row is not None else HDR_ZERO
            entries = list(self.log.range(lo, self.Accepted,
                                          inclusive_lo=True, inclusive_hi=True))
            dmsg = Message(hdr, tuple(entries), diff_payload_size(entries))
            seq = self._ring.try_send(dmsg, dmsg.size, targets=[j])
            if seq is not None:
                self._diff_seq[j] = seq
                if monitors is not None:
                    monitors.note(self.cluster, "slot_bind", self.node_id,
                                  seq=seq, extra=self._ring.capacity)
            else:
                self._pending_diffs.append((j, dmsg))
        self._charge(self.cfg.broadcast_cpu_ns * len(self.peers))
        if self._election_started_at is not None:
            self.engine.trace.sample(
                "acuerdo.election_duration_ns",
                self.engine.now - self._election_started_at)
            self._election_started_at = None
        self.engine.trace.count("acuerdo.elections_won")
        # Liveness no-op (deviation 2 in the module docstring): gives the
        # followers the first new-epoch commit that unlocks diff delivery.
        self.client_broadcast(NOOP, 1)
        self.cluster.note_new_leader(self.node_id)

    # --------------------------------------------------------------- helpers

    def preseed(self, epoch: Epoch, role: Role) -> None:
        """Install post-election state directly (benchmark fast-path so
        steady-state measurements skip the cold-start election)."""
        self.E_cur = epoch
        self.E_new = epoch
        self.role = role
        self.Accepted = MsgHdr(epoch, 0)
        self.Committed = MsgHdr(epoch, 0)
        self.Next = MsgHdr(epoch, 1)
        self.Count = 0
        self._accept_sst.write_local(self.node_id, self.Accepted)
        self._commit_sst.write_local(self.node_id, CommitRow(self.Committed, 0))
        self._vote_sst.write_local(self.node_id, Vote(epoch, MsgHdr(epoch, 0)))
        monitors = self.engine.monitors
        if monitors is not None:
            if role is Role.LEADER:
                monitors.note(self.cluster, "leader", self.node_id,
                              term=epoch)
            monitors.note(self.cluster, "accept", self.node_id,
                          slot=self.Accepted)
