"""The ordered message log (``map<msghdr, message*> Log`` of Fig. 1).

Messages are stored in header order.  The operations the protocol needs
are append-mostly inserts, point lookup by header (the commit rule reads
``Log[Next]``), range iteration for diff construction (Fig. 7 line 124),
and truncation of the uncommitted tail when applying a diff (Fig. 5
line 62).  A dict plus a bisect-maintained key list gives O(1) in-order
append and O(log n) everything else, which profiling showed is never a
bottleneck next to the event engine.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Optional

from repro.core.types import Message, MsgHdr


class MessageLog:
    """Ordered map from :class:`MsgHdr` to :class:`Message`."""

    def __init__(self) -> None:
        self._by_hdr: dict[MsgHdr, Message] = {}
        self._keys: list[MsgHdr] = []

    def __len__(self) -> int:
        return len(self._by_hdr)

    def __contains__(self, hdr: MsgHdr) -> bool:
        return hdr in self._by_hdr

    def get(self, hdr: MsgHdr) -> Optional[Message]:
        return self._by_hdr.get(hdr)

    def insert(self, msg: Message) -> None:
        """Insert (or overwrite) the entry for ``msg.hdr``."""
        if msg.hdr not in self._by_hdr:
            if not self._keys or msg.hdr > self._keys[-1]:
                self._keys.append(msg.hdr)  # common case: in-order append
            else:
                bisect.insort(self._keys, msg.hdr)
        self._by_hdr[msg.hdr] = msg

    def truncate_from(self, hdr: MsgHdr) -> list[Message]:
        """Remove and return every entry with header >= ``hdr``.

        This is the diff-application rule: uncommitted entries newer than
        the diff's first message belonged to a deposed epoch and are
        replaced by the diff's contents.
        """
        i = bisect.bisect_left(self._keys, hdr)
        removed = [self._by_hdr.pop(k) for k in self._keys[i:]]
        del self._keys[i:]
        return removed

    def range(self, lo: MsgHdr, hi: MsgHdr, inclusive_lo: bool = False,
              inclusive_hi: bool = True) -> Iterator[Message]:
        """Iterate entries with ``lo < hdr <= hi`` (bounds adjustable)."""
        i = (bisect.bisect_left if inclusive_lo else bisect.bisect_right)(self._keys, lo)
        j = (bisect.bisect_right if inclusive_hi else bisect.bisect_left)(self._keys, hi)
        for k in self._keys[i:j]:
            yield self._by_hdr[k]

    def trim_below(self, hdr: MsgHdr) -> int:
        """Garbage-collect entries strictly below ``hdr`` (safe once they
        are committed everywhere or superseded); returns count removed."""
        i = bisect.bisect_left(self._keys, hdr)
        for k in self._keys[:i]:
            del self._by_hdr[k]
        del self._keys[:i]
        return i

    def last_hdr(self) -> Optional[MsgHdr]:
        """Largest header present, or None for an empty log."""
        return self._keys[-1] if self._keys else None

    def headers(self) -> list[MsgHdr]:
        """All headers in order (copy)."""
        return list(self._keys)

    def extend(self, msgs: Iterable[Message]) -> None:
        for m in msgs:
            self.insert(m)
