"""Wiring of an Acuerdo deployment over the simulated RDMA fabric.

The cluster owns what §3 calls the instance: one ring buffer per node
(all-to-all mirrors, §3.2), the three SSTs (Accept, Vote, Commit) and
the node processes.  It implements the harness-facing
:class:`~repro.protocols.base.BroadcastSystem` interface.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.config import AcuerdoConfig
from repro.core.node import AcuerdoNode, Role
from repro.core.types import CommitRow, Epoch, Message, MsgHdr, Vote, HDR_ZERO, VOTE_BYTES, \
    COMMIT_ROW_BYTES, HDR_BYTES
from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.sim.engine import Engine
from repro.substrate import (RdmaParams, RingBuffer, SharedStateTable,
                             SlotReleasePolicy, build_substrate)


class AcuerdoCluster(BroadcastSystem):
    """An ``n = 2f + 1`` node Acuerdo instance."""

    name = "acuerdo"
    client_hop_ns = 1_100   # one-sided write + poll discovery (§4.3)

    def __init__(self, engine: Engine, n: int, config: Optional[AcuerdoConfig] = None,
                 rdma_params: Optional[RdmaParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or AcuerdoConfig()
        # Group-wide commit high-water mark for the monitor event stream:
        # headers are totally ordered and the quorum monitor dedups by
        # slot, so only the first commit of each slot needs an event.
        self._mon_commit_hwm: Optional[object] = None
        self.fabric = self.substrate = build_substrate(
            "rdma", engine, node_ids=self.node_ids, params=rdma_params)

        # One broadcast ring per prospective leader (§3.2: each node has
        # one outgoing buffer and one incoming buffer per remote node).
        self.rings: dict[int, RingBuffer] = {
            i: RingBuffer(self.fabric, i, self.node_ids,
                          capacity=self.cfg.ring_capacity,
                          writes_per_message=1,
                          policy=SlotReleasePolicy.ON_ACCEPT,
                          signal_interval=self.cfg.signal_interval,
                          name=f"acuerdo.ring.{i}")
            for i in self.node_ids}

        self.accept_sst = SharedStateTable(self.fabric, "accept", self.node_ids,
                                           row_size_bytes=HDR_BYTES, initial=HDR_ZERO,
                                           signal_interval=self.cfg.signal_interval)
        self.vote_sst = SharedStateTable(self.fabric, "vote", self.node_ids,
                                         row_size_bytes=VOTE_BYTES, initial=None,
                                         signal_interval=self.cfg.signal_interval)
        self.commit_sst = SharedStateTable(self.fabric, "commit", self.node_ids,
                                           row_size_bytes=COMMIT_ROW_BYTES,
                                           initial=CommitRow(HDR_ZERO, 0),
                                           signal_interval=self.cfg.signal_interval)

        #: external RDMA clients (see repro.core.clientport); replicas
        #: poll their request mailboxes as part of the event loop.  Built
        #: before the nodes, which cache a reference to this list.
        self.client_ports: list = []
        self.nodes: dict[int, AcuerdoNode] = {
            i: AcuerdoNode(self, i, self.cfg) for i in self.node_ids}
        # Poll-elision doorbells: every one-sided deposit into a node's
        # memory (ring slots, SST rows, client mailboxes) wakes its poll
        # loop if parked.  Bound here because replicas never go through
        # fabric.attach().
        for i, node in self.nodes.items():
            self.fabric.nic(i).waker = node
        self._leader_hint: Optional[int] = None

    def register_client_port(self, port) -> None:
        self.client_ports.append(port)

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def preseed_leader(self, leader: int = 0, round_nbr: int = 1) -> None:
        """Install the steady state of epoch ``(round_nbr, leader)`` on
        every node, as if the cold-start election (and its diff) had
        already completed.  Benchmark fast-path; correctness tests run
        the real election instead."""
        epoch = Epoch(round_nbr, leader)
        hdr0 = MsgHdr(epoch, 0)
        for i, node in self.nodes.items():
            node.preseed(epoch, Role.LEADER if i == leader else Role.FOLLOWER)
        # Make every replicated SST copy agree (the writes above only
        # touched each node's own row in its own copy).
        for reader in self.node_ids:
            for owner in self.node_ids:
                self.accept_sst.copies[reader][owner] = hdr0
                self.commit_sst.copies[reader][owner] = CommitRow(hdr0, 0)
                self.vote_sst.copies[reader][owner] = Vote(epoch, hdr0)
        self._leader_hint = leader

    def processes(self):
        return list(self.nodes.values())

    # ---------------------------------------------------------------- client

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        ldr = self.leader_id()
        if ldr is None:
            return False
        self.obs_begin(payload)
        self.nodes[ldr].client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        """The live node currently acting as leader (highest epoch wins
        when a deposed leader has not yet learned of its successor)."""
        best: Optional[AcuerdoNode] = None
        for node in self.nodes.values():
            if node.crashed or node.role is not Role.LEADER:
                continue
            if best is None or node.E_cur > best.E_cur:
                best = node
        return best.node_id if best is not None else None

    # --------------------------------------------------------------- failure

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()
        self.fabric.crash_node(node_id)

    # ------------------------------------------------------------- callbacks

    def record_delivery(self, node_id: int, msg: Message) -> None:
        super().record_delivery(node_id, msg.payload)

    def note_new_leader(self, node_id: int) -> None:
        old = self._leader_hint
        self._leader_hint = node_id
        # Re-route client payloads stranded at a deposed/crashed leader;
        # real clients re-send on timeout, this models that cheaply.
        if old is not None and old != node_id:
            stranded = self.nodes[old].pending_client
            if stranded:
                self.nodes[node_id].pending_client.extend(stranded)
                self.nodes[old].pending_client = []

    # ------------------------------------------------------------ inspection

    def committed_headers(self, node_id: int) -> MsgHdr:
        return self.nodes[node_id].Committed

    def roles(self) -> dict[int, Role]:
        return {i: n.role for i, n in self.nodes.items()}
