"""Pure election rules from Fig. 7, lines 96-111.

The election is a fixed-point computation over the Vote SST: every step
a node either raises its own candidacy or joins the largest vote it can
see, and votes only ever increase.  Separating the *decision* (pure
functions here) from the *actuation* (pushing SST rows, in
:mod:`repro.core.node`) lets the property tests drive thousands of
randomized vote tables through the rules and check:

- monotonicity: a node's vote never decreases;
- the up-to-date property: a winner's last-accepted header dominates
  every voter in its quorum;
- convergence: repeated application reaches a quorum agreeing on one
  candidate, provided non-failed nodes keep responding (no livelock, in
  contrast to Raft/DARE split votes — §3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.types import Epoch, MsgHdr, Vote


def max_vote(votes: Mapping[int, Vote]) -> Vote:
    """Largest vote visible in a Vote-SST snapshot (``max_vote`` of
    Fig. 7).  Empty tables return the zero vote."""
    best: Optional[Vote] = None
    for v in votes.values():
        if v is not None and (best is None or v > best):
            best = v
    from repro.core.types import VOTE_ZERO

    return best if best is not None else VOTE_ZERO


def new_bigger_epoch(e_new: Epoch, seen: Epoch, self_id: int) -> Epoch:
    """A fresh epoch with ``self_id`` as leader that is strictly larger
    than both the node's current proposal and the largest epoch it has
    seen (Fig. 7 line 102 — this is what keeps self-votes increasing)."""
    base = max(e_new.round, seen.round)
    candidate = Epoch(base, self_id)
    if candidate <= e_new or candidate <= seen:
        candidate = Epoch(base + 1, self_id)
    return candidate


class VoteDecision(enum.Enum):
    """Outcome of one election step for a node."""

    VOTE_SELF = "self"
    JOIN_MAX = "join"
    HOLD = "hold"


@dataclass(frozen=True)
class VoteAction:
    """What the node should write to its Vote-SST row (if anything)."""

    decision: VoteDecision
    new_vote: Optional[Vote] = None
    new_e_new: Optional[Epoch] = None


def decide_vote(self_id: int, own_vote: Vote, e_new: Epoch, accepted: MsgHdr,
                votes: Mapping[int, Vote], timed_out: bool) -> VoteAction:
    """One application of the two vote rules (Fig. 7 lines 100-111).

    Parameters mirror the node state: ``own_vote`` is Vote_SST[Self],
    ``e_new`` the epoch the node currently intends to join, ``accepted``
    its last accepted header, ``votes`` its local Vote-SST snapshot, and
    ``timed_out`` whether the current best candidate has stalled.
    """
    mx = max_vote(votes)
    if timed_out or accepted > mx.acpt:
        # Rule 1 — vote for self: no visible candidate is at least as
        # up to date as we are (or the best one stopped responding).
        e = new_bigger_epoch(e_new, mx.e_new, self_id)
        return VoteAction(VoteDecision.VOTE_SELF, Vote(e, accepted), e)
    if mx > own_vote and accepted <= mx.acpt:
        # Rule 2 — join the largest vote; its candidate subsumes us.
        return VoteAction(VoteDecision.JOIN_MAX, Vote(mx.e_new, mx.acpt), mx.e_new)
    return VoteAction(VoteDecision.HOLD)


def won_election(self_id: int, votes: Mapping[int, Vote], own_vote: Vote,
                 quorum: int) -> bool:
    """Fig. 7 lines 114-115: a quorum of rows equals our vote and the
    vote names us leader.

    The zero vote can never win: ``Epoch(0, 0)`` syntactically names
    node 0 as leader, so without this guard a table of never-voted rows
    would "elect" node 0 (caught by the election model checker)."""
    from repro.core.types import VOTE_ZERO

    if own_vote == VOTE_ZERO or own_vote.e_new.leader != self_id:
        return False
    agreeing = sum(1 for v in votes.values() if v == own_vote)
    return agreeing >= quorum
