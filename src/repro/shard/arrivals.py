"""Aggregate open-loop arrivals: 10⁵–10⁶ logical users as one process.

Simulating a million client processes would melt the event heap; the
standard queueing-theory shortcut is that the superposition of many
independent low-rate request streams converges to a Poisson process at
the aggregate rate.  So the shard farm models its user population as a
single :class:`~repro.workloads.openloop.OpenLoopClient` in Poisson
mode — one event per *request*, not per user — with Zipfian key skew
over a key space of ``users`` logical users.  Request keys partition
across groups through the deployment's router.

With macro-event fusion on (DESIGN.md §10) the client goes one step
further: it compiles ``chain_batch`` consecutive requests into a single
heap entry, pre-drawing keys and interarrival gaps in per-tick order
from this stream — one heap push per *batch*, still one execution per
request, bit-identical to the per-event schedule.
"""

from __future__ import annotations

from repro.shard.deployment import ShardedDeployment
from repro.workloads.openloop import OpenLoopClient

#: RNG stream feeding the aggregate arrival process (interarrival gaps
#: and key draws); deployment-level, so it is shared by no group.
ARRIVAL_STREAM = "shard.arrivals"


def aggregate_client(deployment: ShardedDeployment, users: int,
                     rate_rps: float, skew: float = 0.99,
                     message_size: int = 64,
                     rng_stream: str = ARRIVAL_STREAM) -> OpenLoopClient:
    """An open-loop client modelling ``users`` logical users issuing
    ``rate_rps`` aggregate requests/second.

    ``skew`` is the Zipfian theta over the user key space (hot users
    dominate); ``skew=0`` selects uniformly.  The client is *not*
    started — drive it like any open-loop client.
    """
    if users < 1:
        raise ValueError(f"users must be >= 1, got {users}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    period_ns = max(1, int(1e9 / rate_rps))
    key_dist = "zipfian" if skew > 0 else "uniform"
    return OpenLoopClient(deployment, period_ns=period_ns,
                          message_size=message_size, arrival="poisson",
                          key_dist=key_dist, key_space=users, skew=skew,
                          rng_stream=rng_stream)
