"""Key-partitioned routing in front of N consensus groups.

The router is the client-facing half of a sharded deployment: every
request names a key, the key hashes to one of ``shards`` groups, and
the group's own ``submit`` path takes it from there — the partitioned
key-space shape that *RDMA vs. RPC for Implementing Distributed Data
Structures* uses to scale one-group data structures out.

Hashing is **stable**: independent of ``PYTHONHASHSEED``, of the host,
and of the process the router runs in, so a sweep fanned across a
process pool (``REPRO_WORKERS``) routes every key exactly like the
sequential run, and a key's home shard can be recorded in goldens.
"""

from __future__ import annotations

from typing import Any, Iterable

_M64 = (1 << 64) - 1

#: FNV-1a 64-bit offset basis / prime.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _splitmix64(x: int) -> int:
    """Finalising mix of splitmix64 — a full-avalanche integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for b in data:
        h = ((h ^ b) * _FNV_PRIME) & _M64
    return h


def stable_key_hash(key: Any) -> int:
    """A deterministic 64-bit hash of ``key``.

    Unlike built-in ``hash()``, the result does not depend on
    ``PYTHONHASHSEED`` (randomised per interpreter for str/bytes), so
    key→shard placement is reproducible across runs, hosts and pool
    workers.  Ints mix through splitmix64; strings and bytes through
    FNV-1a; anything else hashes its ``repr`` (deterministic for the
    tuples/dataclasses used as payload keys in this repo).
    """
    if isinstance(key, bool):        # bool is an int subclass; keep distinct
        key = repr(key)
    if isinstance(key, int):
        return _splitmix64(key & _M64)
    if isinstance(key, str):
        return _fnv1a(key.encode("utf-8"))
    if isinstance(key, bytes):
        return _fnv1a(key)
    return _fnv1a(repr(key).encode("utf-8"))


class ShardRouter:
    """Maps request keys onto ``shards`` consensus groups."""

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, key: Any) -> int:
        """The home group of ``key`` — stable across processes/runs."""
        return stable_key_hash(key) % self.shards

    def histogram(self, keys: Iterable[Any]) -> list[int]:
        """Per-shard key counts for ``keys`` (skew/balance inspection)."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts
