"""N independent consensus groups behind one key-partitioned router.

A :class:`ShardedDeployment` instantiates ``shards`` independent
Acuerdo/Raft/Zab/... groups inside one :class:`~repro.sim.engine.Engine`
and fronts them with a :class:`~repro.shard.router.ShardRouter`: every
submitted payload names a key, the key hashes to its home group, and
that group runs the ordinary single-group protocol.  Groups share
nothing but the engine — each builds its own substrate, and each is
constructed inside ``engine.scoped(g)`` so its RNG streams, process
names and span labels live under the ``shard.<g>.*`` hierarchy.

Two determinism properties hold by construction:

- **1-shard transparency** — with ``shards=1`` no scope is entered, the
  single group is built exactly as :func:`~repro.harness.factory.
  build_from_spec` builds it standalone, and routing adds only
  host-side bookkeeping; the trace fingerprint is bit-identical to the
  equivalent plain run (property-tested for acuerdo/raft/zab).
- **stable placement** — the router's key hash is independent of
  ``PYTHONHASHSEED`` and of the worker process, so sweeps fanned over
  ``REPRO_WORKERS`` route identically to sequential runs.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.shard.router import ShardRouter
from repro.sim.engine import Engine
from repro.sim.failure import FailureInjector
from repro.sim.process import Process


def default_key_of(payload: Any) -> Any:
    """Extract the routing key from a payload.

    Keyed open-loop payloads are ``("ol", i, key)`` tuples — the third
    element is the key.  Anything else routes on the payload itself,
    so unkeyed workloads still spread deterministically.
    """
    if isinstance(payload, tuple) and len(payload) >= 3:
        return payload[2]
    return payload


class ShardedDeployment:
    """``shards`` single-group deployments plus routing and aggregation.

    Implements the client-facing slice of the
    :class:`~repro.protocols.base.BroadcastSystem` surface (``engine``,
    ``submit``, ``processes``) so the workload clients drive it
    unmodified; per-group inspection goes through :attr:`groups`.

    ``group_config`` optionally supplies per-group constructor kwargs:
    a dict applies to every group, a callable ``g -> dict`` is invoked
    per group index (e.g. to widen heartbeat periods so idle shards
    park between arrivals).
    """

    def __init__(self, engine: Engine, system: str = "acuerdo", shards: int = 1,
                 n: int = 3, record_deliveries: bool = False,
                 key_of: Optional[Callable[[Any], Any]] = None,
                 group_config: "dict | Callable[[int], dict] | None" = None,
                 group_range: "tuple[int, int] | None" = None):
        from repro.harness.factory import build_from_spec
        from repro.harness.runspec import RunSpec

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        lo, hi = (0, shards) if group_range is None else group_range
        if not (0 <= lo < hi <= shards):
            raise ValueError(
                f"group_range must be a half-open slice of 0..{shards}, "
                f"got {group_range!r}")
        self.engine = engine
        self.system_name = system
        self.shards = shards
        self.n = n
        self.group_range = (lo, hi)
        self.router = ShardRouter(shards)
        self.key_of = key_of or default_key_of
        # Slot g is None outside group_range: those groups live in other
        # workers' slices (repro.shard.parallel) and keys routed there
        # are counted as `foreign`, not submitted.  The router always
        # hashes over the FULL shard count, so placement is identical
        # whether a deployment holds all groups or a slice of them.
        self.groups: list[Optional[BroadcastSystem]] = [None] * shards
        group_spec = RunSpec(system=system, n=n)
        for g in range(lo, hi):
            kwargs = (group_config(g) if callable(group_config)
                      else dict(group_config or {}))
            # One shard stays in the flat identity space: bit-identical
            # to the plain single-group run (see module docstring).
            scope = engine.scoped(g) if shards > 1 else nullcontext()
            with scope:
                self.groups[g] = build_from_spec(
                    group_spec, engine, record_deliveries=record_deliveries,
                    **kwargs)
        # Per-shard aggregation (host-side only; no engine events).
        self.submitted = [0] * shards
        self.committed = [0] * shards
        self.dropped = [0] * shards
        self.latencies_ns: list[list[int]] = [[] for _ in range(shards)]
        #: Keys whose home group lies outside this slice's group_range
        #: (always 0 on a full deployment).
        self.foreign = 0

    def group_ids(self) -> range:
        """The original group indices this deployment instance holds."""
        return range(*self.group_range)

    def local_groups(self) -> "list[tuple[int, BroadcastSystem]]":
        return [(g, self.groups[g]) for g in self.group_ids()]

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start every group without waiting for leaders; most callers
        want :meth:`settle` (which starts and settles) instead."""
        for _g, group in self.local_groups():
            group.start()

    def settle(self, preseed: bool = True) -> None:
        """Start every group and bring it to a serving state (see
        :func:`~repro.harness.factory.settle` — do not call
        :meth:`start` first); groups settle in index order, sharing the
        engine clock."""
        from repro.harness.factory import settle

        for _g, group in self.local_groups():
            settle(group, preseed=preseed)

    # ---------------------------------------------------------------- client

    def shard_of(self, key: Any) -> int:
        return self.router.shard_of(key)

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        """Route ``payload`` by its key (via ``key_of``) and submit it to
        the home group.  Returns False when that group has no leader."""
        return self.submit_keyed(self.key_of(payload), payload, size_bytes,
                                 on_commit)

    def submit_keyed(self, key: Any, payload: Any, size_bytes: int,
                     on_commit: Optional[CommitCallback] = None) -> bool:
        g = self.router.shard_of(key)
        if self.groups[g] is None:
            # The key's home group lives in another worker's slice.  The
            # key and its arrival gap were still drawn — keeping every
            # RNG stream identical to the full-farm run — but the submit
            # is someone else's; report success so open-loop clients
            # account nothing locally.
            self.foreign += 1
            return True
        self.submitted[g] += 1
        t0 = self.engine.now

        def _done(x: Any) -> None:
            self.committed[g] += 1
            self.latencies_ns[g].append(self.engine.now - t0)
            if on_commit is not None:
                on_commit(x)

        ok = self.groups[g].submit(payload, size_bytes, _done)
        if not ok:
            self.dropped[g] += 1
        return ok

    # --------------------------------------------------------------- failure

    def processes(self) -> list[Process]:
        """Every replica process across all groups (group-tagged, so a
        :class:`~repro.sim.failure.FailureInjector` accepts ``(group,
        node)`` addresses)."""
        return [p for _g, group in self.local_groups()
                for p in group.processes()]

    def injector(self) -> FailureInjector:
        """A failure injector spanning every group's processes."""
        return FailureInjector(self.engine, self.processes())

    def leader_of(self, group: int) -> Optional[int]:
        return self.groups[group].leader_id()

    # ------------------------------------------------------------ aggregates

    def total_committed(self) -> int:
        return sum(self.committed)

    def total_submitted(self) -> int:
        return sum(self.submitted)

    def all_latencies_ns(self) -> list[int]:
        """Commit latencies across all shards, in commit order per shard."""
        return [lat for per_shard in self.latencies_ns for lat in per_shard]

    def shard_fingerprints(self, violations: "tuple | list" = ()) -> "dict[int, str]":
        """Digest each local group's observable state: sorted substrate
        counters, submit/commit/drop counts, the exact latency sequence,
        the leader id, and the group's monitor-violation count (pass the
        run's :class:`~repro.monitors.registry.Violation` list).

        Tracer counters are deliberately excluded — they are globally
        named (``acuerdo.deliver``), not shard-scoped — so this is the
        per-group equivalence oracle for ``repro.shard.parallel``: a
        slice worker and the serial farm must produce bit-identical
        digests for every group the slice owns.
        """
        import hashlib

        vio_by_group: dict[Optional[int], int] = {}
        for v in violations:
            g = getattr(v, "group", None)
            vio_by_group[g] = vio_by_group.get(g, 0) + 1
        out = {}
        for g, group in self.local_groups():
            payload = repr((
                sorted(group.substrate_counters().items()),
                self.submitted[g], self.committed[g], self.dropped[g],
                tuple(self.latencies_ns[g]),
                group.leader_id(),
                vio_by_group.get(g, 0),
            ))
            out[g] = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return out

    def metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Per-shard and aggregate metrics under ``shard.<g>.*`` /
        ``shard.total.*`` (substrate counters re-namespaced per group)."""
        reg = registry if registry is not None else MetricsRegistry()
        for g, group in self.local_groups():
            prefix = f"shard.{g}"
            reg.record(f"{prefix}.submitted", self.submitted[g])
            reg.record(f"{prefix}.committed", self.committed[g])
            reg.record(f"{prefix}.dropped", self.dropped[g])
            lats = self.latencies_ns[g]
            if lats:
                reg.record(f"{prefix}.mean_latency_ns", sum(lats) / len(lats))
            reg.ingest_namespaced(prefix, group.substrate_counters())
        reg.record("shard.count", self.shards)
        reg.record("shard.total.submitted", self.total_submitted())
        reg.record("shard.total.committed", self.total_committed())
        reg.record("shard.total.dropped", sum(self.dropped))
        if self.foreign:
            reg.record("shard.foreign", self.foreign)
        return reg


def schedule_farm_partitions(dep: ShardedDeployment,
                             partitions: "tuple | list",
                             base_ns: Optional[int] = None) -> None:
    """Apply ``RunSpec.partitions`` entries to a farm: each entry's
    ``g:n``-scoped members name exactly one group (enforced up front by
    :func:`~repro.sim.failure.check_group_schedules`), and the cut lands
    on that group's substrate with the scope stripped back to bare node
    ids.  Entries whose group falls outside ``dep.group_range`` are
    skipped — they belong to another worker's slice."""
    from repro.sim.engine import ms
    from repro.sim.failure import FailureInjector, parse_partition

    t0 = dep.engine.now if base_ns is None else base_ns
    lo, hi = dep.group_range
    for entry in partitions:
        groups, start_ms, end_ms = parse_partition(entry)
        members = [m for grp in groups for m in grp]
        if dep.shards == 1:
            target = 0
            bare = tuple(tuple(m[1] if isinstance(m, tuple) else m
                               for m in grp) for grp in groups)
        else:
            target = members[0][0]
            bare = tuple(tuple(m[1] for m in grp) for grp in groups)
        if not lo <= target < hi:
            continue
        injector = FailureInjector(dep.engine, (),
                                   substrate=dep.groups[target].substrate)
        injector.partition_at(t0 + ms(start_ms), *bare)
        if end_ms is not None:
            injector.heal_at(t0 + ms(end_ms))
