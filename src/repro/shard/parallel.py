"""Space-parallel shard farms: disjoint group slices on worker engines.

A :class:`~repro.shard.deployment.ShardedDeployment` of N groups is a
set of *independent* consensus groups: groups share the engine clock
and heap but never exchange messages, and every per-group identity
(RNG streams, process names, span labels, metrics namespaces) is fixed
at construction time by ``engine.scoped(g)``.  That independence makes
the farm space-partitionable: split the groups into contiguous slices,
run each slice in its own worker process on its own engine, and merge
the per-shard results — sidestepping both the per-event interpreter
floor and the GIL that cap a single event loop.

Why a slice is bit-identical to the same groups inside the full farm:

- **identity** — the slice deployment is constructed with the *original*
  group indices (``group_range``), so group g's streams are seeded
  ``f"{seed}|shard.{g}.{...}"`` exactly as in the serial farm, and the
  router hashes over the full shard count, so key placement is
  unchanged.
- **arrivals** — the slice replays the FULL aggregate arrival stream
  (``shard.arrivals``): every key and inter-arrival gap is drawn in the
  same order as serially.  Keys homed outside the slice are counted as
  ``foreign`` and skipped; the open-loop client never inspects submit
  results, so local behaviour is unaffected.
- **ordering** — dropping foreign groups' events removes heap entries
  but preserves the relative (time, seq) order of every surviving
  event: seq values shift by a constant-per-prefix amount, and the heap
  orders lexicographically, so in-slice events execute in the same
  relative order at the same simulated times.

This argument needs one precondition, checked at run time: ``settle``
must leave the engine clock at 0 (true for the Acuerdo preseeded start;
protocols that *run* an election to settle advance the clock
cumulatively per group, making slice and farm diverge — those raise).

Merging is deterministic: each group is owned by exactly one slice, so
per-shard arrays concatenate exactly; the latency multiset (and hence
every percentile) is identical; ``events_executed``/``heap_pushes``
sum to the parallel host cost (NOT comparable 1:1 to the serial farm —
foreign-event elision makes the sum smaller).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.harness.runspec import RunSpec
from repro.harness.shardsweep import (ShardPoint, _percentile,
                                      farm_group_config)
from repro.sim.engine import ms


def slice_ranges(shards: int, workers: int) -> "list[tuple[int, int]]":
    """Partition ``range(shards)`` into at most ``workers`` contiguous
    near-equal half-open slices (never empty; at most ``shards`` of
    them).  Deterministic in its arguments."""
    if shards < 1 or workers < 1:
        raise ValueError(
            f"need shards >= 1 and workers >= 1, got {shards}/{workers}")
    nslices = min(shards, workers)
    base, extra = divmod(shards, nslices)
    out, lo = [], 0
    for i in range(nslices):
        hi = lo + base + (1 if i < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


@dataclass
class SliceResult:
    """What one slice worker sends home (picklable, group-indexed)."""

    lo: int
    hi: int
    submitted: list          # per group in [lo, hi), in group order
    committed: list
    dropped: list
    latencies_ns: list       # list[list[int]], same indexing
    fingerprints: dict       # group -> digest (shard_fingerprints)
    violations: list         # (group_or_None, str(violation)) pairs
    foreign: int
    events_executed: int
    heap_pushes: int
    sim_elapsed_ns: int
    seconds: float           # wall-clock inside the worker
    spans: list = field(default_factory=list)


def _slice_crashes(spec: RunSpec, lo: int, hi: int) -> "tuple[str, ...]":
    """The crash entries whose target group falls in [lo, hi).  With one
    shard every entry is local; with more, validation has already forced
    the unambiguous ``g:n`` form."""
    from repro.sim.failure import parse_crash

    if spec.shards == 1:
        return spec.crashes
    keep = []
    for entry in spec.crashes:
        addr, _ = parse_crash(entry)
        if isinstance(addr, tuple) and lo <= addr[0] < hi:
            keep.append(entry)
    return tuple(keep)


def run_slice(spec: RunSpec, lo: int, hi: int,
              heartbeat_us: Optional[int] = None) -> SliceResult:
    """Run groups [lo, hi) of ``spec``'s farm on a fresh engine and
    collect the per-shard observables.  Module-level and picklable, so
    :func:`~repro.harness.parallel.run_points` can fan it out."""
    from repro.shard import ShardedDeployment, aggregate_client

    t_wall = _time.perf_counter()
    engine = spec.make_engine()
    dep = ShardedDeployment(engine, system=spec.system, shards=spec.shards,
                            n=spec.n,
                            group_config=farm_group_config(spec, heartbeat_us),
                            group_range=(lo, hi))
    dep.settle()
    if engine.now != 0:
        raise RuntimeError(
            f"system {spec.system!r} advances the engine clock while "
            f"settling (now={engine.now}ns after settle), so a slice's "
            f"clock would diverge from the serial farm's; shard-parallel "
            f"execution needs a clock-neutral settle (acuerdo preseeds "
            f"without running the engine) — use workers=1")
    if spec.crashes:
        from repro.sim.failure import schedule_crashes

        schedule_crashes(engine, dep.processes(), _slice_crashes(spec, lo, hi))
    if spec.partitions:
        from repro.shard.deployment import schedule_farm_partitions

        schedule_farm_partitions(dep, spec.partitions)
    if spec.byz:
        # check_group_schedules restricts byz to shards == 1, where the
        # single slice holds the single group.
        from repro.sim.failure import schedule_byz

        schedule_byz(engine, dep.groups[0], spec.byz)
    client = aggregate_client(dep, users=spec.users,
                              rate_rps=spec.arrival_rate, skew=spec.skew,
                              message_size=spec.payload_bytes)
    t_start = engine.now
    client.start()
    engine.run(until=t_start + ms(spec.duration_ms))
    client.stop()
    engine.run(until=t_start + ms(spec.duration_ms) + ms(1))
    violations = (engine.monitors.finish()
                  if engine.monitors is not None else [])
    spans = list(engine.obs.messages) if getattr(engine, "obs", None) else []
    return SliceResult(
        lo=lo, hi=hi,
        submitted=[dep.submitted[g] for g in range(lo, hi)],
        committed=[dep.committed[g] for g in range(lo, hi)],
        dropped=[dep.dropped[g] for g in range(lo, hi)],
        latencies_ns=[dep.latencies_ns[g] for g in range(lo, hi)],
        fingerprints=dep.shard_fingerprints(violations),
        violations=[(v.group, str(v)) for v in violations],
        foreign=dep.foreign,
        events_executed=engine.events_executed,
        heap_pushes=engine.heap_pushes,
        sim_elapsed_ns=engine.now - t_start,
        seconds=_time.perf_counter() - t_wall,
        spans=spans,
    )


def parallel_shard_point(spec: RunSpec,
                         heartbeat_us: Optional[int] = None,
                         collect: Optional[dict] = None,
                         pool_workers: Optional[int] = None) -> ShardPoint:
    """Measure ``spec``'s farm point by fanning contiguous group slices
    over ``spec.workers`` processes and merging deterministically.

    The merge is exact, not approximate: each group is owned by one
    slice, per-shard counters and latency sequences concatenate in
    group order, and percentiles are computed over the identical
    latency multiset — so the returned point matches ``workers=1``
    bit-for-bit (modulo the host-cost fields, which sum the workers'
    engines; see module docstring).

    ``collect`` (a dict) receives the merge's side channel:
    ``shard_fingerprints``, ``slices``, ``slice_seconds``,
    ``violations``, ``foreign``, and ``spans``.  ``pool_workers``
    overrides the process-pool width without changing the slicing —
    ``pool_workers=1`` runs the same slices sequentially, which is how
    hostperf measures honest per-slice inner times on small hosts.
    """
    from repro.harness.parallel import run_points
    from repro.sim.failure import check_group_schedules

    if spec.users < 1 or spec.arrival_rate <= 0:
        raise ValueError("parallel_shard_point needs spec.users >= 1 and "
                         f"spec.arrival_rate > 0, got users={spec.users}, "
                         f"arrival_rate={spec.arrival_rate}")
    check_group_schedules(spec.shards, spec.crashes, spec.partitions,
                          spec.byz)
    slices = slice_ranges(spec.shards, max(1, spec.workers))
    pool = len(slices) if pool_workers is None else pool_workers
    results: "list[SliceResult]" = run_points(
        run_slice, [(spec, lo, hi, heartbeat_us) for lo, hi in slices],
        workers=pool)

    sim_elapsed = {r.sim_elapsed_ns for r in results}
    if len(sim_elapsed) != 1:
        raise RuntimeError(
            f"slices disagree on simulated elapsed time ({sorted(sim_elapsed)}"
            f" ns) — the determinism precondition was violated")
    submitted: "list[int]" = []
    committed: "list[int]" = []
    dropped: "list[int]" = []
    lats: "list[int]" = []
    fingerprints: "dict[int, str]" = {}
    violations: "list[tuple[Any, str]]" = []
    spans: "list[Any]" = []
    for r in results:                      # slice order == group order
        submitted.extend(r.submitted)
        committed.extend(r.committed)
        dropped.extend(r.dropped)
        for per_group in r.latencies_ns:
            lats.extend(per_group)
        fingerprints.update(r.fingerprints)
        violations.extend(r.violations)
        spans.extend(r.spans)
    lats.sort()
    total_sub = sum(submitted)
    elapsed_s = results[0].sim_elapsed_ns / 1e9
    if collect is not None:
        collect["shard_fingerprints"] = fingerprints
        collect["slices"] = slices
        collect["slice_seconds"] = [r.seconds for r in results]
        collect["violations"] = [text for _g, text in violations]
        collect["foreign"] = sum(r.foreign for r in results)
        collect["spans"] = spans
    return ShardPoint(
        system=spec.system,
        shards=spec.shards,
        n=spec.n,
        users=spec.users,
        skew=spec.skew,
        arrival_rate=spec.arrival_rate,
        duration_ms=spec.duration_ms,
        submitted=total_sub,
        committed=sum(committed),
        dropped=sum(dropped),
        throughput_rps=sum(committed) / elapsed_s if elapsed_s > 0 else 0.0,
        mean_latency_us=(sum(lats) / len(lats)) / 1e3 if lats else 0.0,
        p50_latency_us=_percentile(lats, 50) / 1e3,
        p99_latency_us=_percentile(lats, 99) / 1e3,
        hottest_share=max(submitted) / total_sub if total_sub else 0.0,
        events_executed=sum(r.events_executed for r in results),
        heap_pushes=sum(r.heap_pushes for r in results),
        violations=len(violations),
        workers=len(slices),
    )
