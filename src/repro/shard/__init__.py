"""Sharded multi-group deployments: many consensus groups, one engine.

The single-group core scales *up* (window, message size, replica
count); this package scales *out*: a
:class:`~repro.shard.deployment.ShardedDeployment` hosts N independent
groups behind a key-hashed :class:`~repro.shard.router.ShardRouter`,
and :func:`~repro.shard.arrivals.aggregate_client` models 10⁵–10⁶
logical users as one Poisson/Zipfian open-loop arrival process.  See
DESIGN.md "Sharded deployment" for the identity scheme and the
determinism argument; ``repro shard`` and
:mod:`repro.harness.shardsweep` drive the shard-count × skew sweeps.
"""

from repro.shard.arrivals import ARRIVAL_STREAM, aggregate_client
from repro.shard.deployment import (ShardedDeployment, default_key_of,
                                    schedule_farm_partitions)
from repro.shard.parallel import (SliceResult, parallel_shard_point,
                                  run_slice, slice_ranges)
from repro.shard.router import ShardRouter, stable_key_hash

__all__ = [
    "ARRIVAL_STREAM",
    "ShardRouter",
    "ShardedDeployment",
    "SliceResult",
    "aggregate_client",
    "default_key_of",
    "parallel_shard_point",
    "run_slice",
    "schedule_farm_partitions",
    "slice_ranges",
    "stable_key_hash",
]
