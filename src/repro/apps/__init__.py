"""Applications built on atomic broadcast.

- :mod:`repro.apps.smr` — generic state-machine replication: apply every
  delivered operation to a deterministic state machine at each replica
  (§2.2's motivation for atomic broadcast);
- :mod:`repro.apps.hashtable` — the §4.3 use case: a replicated
  in-memory hash table where updates (create/set/delete) are replicated
  through the broadcast and gets are served locally at any replica.
"""

from repro.apps.smr import StateMachine, ReplicatedStateMachine
from repro.apps.hashtable import HashTableStateMachine, ReplicatedHashTable, KvOp

__all__ = [
    "StateMachine",
    "ReplicatedStateMachine",
    "HashTableStateMachine",
    "ReplicatedHashTable",
    "KvOp",
]
