"""State-machine replication over any :class:`BroadcastSystem`.

This is the classic construction the paper motivates in §2.2: run a
deterministic service on every replica and feed all replicas the same
totally ordered operation stream.  Because every delivered operation is
applied in delivery order, replica states can only diverge if the
broadcast layer violates Total Order — which makes
:meth:`ReplicatedStateMachine.assert_replicas_consistent` a sharp
end-to-end safety probe used throughout the integration tests.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback


class StateMachine(abc.ABC):
    """A deterministic service replicated via atomic broadcast."""

    @abc.abstractmethod
    def apply(self, op: Any) -> Any:
        """Apply one operation; must be deterministic."""

    @abc.abstractmethod
    def digest(self) -> Any:
        """A comparable summary of the current state (for divergence
        checks); cheap enough to call after every test run."""


class ReplicatedStateMachine:
    """Wires one state-machine replica per broadcast node.

    Operations submitted through :meth:`submit` are broadcast, and every
    replica applies them in delivery order.
    """

    def __init__(self, system: BroadcastSystem,
                 factory: Callable[[], StateMachine]):
        self.system = system
        self.replicas: dict[int, StateMachine] = {
            nid: factory() for nid in system.node_ids}
        self.applied_counts: dict[int, int] = {nid: 0 for nid in system.node_ids}
        system.delivery_listeners.append(self._on_deliver)

    def _on_deliver(self, node_id: int, payload: Any) -> None:
        if node_id in self.replicas:
            self.replicas[node_id].apply(payload)
            self.applied_counts[node_id] += 1

    def submit(self, op: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        """Broadcast an operation to all replicas."""
        return self.system.submit(op, size_bytes, on_commit)

    def replica(self, node_id: int) -> StateMachine:
        return self.replicas[node_id]

    def assert_replicas_consistent(self, nodes: Optional[list[int]] = None,
                                   up_to_min: bool = True) -> None:
        """Check replica digests agree.

        With ``up_to_min`` (default) only replicas that have applied the
        same number of operations are compared — lagging replicas are
        allowed to trail, never to diverge."""
        ids = nodes if nodes is not None else list(self.replicas)
        by_count: dict[int, list[int]] = {}
        for nid in ids:
            by_count.setdefault(self.applied_counts[nid], []).append(nid)
        for count, group in by_count.items():
            digests = {nid: self.replicas[nid].digest() for nid in group}
            first = next(iter(digests.values()))
            for nid, d in digests.items():
                if d != first:
                    raise AssertionError(
                        f"replica divergence at {count} ops: node {nid}")
        if not up_to_min and len(by_count) > 1:
            raise AssertionError(f"replicas applied unequal op counts: {by_count}")
