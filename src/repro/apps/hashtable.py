"""The §4.3 application: a replicated RDMA hash table.

Every replica holds a complete copy of the table.  Update commands
(create / set / delete) from clients are replicated through the atomic
broadcast for crash resilience and applied on delivery; once committed
they are acknowledged back to the client.  Gets bypass the broadcast
entirely — a client reads any replica's copy directly (over RDMA in the
paper; a local read here).

This configuration is what Fig. 9 benchmarks against ZooKeeper and etcd
deployments under YCSB-load.
"""

from __future__ import annotations

import zlib
from typing import Any, NamedTuple, Optional

from repro.apps.smr import ReplicatedStateMachine, StateMachine
from repro.protocols.base import BroadcastSystem, CommitCallback


class KvOp(NamedTuple):
    """One update command.

    ``kind`` is "create", "set" or "delete" (the paper's update set).
    """

    kind: str
    key: str
    value: Optional[str] = None

    def wire_size(self) -> int:
        """Approximate serialized size used by the cost model."""
        return 8 + len(self.key) + (len(self.value) if self.value else 0)


class HashTableStateMachine(StateMachine):
    """The deterministic table each replica applies updates to."""

    def __init__(self) -> None:
        self.table: dict[str, str] = {}
        self.ops_applied = 0
        self._digest = 0

    def apply(self, op: Any) -> Any:
        if not isinstance(op, KvOp):
            return None  # foreign traffic on the same broadcast: ignore
        self.ops_applied += 1
        if op.kind == "create" or op.kind == "set":
            self.table[op.key] = op.value or ""
        elif op.kind == "delete":
            self.table.pop(op.key, None)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        # Rolling digest keeps consistency checks O(1) per op.
        self._digest = zlib.crc32(
            f"{op.kind}|{op.key}|{op.value}".encode(), self._digest)
        return True

    def digest(self) -> Any:
        return (self.ops_applied, self._digest)


class ReplicatedHashTable:
    """Client-facing API of the replicated table."""

    def __init__(self, system: BroadcastSystem):
        self.system = system
        self.smr = ReplicatedStateMachine(system, HashTableStateMachine)

    # --------------------------------------------------------------- updates

    def create(self, key: str, value: str,
               on_commit: Optional[CommitCallback] = None) -> bool:
        return self._update(KvOp("create", key, value), on_commit)

    def set(self, key: str, value: str,
            on_commit: Optional[CommitCallback] = None) -> bool:
        return self._update(KvOp("set", key, value), on_commit)

    def delete(self, key: str,
               on_commit: Optional[CommitCallback] = None) -> bool:
        return self._update(KvOp("delete", key), on_commit)

    def submit_op(self, op: KvOp,
                  on_commit: Optional[CommitCallback] = None) -> bool:
        """Submit a pre-built op (the YCSB driver path)."""
        return self._update(op, on_commit)

    def _update(self, op: KvOp, on_commit: Optional[CommitCallback]) -> bool:
        return self.smr.submit(op, op.wire_size(), on_commit)

    # ------------------------------------------------------------------ gets

    def get(self, node_id: int, key: str) -> Optional[str]:
        """Read ``key`` from one replica's copy — served locally, off the
        broadcast path (§4.3: direct RDMA read from any replica)."""
        replica: HashTableStateMachine = self.smr.replica(node_id)  # type: ignore[assignment]
        return replica.table.get(key)

    def size(self, node_id: int) -> int:
        replica: HashTableStateMachine = self.smr.replica(node_id)  # type: ignore[assignment]
        return len(replica.table)

    def assert_replicas_consistent(self) -> None:
        self.smr.assert_replicas_consistent()
