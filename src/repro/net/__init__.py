"""Simulated kernel TCP/IP backend of :mod:`repro.substrate`.

libpaxos, ZooKeeper (Zab) and etcd (Raft) run over this package
(protocols reach it through ``repro.substrate`` only).  The
point of modelling TCP separately from RDMA is the paper's motivating
observation (§1): TCP pays per-message *kernel* CPU costs (syscalls,
stack traversal, interrupts, wakeups) on both ends, which is where the
order-of-magnitude latency gap in Fig. 8 comes from.  The wire itself is
the same 25 GbE.
"""

from repro.net.tcp import TcpParams, TcpEndpoint, TcpNetwork

__all__ = ["TcpParams", "TcpEndpoint", "TcpNetwork"]
