"""Kernel TCP/IP channels: reliable FIFO streams with per-message CPU cost.

Cost model (defaults calibrated so the TCP atomic-broadcast baselines
land in the paper's 10²–10³ µs latency band while the RDMA systems sit
at ~10¹ µs):

- each send charges a syscall + kernel-stack cost on the *sender's* CPU;
- each receive charges the same on the *receiver's* CPU when its event
  loop picks the message up;
- delivery additionally pays interrupt + softirq + wakeup latency on top
  of wire time, because unlike one-sided RDMA the remote kernel must run
  before the payload is visible to userspace.

Streams are FIFO and lossless (retransmission appears as delay), so
protocol logic above this layer can rely on ordering exactly as Zab does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.sim.engine import Engine, us
from repro.sim.process import Process


@dataclass
class TcpParams:
    """Cost knobs for the kernel TCP path.

    ``wakeup_latency_ns`` models epoll/interrupt delivery: the receiving
    process is woken rather than discovering data by polling L1 like the
    RDMA receivers do.
    """

    kernel_send_cpu_ns: int = 2_200
    kernel_recv_cpu_ns: int = 2_200
    stack_latency_ns: int = 9_000   # one-way kernel stack + interrupt + softirq
    wakeup_latency_ns: int = 3_000  # scheduler wakeup of the blocked/epolling process
    propagation_ns: int = 550
    link_bandwidth_bytes_per_ns: float = 3.125
    header_bytes: int = 66          # eth + ip + tcp
    loss_prob: float = 0.0
    rto_ns: int = us(200)

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes on the wire for one payload (eth+ip+tcp framing)."""
        return payload_bytes + self.header_bytes

    def tx_serialization_ns(self, payload_bytes: int) -> int:
        """Egress-link occupancy for one send."""
        return max(1, int(self.wire_bytes(payload_bytes) / self.link_bandwidth_bytes_per_ns))


class TcpEndpoint:
    """One node's TCP stack: an inbox plus egress serialisation state."""

    def __init__(self, engine: Engine, process: Process, params: TcpParams):
        self.engine = engine
        self.process = process
        self.params = params
        self.inbox: deque[tuple[int, Any, int]] = deque()  # (src, payload, size)
        self.tx_free_at = 0
        self.sent = 0
        self.received = 0

    @property
    def node_id(self) -> int:
        """The owning process's node id."""
        return self.process.node_id

    def deliver(self, src: int, payload: Any, size: int) -> None:
        """Called by the network when a message reaches this host's kernel."""
        if self.process.crashed:
            return
        self.inbox.append((src, payload, size))
        # epoll/interrupt: wake the process (RDMA receivers never get this).
        self.process.wake(self.params.wakeup_latency_ns)

    def drain(self, max_batch: Optional[int] = None) -> list[tuple[int, Any]]:
        """Pop pending messages, charging recv syscall CPU per message.

        Intended to be called from the owner's ``on_poll``; the CPU
        charge pushes the node's ``busy_until`` forward so heavy receive
        load genuinely costs time.
        """
        out: list[tuple[int, Any]] = []
        cpu = self.process.cpu
        while self.inbox and (max_batch is None or len(out) < max_batch):
            src, payload, _size = self.inbox.popleft()
            out.append((src, payload))
            self.received += 1
            cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(
                self.params.kernel_recv_cpu_ns * cpu.speed_factor)
        return out


class TcpNetwork:
    """All-to-all TCP connectivity between a set of processes."""

    def __init__(self, engine: Engine, params: Optional[TcpParams] = None):
        self.engine = engine
        self.params = params or TcpParams()
        self.endpoints: dict[int, TcpEndpoint] = {}
        self._last_delivery: dict[tuple[int, int], int] = {}
        self._loss_rng = engine.rng("tcp.loss")
        self._partition = None

    def set_partition(self, *groups) -> None:
        """Partition the network (see RdmaFabric.set_partition)."""
        self._partition = [frozenset(g) for g in groups]

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition = None

    def _blocked(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        return not any(src in g and dst in g for g in self._partition)

    def attach(self, process: Process) -> TcpEndpoint:
        """Create this process's TCP stack and register it for delivery."""
        ep = TcpEndpoint(self.engine, process, self.params)
        self.endpoints[process.node_id] = ep
        return ep

    def endpoint(self, node_id: int) -> TcpEndpoint:
        """The endpoint attached for ``node_id``."""
        return self.endpoints[node_id]

    # ------------------------------------------------------------------ send

    def send(self, src: int, dst: int, payload: Any, size_bytes: int) -> None:
        """Send one message; charges the sender's kernel CPU immediately
        (the caller is executing on the sender's CPU) and schedules
        delivery into the destination inbox."""
        p = self.params
        src_ep = self.endpoints[src]
        if src_ep.process.crashed:
            return
        if self._blocked(src, dst):
            self.engine.trace.count("tcp.partition_drop")
            return
        cpu = src_ep.process.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(
            p.kernel_send_cpu_ns * cpu.speed_factor)
        start = max(cpu.busy_until, src_ep.tx_free_at)
        tx_done = start + p.tx_serialization_ns(size_bytes)
        src_ep.tx_free_at = tx_done
        src_ep.sent += 1
        deliver_at = tx_done + p.propagation_ns + p.stack_latency_ns
        if p.loss_prob and self._loss_rng.random() < p.loss_prob:
            deliver_at += p.rto_ns
        key = (src, dst)
        deliver_at = max(deliver_at, self._last_delivery.get(key, 0) + 1)
        self._last_delivery[key] = deliver_at
        self.engine.schedule_at(deliver_at, self._deliver, dst, src, payload, size_bytes)

    def _deliver(self, dst: int, src: int, payload: Any, size: int) -> None:
        ep = self.endpoints.get(dst)
        if ep is not None:
            ep.deliver(src, payload, size)

    def broadcast(self, src: int, dsts: Iterable[int], payload: Any, size_bytes: int) -> None:
        """Send the same message to several peers (separate unicasts, as
        real TCP deployments must)."""
        for d in dsts:
            if d != src:
                self.send(src, d, payload, size_bytes)
