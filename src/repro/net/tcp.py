"""Kernel TCP/IP channels: reliable FIFO streams with per-message CPU cost.

This is the ``tcp`` backend of :mod:`repro.substrate`.  Cost model
(defaults calibrated so the TCP atomic-broadcast baselines land in the
paper's 10²–10³ µs latency band while the RDMA systems sit at ~10¹ µs):

- each send charges a syscall + kernel-stack cost on the *sender's* CPU;
- each receive charges the same on the *receiver's* CPU when its event
  loop picks the message up;
- delivery additionally pays interrupt + softirq + wakeup latency on top
  of wire time, because unlike one-sided RDMA the remote kernel must run
  before the payload is visible to userspace.

Streams are FIFO and lossless (retransmission appears as delay), so
protocol logic above this layer can rely on ordering exactly as Zab does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.sim.engine import Engine, us
from repro.sim.process import Process
from repro.substrate.cost import CostModel
from repro.substrate.interface import Endpoint, Substrate


@dataclass
class TcpParams(CostModel):
    """Cost knobs for the kernel TCP path.

    ``wakeup_latency_ns`` models epoll/interrupt delivery: the receiving
    process is woken rather than discovering data by polling L1 like the
    RDMA receivers do.  Wire maths (``wire_bytes``,
    ``tx_serialization_ns``) come from :class:`~repro.substrate.cost.CostModel`.
    """

    backend = "tcp"

    kernel_send_cpu_ns: int = 2_200
    kernel_recv_cpu_ns: int = 2_200
    stack_latency_ns: int = 9_000   # one-way kernel stack + interrupt + softirq
    wakeup_latency_ns: int = 3_000  # scheduler wakeup of the blocked/epolling process
    propagation_ns: int = 550
    link_bandwidth_bytes_per_ns: float = 3.125
    header_bytes: int = 66          # eth + ip + tcp
    loss_prob: float = 0.0
    rto_ns: int = us(200)

    # ------------------------------------------------- uniform cost surface

    @property
    def send_cpu_ns(self) -> int:
        return self.kernel_send_cpu_ns

    @property
    def recv_cpu_ns(self) -> int:
        return self.kernel_recv_cpu_ns

    @property
    def delivery_overhead_ns(self) -> int:
        return self.stack_latency_ns

    @property
    def loss_delay_ns(self) -> int:
        return self.rto_ns


class TcpEndpoint(Endpoint):
    """One node's TCP stack: an inbox plus egress serialisation state."""

    def __init__(self, engine: Engine, process: Process, params: TcpParams):
        self.engine = engine
        self.process = process
        self.params = params
        self.inbox: deque[tuple[int, Any, int]] = deque()  # (src, payload, size)
        self.tx_free_at = 0
        self.sent = 0
        self.received = 0
        self.tx_bytes = 0
        self.retransmits = 0
        # Cost models are frozen after substrate build, so the per-message
        # charges can be snapshotted once instead of chased through
        # self.params on every deliver/drain.
        self._recv_cpu_ns = params.kernel_recv_cpu_ns
        self._wakeup_ns = params.wakeup_latency_ns

    @property
    def node_id(self) -> int:
        """The owning process's node id."""
        return self.process.node_id

    def deliver(self, src: int, payload: Any, size: int,
                posted_at: int = 0) -> None:
        """Called by the network when a message reaches this host's kernel."""
        if self.process.crashed:
            return
        self.inbox.append((src, payload, size))
        # Poll-elision doorbell first: a parked poll loop resumes at the
        # first *regular* tick >= now.  With poll gaps shorter than the
        # wakeup latency below, that regular tick is what drains the
        # inbox in the unparked schedule too.
        self.process.doorbell(posted_at)
        # epoll/interrupt: wake the process (RDMA receivers never get this).
        self.process.wake(self._wakeup_ns)

    def drain(self, max_batch: Optional[int] = None) -> list[tuple[int, Any]]:
        """Pop pending messages, charging recv syscall CPU per message.

        Intended to be called from the owner's ``on_poll``; the CPU
        charge pushes the node's ``busy_until`` forward so heavy receive
        load genuinely costs time.
        """
        out: list[tuple[int, Any]] = []
        cpu = self.process.cpu
        now = self.engine.now
        recv_cpu_ns = self._recv_cpu_ns
        speed = cpu.speed_factor
        inbox = self.inbox
        obs = self.engine.obs
        while inbox and (max_batch is None or len(out) < max_batch):
            src, payload, _size = inbox.popleft()
            out.append((src, payload))
            self.received += 1
            cpu.busy_until = max(cpu.busy_until, now) + int(recv_cpu_ns * speed)
            if obs is not None:
                obs.mark(payload, "poll_notice", now)
        return out


class TcpNetwork(Substrate):
    """All-to-all TCP connectivity between a set of processes."""

    backend = "tcp"

    def __init__(self, engine: Engine, params: Optional[TcpParams] = None):
        super().__init__(engine, params or TcpParams())
        self.endpoints: dict[int, TcpEndpoint] = {}
        self._last_delivery: dict[tuple[int, int], int] = {}
        self._loss_rng = engine.rng("tcp.loss")
        # Frozen-cost snapshots for the per-message send path.  The sum
        # is int + int, so precomputing it cannot change any timestamp.
        p = self.params
        self._send_cpu_ns = p.kernel_send_cpu_ns
        self._post_wire_ns = p.propagation_ns + p.stack_latency_ns
        self._loss_prob = p.loss_prob
        self._rto_ns = p.rto_ns
        self._sink = engine.chain_builder()  # reusable broadcast fuser

    def attach(self, process: Process) -> TcpEndpoint:
        """Create this process's TCP stack and register it for delivery."""
        ep = TcpEndpoint(self.engine, process, self.params)
        self.endpoints[process.node_id] = ep
        return ep

    # ------------------------------------------------------------------ send

    def send(self, src: int, dst: int, payload: Any, size_bytes: int,
             sink: Any = None) -> None:
        """Send one message; charges the sender's kernel CPU immediately
        (the caller is executing on the sender's CPU) and schedules
        delivery into the destination inbox.

        ``sink``: optional :class:`~repro.sim.engine.ChainBuilder`
        collecting the delivery step instead of scheduling it, so a
        fan-out loop (see :meth:`broadcast`) fuses its deliveries into
        one macro-event.  The caller must commit it."""
        byz = self.engine.byz
        if byz is not None:
            repl = byz.on_net_send(self, src, dst, payload)
            if repl is not None:
                # Re-issue each transformed payload through the normal
                # path so forged/duplicated traffic pays full substrate
                # costs; the injector's guard keeps us from recursing.
                byz._in_send = True
                try:
                    for pl in repl:
                        self.send(src, dst, pl, size_bytes, sink)
                finally:
                    byz._in_send = False
                return
        p = self.params
        src_ep = self.endpoints[src]
        if src_ep.process.crashed:
            return
        if self._blocked(src, dst):
            self._drop_partitioned()
            return
        cpu = src_ep.process.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(
            self._send_cpu_ns * cpu.speed_factor)
        start = max(cpu.busy_until, src_ep.tx_free_at)
        tx_done = start + p.tx_serialization_ns(size_bytes)
        src_ep.tx_free_at = tx_done
        src_ep.sent += 1
        src_ep.tx_bytes += p.wire_bytes(size_bytes)
        deliver_at = tx_done + self._post_wire_ns
        if self._loss_prob and self._loss_rng.random() < self._loss_prob:
            deliver_at += self._rto_ns
            src_ep.retransmits += 1
        key = (src, dst)
        deliver_at = max(deliver_at, self._last_delivery.get(key, 0) + 1)
        self._last_delivery[key] = deliver_at
        if sink is not None:
            sink.add(deliver_at, self._deliver, dst, src, payload, size_bytes,
                     self.engine.now)
        else:
            self.engine.schedule_at(deliver_at, self._deliver, dst, src, payload,
                                    size_bytes, self.engine.now)
        obs = self.engine.obs
        if obs is not None:
            # Span milestones for traced carriers (dict miss otherwise).
            obs.mark(payload, "nic_tx", tx_done)
            obs.mark(payload, "wire", tx_done + p.propagation_ns)
            obs.mark(payload, "deposit", deliver_at)

    def broadcast(self, src: int, dsts: Iterable[int], payload: Any,
                  size_bytes: int) -> None:
        """Separate unicasts whose deliveries fuse into one macro-event.

        Each send still pays its own sender-CPU and serialisation costs
        and its own per-stream FIFO floor — the buffered delivery times
        are exactly the unicast ones, and so are the tie-break seqs
        (per-stream floors can reorder across destinations, in which
        case the builder falls back to per-event scheduling with
        identical seqs; see :class:`~repro.sim.engine.ChainBuilder`)."""
        sink = self._sink if self.engine.chain_enabled else None
        try:
            for d in dsts:
                if d != src:
                    self.send(src, d, payload, size_bytes, sink=sink)
        finally:
            if sink is not None:
                sink.commit()

    def _deliver(self, dst: int, src: int, payload: Any, size: int,
                 posted_at: int = 0) -> None:
        ep = self.endpoints.get(dst)
        if ep is not None:
            ep.deliver(src, payload, size, posted_at)

    # ------------------------------------------------------------ accounting

    def _raw_counters(self) -> dict[str, int]:
        eps = self.endpoints.values()
        return {
            "tx_bytes": sum(ep.tx_bytes for ep in eps),
            "tx_msgs": sum(ep.sent for ep in eps),
            "rx_msgs": sum(ep.received for ep in eps),
            "retransmits": sum(ep.retransmits for ep in eps),
        }
