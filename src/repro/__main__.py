"""Command-line interface: run any experiment without touching pytest.

Usage::

    python -m repro shootout [--nodes 3] [--size 10] [--window 4]
    python -m repro fig8 --panel a [--systems acuerdo derecho-leader]
    python -m repro table1 [--sizes 3 5 7 9]
    python -m repro fig9 [--sizes 3 5 7 9]
    python -m repro elections --nodes 5 [--kills 4]
    python -m repro shard [--shards 1 4 16 64] [--skews 0.0 0.99] [--users 100000]
    python -m repro trace --system acuerdo [--duration-ms 5] [--out t.json]
    python -m repro trace --shards 8 --users 100000 --skew 0.99  # farm trace
    python -m repro shootout --check-invariants --crash 0@1.5
    python -m repro shootout --check-invariants --partition "0,1|2@2-6"
    python -m repro shootout --check-invariants --byz equivocate:1@2
    python -m repro adversary --matrix

Every subcommand prints the same text tables the benchmarks archive
under ``results/``; ``trace`` additionally writes a span trace (Chrome
trace event JSON, loadable in Perfetto, or a plain-JSON timeline).
``shootout``, ``shard`` and ``trace`` accept ``--check-invariants``
(run the :mod:`repro.monitors` safety monitors; violations fail the
exit code) and repeatable ``--crash node@ms`` / ``--crash g:n@ms``
failure-injection flags; ``shootout`` and ``trace`` additionally take
repeatable ``--partition "GROUPS@MS[-MS]"`` and ``--byz MODE:ADDR@MS``
adversarial schedules.  ``adversary`` runs the Byzantine scenario
suite (:mod:`repro.harness.adversary`): every scheduled attack against
every backend, classified by the monitor oracle.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_shootout(args: argparse.Namespace) -> int:
    from repro.harness import RunSpec, SYSTEMS, build_from_spec, render_table, settle
    from repro.harness.factory import EXTENSION_SYSTEMS
    from repro.sim import ms
    from repro.sim.failure import (schedule_byz, schedule_crashes,
                                   schedule_partitions)
    from repro.workloads.closedloop import ClosedLoopClient

    names = args.systems or (SYSTEMS + (EXTENSION_SYSTEMS if args.extensions else []))
    rows = []
    all_violations = []
    for name in names:
        spec = RunSpec(system=name, n=args.nodes, payload_bytes=args.size,
                       window=args.window, seed=args.seed,
                       check_invariants=args.check_invariants,
                       crashes=tuple(args.crash),
                       partitions=tuple(args.partition),
                       byz=tuple(args.byz))
        engine = spec.make_engine()
        system = build_from_spec(spec, engine)
        settle(system)
        if spec.crashes:
            schedule_crashes(engine, system.processes(), spec.crashes)
        if spec.partitions:
            schedule_partitions(engine, system.substrate, spec.partitions,
                                processes=system.processes())
        if spec.byz:
            schedule_byz(engine, system, spec.byz)
        client = ClosedLoopClient(system, window=args.window,
                                  message_size=args.size, warmup=30)
        client.start()
        deadline = engine.now + ms(500)
        while len(client.latencies) < args.messages and engine.now < deadline:
            engine.run(until=engine.now + ms(4))
        client.stop()
        res = client.result()
        row = [name, round(res.mean_latency_us, 1),
               round(res.percentile_latency_us(99), 1),
               round(res.throughput_mb_per_sec, 3), res.completed]
        if spec.check_invariants:
            violations = engine.monitors.finish()
            all_violations.extend(violations)
            row.append(len(violations))
        rows.append(row)
    rows.sort(key=lambda r: r[1])
    header = ["system", "mean_lat_us", "p99_lat_us", "tput_MB_s", "msgs"]
    if args.check_invariants:
        header.append("violations")
    print(render_table(
        f"Shootout: {args.nodes} nodes, {args.size}-byte messages, "
        f"window {args.window}", header, rows))
    return _report_violations(all_violations)


def _report_violations(violations: list) -> int:
    """Print observed safety violations; the exit code fails on any."""
    for v in violations:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if violations else 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.harness import RunSpec, SYSTEMS, render_table
    from repro.harness.fig8 import floor, knee, sweep

    panels = {"a": (3, 10), "b": (3, 1000), "c": (7, 10), "d": (7, 1000)}
    n, size = panels[args.panel]
    from repro.harness.parallel import run_points

    names = args.systems or SYSTEMS
    sweeps = run_points(
        sweep,
        [(RunSpec(system=name, n=n, payload_bytes=size, seed=args.seed),
          1024, args.messages) for name in names],
        workers=args.workers)
    rows, summary = [], []
    for name, pts in zip(names, sweeps):
        for p in pts:
            rows.append([name, p.window, round(p.throughput_mb_s, 3),
                         round(p.mean_latency_us, 1)])
        f, k = floor(pts), knee(pts)
        summary.append([name, round(f.mean_latency_us, 1),
                        round(k.throughput_mb_s, 3)])
    print(render_table(f"Figure 8({args.panel}): {n} nodes, {size} B",
                       ["system", "window", "tput_MB_s", "mean_lat_us"], rows))
    print()
    print(render_table("Summary", ["system", "floor_lat_us", "knee_tput_MB_s"],
                       sorted(summary, key=lambda r: r[1])))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.render import render_table
    from repro.harness.table1 import election_spec, elections

    from repro.harness.parallel import run_points

    runs = run_points(elections,
                      [(election_spec(n, seed=args.seed, kills=args.kills),
                        args.kills) for n in args.sizes],
                      workers=args.workers)
    rows = []
    for n, durations in zip(args.sizes, runs):
        mean = sum(durations) / len(durations) if durations else float("nan")
        rows.append([n, len(durations), round(mean, 3)])
    print(render_table("Table 1: election duration vs replica count",
                       ["replicas", "elections", "mean_ms"], rows))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.harness.fig9 import FIG9_SYSTEMS, fig9_grid
    from repro.harness.render import render_table

    pts = fig9_grid(tuple(args.sizes), FIG9_SYSTEMS, seed=args.seed,
                    workers=args.workers, min_completions=args.messages)
    grid: dict[str, dict[int, float]] = {name: {} for name in FIG9_SYSTEMS}
    for p in pts:
        grid[p.system][p.n] = p.ops_per_sec
    rows = [[n] + [round(grid[name][n]) for name in FIG9_SYSTEMS]
            for n in args.sizes]
    print(render_table("Figure 9: YCSB-load ops/sec vs node count",
                       ["nodes"] + FIG9_SYSTEMS, rows))
    return 0


def _cmd_elections(args: argparse.Namespace) -> int:
    from repro.harness.render import render_table
    from repro.harness.table1 import election_spec, elections

    spec = election_spec(args.nodes, seed=args.seed, kills=args.kills)
    if args.check_invariants:
        spec = spec.replace(check_invariants=True)
    durations = elections(spec, kills=args.kills)
    rows = [[i, round(d, 3)] for i, d in enumerate(durations)]
    print(render_table(f"Election durations, {args.nodes} replicas (ms)",
                       ["election", "duration_ms"], rows))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import os

    from repro.harness.render import render_table
    from repro.harness.runspec import RunSpec
    from repro.harness.shardsweep import shard_sweep

    if args.no_chain:
        # Workers inherit the environment, so the whole sweep — parallel
        # or sequential — runs with per-event scheduling.  Behaviour is
        # identical either way (the chain-equivalence tests pin it);
        # this is the debugging/measurement escape hatch.
        os.environ["REPRO_CHAIN"] = "0"
    spec = RunSpec(system=args.system, n=args.nodes,
                   payload_bytes=args.size, workload="openloop",
                   duration_ms=args.duration_ms, seed=args.seed,
                   shards=1, users=args.users, skew=0.0,
                   arrival_rate=args.rate,
                   workers=args.workers if args.workers is not None else 1,
                   check_invariants=args.check_invariants,
                   crashes=tuple(args.crash),
                   partitions=tuple(args.partition),
                   byz=tuple(args.byz))
    # Validate failure-schedule group addresses against every shard
    # count of the sweep at parse time: a schedule naming group 7 on a
    # --shards 4 sweep should fail here with the valid range, not
    # mid-run (or silently never fire).
    from repro.sim.failure import check_group_schedules

    try:
        for s in args.shards:
            check_group_schedules(s, spec.crashes, spec.partitions, spec.byz)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    pts = shard_sweep(spec, args.shards, args.skews)
    header = ["shards", "skew", "committed", "tput_rps", "mean_lat_us",
              "p99_lat_us", "hottest_share", "events"]
    rows = [[p.shards, p.skew, p.committed, round(p.throughput_rps),
             round(p.mean_latency_us, 1), round(p.p99_latency_us, 1),
             round(p.hottest_share, 3), p.events_executed]
            for p in pts]
    if args.check_invariants:
        header.append("violations")
        for row, p in zip(rows, pts):
            row.append(p.violations)
    print(render_table(
        f"Shard farm: {args.system}, {args.users} users at "
        f"{round(args.rate)} req/s, {args.duration_ms} ms", header, rows))
    bad = sum(p.violations for p in pts)
    if bad:
        print(f"VIOLATIONS: {bad} safety violation(s) across the sweep",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.harness.render import render_table
    from repro.harness.runspec import RunSpec
    from repro.obs import capture_run
    from repro.obs.export import validate_chrome_trace, validate_timeline

    spec = RunSpec(system=args.system, n=args.nodes, payload_bytes=args.size,
                   window=args.window, workload=args.workload,
                   duration_ms=args.duration_ms, seed=args.seed,
                   capture_spans=True, shards=args.shards, users=args.users,
                   skew=args.skew, arrival_rate=args.rate,
                   check_invariants=args.check_invariants,
                   crashes=tuple(args.crash),
                   partitions=tuple(args.partition),
                   byz=tuple(args.byz))
    if spec.shards > 1:
        from repro.sim.failure import check_group_schedules

        try:
            check_group_schedules(spec.shards, spec.crashes,
                                  spec.partitions, spec.byz)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    res = capture_run(spec)
    if args.format == "chrome":
        doc = res.chrome()
        validate_chrome_trace(doc)
    else:
        doc = res.timeline()
        validate_timeline(doc)
    out = pathlib.Path(args.out) if args.out else \
        pathlib.Path(f"trace_{spec.system}_{args.format}.json")
    out.write_text(json.dumps(doc) + "\n")

    rec = res.recorder
    means = rec.phase_means()
    rows = [[phase, round(means[phase] / 1000.0, 3)]
            for phase in sorted(means, key=means.get, reverse=True)]
    print(render_table(
        f"Critical-path anatomy: {spec.system}, {spec.n} nodes, "
        f"{spec.payload_bytes} B, window {spec.window} "
        f"({len(rec.messages)} messages traced)",
        ["phase", "mean_us"], rows))
    print(f"wrote {out} ({len(rec.messages)} spans, "
          f"{len(rec.nic_events)} NIC events, "
          f"{len(rec.process_events)} process events)")
    return _report_violations(list(res.violations))


def _cmd_adversary(args: argparse.Namespace) -> int:
    import json

    from repro.harness.adversary import (ADVERSARY_SYSTEMS, attack_matrix,
                                         render_matrix, run_attack)
    from repro.sim.byzantine import BYZ_MODES

    systems = tuple(args.systems or ADVERSARY_SYSTEMS)
    if args.no_protection:
        systems = tuple("acuerdo-unprotected" if s == "acuerdo" else s
                        for s in systems)
    modes = tuple(args.modes or BYZ_MODES)
    for m in modes:
        if m not in BYZ_MODES:
            print(f"unknown attack mode {m!r}; pick from {BYZ_MODES}",
                  file=sys.stderr)
            return 2
    if args.matrix or len(systems) > 1 or len(modes) > 1:
        outcomes = attack_matrix(systems, modes, n=args.nodes,
                                 seed=args.seed, duration_ms=args.duration_ms,
                                 at_ms=args.at_ms, messages=args.messages)
    else:
        outcomes = [run_attack(systems[0], modes[0], n=args.nodes,
                               seed=args.seed, duration_ms=args.duration_ms,
                               at_ms=args.at_ms, messages=args.messages)]
    if args.json:
        print(json.dumps([o.to_dict() for o in outcomes], indent=2))
        return 0
    print(render_matrix(outcomes))
    print()
    from repro.harness.render import render_table

    rows = [[o.system, o.mode, o.outcome, o.attempts, o.landed, o.blocked,
             o.violations, o.completed] for o in outcomes]
    print(render_table(
        f"Attack detail: {args.nodes} nodes, seed {args.seed}, "
        f"armed at {args.at_ms} ms",
        ["system", "mode", "outcome", "att", "landed", "blocked",
         "viol", "msgs"], rows))
    witnesses = [o for o in outcomes if o.witness]
    if witnesses:
        print()
        for o in witnesses:
            print(f"WITNESS {o.system}/{o.mode}: {o.witness}")
    return 0


def _add_safety_flags(p: argparse.ArgumentParser) -> None:
    """Runtime-safety flags shared by the run-style subcommands."""
    p.add_argument("--check-invariants", action="store_true",
                   help="run the repro.monitors safety monitors over the "
                        "run; any violation fails the exit code")
    p.add_argument("--crash", action="append", default=[], metavar="ADDR@MS",
                   help="crash a replica: 'node@ms' or 'group:node@ms', "
                        "relative to workload start (repeatable)")


def _add_adversarial_flags(p: argparse.ArgumentParser) -> None:
    """Partition / Byzantine schedule flags (shootout and trace)."""
    p.add_argument("--partition", action="append", default=[],
                   metavar="GROUPS@MS[-MS]",
                   help="partition the substrate into |-separated "
                        "connectivity groups of comma-separated node ids, "
                        "optionally healing at the second time: "
                        "'0,1|2@5' or '0,1|2@5-20' (repeatable)")
    p.add_argument("--byz", action="append", default=[],
                   metavar="MODE:ADDR@MS",
                   help="arm a Byzantine attack on one node: e.g. "
                        "'equivocate:1@2' or 'replay_sst:3:1@0.5' "
                        "(repeatable; modes: equivocate, tamper, duplicate, "
                        "replay_sst, inflate, corrupt_ring, dup_ring)")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (one subcommand per experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Acuerdo (ICPP'22) reproduction experiments")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep fan-out processes (default: "
                             "$REPRO_WORKERS or the core count; 1 = "
                             "sequential)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("shootout", help="all systems at one load point")
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--size", type=int, default=10)
    p.add_argument("--window", type=int, default=4)
    p.add_argument("--messages", type=int, default=300)
    p.add_argument("--systems", nargs="*", default=None)
    p.add_argument("--extensions", action="store_true",
                   help="include DARE, Mu, Dolev and Bracha")
    _add_safety_flags(p)
    _add_adversarial_flags(p)
    p.set_defaults(fn=_cmd_shootout)

    p = sub.add_parser(
        "adversary",
        help="Byzantine scenario suite: attacks x systems, monitor-classified")
    p.add_argument("--systems", nargs="*", default=None,
                   help="systems to attack (default: the adversary set "
                        "incl. acuerdo-unprotected, dolev, bracha)")
    p.add_argument("--modes", nargs="*", default=None,
                   help="attack modes (default: all)")
    p.add_argument("--nodes", type=int, default=4,
                   help="replicas (>= 4 gives f >= 1 for Dolev/Bracha)")
    p.add_argument("--at-ms", type=float, default=1.0,
                   help="arm the attack this long after workload start")
    p.add_argument("--duration-ms", type=float, default=10.0)
    p.add_argument("--messages", type=int, default=80)
    p.add_argument("--matrix", action="store_true",
                   help="force the full matrix even for a single cell")
    p.add_argument("--json", action="store_true",
                   help="machine-readable outcome list instead of tables")
    p.add_argument("--no-protection", action="store_true",
                   help="swap acuerdo for the SST-protection-off ablation")
    p.set_defaults(fn=_cmd_adversary)

    p = sub.add_parser("fig8", help="one Figure 8 panel")
    p.add_argument("--panel", choices="abcd", default="a")
    p.add_argument("--messages", type=int, default=250)
    p.add_argument("--systems", nargs="*", default=None)
    p.set_defaults(fn=_cmd_fig8)

    p = sub.add_parser("table1", help="Table 1 election durations")
    p.add_argument("--sizes", type=int, nargs="*", default=[3, 5, 7, 9])
    p.add_argument("--kills", type=int, default=4)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("fig9", help="Figure 9 YCSB-load throughput")
    p.add_argument("--sizes", type=int, nargs="*", default=[3, 5, 7, 9])
    p.add_argument("--messages", type=int, default=400)
    p.set_defaults(fn=_cmd_fig9)

    p = sub.add_parser("elections", help="raw election durations for one size")
    p.add_argument("--nodes", type=int, default=5)
    p.add_argument("--kills", type=int, default=4)
    p.add_argument("--check-invariants", action="store_true",
                   help="audit the election churn with the repro.monitors "
                        "safety monitors (raises on any violation)")
    p.set_defaults(fn=_cmd_elections)

    p = sub.add_parser("shard", help="shard-farm sweep: shard count x skew")
    p.add_argument("--system", default="acuerdo")
    p.add_argument("--nodes", type=int, default=3,
                   help="replicas per group")
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--shards", type=int, nargs="*", default=[1, 4, 16, 64])
    p.add_argument("--skews", type=float, nargs="*", default=[0.0, 0.99])
    p.add_argument("--users", type=int, default=100_000,
                   help="logical users (aggregate-arrival key space)")
    p.add_argument("--rate", type=float, default=500_000.0,
                   help="aggregate request rate (req/s)")
    p.add_argument("--duration-ms", type=float, default=10.0)
    p.add_argument("--no-chain", action="store_true",
                   help="disable macro-event fusion (REPRO_CHAIN=0): "
                        "identical results, one heap entry per event")
    # SUPPRESS: only override the global --workers when given after the
    # subcommand, so 'repro --workers N shard' keeps working too.
    p.add_argument("--workers", type=int, default=argparse.SUPPRESS,
                   help="slice each farm point's groups across this many "
                        "engine processes (repro.shard.parallel); "
                        "per-shard results are bit-identical to 1")
    _add_safety_flags(p)
    _add_adversarial_flags(p)
    p.set_defaults(fn=_cmd_shard)

    p = sub.add_parser("trace", help="span-trace one run (Perfetto JSON)")
    p.add_argument("--system", default="acuerdo")
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--window", type=int, default=8)
    p.add_argument("--workload", choices=["closedloop", "openloop", "ycsb"],
                   default="closedloop")
    p.add_argument("--duration-ms", type=float, default=5.0)
    p.add_argument("--shards", type=int, default=1,
                   help=">1 traces a shard farm (spans tagged shard.<g>.*)")
    p.add_argument("--users", type=int, default=0,
                   help="farm users (shards > 1; 0 = default 10000)")
    p.add_argument("--skew", type=float, default=0.0,
                   help="Zipfian skew over farm users (shards > 1)")
    p.add_argument("--rate", type=float, default=0.0,
                   help="farm request rate req/s (shards > 1; 0 = default)")
    p.add_argument("--format", choices=["chrome", "timeline"],
                   default="chrome")
    p.add_argument("--out", default=None,
                   help="output path (default trace_<system>_<format>.json)")
    _add_safety_flags(p)
    _add_adversarial_flags(p)
    p.set_defaults(fn=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
