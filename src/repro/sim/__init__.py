"""Deterministic discrete-event simulation kernel.

Everything in this reproduction — the RDMA substrate, the TCP substrate,
Acuerdo itself and every baseline protocol — runs inside the event engine
defined here.  The kernel provides:

- :class:`~repro.sim.engine.Engine`: a priority-queue event loop with an
  integer nanosecond clock and named, seeded random streams so that every
  run is exactly reproducible from ``(seed, configuration)``.
- :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.Cpu`:
  a per-node serial CPU resource with a polling event loop, scheduler
  jitter and deschedule events — the receiver-side-batching behaviour the
  paper's design leans on falls out of this model.
- :class:`~repro.sim.failure.FailureInjector`: crash-stop, transient
  deschedule, slow-node and link-delay injection used by the fail-over
  experiments (Table 1) and the robustness tests.
- :class:`~repro.sim.trace.Tracer`: counters and optional event capture
  used by the benchmark harness.

Time is measured in integer nanoseconds; use the :func:`us`, :func:`ms`
and :func:`sec` helpers to construct durations.
"""

from repro.sim.engine import Engine, Event, us, ms, sec, NS_PER_US, NS_PER_MS, NS_PER_SEC
from repro.sim.process import Cpu, Process, ProcessConfig
from repro.sim.failure import FailureInjector
from repro.sim.trace import Tracer

__all__ = [
    "Engine",
    "Event",
    "Cpu",
    "Process",
    "ProcessConfig",
    "FailureInjector",
    "Tracer",
    "us",
    "ms",
    "sec",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_SEC",
]
