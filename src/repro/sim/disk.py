"""A serial fsync device with group commit.

ZooKeeper and etcd force their transaction logs to stable storage before
acknowledging — the dominant per-op cost that (together with kernel TCP)
puts them orders of magnitude above the RDMA systems in Fig. 8/9.  Both
group-commit: all appends that arrive while a sync is in progress share
the next sync.  That is exactly what this model implements: an fsync
occupies the device for ``fsync_ns``; callbacks queued meanwhile ride
the following flush together.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine, us


class Disk:
    """One node's transaction-log device."""

    def __init__(self, engine: Engine, fsync_ns: int = us(150), name: str = "disk"):
        self.engine = engine
        self.fsync_ns = fsync_ns
        self.name = name
        self._busy = False
        self._waiting: list[Callable[[], None]] = []
        self.syncs = 0

    def append(self, on_durable: Callable[[], None]) -> None:
        """Queue a log append; ``on_durable`` fires once it is synced.
        Appends issued while the device is busy share one group commit."""
        self._waiting.append(on_durable)
        if not self._busy:
            self._start_sync()

    def _start_sync(self) -> None:
        self._busy = True
        batch, self._waiting = self._waiting, []
        self.syncs += 1
        self.engine.schedule(self.fsync_ns, self._finish, batch)

    def _finish(self, batch: list[Callable[[], None]]) -> None:
        for cb in batch:
            cb()
        if self._waiting:
            self._start_sync()
        else:
            self._busy = False

    @property
    def queue_depth(self) -> int:
        """Appends waiting for the next flush (excludes the one in flight)."""
        return len(self._waiting)
