"""Byzantine fault injection: scheduled lying, forging and replaying.

The crash/deschedule/slow-node injector (:mod:`repro.sim.failure`)
covers the paper's evaluated failure model; this module covers the
*untested trust assumptions* — what happens when a node misbehaves
instead of stopping.  A :class:`ByzantineInjector` attaches to the
engine exactly like ``engine.obs`` / ``engine.monitors`` (is-None-gated
at every interception site), so byz-off runs execute no injection code
and stay bit-identical to the golden trace fingerprints.

Attack modes (:data:`BYZ_MODES`):

``equivocate``
    The attacker claims leadership of the *current* term (a forged
    leadership announcement, conflicting with the real leader's claim)
    and forks any data-bearing message it sends: half its peers receive
    the real payload, the other half a forged variant.
``tamper``
    Every data-bearing message the attacker sends is rewritten to a
    forged payload — consistently, to all peers (the attacker's own
    local state keeps the original).
``duplicate``
    Every message the attacker sends is sent twice.
``replay_sst``
    The attacker snapshots its local SST copies when the attack arms
    and then repeatedly re-writes those *stale* rows into its peers'
    copies — the one-sided-write equivalent of replaying old packets.
``inflate``
    Vector inflation: the attacker forges *other* nodes' rows in the
    leader's accept SST copy so the leader observes a fake full-quorum
    accept vector (on Acuerdo-style SST systems), or floods forged
    relay paths (on Dolev, whose path vectors are its quorum analogue).
``corrupt_ring``
    The attacker's broadcast-ring writes carry a *different* forged
    payload per receiver — split-brain at the RDMA slot level.
``dup_ring``
    One ring slot is written twice to a victim receiver: the real
    payload followed by a forged twin in the same slot.

Every forgery is deterministic (derived from the payload, sequence
number and receiver — no RNG draws), so attacked runs replay
bit-identically under a fixed seed.

**Protection domains.**  "The Impact of RDMA on Agreement" argues the
RDMA substrate itself neutralizes part of this space: a queue pair only
grants write access to the registered region, and SST rows are owned —
a non-owner cannot forge a *remote* row it was never granted.  The SST
models this with :attr:`~repro.rdma.sst.SharedStateTable.protected`;
the injector counts such writes as ``blocked`` (the attack never
reaches the wire).  The attacker's *own* rings and rows are its to
corrupt — protection domains do not make Acuerdo Byzantine-tolerant,
they only shrink the attack surface (see DESIGN.md §12).

Outcome counters: ``attempts`` (forgeries tried), ``landed`` (reached a
victim), ``blocked`` (stopped by a protection domain) — the adversary
harness classifies each attack × system cell from these plus the
monitor verdict (:mod:`repro.harness.adversary`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Engine, ms

#: The shipped attack modes, in matrix order.
BYZ_MODES = ("equivocate", "tamper", "duplicate", "replay_sst",
             "inflate", "corrupt_ring", "dup_ring")


def parse_byz(text: str) -> "tuple[str, int | tuple[int, int], float]":
    """Parse one attack-schedule entry ``"MODE:ADDR@MS"`` into
    ``(mode, address, time_ms)`` — e.g. ``"equivocate:1@2"`` (node 1
    starts equivocating 2 ms into the workload) or
    ``"inflate:3:1@0.5"`` (group 3's node 1, hierarchical address)."""
    from repro.sim.failure import parse_addr

    mode, sep, rest = text.partition(":")
    if not sep or mode not in BYZ_MODES:
        raise ValueError(
            f"cannot parse byz attack {text!r}; use 'MODE:ADDR@MS' with "
            f"MODE one of {BYZ_MODES}")
    addr_part, sep, when = rest.rpartition("@")
    if not sep:
        raise ValueError(
            f"cannot parse byz attack {text!r}; missing '@MS' arm time "
            f"(e.g. 'equivocate:1@2')")
    try:
        at_ms = float(when)
    except ValueError:
        raise ValueError(f"bad byz arm time in {text!r}: {when!r} is not "
                         f"a number of milliseconds") from None
    if at_ms < 0:
        raise ValueError(f"byz arm time must be >= 0 ms, got {text!r}")
    return mode, parse_addr(addr_part), at_ms


def _client_leaf(obj: Any) -> bool:
    """True for the closed/open-loop client payload convention
    ``("cl", i)`` — the data-bearing leaves worth forging."""
    return (type(obj) is tuple and len(obj) == 2 and obj[0] == "cl")


def _rewrite(obj: Any, pred: Callable[[Any], bool],
             forge: Callable[[Any], Any]) -> "tuple[Any, int]":
    """Deep-rewrite every ``pred``-matching leaf of a message tree.

    Walks tuples (namedtuples are rebuilt through their class, so
    ``Message``/``MsgHdr`` carriers survive) and lists; returns
    ``(rewritten, hits)`` with the original object untouched.  Zero
    hits returns the original object itself — control messages pass
    through forgery-free.
    """
    if pred(obj):
        return forge(obj), 1
    if type(obj) is tuple or isinstance(obj, tuple):
        items = []
        hits = 0
        for x in obj:
            y, h = _rewrite(x, pred, forge)
            items.append(y)
            hits += h
        if not hits:
            return obj, 0
        if hasattr(obj, "_fields"):
            return type(obj)(*items), hits
        return tuple(items), hits
    if isinstance(obj, list):
        items = []
        hits = 0
        for x in obj:
            y, h = _rewrite(x, pred, forge)
            items.append(y)
            hits += h
        return (items if hits else obj), hits
    return obj, 0


def _forge(leaf: Any) -> Any:
    """The canonical deterministic forgery: a tagged variant of the
    real leaf (distinct, hashable, reproducible)."""
    return ("byz",) + leaf


class ByzantineInjector:
    """Schedules Byzantine attacks against one deployment.

    Construction attaches the injector as ``engine.byz``; until an
    attack *arms*, every interception hook returns on a dict miss, and
    with no injector attached at all the substrate pays one attribute
    load + None check per send — the same zero-cost-when-off contract
    as ``engine.obs``.

    ``system`` is the :class:`~repro.protocols.base.BroadcastSystem`
    under attack; the SST/ring modes reach through it to the cluster's
    shared structures (protocol-aware adapters, keyed by what the
    system exposes — systems without the targeted surface record zero
    ``attempts`` and classify as not-applicable).
    """

    #: cadence of the scheduled SST/relay attack pumps (sim-ns).
    PUMP_PERIOD_NS = 25_000
    #: pumps per armed attack (bounded: the attack is a burst, not an
    #: unbounded event source).
    PUMPS = 12
    #: forged accept-vector counter — far past any real frontier.
    INFLATED_CNT = 1 << 20

    def __init__(self, engine: Engine, system: Any):
        self.engine = engine
        self.system = system
        engine.byz = self
        self.attempts: dict[str, int] = {m: 0 for m in BYZ_MODES}
        self.landed: dict[str, int] = {m: 0 for m in BYZ_MODES}
        self.blocked: dict[str, int] = {m: 0 for m in BYZ_MODES}
        #: substrate-layer attacks by sender node -> active modes
        self._net_modes: dict[int, list[str]] = {}
        #: ring-layer attacks by ring-owner node -> active modes
        self._ring_modes: dict[int, list[str]] = {}
        self._armed: set = set()
        self._fork_targets: dict[int, frozenset] = {}
        self._claimed_terms: set = set()
        self._snapshots: dict[str, dict[int, Any]] = {}
        # Reentrancy guard: while the injector (or the substrate acting
        # for it) re-issues transformed sends, the hook must pass them
        # through untouched.
        self._in_send = False

    # -------------------------------------------------------------- schedule

    def schedule(self, mode: str, addr: Any, at_ms: float,
                 base_ns: Optional[int] = None) -> None:
        """Arm ``mode`` on the node at ``addr`` ``at_ms`` milliseconds
        after ``base_ns`` (default: now — the drivers call this right
        after settle, so ``@ms`` counts from workload start)."""
        if mode not in BYZ_MODES:
            raise ValueError(f"unknown byz mode {mode!r}; pick from {BYZ_MODES}")
        t0 = self.engine.now if base_ns is None else base_ns
        self.engine.schedule_at(t0 + ms(at_ms), self.arm, mode, addr)

    def schedule_entry(self, entry: str, base_ns: Optional[int] = None) -> None:
        """Arm one ``"MODE:ADDR@MS"`` schedule entry (CLI/RunSpec form)."""
        mode, addr, at_ms = parse_byz(entry)
        self.schedule(mode, addr, at_ms, base_ns=base_ns)

    def _node(self, addr: Any) -> int:
        from repro.sim.failure import parse_addr

        a = parse_addr(addr)
        return a[1] if isinstance(a, tuple) else a

    # ------------------------------------------------------------------- arm

    def arm(self, mode: str, addr: Any) -> None:
        """Activate ``mode`` with the node at ``addr`` as the attacker
        (idempotent per (mode, node))."""
        if mode not in BYZ_MODES:
            raise ValueError(f"unknown byz mode {mode!r}; pick from {BYZ_MODES}")
        node = self._node(addr)
        if (mode, node) in self._armed:
            return
        self._armed.add((mode, node))
        if mode in ("equivocate", "tamper", "duplicate"):
            self._net_modes.setdefault(node, []).append(mode)
            if mode == "equivocate":
                peers = sorted(p for p in self.system.node_ids if p != node)
                self._fork_targets[node] = frozenset(peers[::2])
                self._claim_leadership(node)
        elif mode in ("corrupt_ring", "dup_ring"):
            self._ring_modes.setdefault(node, []).append(mode)
        elif mode == "replay_sst":
            armed_any = False
            for sst in self._ssts():
                # Stale snapshot of every *peer* row as the attacker
                # currently sees them.  Its own row is excluded: the
                # owner re-pushing an old own-row value is
                # indistinguishable from a slow node and absorbed by
                # last-writer-wins overwrite semantics (§3.2).
                self._snapshots[sst.name] = {
                    row: value for row, value in sst.copies[node].items()
                    if row != node}
                self._watch_sst(sst)
                armed_any = True
            if armed_any:
                self.engine.schedule(self.PUMP_PERIOD_NS, self._pump_replay,
                                     node, self.PUMPS)
        elif mode == "inflate":
            if getattr(self.system, "accept_sst", None) is not None:
                for sst in self._ssts():
                    self._watch_sst(sst)
                self.engine.schedule(self.PUMP_PERIOD_NS, self._pump_inflate,
                                     node, self.PUMPS)
            elif type(self.system).name == "dolev":
                self.engine.schedule(self.PUMP_PERIOD_NS,
                                     self._pump_dolev_inflate, node, self.PUMPS)
            # other backends expose no vector surface: attempts stay 0
            # and the matrix reports the mode as not applicable.

    def _ssts(self) -> list:
        return [sst for sst in (getattr(self.system, a, None) for a in
                                ("accept_sst", "vote_sst", "commit_sst"))
                if sst is not None]

    def _watch_sst(self, sst: Any) -> None:
        """Feed row overwrites to the monitor oracle while armed (the
        hook stays None — and the apply fast path untouched — on every
        unmonitored or un-attacked run)."""
        if self.engine.monitors is not None and sst._mon_hook is None:
            sst._mon_hook = self._sst_watch

    def _sst_watch(self, sst: Any, holder: int, row: int,
                   old: Any, new: Any) -> None:
        mon = self.engine.monitors
        if mon is not None:
            mon.note(self.system, "sst_row", holder, slot=new,
                     key=sst.name, seq=row, extra=old)

    # ----------------------------------------------------- leadership claims

    def _claim_leadership(self, attacker: int) -> None:
        """Equivocation's control-plane half: announce the attacker as
        leader of the *current* term — a direct conflict with the real
        leader's claim.

        On a protected SST deployment the announcement is inert:
        leadership is established through vote-SST rows only their
        owners can write, so no honest node ever observes the forged
        claim (counted ``blocked``).  On message-passing backends the
        claim reaches the peers and the ``single_leader_per_term``
        monitor is the oracle that must catch it.  Leaderless backends
        (Dolev/Bracha) expose no term to forge.
        """
        term = self._current_term()
        if term is None:
            return
        self.attempts["equivocate"] += 1
        vote = getattr(self.system, "vote_sst", None)
        if vote is not None and vote.protected:
            self.blocked["equivocate"] += 1
            return
        self.landed["equivocate"] += 1
        mon = self.engine.monitors
        if mon is not None and term not in self._claimed_terms:
            self._claimed_terms.add(term)
            mon.note(self.system, "leader", attacker, term=term)

    def _current_term(self) -> Any:
        sys = self.system
        ldr = sys.leader_id()
        nodes = getattr(sys, "nodes", None)
        if ldr is None or not isinstance(nodes, dict):
            return None
        nd = nodes.get(ldr)
        for attr in ("E_cur", "epoch", "term", "ballot"):
            v = getattr(nd, attr, None)
            if v:
                return v
        return None

    # -------------------------------------------------- substrate-layer hook

    def on_net_send(self, net: Any, src: int, dst: int,
                    payload: Any) -> "Optional[list]":
        """Substrate interception point (TCP send / RDMA message send).

        Returns None to pass the send through untouched (the hot path:
        non-attacker senders miss the mode dict), or the list of
        payloads the substrate should send *instead* — each re-issued
        send pays the full per-message substrate costs, exactly as a
        real duplicated/forged packet would.
        """
        if self._in_send:
            return None
        modes = self._net_modes.get(src)
        if modes is None:
            return None
        out: Optional[list] = None
        for mode in modes:
            if mode == "tamper":
                forged, hits = _rewrite(payload, _client_leaf, _forge)
                if hits:
                    self.attempts["tamper"] += 1
                    self.landed["tamper"] += 1
                    out = [forged]
            elif mode == "equivocate":
                if dst in self._fork_targets.get(src, ()):
                    forged, hits = _rewrite(payload, _client_leaf, _forge)
                    if hits:
                        self.attempts["equivocate"] += 1
                        self.landed["equivocate"] += 1
                        out = [forged]
            elif mode == "duplicate":
                self.attempts["duplicate"] += 1
                self.landed["duplicate"] += 1
                cur = out if out is not None else [payload]
                out = cur + cur
        return out

    # ------------------------------------------------------- ring-layer hook

    def on_ring_write(self, ring: Any, seq: int, receiver: int,
                      payload: Any) -> "Optional[list]":
        """Ring-buffer interception point, called per remote receiver.

        Returns None (write the real payload) or the list of payloads
        to post into this receiver's slot ``seq`` instead.  The ring
        owner's *local* mirror is never intercepted: the attacker keeps
        the honest copy, which is what makes the divergence observable.
        """
        modes = self._ring_modes.get(ring.sender)
        if modes is None:
            return None
        out: Optional[list] = None
        for mode in modes:
            if mode == "corrupt_ring":
                # A *different* forged payload per receiver: the RDMA
                # equivalent of equivocation, one slot, many truths.
                forged, hits = _rewrite(
                    payload, _client_leaf,
                    lambda leaf: ("byz", seq, receiver) + leaf)
                if hits:
                    self.attempts["corrupt_ring"] += 1
                    self.landed["corrupt_ring"] += 1
                    out = [forged]
            elif mode == "dup_ring":
                if receiver == self._dup_victim(ring):
                    forged, hits = _rewrite(payload, _client_leaf, _forge)
                    if hits:
                        self.attempts["dup_ring"] += 1
                        self.landed["dup_ring"] += 1
                        cur = out if out is not None else [payload]
                        out = cur + [forged]
        return out

    def _dup_victim(self, ring: Any) -> int:
        """The deterministic victim of duplicated slot writes: the
        lowest-id remote receiver."""
        return min((r for r in ring._receivers if r != ring.sender),
                   default=-1)

    # ----------------------------------------------------------- attack pumps

    def _pump_replay(self, attacker: int, remaining: int) -> None:
        """Replay the armed-time stale SST snapshot into every peer's
        copy — blocked row by row wherever the protection domain holds
        (a non-owner cannot write a remote row it was never granted)."""
        for sst in self._ssts():
            stale = self._snapshots.get(sst.name)
            if not stale:
                continue
            for holder in sst.members:
                if holder == attacker:
                    continue
                for row, value in stale.items():
                    self.attempts["replay_sst"] += 1
                    if sst.remote_write_row(attacker, holder, row, value):
                        self.landed["replay_sst"] += 1
                    else:
                        self.blocked["replay_sst"] += 1
        if remaining > 1:
            self.engine.schedule(self.PUMP_PERIOD_NS, self._pump_replay,
                                 attacker, remaining - 1)

    def _pump_inflate(self, attacker: int, remaining: int) -> None:
        """Forge the other followers' rows in the *leader's* accept-SST
        copy so its quorum scan sees a fake full accept vector and
        commits without real acceptance — the attack the protection
        domain argument squarely covers (every forged row is a remote
        row the attacker does not own)."""
        from repro.core.types import MsgHdr

        sys = self.system
        sst = sys.accept_sst
        ldr = sys.leader_id()
        nd = getattr(sys, "nodes", {}).get(attacker)
        e = getattr(nd, "E_cur", None)
        if ldr is not None and ldr != attacker and e is not None:
            forged = MsgHdr(e, self.INFLATED_CNT)
            for row in sst.members:
                if row == attacker or row == ldr:
                    continue
                self.attempts["inflate"] += 1
                if sst.remote_write_row(attacker, ldr, row, forged):
                    self.landed["inflate"] += 1
                else:
                    self.blocked["inflate"] += 1
        if remaining > 1:
            self.engine.schedule(self.PUMP_PERIOD_NS, self._pump_inflate,
                                 attacker, remaining - 1)

    def _pump_dolev_inflate(self, attacker: int, remaining: int) -> None:
        """Dolev's quorum analogue is the node-disjoint path vector:
        flood forged relays claiming fabricated paths for a forged
        value.  A correct receiver folds the transport-level sender
        into every path, so the attacker taints each one and the
        disjointness test starves — the attack should be absorbed."""
        sys = self.system
        nd = sys.nodes.get(attacker)
        slot = getattr(nd, "latest_slot", lambda: None)()
        if slot is not None:
            forged_value = ("byz", slot)
            others = [p for p in sys.node_ids if p != attacker]
            self._in_send = True
            try:
                for victim in others:
                    for fake in others:
                        if fake == victim:
                            continue
                        self.attempts["inflate"] += 1
                        self.landed["inflate"] += 1
                        sys.net.send(attacker, victim,
                                     ("MSG", slot, forged_value, 8, (fake,)),
                                     24)
            finally:
                self._in_send = False
        if remaining > 1:
            self.engine.schedule(self.PUMP_PERIOD_NS, self._pump_dolev_inflate,
                                 attacker, remaining - 1)

    # ------------------------------------------------------------- reporting

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-mode attempt/landed/blocked counters (modes with zero
        attempts had no applicable surface on this system)."""
        return {"attempts": dict(self.attempts),
                "landed": dict(self.landed),
                "blocked": dict(self.blocked)}


def schedule_byz(engine: Engine, system: Any, entries: Any,
                 base_ns: Optional[int] = None) -> Optional[ByzantineInjector]:
    """Apply a ``RunSpec.byz`` schedule (``"MODE:ADDR@MS"`` entries,
    parsed by :func:`parse_byz`) against ``system``.  Times are
    relative to ``base_ns`` (default: now).  Returns the injector, or
    None for an empty schedule."""
    entries = list(entries)
    if not entries:
        return None
    byz = ByzantineInjector(engine, system)
    t0 = engine.now if base_ns is None else base_ns
    for entry in entries:
        byz.schedule_entry(entry, base_ns=t0)
    return byz
