"""Failure injection for robustness tests and fail-over experiments.

Supports the failure classes the paper's evaluation exercises:

- **crash-stop** (Table 1: the leader is killed / put to sleep) —
  :meth:`FailureInjector.crash_at` and :meth:`sleep_at` (a long
  deschedule after which the node resumes, like the paper's 5 s sleep);
- **slow node** (§4.1/§4.2 "long-latency nodes") — :meth:`slow_node`;
- **transient deschedules** (scheduler hiccups that receiver-side
  batching absorbs) — :meth:`deschedule_at`;
- **repeating leader kill** (Table 1's repeated election trigger) —
  :meth:`kill_leader_every`;
- **network partitions** (substrate-level connectivity groups with an
  optional heal time) — :meth:`partition_at` / :meth:`heal_at` and the
  ``RunSpec.partitions`` / ``--partition`` schedule surface;
- **Byzantine misbehaviour** (lying, forging, replaying — the *beyond
  crash-stop* model) lives in :mod:`repro.sim.byzantine` and is
  re-exported here for schedule symmetry.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

from repro.sim.engine import Engine, ms
from repro.sim.process import Process

#: Ways to name a process: the Process itself, a plain node id (int,
#: unambiguous only while one group owns the id), a hierarchical
#: ``(group, node_id)`` address for sharded deployments, or the string
#: spellings of those two (``"1"`` / ``"3:1"``) accepted everywhere an
#: address crosses a text boundary (CLI flags, RunSpec crash schedules).
Addr = Union[Process, int, "tuple[int, int]", str]


def parse_addr(text: "Addr") -> "int | tuple[int, int]":
    """The one address parser: ``"1"`` -> ``1``, ``"3:1"`` -> ``(3, 1)``.

    Already-parsed forms (ints, ``(group, node)`` tuples) pass through,
    so every helper that accepts an :data:`Addr` can normalise through
    this without caring how the caller spelled it.
    """
    if isinstance(text, int):
        return text
    if isinstance(text, tuple):
        if len(text) == 2 and all(isinstance(x, int) for x in text):
            return text
        raise ValueError(f"tuple address must be (group, node_id), got {text!r}")
    if isinstance(text, str):
        parts = text.split(":")
        try:
            if len(parts) == 1:
                return int(parts[0])
            if len(parts) == 2:
                return (int(parts[0]), int(parts[1]))
        except ValueError:
            pass
    raise ValueError(
        f"cannot parse address {text!r}; use 'node' or 'group:node' "
        f"(e.g. '1' or '3:1')")


def format_addr(addr: "Addr") -> str:
    """Inverse of :func:`parse_addr`: ``1`` -> ``"1"``, ``(3, 1)`` ->
    ``"3:1"``.  Processes format via their own :attr:`addr`."""
    if isinstance(addr, Process):
        addr = addr.addr
    addr = parse_addr(addr)
    if isinstance(addr, tuple):
        return f"{addr[0]}:{addr[1]}"
    return str(addr)


def parse_crash(text: str) -> "tuple[int | tuple[int, int], float]":
    """Parse one crash-schedule entry ``"<addr>@<ms>"`` into
    ``(address, time_ms)`` — e.g. ``"0@5"`` (node 0 at 5 ms) or
    ``"3:1@2.5"`` (group 3's node 1 at 2.5 ms)."""
    addr_part, sep, when = text.partition("@")
    if not sep:
        raise ValueError(
            f"cannot parse crash {text!r}; use 'node@ms' or "
            f"'group:node@ms' (e.g. '0@5' or '3:1@2.5')")
    try:
        at_ms = float(when)
    except ValueError:
        raise ValueError(f"bad crash time in {text!r}: {when!r} is not a "
                         f"number of milliseconds") from None
    if at_ms < 0:
        raise ValueError(f"crash time must be >= 0 ms, got {text!r}")
    return parse_addr(addr_part), at_ms


def parse_partition(
        text: str,
) -> "tuple[tuple[tuple, ...], float, float | None]":
    """Parse one partition-schedule entry ``"GROUPS@MS"`` or
    ``"GROUPS@MS-MS"`` into ``(groups, start_ms, end_ms_or_None)``.

    ``GROUPS`` is ``|``-separated connectivity groups of comma-separated
    node ids — e.g. ``"0,1|2@5"`` (cut node 2 off from {0, 1} at 5 ms,
    never heal) or ``"0,1|2@5-20"`` (same cut, healed at 20 ms).  On a
    sharded farm, members use the hierarchical ``g:n`` spelling
    (``"2:0,2:1|2:2@5"`` cuts shard 2's node 2 off); all members of one
    entry must then name the same shard — a partition cuts one group's
    substrate, validated by :func:`check_group_schedules`.
    """
    groups_part, sep, when = text.rpartition("@")
    if not sep or not groups_part:
        raise ValueError(
            f"cannot parse partition {text!r}; use 'GROUPS@MS' or "
            f"'GROUPS@MS-MS' (e.g. '0,1|2@5' or '0,1|2@5-20')")
    start_s, sep, end_s = when.partition("-")
    try:
        start_ms = float(start_s)
        end_ms = float(end_s) if sep else None
    except ValueError:
        raise ValueError(f"bad partition time in {text!r}: {when!r} is not "
                         f"'MS' or 'MS-MS'") from None
    if start_ms < 0 or (end_ms is not None and end_ms < start_ms):
        raise ValueError(
            f"partition window must satisfy 0 <= start <= end, got {text!r}")
    groups = []
    for grp in groups_part.split("|"):
        members = []
        for part in grp.split(","):
            part = part.strip()
            try:
                members.append(parse_addr(part))
            except ValueError:
                raise ValueError(
                    f"bad node id {part!r} in partition {text!r}; groups "
                    f"are comma-separated node ids ('1') or shard-scoped "
                    f"'g:n' addresses split by '|'") from None
        if not members:
            raise ValueError(f"empty connectivity group in partition {text!r}")
        groups.append(tuple(members))
    return tuple(groups), start_ms, end_ms


def check_group_schedules(shards: int, crashes: Iterable[str] = (),
                          partitions: Iterable[str] = (),
                          byz: Iterable[str] = ()) -> None:
    """Validate the shard-group component of failure schedules against a
    deployment of ``shards`` consensus groups, *before* anything runs.

    Raises ``ValueError`` naming the valid group range when a schedule
    addresses a group the deployment does not have, uses a bare node id
    that would be ambiguous across groups, spans several groups in one
    partition cut, or requests an adversarial mode the farm does not
    support — instead of failing mid-run (or, worse, silently never
    firing).  The ``repro shard`` / ``repro trace`` CLIs call this at
    parse time; :func:`~repro.harness.shardsweep.shard_point` and the
    sharded capture path call it again as a run-level backstop.
    """
    valid = (f"valid groups are 0..{shards - 1}" if shards > 1
             else "a 1-shard deployment only has group 0")

    def _check_group(entry: str, what: str, g: int) -> None:
        if not 0 <= g < shards:
            raise ValueError(
                f"{what} schedule {entry!r} names group {g}, but the "
                f"deployment has {shards} shard(s); {valid}")

    for entry in crashes:
        addr, _ = parse_crash(entry)
        if isinstance(addr, tuple):
            _check_group(entry, "crash", addr[0])
        elif shards > 1:
            raise ValueError(
                f"crash schedule {entry!r} uses a bare node id, which is "
                f"ambiguous across {shards} groups; address it as "
                f"'group:node@ms' ({valid})")
    for entry in partitions:
        groups, _, _ = parse_partition(entry)
        members = [m for grp in groups for m in grp]
        scoped = sorted({m[0] for m in members if isinstance(m, tuple)})
        for g in scoped:
            _check_group(entry, "partition", g)
        if shards > 1:
            if any(not isinstance(m, tuple) for m in members):
                raise ValueError(
                    f"partition schedule {entry!r} uses bare node ids, "
                    f"which are ambiguous across {shards} groups; spell "
                    f"members as 'g:n' ({valid})")
            if len(scoped) > 1:
                raise ValueError(
                    f"partition schedule {entry!r} spans groups {scoped}; "
                    f"a partition cuts one group's substrate at a time — "
                    f"use one entry per group")
    for entry in byz:
        _, addr, _ = parse_byz(entry)
        if shards > 1:
            raise ValueError(
                f"byz schedule {entry!r}: Byzantine attacks are not "
                f"supported on multi-group farms yet (shards={shards}); "
                f"run the attack against a single group (shards=1) or "
                f"use 'repro shootout --byz'")
        if isinstance(addr, tuple):
            _check_group(entry, "byz", addr[0])


class FailureInjector:
    """Schedules failures against a set of processes.

    Every method accepts the :class:`~repro.sim.process.Process` itself,
    a plain node id (int), or — once several consensus groups share one
    engine — a hierarchical ``(group, node_id)`` address.  Lookup is a
    dict hit either way, so injecting into wide clusters costs the same
    as into ``n = 3``.

    Plain-int addressing keeps its historical meaning for single-group
    runs.  When two groups both own a node id (a sharded deployment),
    the bare int is *ambiguous* and raises with a pointer to the
    ``(group, node)`` form rather than silently picking a group.
    """

    def __init__(self, engine: Engine, processes: Sequence[Process],
                 substrate: object = None):
        self.engine = engine
        self.processes = list(processes)
        #: substrate the partition methods act on (optional — crash
        #: and deschedule injection never needs it).
        self.substrate = substrate
        self._by_addr: dict[object, Process] = {}
        self._ambiguous: set[int] = set()
        for p in self.processes:
            group = getattr(p, "group", None)
            if group is not None:
                self._by_addr[(group, p.node_id)] = p
            nid = p.node_id
            if nid in self._ambiguous:
                continue
            prior = self._by_addr.get(nid)
            if prior is not None and prior is not p:
                # Two groups collide on this flat id: retire the bare
                # form instead of keying by whichever came last.
                del self._by_addr[nid]
                self._ambiguous.add(nid)
            else:
                self._by_addr[nid] = p

    def _proc(self, node: Addr) -> Process:
        if isinstance(node, Process):
            return node
        if isinstance(node, str):
            node = parse_addr(node)
        try:
            return self._by_addr[node]
        except (KeyError, TypeError):
            pass
        if isinstance(node, int) and node in self._ambiguous:
            groups = sorted(g for g, n in
                            ((getattr(p, "group", None), p.node_id)
                             for p in self.processes)
                            if n == node and g is not None)
            forms = ", ".join(f"({g}, {node}) / '{g}:{node}'" for g in groups)
            raise KeyError(
                f"node_id {node} is ambiguous across groups {groups}; "
                f"address it as (group, node_id) — one of {forms}")
        raise KeyError(f"no process with address {node!r}")

    def crash_at(self, time_ns: int, node: Addr) -> None:
        """Crash-stop ``node`` at absolute ``time_ns``."""
        self.engine.schedule_at(time_ns, self._proc(node).crash)

    def deschedule_at(self, time_ns: int, node: Addr, duration_ns: int) -> None:
        """Take ``node`` off-CPU for ``duration_ns`` starting at ``time_ns``."""
        self.engine.schedule_at(time_ns, self._proc(node).deschedule, duration_ns)

    def sleep_at(self, time_ns: int, node: Addr, duration_ns: int) -> None:
        """Alias for a long deschedule — the paper's 'leader sleeps 5 s'."""
        self.deschedule_at(time_ns, node, duration_ns)

    def slow_node(self, node: Addr, speed_factor: float) -> None:
        """Make ``node`` a long-latency node from now on: every CPU cost
        and poll gap is multiplied by ``speed_factor``."""
        p = self._proc(node)
        p.config.speed_factor = speed_factor
        p.cpu.speed_factor = speed_factor

    def partition_at(self, time_ns: int, *groups: "Iterable[int]") -> None:
        """Partition the substrate into the given connectivity groups at
        absolute ``time_ns`` (see ``Substrate.set_partition``: traffic
        crossing group boundaries is dropped and counted)."""
        if self.substrate is None:
            raise ValueError(
                "this FailureInjector has no substrate; construct it as "
                "FailureInjector(engine, processes, substrate=...) to "
                "schedule partitions")
        self.engine.schedule_at(time_ns, self.substrate.set_partition, *groups)

    def heal_at(self, time_ns: int) -> None:
        """Heal any active partition at absolute ``time_ns``."""
        if self.substrate is None:
            raise ValueError(
                "this FailureInjector has no substrate; construct it as "
                "FailureInjector(engine, processes, substrate=...) to "
                "schedule partitions")
        self.engine.schedule_at(time_ns, self.substrate.heal_partition)

    def kill_leader_every(self, period_ns: int, leader_of: Callable[[], int | None],
                          start_ns: int | None = None, on_kill: Callable[[int], None] | None = None,
                          stop_after: int | None = None,
                          group: int | None = None) -> None:
        """Repeatedly crash whichever node ``leader_of()`` reports.

        Used by the Table 1 harness: every ``period_ns`` the current
        leader (if any) is crash-stopped, forcing an election among the
        survivors.  ``on_kill(node_id)`` lets the harness timestamp the
        kill.  Stops after ``stop_after`` kills when given.

        ``leader_of()`` usually returns a bare node id.  In a sharded
        farm that id may exist in several groups; pass ``group=`` to
        scope the lookup.  An ambiguous id without a scope raises
        immediately (it used to be swallowed, silently skipping every
        kill — the worst kind of robustness-test no-op).
        """
        state = {"kills": 0}

        def tick() -> None:
            if stop_after is not None and state["kills"] >= stop_after:
                return
            ldr = leader_of()
            if ldr is not None:
                addr = ((group, ldr) if group is not None
                        and not isinstance(ldr, (tuple, Process)) else ldr)
                proc = self._proc(addr)
                if not proc.crashed:
                    proc.crash()
                    state["kills"] += 1
                    if on_kill is not None:
                        on_kill(ldr)
            self.engine.schedule(period_ns, tick)

        self.engine.schedule_at(start_ns if start_ns is not None else self.engine.now + period_ns,
                                tick)

    def alive(self) -> "list[int | tuple[int, int]]":
        """Addresses of processes that have not crashed: plain node ids
        in single-group runs, ``(group, node_id)`` in sharded ones."""
        return [p.addr for p in self.processes if not p.crashed]


def schedule_crashes(engine: Engine, processes: Sequence[Process],
                     crashes: Iterable[str],
                     base_ns: Optional[int] = None) -> Optional[FailureInjector]:
    """Apply a ``RunSpec.crashes`` schedule (``"node@ms"`` /
    ``"group:node@ms"`` entries, parsed by :func:`parse_crash`) against
    ``processes``.  Times are relative to ``base_ns`` (default: now —
    the drivers call this right after settle, so ``@ms`` counts from
    workload start).  Returns the injector, or None for an empty
    schedule."""
    crashes = list(crashes)
    if not crashes:
        return None
    injector = FailureInjector(engine, processes)
    t0 = engine.now if base_ns is None else base_ns
    for entry in crashes:
        addr, at_ms = parse_crash(entry)
        injector.crash_at(t0 + ms(at_ms), addr)
    return injector


def schedule_partitions(engine: Engine, substrate: object,
                        partitions: Iterable[str],
                        base_ns: Optional[int] = None,
                        processes: Sequence[Process] = (),
                        ) -> Optional[FailureInjector]:
    """Apply a ``RunSpec.partitions`` schedule (``"GROUPS@MS[-MS]"``
    entries, parsed by :func:`parse_partition`) against ``substrate``.
    Times are relative to ``base_ns`` (default: now).  Returns the
    injector, or None for an empty schedule."""
    partitions = list(partitions)
    if not partitions:
        return None
    injector = FailureInjector(engine, processes, substrate=substrate)
    t0 = engine.now if base_ns is None else base_ns
    for entry in partitions:
        groups, start_ms, end_ms = parse_partition(entry)
        injector.partition_at(t0 + ms(start_ms), *groups)
        if end_ms is not None:
            injector.heal_at(t0 + ms(end_ms))
    return injector


# Byzantine attacks are the other half of the adversarial surface; the
# schedule helpers live in repro.sim.byzantine but are re-exported here
# so harness code has one failure-scheduling import.
from repro.sim.byzantine import (  # noqa: E402
    BYZ_MODES, ByzantineInjector, parse_byz, schedule_byz)

__all__ = [
    "Addr", "FailureInjector", "parse_addr", "format_addr", "parse_crash",
    "parse_partition", "check_group_schedules", "schedule_crashes",
    "schedule_partitions",
    "BYZ_MODES", "ByzantineInjector", "parse_byz", "schedule_byz",
]
