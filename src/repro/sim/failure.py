"""Failure injection for robustness tests and fail-over experiments.

Supports the failure classes the paper's evaluation exercises:

- **crash-stop** (Table 1: the leader is killed / put to sleep) —
  :meth:`FailureInjector.crash_at` and :meth:`sleep_at` (a long
  deschedule after which the node resumes, like the paper's 5 s sleep);
- **slow node** (§4.1/§4.2 "long-latency nodes") — :meth:`slow_node`;
- **transient deschedules** (scheduler hiccups that receiver-side
  batching absorbs) — :meth:`deschedule_at`;
- **repeating leader kill** (Table 1's repeated election trigger) —
  :meth:`kill_leader_every`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.engine import Engine
from repro.sim.process import Process


class FailureInjector:
    """Schedules failures against a set of processes."""

    def __init__(self, engine: Engine, processes: Sequence[Process]):
        self.engine = engine
        self.processes = list(processes)

    def _proc(self, node_id: int) -> Process:
        for p in self.processes:
            if p.node_id == node_id:
                return p
        raise KeyError(f"no process with node_id {node_id}")

    def crash_at(self, time_ns: int, node_id: int) -> None:
        """Crash-stop ``node_id`` at absolute ``time_ns``."""
        self.engine.schedule_at(time_ns, self._proc(node_id).crash)

    def deschedule_at(self, time_ns: int, node_id: int, duration_ns: int) -> None:
        """Take ``node_id`` off-CPU for ``duration_ns`` starting at ``time_ns``."""
        self.engine.schedule_at(time_ns, self._proc(node_id).deschedule, duration_ns)

    def sleep_at(self, time_ns: int, node_id: int, duration_ns: int) -> None:
        """Alias for a long deschedule — the paper's 'leader sleeps 5 s'."""
        self.deschedule_at(time_ns, node_id, duration_ns)

    def slow_node(self, node_id: int, speed_factor: float) -> None:
        """Make ``node_id`` a long-latency node from now on: every CPU cost
        and poll gap is multiplied by ``speed_factor``."""
        p = self._proc(node_id)
        p.config.speed_factor = speed_factor
        p.cpu.speed_factor = speed_factor

    def kill_leader_every(self, period_ns: int, leader_of: Callable[[], int | None],
                          start_ns: int | None = None, on_kill: Callable[[int], None] | None = None,
                          stop_after: int | None = None) -> None:
        """Repeatedly crash whichever node ``leader_of()`` reports.

        Used by the Table 1 harness: every ``period_ns`` the current
        leader (if any) is crash-stopped, forcing an election among the
        survivors.  ``on_kill(node_id)`` lets the harness timestamp the
        kill.  Stops after ``stop_after`` kills when given.
        """
        state = {"kills": 0}

        def tick() -> None:
            if stop_after is not None and state["kills"] >= stop_after:
                return
            ldr = leader_of()
            if ldr is not None:
                try:
                    proc = self._proc(ldr)
                except KeyError:
                    proc = None
                if proc is not None and not proc.crashed:
                    proc.crash()
                    state["kills"] += 1
                    if on_kill is not None:
                        on_kill(ldr)
            self.engine.schedule(period_ns, tick)

        self.engine.schedule_at(start_ns if start_ns is not None else self.engine.now + period_ns,
                                tick)

    def alive(self) -> list[int]:
        """Node ids of processes that have not crashed."""
        return [p.node_id for p in self.processes if not p.crashed]
