"""Per-node CPU resource and polling process model.

Why this model matters for the reproduction: the paper's receiver-side
batching argument (§3, "Efficient Catch-Up") is that RDMA writes land in
remote memory *without waking the remote CPU*, so a receiver that is
descheduled for a while discovers a whole batch at its next poll and
drains it faster than the network refills it.  We reproduce exactly that:

- a :class:`Cpu` serialises all work on a node and charges nanosecond
  costs (scaled by a slow-node factor);
- a :class:`Process` runs a poll loop with jittered intervals and can be
  descheduled for long stretches, during which incoming one-sided writes
  still accumulate in its registered memory (see ``repro.rdma``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import repeat
from typing import Any, Callable, Optional

from repro.sim.engine import Engine, Event, us


def park_enabled_default() -> bool:
    """Whether poll-elision parking is on (the ``REPRO_PARK`` escape
    hatch: set ``REPRO_PARK=0`` to force every poll tick onto the heap
    for debugging)."""
    return os.environ.get("REPRO_PARK", "1") != "0"


@dataclass
class ProcessConfig:
    """Tunable per-node scheduling behaviour.

    Attributes
    ----------
    poll_interval_ns:
        Mean gap between event-loop iterations when the loop has gone
        idle.  A busy-spinning userspace loop re-polls within ~100-400 ns;
        this is the granularity at which one-sided writes are discovered.
    poll_jitter_ns:
        Uniform jitter applied to each poll gap (models cache misses,
        branch behaviour, unrelated work in the loop).
    deschedule_mean_interval_ns:
        Mean time between OS-induced descheduling events (0 disables
        them).  Sampled exponentially.
    deschedule_duration_ns:
        How long a deschedule keeps the process off-CPU.
    speed_factor:
        Multiplier applied to every CPU cost and poll gap; > 1 models the
        "long-latency node" of §4.2.
    allow_park:
        Poll-elision override: True/False forces parking on/off for this
        process; None (default) defers to the ``REPRO_PARK`` environment
        variable (see :func:`park_enabled_default`).
    """

    poll_interval_ns: int = 200
    poll_jitter_ns: int = 100
    deschedule_mean_interval_ns: int = 0
    deschedule_duration_ns: int = us(50)
    speed_factor: float = 1.0
    allow_park: Optional[bool] = None


class Cpu:
    """A serial execution resource owned by one simulated process.

    ``submit(cost, fn)`` runs ``fn`` after charging ``cost`` nanoseconds,
    serialised behind any work already queued on this CPU.  This is how
    per-message protocol work (header computation, log insertion, syscall
    costs for the TCP baselines) consumes simulated time.
    """

    __slots__ = ("engine", "name", "speed_factor", "busy_until", "halted")

    def __init__(self, engine: Engine, name: str, speed_factor: float = 1.0):
        self.engine = engine
        self.name = name
        self.speed_factor = speed_factor
        self.busy_until: int = 0
        self.halted = False

    def submit(self, cost_ns: int, fn: Callable[..., Any], *args: Any) -> Optional[Event]:
        """Charge ``cost_ns`` of CPU time, then run ``fn(*args)``.

        Returns the scheduled event, or None if the CPU is halted
        (crashed process).
        """
        if self.halted:
            return None
        start = max(self.engine.now, self.busy_until)
        sf = self.speed_factor
        # int(cost * 1.0) == cost for int costs: skip the float round-trip
        # on the (default) unit-speed path.
        finish = start + (cost_ns if sf == 1.0 and type(cost_ns) is int
                          else int(cost_ns * sf))
        self.busy_until = finish
        return self.engine.schedule_at(finish, self._run, fn, args)

    def _run(self, fn: Callable[..., Any], args: tuple) -> None:
        if not self.halted:
            fn(*args)

    def stall(self, duration_ns: int) -> None:
        """Push all queued and future work back by ``duration_ns``
        (an OS deschedule: the process loses the core for a while)."""
        base = max(self.engine.now, self.busy_until)
        self.busy_until = base + int(duration_ns)

    def halt(self) -> None:
        """Permanently stop executing submitted work (crash-stop)."""
        self.halted = True


class Process:
    """Base class for every simulated node (protocol replicas, clients).

    Subclasses override :meth:`on_poll`, which the engine invokes every
    jittered ``poll_interval``.  Message arrival in this codebase never
    invokes protocol logic directly — handlers always run from a poll, so
    batching behaviour is realistic for one-sided RDMA (the substrate
    deposits data silently; only polling observes it).  Two-sided/TCP
    substrates schedule an immediate wake-up instead, modelling an
    interrupt/epoll notification, but the work still runs on this CPU.
    """

    def __init__(self, engine: Engine, node_id: int, config: ProcessConfig | None = None,
                 name: str | None = None):
        self.engine = engine
        self.node_id = node_id
        self.config = config or ProcessConfig()
        base_name = name or f"node{node_id}"
        #: consensus-group index when constructed inside an
        #: ``engine.scoped(g)`` block (sharded deployments), else None.
        #: ``(group, node_id)`` — :attr:`addr` — is the unambiguous
        #: identity once several groups share one engine.
        self.group = engine.scope_group
        # Scoped processes get the scope label in their display name so
        # trace and span tracks separate by group; the RNG stream uses
        # the *base* name because engine.rng() applies the same scope
        # prefix itself (one prefix, not two).
        self.name = f"{engine.scope}.{base_name}" if engine.scope else base_name
        self.cpu = Cpu(engine, self.name, self.config.speed_factor)
        self.crashed = False
        self._started = False
        self._poll_event: Optional[Event] = None
        self._rng = engine.rng(f"proc.{base_name}")
        self._next_deschedule: Optional[Event] = None
        # --- poll-elision (parking) state --------------------------------
        allow = self.config.allow_park
        self._park_enabled = park_enabled_default() if allow is None else allow
        self._parked = False
        self._park_cursor = 0                       # last virtual poll time
        self._horizon_event: Optional[Event] = None  # parked deadline event

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Begin the poll loop (idempotent)."""
        if self._started or self.crashed:
            return
        self._started = True
        self.on_start()
        self._schedule_poll()
        self._schedule_deschedule()

    def on_start(self) -> None:
        """Hook run once when the process starts; override as needed."""

    def crash(self) -> None:
        """Crash-stop: no further polls, handlers or CPU work execute."""
        if self.crashed:
            return
        self.crashed = True
        self.cpu.halt()
        if self._poll_event is not None:
            self._poll_event.cancel()
        if self._next_deschedule is not None:
            self._next_deschedule.cancel()
        if self._horizon_event is not None:
            self._horizon_event.cancel()
            self._horizon_event = None
        self._parked = False
        self.engine.trace.count("process.crashes")
        obs = self.engine.obs
        if obs is not None:
            obs.process_event("crash", self.name, self.engine.now, self.engine.now)

    # --------------------------------------------------------------- poll loop

    def _poll_gap(self) -> int:
        cfg = self.config
        gap = cfg.poll_interval_ns
        if cfg.poll_jitter_ns:
            gap += self._rng.randrange(cfg.poll_jitter_ns + 1)
        return max(1, int(gap * cfg.speed_factor))

    def _schedule_poll(self) -> None:
        if self.crashed:
            return
        # The next poll cannot begin while the CPU is still busy with the
        # previous batch; polling resumes once the loop comes back around.
        # The gap draw inlines _poll_gap's common configuration (unit
        # speed, jittered) as the same getrandbits rejection sampling
        # randrange performs internally (see _wake_at_tick).
        cfg = self.config
        base = cfg.poll_interval_ns
        jitter = cfg.poll_jitter_ns
        if cfg.speed_factor == 1.0 and base >= 1 and jitter:
            grb = self._rng.getrandbits
            n = jitter + 1
            k = n.bit_length()
            r = grb(k)
            while r >= n:
                r = grb(k)
            gap = base + r
        else:
            gap = self._poll_gap()
        at = max(self.engine.now + gap, self.cpu.busy_until + 1)
        self._poll_event = self.engine.schedule_at(at, self._poll_tick)

    def _poll_tick(self) -> None:
        if self.crashed:
            return
        self.on_poll()
        if self._can_park():
            self._park()
        else:
            self._schedule_poll()

    def on_poll(self) -> None:
        """One iteration of the node's event loop; override in subclasses."""

    # ------------------------------------------------------- poll elision

    # A process whose on_poll would observe nothing can *park*: instead of
    # scheduling one heap event per poll tick, it keeps a virtual poll
    # cursor and materialises a single event at the first poll tick >= the
    # next thing that could make on_poll act — a protocol-declared
    # *deadline* (heartbeat/election/retransmit timeout) or a *doorbell*
    # (a substrate deposit into its memory, or a local request_poll()).
    # The virtual ticks draw the identical per-tick jitter samples from
    # the same RNG stream, lazily, at wake time — so the poll-time
    # sequence, RNG consumption and all downstream behaviour are
    # bit-for-bit what the unparked loop produces (the golden trace
    # fingerprints pin this).

    def park_ready(self) -> bool:
        """Override: True iff on_poll is *currently* a no-op — nothing
        pending, nothing readable, nothing to retransmit.  Default False
        (never park), so plain processes behave exactly as before."""
        return False

    def park_deadline(self) -> Optional[int]:
        """Override: an absolute ns lower bound on the first instant
        on_poll could stop being a no-op *without new input* (the
        earliest timeout expiry).  Returning early is always safe — an
        over-woken poll observes nothing and re-parks; returning late
        diverges.  None means on_poll can only be unblocked by input
        (doorbell-only park)."""
        return None

    def _can_park(self) -> bool:
        if not self._park_enabled or self.crashed:
            return False
        # Deschedule sampling shares this process's RNG stream; parking
        # would reorder the draws, so it is disabled under deschedules.
        if self.config.deschedule_mean_interval_ns > 0:
            return False
        # A backed-up CPU shifts the next poll to busy_until + 1; the
        # virtual cursor assumes the plain now + gap schedule.
        if self.cpu.busy_until > self.engine.now:
            return False
        return self.park_ready()

    def _park(self) -> None:
        deadline = self.park_deadline()
        now = self.engine.now
        if deadline is not None and deadline <= now:
            # Already due: keep polling for real.
            self._schedule_poll()
            return
        self._parked = True
        self._park_cursor = now
        self._poll_event = None
        if deadline is not None:
            self._horizon_event = self.engine.schedule_at(deadline, self._horizon_fire)

    def _horizon_fire(self) -> None:
        self._horizon_event = None
        if self.crashed or not self._parked:
            return
        self._wake_at_tick(self.engine.now, None)

    def doorbell(self, posted_at: Optional[int] = None) -> None:
        """Substrate deposit notification: wake a parked process at the
        first poll tick that would have observed the deposit.

        ``posted_at`` is the engine time at which the deposit's delivery
        was scheduled; it disambiguates the exact-tie case where the
        deposit lands on a virtual poll tick (see _wake_at_tick)."""
        if self._parked and not self.crashed:
            self._wake_at_tick(self.engine.now, posted_at)

    def request_poll(self) -> None:
        """Doorbell for local state changes made outside on_poll (client
        submissions, failover hand-offs): if parked, wake at the first
        poll tick >= now.  A no-op on unparked processes, whose regular
        loop observes the change at its next tick anyway."""
        if self._parked and not self.crashed:
            self._wake_at_tick(self.engine.now, None)

    def _wake_at_tick(self, wake_time: int, posted_at: Optional[int]) -> None:
        """Fast-forward the virtual poll schedule to the first tick >=
        ``wake_time`` and materialise the poll event there.

        This replay loop dominates farm-scale profiles (millions of
        virtual ticks), so the common configuration — unit speed factor,
        positive base interval — runs inline fast paths that consume the
        RNG stream *identically* to :meth:`_poll_gap`: the jittered path
        rejection-samples ``getrandbits(k)`` exactly as CPython's
        ``Random.randrange`` does internally, and the jitter-free path
        advances the cursor in closed form without iterating.  The
        config is re-read on every call because failure injection
        (``slow_node``) mutates ``speed_factor`` mid-run.
        """
        cfg = self.config
        prev = self._park_cursor
        base = cfg.poll_interval_ns
        jitter = cfg.poll_jitter_ns
        if cfg.speed_factor == 1.0 and base >= 1:
            if jitter:
                # max(1, int(gap * 1.0)) == gap for gap = base + r >= 1,
                # so each virtual tick is base plus one randrange(jitter+1)
                # draw, inlined as getrandbits rejection sampling.
                grb = self._rng.getrandbits
                n = jitter + 1
                k = n.bit_length()
                # Bulk phase: a tick advances at most base + jitter, so
                # the first m ticks are guaranteed to stay short of
                # wake_time and their jitter draws can be consumed in
                # C-level chunks.  Each accepted value needs at least one
                # getrandbits call, so drawing exactly `need` calls per
                # round can never overshoot the rejection-sampled stream:
                # the call-for-call consumption is identical to the
                # one-at-a-time loop below.
                m = (wake_time - prev - 1) // (base + jitter)
                if m > 0:
                    acc = 0
                    need = m
                    while need:
                        vals = list(map(grb, repeat(k, need)))
                        rej = [v for v in vals if v >= n]
                        acc += sum(vals)
                        if rej:
                            acc -= sum(rej)
                            need = len(rej)
                        else:
                            need = 0
                    prev += m * base + acc
                r = grb(k)
                while r >= n:
                    r = grb(k)
                t = prev + base + r
                while t < wake_time:
                    prev = t
                    r = grb(k)
                    while r >= n:
                        r = grb(k)
                    t = prev + base + r
                if t == wake_time and posted_at is not None and posted_at > prev:
                    # The deposit lands exactly on a poll tick, but its
                    # delivery was scheduled after that tick's event would
                    # have been (the unparked poll was created at the
                    # previous tick): the real poll fires first and misses
                    # it.  First observing tick is the next one.
                    prev = t
                    r = grb(k)
                    while r >= n:
                        r = grb(k)
                    t = prev + base + r
            else:
                # Deterministic gap: jump the cursor in closed form.
                delta = wake_time - prev
                ticks = 1 if delta <= base else -(-delta // base)
                t = prev + ticks * base
                prev = t - base
                if t == wake_time and posted_at is not None and posted_at > prev:
                    prev = t
                    t = prev + base
        else:
            t = prev + self._poll_gap()
            while t < wake_time:
                prev = t
                t = prev + self._poll_gap()
            if t == wake_time and posted_at is not None and posted_at > prev:
                prev = t
                t = prev + self._poll_gap()
        self._parked = False
        if self._horizon_event is not None:
            self._horizon_event.cancel()
            self._horizon_event = None
        self._poll_event = self.engine.schedule_at(t, self._poll_tick)

    @property
    def parked(self) -> bool:
        """True while the poll loop is elided (no pending poll event)."""
        return self._parked

    def wake(self, delay_ns: int = 0) -> None:
        """Request an extra poll ``delay_ns`` from now (used by two-sided
        substrates to model notification-driven wakeups)."""
        if self.crashed:
            return
        at = max(self.engine.now + delay_ns, self.cpu.busy_until) + 1
        self.engine.schedule_at(at, self._poll_once)

    def _poll_once(self) -> None:
        if not self.crashed:
            self.on_poll()

    # ------------------------------------------------------------- deschedules

    def _schedule_deschedule(self) -> None:
        cfg = self.config
        if cfg.deschedule_mean_interval_ns <= 0 or self.crashed:
            return
        gap = self._rng.expovariate(1.0 / cfg.deschedule_mean_interval_ns)
        self._next_deschedule = self.engine.schedule(max(1, int(gap)), self._deschedule_tick)

    def _deschedule_tick(self) -> None:
        if self.crashed:
            return
        self.deschedule(self.config.deschedule_duration_ns)
        self._schedule_deschedule()

    def deschedule(self, duration_ns: int) -> None:
        """Take the process off-CPU for ``duration_ns`` (messages keep
        accumulating in its memory; the backlog drains at the next poll)."""
        self.cpu.stall(duration_ns)
        self.engine.trace.count("process.deschedules")
        obs = self.engine.obs
        if obs is not None:
            obs.process_event("deschedule", self.name, self.engine.now,
                              self.engine.now + int(duration_ns))

    # ---------------------------------------------------------------- identity

    @property
    def addr(self) -> "int | tuple[int, int]":
        """The process's unambiguous address: the plain ``node_id`` for
        single-group runs, ``(group, node_id)`` when it belongs to a
        scoped consensus group (see :meth:`Engine.scoped`)."""
        return self.node_id if self.group is None else (self.group, self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.name} {state}>"
