"""Discrete-event engine with a nanosecond clock and deterministic RNG streams.

The engine is a classic calendar-queue simulator: callbacks are scheduled
at absolute nanosecond timestamps and executed in ``(time, seq)`` order,
where ``seq`` is a monotonically increasing tie-breaker.  Because ties are
broken deterministically and all randomness flows through named
:meth:`Engine.rng` streams, a simulation is a pure function of its seed
and configuration — re-running it produces byte-identical traces.  The
determinism tests in ``tests/sim/test_determinism.py`` rely on this.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator, Optional

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def us(x: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(x * NS_PER_US)


def ms(x: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(x * NS_PER_MS)


def sec(x: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(x * NS_PER_SEC)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Engine.schedule` and may be cancelled
    with :meth:`cancel` (cancellation is O(1): the event stays in the heap
    but is skipped when popped).  The engine tracks how many cancelled
    events its heap holds and compacts lazily, so cancellation-heavy
    workloads — timeout resets, election backoffs — never inflate the
    heap or slow :meth:`Engine.idle` to a full scan.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine", "_popped")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine: Optional["Engine"] = None
        self._popped = False

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        # Only count cancellations of events still sitting in a heap;
        # cancelling an event that already fired (or was compacted away)
        # must not skew the live count.
        if self._engine is not None and not self._popped:
            self._engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Kept for direct Event comparisons; the engine heap orders by
        # (time, seq) tuples so this never runs on the hot path.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} fn={getattr(self.fn, '__name__', self.fn)}{state}>"


class Engine:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  All random streams handed out by :meth:`rng` are
        derived from it, so two engines with equal seeds and workloads
        evolve identically.
    """

    #: below this heap size, compaction is never worth the rebuild
    _COMPACT_MIN = 64

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.now: int = 0
        #: lifetime count of events executed across all run()/step() calls;
        #: the harness surfaces it as ``engine.events`` in MetricsRegistry.
        self.events_executed: int = 0
        # Heap entries are (time, seq, event) tuples: seq is unique, so
        # tuple comparison resolves on the first two ints and never calls
        # into Event — the heap sift runs entirely in C.
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._cancelled_in_heap: int = 0
        self._rngs: dict[str, random.Random] = {}
        self._stopped = False
        #: ambient identity scope (see :meth:`scoped`): while set, every
        #: stream handed out by :meth:`rng` is prefixed with this label
        #: and processes constructed record :attr:`scope_group` as their
        #: group.  None (the default) reproduces the historical flat
        #: identity space bit-for-bit — single-group runs never pay for
        #: (or observe) the hierarchy.
        self.scope: Optional[str] = None
        self.scope_group: Optional[int] = None
        from repro.sim.trace import Tracer

        self.trace = Tracer()
        #: observability attachment point: a
        #: :class:`~repro.obs.spans.SpanRecorder` (or None).  Every
        #: instrumentation hook in the stack is gated by
        #: ``engine.obs is not None``, so a run without a recorder does
        #: not execute a single extra tracer/RNG operation — the
        #: zero-cost-when-off guarantee the golden fingerprints pin.
        self.obs: Optional[Any] = None

    # ---------------------------------------------------------------- scope

    @contextmanager
    def scoped(self, group: int, label: Optional[str] = None) -> Iterator[None]:
        """Enter the hierarchical identity scope of consensus group
        ``group`` (a :class:`~repro.shard.ShardedDeployment` shard).

        While active, :meth:`rng` prefixes every stream name with the
        scope label (default ``shard.<group>``) and newly constructed
        :class:`~repro.sim.process.Process` instances take the label
        into their names and record ``group`` — so N groups built in
        one engine get N disjoint RNG stream families and unambiguous
        trace/span track names.  Scopes are construction-time ambient
        state only: nothing on the event hot path reads them.
        """
        prev = (self.scope, self.scope_group)
        self.scope = label if label is not None else f"shard.{group}"
        self.scope_group = group
        try:
            yield
        finally:
            self.scope, self.scope_group = prev

    # ------------------------------------------------------------------ RNG

    def rng(self, stream: str) -> random.Random:
        """Return the named random stream, creating it deterministically.

        Streams are independent of the order in which they are first
        requested: each is seeded from ``(master seed, stream name)``.
        Inside a :meth:`scoped` block the stream name is prefixed with
        the scope label, so identically named streams of different
        consensus groups stay decorrelated.
        """
        if self.scope is not None:
            stream = f"{self.scope}.{stream}"
        r = self._rngs.get(stream)
        if r is None:
            # String seeds hash with sha512 inside random.Random, so streams
            # stay decorrelated without depending on PYTHONHASHSEED.
            r = random.Random(f"{self.seed}|{stream}")
            self._rngs[stream] = r
        return r

    # ------------------------------------------------------------- schedule

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute nanosecond ``time``.

        ``time`` must be integral: a float with a fractional part is a
        unit bug at the call site (ns are the base unit), so it raises
        instead of silently truncating.
        """
        if type(time) is not int:
            as_int = int(time)
            if as_int != time:
                raise ValueError(f"non-integral timestamp: {time!r}")
            time = as_int
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now {self.now}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args)
        ev._engine = self
        heappush(self._heap, (ev.time, seq, ev))
        return ev

    # -------------------------------------------------------- heap hygiene

    def _note_cancelled(self) -> None:
        """An in-heap event was cancelled; compact once dead weight
        exceeds half the heap (amortised O(1) per cancellation)."""
        self._cancelled_in_heap += 1
        if (len(self._heap) >= self._COMPACT_MIN
                and self._cancelled_in_heap * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify.  Pop order is defined by
        ``(time, seq)``, not heap layout, so determinism is unaffected.

        Compaction mutates the heap *in place* (slice assignment, never
        rebinding ``self._heap``): :meth:`run` and :meth:`step` hold a
        local alias to the list, and cancel() — hence _compact() — can
        fire from inside an executing event."""
        live = []
        for entry in self._heap:
            ev = entry[2]
            if ev.cancelled:
                ev._popped = True
            else:
                live.append(entry)
        self._heap[:] = live
        heapify(self._heap)
        self._cancelled_in_heap = 0

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if type(delay) is not int:
            as_int = int(delay)
            if as_int != delay:
                raise ValueError(f"non-integral delay: {delay!r}")
            delay = as_int
        return self.schedule_at(self.now + delay, fn, *args)

    # ------------------------------------------------------------------ run

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle.

        A one-event :meth:`run`: it shares run()'s pop loop (so cancelled
        events are skipped and accounted identically) and, like run(),
        clears a pending :meth:`stop` before executing.
        """
        return self.run(max_events=1) == 1

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number executed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so throughput computations
        over a fixed horizon are well defined.
        """
        # This is the hottest loop in the repository: every simulated
        # event in every sweep funnels through it.  heappop is bound
        # locally and cancelled pops skip straight back to the top
        # without re-testing the horizon.
        executed = 0
        heap = self._heap
        pop = heappop
        bounded = max_events is not None
        # int > float('inf') is always False, so an unbounded run uses
        # the same comparison as a bounded one without a None test per
        # event; a given ``until`` passes through exactly as before.
        horizon = float("inf") if until is None else until
        self._stopped = False
        while heap and not self._stopped:
            if bounded and executed >= max_events:
                self.events_executed += executed
                return executed
            entry = heap[0]
            ev = entry[2]
            if ev.cancelled:
                pop(heap)
                ev._popped = True
                self._cancelled_in_heap -= 1
                continue
            time = entry[0]
            if time > horizon:
                break
            pop(heap)
            ev._popped = True
            self.now = time
            ev.fn(*ev.args)
            executed += 1
        self.events_executed += executed
        if until is not None and self.now < until:
            self.now = until
        return executed

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of not-yet-cancelled events in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def idle(self) -> bool:
        """True when no live events remain (O(1): tracked by counter,
        not a heap scan)."""
        return len(self._heap) == self._cancelled_in_heap
