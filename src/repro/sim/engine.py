"""Discrete-event engine with a nanosecond clock and deterministic RNG streams.

The engine is a classic calendar-queue simulator: callbacks are scheduled
at absolute nanosecond timestamps and executed in ``(time, seq)`` order,
where ``seq`` is a monotonically increasing tie-breaker.  Because ties are
broken deterministically and all randomness flows through named
:meth:`Engine.rng` streams, a simulation is a pure function of its seed
and configuration — re-running it produces byte-identical traces.  The
determinism tests in ``tests/sim/test_determinism.py`` rely on this.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator, Optional, Sequence

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def chain_enabled_default() -> bool:
    """Whether macro-event fusion is on (the ``REPRO_CHAIN`` escape
    hatch: set ``REPRO_CHAIN=0`` to force every chain step onto the heap
    as its own event, for debugging and equivalence testing)."""
    return os.environ.get("REPRO_CHAIN", "1") != "0"


def _as_int_ns(value: Any, what: str) -> int:
    """Coerce a nanosecond quantity to int, rejecting fractional values.

    Nanoseconds are the base unit, so a float with a fractional part is
    a unit bug at the call site — it raises instead of silently
    truncating.  Shared by :meth:`Engine.schedule`,
    :meth:`Engine.schedule_at` and :meth:`Engine.schedule_chain`.
    """
    if type(value) is int:
        return value
    as_int = int(value)
    if as_int != value:
        raise ValueError(f"non-integral {what}: {value!r}")
    return as_int


def us(x: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(x * NS_PER_US)


def ms(x: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(x * NS_PER_MS)


def sec(x: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(x * NS_PER_SEC)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Engine.schedule` and may be cancelled
    with :meth:`cancel` (cancellation is O(1): the event stays in the heap
    but is skipped when popped).  The engine tracks how many cancelled
    events its heap holds and compacts lazily, so cancellation-heavy
    workloads — timeout resets, election backoffs — never inflate the
    heap or slow :meth:`Engine.idle` to a full scan.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine", "_popped")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine: Optional["Engine"] = None
        self._popped = False

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        # Only count cancellations of events still sitting in a heap;
        # cancelling an event that already fired (or was compacted away)
        # must not skew the live count.
        if self._engine is not None and not self._popped:
            self._engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Kept for direct Event comparisons; the engine heap orders by
        # (time, seq) tuples so this never runs on the hot path.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} fn={getattr(self.fn, '__name__', self.fn)}{state}>"


class _Chain:
    """A compiled macro-event: N steps sharing one heap entry.

    A chain occupies a single ``(time, seq, chain)`` heap slot keyed by
    its *current* step.  :meth:`Engine._exec_chain` walks the steps,
    advancing ``engine.now`` to each step's absolute time, and re-pushes
    the remainder (one heappush) whenever an interleaved event, the run
    horizon, an event budget, or :meth:`Engine.stop` must win first —
    so execution order is exactly what N separate heap entries would
    produce, for one push/pop instead of N in the common case.

    ``seq`` always holds the tie-break seq of the current step.  In
    *static* mode all N seqs are reserved consecutively at schedule
    time (matching a producer that calls ``schedule_at`` N times inside
    one event).  In *dynamic* mode each next step's seq is drawn from
    the live engine counter after the previous step returns (matching a
    self-rescheduling callback that allocates its successor while
    executing).
    """

    __slots__ = ("steps", "index", "seq", "dynamic", "cancelled", "_engine", "_popped")

    def __init__(self, steps: list, seq: int, dynamic: bool):
        self.steps = steps  # [(abs_time_ns, fn, args), ...]
        self.index = 0
        self.seq = seq
        self.dynamic = dynamic
        self.cancelled = False
        self._engine: Optional["Engine"] = None
        self._popped = False

    def cancel(self) -> None:
        """Prevent the remaining steps from firing (steps that already
        executed are unaffected); safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None and not self._popped:
            self._engine._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return (f"<Chain step {self.index}/{len(self.steps)}"
                f" t={self.steps[self.index][0] if self.index < len(self.steps) else '-'}"
                f" seq={self.seq}{state}>")


class _ChainFallback:
    """Cancellation handle for a chain scheduled with fusion disabled:
    wraps the per-step events so callers can cancel the tail uniformly."""

    __slots__ = ("events",)

    def __init__(self, events: list):
        self.events = events

    def cancel(self) -> None:
        for ev in self.events:
            ev.cancel()


class ChainBuilder:
    """Buffers ``schedule_at`` calls so a producer loop can emit them as
    one fused chain.

    Producers that schedule one event per destination (SST pushes, ring
    broadcasts, TCP fan-out) call :meth:`add` with the same absolute
    times they would have passed to ``schedule_at``, then
    :meth:`commit`.  Commit fuses iff fusion is enabled and the
    buffered times are non-decreasing (per-QP FIFO floors make this the
    overwhelmingly common case, but loss-as-delay can reorder); any
    other case falls back to individual ``schedule_at`` calls in the
    same order — either way the events consume identical tie-break
    seqs, so the choice is invisible to the simulation.

    A builder is reusable: commit drains the buffer.  Producers should
    commit in a ``finally`` block when the filling loop can raise
    (e.g. ``SendQueueFullError`` mid-broadcast) so buffered steps are
    never silently dropped.
    """

    __slots__ = ("_engine", "_steps")

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self._steps: list = []

    def add(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Buffer ``fn(*args)`` at absolute nanosecond ``time``."""
        self._steps.append((time, fn, args))

    def commit(self):
        """Flush buffered steps: one fused chain when possible, else
        individual events.  Returns the chain (or the single event, or
        None when empty / fallen back)."""
        steps = self._steps
        if not steps:
            return None
        self._steps = []
        eng = self._engine
        if len(steps) == 1:
            t, fn, args = steps[0]
            return eng.schedule_at(t, fn, *args)
        if eng.chain_enabled:
            prev = steps[0][0]
            monotone = True
            for s in steps:
                if s[0] < prev:
                    monotone = False
                    break
                prev = s[0]
            if monotone:
                return eng._push_chain_abs(steps)
        for t, fn, args in steps:
            eng.schedule_at(t, fn, *args)
        return None


class Engine:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  All random streams handed out by :meth:`rng` are
        derived from it, so two engines with equal seeds and workloads
        evolve identically.
    """

    #: below this heap size, compaction is never worth the rebuild
    _COMPACT_MIN = 64

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.now: int = 0
        #: lifetime count of events executed across all run()/step() calls;
        #: the harness surfaces it as ``engine.events`` in MetricsRegistry.
        #: Chain steps count individually, so the total is independent of
        #: whether fusion is on.
        self.events_executed: int = 0
        #: lifetime count of heappushes into the event heap — the
        #: machine-independent measure of what macro-event fusion saves
        #: (a fused N-step chain costs 1 push + 1 per deferral instead
        #: of N).
        self.heap_pushes: int = 0
        #: whether :meth:`schedule_chain` / :class:`ChainBuilder` fuse
        #: (``REPRO_CHAIN`` env, default on).  Producers also read this
        #: to pick between fused and per-event scheduling.
        self.chain_enabled: bool = chain_enabled_default()
        # Heap entries are (time, seq, event, fn, args) tuples: seq is
        # unique, so tuple comparison resolves on the first two ints and
        # never calls into Event — the heap sift runs entirely in C.
        # The handler and its args are preloaded into the entry so the
        # run() loop dispatches without per-event attribute lookups;
        # ``fn is None`` tags a compiled chain (kind-indexed dispatch).
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._cancelled_in_heap: int = 0
        self._rngs: dict[str, random.Random] = {}
        self._stopped = False
        #: ambient identity scope (see :meth:`scoped`): while set, every
        #: stream handed out by :meth:`rng` is prefixed with this label
        #: and processes constructed record :attr:`scope_group` as their
        #: group.  None (the default) reproduces the historical flat
        #: identity space bit-for-bit — single-group runs never pay for
        #: (or observe) the hierarchy.
        self.scope: Optional[str] = None
        self.scope_group: Optional[int] = None
        from repro.sim.trace import Tracer

        self.trace = Tracer()
        #: observability attachment point: a
        #: :class:`~repro.obs.spans.SpanRecorder` (or None).  Every
        #: instrumentation hook in the stack is gated by
        #: ``engine.obs is not None``, so a run without a recorder does
        #: not execute a single extra tracer/RNG operation — the
        #: zero-cost-when-off guarantee the golden fingerprints pin.
        self.obs: Optional[Any] = None
        #: runtime-invariant attachment point: a
        #: :class:`~repro.monitors.MonitorRegistry` (or None).  Same
        #: contract as :attr:`obs` — every protocol emission site is
        #: gated by ``engine.monitors is not None``, so runs without
        #: monitors execute no monitor code at all.
        self.monitors: Optional[Any] = None
        #: adversarial-fault attachment point: a
        #: :class:`~repro.sim.byzantine.ByzantineInjector` (or None).
        #: Same contract again — every substrate/ring interception site
        #: is gated by ``engine.byz is not None``, so byz-off runs stay
        #: bit-identical to the golden fingerprints.
        self.byz: Optional[Any] = None

    # ---------------------------------------------------------------- scope

    @contextmanager
    def scoped(self, group: int, label: Optional[str] = None) -> Iterator[None]:
        """Enter the hierarchical identity scope of consensus group
        ``group`` (a :class:`~repro.shard.ShardedDeployment` shard).

        While active, :meth:`rng` prefixes every stream name with the
        scope label (default ``shard.<group>``) and newly constructed
        :class:`~repro.sim.process.Process` instances take the label
        into their names and record ``group`` — so N groups built in
        one engine get N disjoint RNG stream families and unambiguous
        trace/span track names.  Scopes are construction-time ambient
        state only: nothing on the event hot path reads them.
        """
        prev = (self.scope, self.scope_group)
        self.scope = label if label is not None else f"shard.{group}"
        self.scope_group = group
        try:
            yield
        finally:
            self.scope, self.scope_group = prev

    # ------------------------------------------------------------------ RNG

    def rng(self, stream: str) -> random.Random:
        """Return the named random stream, creating it deterministically.

        Streams are independent of the order in which they are first
        requested: each is seeded from ``(master seed, stream name)``.
        Inside a :meth:`scoped` block the stream name is prefixed with
        the scope label, so identically named streams of different
        consensus groups stay decorrelated.
        """
        if self.scope is not None:
            stream = f"{self.scope}.{stream}"
        r = self._rngs.get(stream)
        if r is None:
            # String seeds hash with sha512 inside random.Random, so streams
            # stay decorrelated without depending on PYTHONHASHSEED.
            r = random.Random(f"{self.seed}|{stream}")
            self._rngs[stream] = r
        return r

    # ------------------------------------------------------------- schedule

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute nanosecond ``time``.

        ``time`` must be integral: a float with a fractional part is a
        unit bug at the call site (ns are the base unit), so it raises
        instead of silently truncating.
        """
        if type(time) is not int:
            time = _as_int_ns(time, "timestamp")
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now {self.now}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args)
        ev._engine = self
        heappush(self._heap, (time, seq, ev, fn, args))
        self.heap_pushes += 1
        return ev

    def schedule_chain(self, steps: Sequence[tuple], *, dynamic: bool = False):
        """Schedule a precompiled macro-event: ``steps`` is a sequence of
        ``(offset_ns, fn, args)`` with offsets relative to ``now``,
        non-negative, integral and non-decreasing.  The whole chain
        occupies one heap entry; each step runs with ``now`` advanced to
        its absolute time, in exactly the order N separate
        ``schedule_at`` calls would have produced (see :class:`_Chain`
        for the interleaving and tie-break argument).

        ``dynamic=True`` allocates each next step's tie-break seq from
        the live counter after the previous step returns, for chains
        standing in for self-rescheduling callbacks (batched open-loop
        arrivals); the default reserves all seqs up front, for chains
        standing in for a producer scheduling N events at once.

        Returns a handle with ``cancel()`` (cancels remaining steps),
        or None for an empty ``steps``.  With fusion disabled
        (``REPRO_CHAIN=0``) every step becomes an ordinary event —
        identical behaviour for static chains; dynamic callers that
        need true tick-by-tick seq allocation when unfused should keep
        their own per-event path instead.
        """
        if not steps:
            return None
        now = self.now
        abs_steps = []
        prev = 0
        for off, fn, args in steps:
            off = _as_int_ns(off, "chain offset")
            if off < 0:
                raise ValueError(f"negative chain offset: {off}")
            if off < prev:
                raise ValueError(
                    f"chain offsets must be non-decreasing: {off} < {prev}")
            prev = off
            abs_steps.append((now + off, fn, args))
        if not self.chain_enabled:
            return _ChainFallback(
                [self.schedule_at(t, fn, *args) for t, fn, args in abs_steps])
        return self._push_chain_abs(abs_steps, dynamic=dynamic)

    def _push_chain_abs(self, steps: list, dynamic: bool = False) -> _Chain:
        """Producer fast path: push pre-validated ``(abs_time, fn, args)``
        steps as one chain.  Times must be integral, non-decreasing and
        not in the past — producers derive them from int cost arithmetic
        with FIFO floors, so only the past-check is re-verified here."""
        if steps[0][0] < self.now:
            raise ValueError(
                f"cannot schedule in the past: {steps[0][0]} < now {self.now}")
        base = self._seq
        self._seq = base + (1 if dynamic else len(steps))
        ch = _Chain(steps, base, dynamic)
        ch._engine = self
        heappush(self._heap, (steps[0][0], base, ch, None, None))
        self.heap_pushes += 1
        return ch

    def chain_builder(self) -> ChainBuilder:
        """Return a fresh :class:`ChainBuilder` bound to this engine."""
        return ChainBuilder(self)

    # -------------------------------------------------------- heap hygiene

    def _note_cancelled(self) -> None:
        """An in-heap event was cancelled; compact once dead weight
        exceeds half the heap (amortised O(1) per cancellation)."""
        self._cancelled_in_heap += 1
        if (len(self._heap) >= self._COMPACT_MIN
                and self._cancelled_in_heap * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify.  Pop order is defined by
        ``(time, seq)``, not heap layout, so determinism is unaffected.

        Compaction mutates the heap *in place* (slice assignment, never
        rebinding ``self._heap``): :meth:`run` and :meth:`step` hold a
        local alias to the list, and cancel() — hence _compact() — can
        fire from inside an executing event."""
        live = []
        for entry in self._heap:
            ev = entry[2]
            if ev.cancelled:
                ev._popped = True
            else:
                live.append(entry)
        self._heap[:] = live
        heapify(self._heap)
        self._cancelled_in_heap = 0

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if type(delay) is not int:
            delay = _as_int_ns(delay, "delay")
        return self.schedule_at(self.now + delay, fn, *args)

    # ------------------------------------------------------------------ run

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle.

        A one-event :meth:`run`: it shares run()'s pop loop (so cancelled
        events are skipped and accounted identically) and, like run(),
        clears a pending :meth:`stop` before executing.
        """
        return self.run(max_events=1) == 1

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number executed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so throughput computations
        over a fixed horizon are well defined.
        """
        # This is the hottest loop in the repository: every simulated
        # event in every sweep funnels through it.  heappop is bound
        # locally and cancelled pops skip straight back to the top
        # without re-testing the horizon.
        executed = 0
        heap = self._heap
        pop = heappop
        bounded = max_events is not None
        # int > float('inf') is always False, so an unbounded run uses
        # the same comparison as a bounded one without a None test per
        # event; a given ``until`` passes through exactly as before.
        horizon = float("inf") if until is None else until
        self._stopped = False
        while heap and not self._stopped:
            if bounded and executed >= max_events:
                self.events_executed += executed
                return executed
            # One tuple unpack reads everything the loop body needs:
            # the handler and its args are preloaded at schedule time,
            # so the hot path never touches an Event attribute beyond
            # the cancellation flag, and ``fn is None`` dispatches
            # chains without an isinstance/class test.
            time, _seq, ev, fn, args = heap[0]
            if ev.cancelled:
                pop(heap)
                ev._popped = True
                self._cancelled_in_heap -= 1
                continue
            if time > horizon:
                break
            pop(heap)
            ev._popped = True
            if fn is None:
                executed += self._exec_chain(
                    ev, horizon, (max_events - executed) if bounded else -1)
                continue
            self.now = time
            fn(*args)
            executed += 1
        self.events_executed += executed
        if until is not None and self.now < until:
            self.now = until
        return executed

    def _exec_chain(self, chain: _Chain, horizon, budget: int) -> int:
        """Execute steps of a just-popped chain until it completes or must
        yield; returns the number of steps executed (``budget`` < 0 means
        unbounded).

        After each step the next step's ``(time, seq)`` is compared
        against the heap head: if any live-or-cancelled entry sorts
        earlier, or the horizon/budget/:meth:`stop` applies, the
        remainder is re-pushed as one entry and control returns to
        :meth:`run` — so fused execution is observably identical to the
        per-event schedule.
        """
        heap = self._heap
        steps = chain.steps
        n = len(steps)
        executed = 0
        i = chain.index
        seq = chain.seq
        dynamic = chain.dynamic
        while True:
            t, fn, args = steps[i]
            self.now = t
            fn(*args)
            executed += 1
            i += 1
            if i == n:
                return executed
            # The seq for step i is allocated only now, after step i-1
            # ran: in dynamic mode from the live counter (matching a
            # callback that schedules its successor while executing —
            # after any seqs its body consumed), in static mode from the
            # block reserved at schedule time.
            if dynamic:
                seq = self._seq
                self._seq = seq + 1
            else:
                seq += 1
            chain.index = i
            chain.seq = seq
            if chain.cancelled:
                # cancel() during a step: the remaining steps die with
                # the chain, which never re-enters the heap.
                return executed
            nt = steps[i][0]
            if (self._stopped
                    or (0 <= budget <= executed)
                    or nt > horizon
                    or (heap and (heap[0][0] < nt
                                  or (heap[0][0] == nt and heap[0][1] < seq)))):
                chain._popped = False
                heappush(heap, (nt, seq, chain, None, None))
                self.heap_pushes += 1
                return executed

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of not-yet-cancelled events in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def idle(self) -> bool:
        """True when no live events remain (O(1): tracked by counter,
        not a heap scan)."""
        return len(self._heap) == self._cancelled_in_heap
