"""Counters, samples and optional event capture for simulations.

The tracer is intentionally cheap: counters are plain dict increments and
samples append to lists, so leaving tracing enabled does not distort the
relative timing of simulated protocols (simulated time is independent of
host time anyway — this only affects host-side run duration).
"""

from __future__ import annotations

import math
from typing import Any, Iterable


class Tracer:
    """Accumulates named counters, numeric samples and optional events."""

    def __init__(self, capture_events: bool = False):
        self.counters: dict[str, int] = {}
        self.samples: dict[str, list[float]] = {}
        self.capture_events = capture_events
        self.events: list[tuple[int, str, Any]] = []
        # Sorted-series cache for percentile(): name -> (length, sorted).
        # Series are append-only (sample/merge extend, reset clears), so a
        # stale entry is detectable by length alone — sample() pays nothing
        # to keep the cache honest.
        self._sorted: dict[str, tuple[int, list[float]]] = {}

    # ------------------------------------------------------------- counters

    def count(self, name: str, inc: int = 1) -> None:
        """Increment counter ``name`` by ``inc``."""
        # try/except beats dict.get on the hot path: existing keys (the
        # overwhelming majority of increments) take the no-branch fast path.
        try:
            self.counters[name] += inc
        except KeyError:
            self.counters[name] = inc

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    # -------------------------------------------------------------- samples

    def sample(self, name: str, value: float) -> None:
        """Append ``value`` to the sample series ``name``."""
        try:
            self.samples[name].append(value)
        except KeyError:
            self.samples[name] = [value]

    def series(self, name: str) -> list[float]:
        """Return the (possibly empty) sample series ``name``."""
        return self.samples.get(name, [])

    def mean(self, name: str) -> float:
        """Mean of the sample series (NaN when empty)."""
        s = self.samples.get(name)
        return sum(s) / len(s) if s else math.nan

    def percentile(self, name: str, p: float) -> float:
        """Nearest-rank percentile of series ``name`` (p in [0, 100]).

        The sorted series is cached, so percentile fan-outs (p50/p99/p999
        over the same series) sort once instead of once per call.  The
        cache invalidates itself whenever the series length changes
        (sample, merge) and is dropped wholesale by :meth:`reset`.
        """
        s = self.samples.get(name)
        if not s:
            return math.nan
        cached = self._sorted.get(name)
        if cached is None or cached[0] != len(s):
            ordered = sorted(s)
            self._sorted[name] = (len(s), ordered)
        else:
            ordered = cached[1]
        k = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[k]

    # --------------------------------------------------------------- events

    def event(self, time: int, kind: str, detail: Any = None) -> None:
        """Record a trace event when capture is enabled."""
        if self.capture_events:
            self.events.append((time, kind, detail))

    def fingerprint(self) -> tuple:
        """A hashable digest of the trace, used by determinism tests."""
        counter_items = tuple(sorted(self.counters.items()))
        sample_digest = tuple(
            sorted((k, len(v), round(sum(v), 6)) for k, v in self.samples.items())
        )
        return (counter_items, sample_digest, len(self.events))

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's counters and samples into this one."""
        for k, v in other.counters.items():
            self.count(k, v)
        for k, vs in other.samples.items():
            self.samples.setdefault(k, []).extend(vs)

    def reset(self) -> None:
        """Clear all counters, samples and captured events."""
        self.counters.clear()
        self.samples.clear()
        self.events.clear()
        self._sorted.clear()

    def summary(self, names: Iterable[str] | None = None) -> dict[str, float]:
        """One flat ``dict[str, int | float]`` of everything recorded:
        counters verbatim plus sample series as their means, all under
        their dotted names, routed through the metrics registry so the
        shape matches :meth:`Substrate.counters` /
        :meth:`publish_counters`.  ``names`` filters to those metrics.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.ingest_tracer(self)
        return registry.snapshot(names)
