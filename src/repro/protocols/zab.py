"""Zab over TCP — the ZooKeeper baseline (§4, §5).

Zab is the protocol Acuerdo's broadcast mode is modelled on, so the
contrasts are precise:

- Zab followers ACK **every proposal** over TCP (kernel CPU both ends);
  Acuerdo followers overwrite one SST row with the newest header only;
- Zab's leader sends an explicit COMMIT message per proposal; Acuerdo
  piggybacks commit state on an overwriting SST row off the critical
  path;
- ZooKeeper's election (Fast Leader Election) must *verify* the elected
  leader is up to date with an extra round after voting — and restart if
  the check fails — because the optimized up-to-date election was shown
  incorrect (§5).  Acuerdo's election provides the guarantee by
  construction.

The deployment model matches the paper's: ZooKeeper 3.4 with its
transaction log on disk (group-committed fsyncs) and the request
pipeline's per-op CPU cost.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import TcpParams, build_substrate
from repro.sim.disk import Disk
from repro.sim.engine import Engine, us
from repro.sim.process import Process, ProcessConfig


@dataclass
class ZabConfig:
    """ZooKeeper-deployment cost knobs.

    ``request_cpu_ns`` models the ZK request-processor pipeline
    (serialisation, session checks, queueing between pipeline stages) —
    tens of microseconds per op in a JVM service."""

    request_cpu_ns: int = 25_000
    ack_cpu_ns: int = 3_000
    fsync_ns: int = 120_000
    max_requests_per_poll: int = 8      # pipeline stage width: keeps the
                                        # leader responsive under bursts
    election_timeout_ns: int = us(6_000)  # large vs loaded poll turns, so
                                          # ACK floods don't look like death
    fle_round_ns: int = us(50)          # notification exchange cadence
    heartbeat_period_ns: int = us(100)
    msg_overhead_bytes: int = 48        # jute serialization overhead
    process: ProcessConfig = field(
        default_factory=lambda: ProcessConfig(poll_interval_ns=2_000, poll_jitter_ns=500))


class ZabNode(Process):
    """One ZooKeeper server."""

    LOOKING, FOLLOWING, LEADING = "looking", "following", "leading"

    def __init__(self, cluster: "ZabCluster", node_id: int, cfg: ZabConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process), name=f"zk{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.ep = cluster.net.attach(self)
        self.disk = Disk(cluster.engine, cfg.fsync_ns, name=f"zk{node_id}.disk")
        self.state = self.LOOKING
        self.epoch = 0
        self.leader: Optional[int] = None
        self.log: list[tuple[tuple, Any, int]] = []     # (zxid, payload, size)
        self.counter = 0
        self.delivered_upto = 0                          # index into log
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self._cbs: dict[tuple, CommitCallback] = {}
        self.acks: dict[tuple, set[int]] = {}
        self.committed_zxid: tuple = (0, 0)
        self._durable_upto = 0
        self._last_hb_seen = 0
        self._last_hb_sent = 0
        # Fast Leader Election state
        self._fle_vote: Optional[tuple] = None           # (zxid, id)
        self._fle_received: dict[int, tuple] = {}
        self._fle_round_started = 0
        self._sync_acks: set[int] = set()
        self._verify_replies: dict[int, tuple] = {}
        self._phase = None                               # None|verify|sync
        self._follower_seen: dict[int, int] = {}
        self._became_leader_at = 0

    # ------------------------------------------------------------------ util

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(cost * cpu.speed_factor)

    def _send(self, dst: int, msg: tuple, size: int) -> None:
        self.cluster.net.send(self.node_id, dst, msg, size + self.cfg.msg_overhead_bytes)

    def _bcast(self, msg: tuple, size: int) -> None:
        # Fused fan-out: the network coalesces the deliveries of one
        # broadcast into a single macro-event (costs and timestamps are
        # the per-unicast ones either way).  Zab skips known-crashed
        # peers, so the filtered list is built here.
        nodes = self.cluster.nodes
        dsts = [p for p in self.cluster.node_ids
                if p != self.node_id and not nodes[p].crashed]
        self.cluster.net.broadcast(self.node_id, dsts, msg,
                                   size + self.cfg.msg_overhead_bytes)

    def last_zxid(self) -> tuple:
        return self.log[-1][0] if self.log else (0, 0)

    # ------------------------------------------------------------------ poll

    def on_poll(self) -> None:
        if self.ep.inbox:
            for src, msg in self.ep.drain():
                self._dispatch(src, msg)
        if self.state == self.LEADING:
            self._leader_step()
        elif self.state == self.FOLLOWING:
            self._follower_step()
        else:
            self._election_step()

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        if self.ep.inbox or self.pending:
            return False
        if self.disk._busy:
            # fsync callbacks fire outside the poll loop and advance
            # busy_until (ACK sends); stay on the real schedule until
            # the device drains so those charges land as in the baseline.
            return False
        if self.state == self.LOOKING:
            if self._fle_vote is None:
                return False
            agree = sum(1 for v in self._fle_received.values() if v == self._fle_vote)
            if agree >= self.cluster.quorum and self._fle_vote[1] == self.node_id:
                return False  # _start_leading due on the next tick
        return True

    def park_deadline(self) -> Optional[int]:
        cfg = self.cfg
        if self.state == self.LEADING:
            # Heartbeat cadence (>=) dominates; the quorum-contact
            # step-down can only flip when a follower's last-contact
            # expires (strict >) or at the leader-grace expiry — waking
            # early on any of these is a harmless no-op.
            d = self._last_hb_sent + cfg.heartbeat_period_ns
            t = self._became_leader_at + cfg.election_timeout_ns + 1
            if t < d:
                d = t
            for p, seen in self._follower_seen.items():
                if self.cluster.nodes[p].crashed:
                    continue
                t = seen + cfg.election_timeout_ns + 1
                if t < d:
                    d = t
            return d
        if self.state == self.FOLLOWING:
            return self._last_hb_seen + cfg.election_timeout_ns + 1
        # LOOKING: re-broadcast a stalled round (strict >), or re-elect
        # while waiting for the winner's SYNC (strict >, doubled).
        agree = sum(1 for v in self._fle_received.values() if v == self._fle_vote)
        if agree >= self.cluster.quorum:
            return self._fle_round_started + cfg.election_timeout_ns * 2 + 1
        return self._fle_round_started + cfg.election_timeout_ns + 1

    # ------------------------------------------------------------- broadcast

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    def _leader_step(self) -> None:
        now = self.engine.now
        if now - self._last_hb_sent >= self.cfg.heartbeat_period_ns:
            self._last_hb_sent = now
            self._bcast(("PING", self.committed_zxid), 8)
        # Step down if a quorum of the ensemble is out of contact — a
        # minority leader must not keep reporting itself as serving.
        recent = sum(1 for p, t in self._follower_seen.items()
                     if now - t <= self.cfg.election_timeout_ns
                     and not self.cluster.nodes[p].crashed)
        if recent + 1 < self.cluster.quorum and \
                now - self._became_leader_at > self.cfg.election_timeout_ns:
            self._enter_election()
            return
        taken = 0
        while self.pending and self._phase is None and \
                taken < self.cfg.max_requests_per_poll:
            taken += 1
            payload, size, cb = self.pending.pop(0)
            self.counter += 1
            zxid = (self.epoch, self.counter)
            self._charge(self.cfg.request_cpu_ns)
            self.log.append((zxid, payload, size))
            if cb is not None:
                self._cbs[zxid] = cb
            self.acks[zxid] = set()
            prop = ("PROPOSE", zxid, payload, size)
            obs = self.engine.obs
            if obs is not None:
                # The PROPOSE tuple is the wire carrier for this payload:
                # bind it so tcp send/drain milestones attribute to the span.
                obs.bind(prop, payload)
                obs.mark(payload, "propose", self.engine.now)
            self._bcast(prop, size)
            self.disk.append(lambda zxid=zxid: self._on_self_durable(zxid))
            self.engine.trace.count("zab.propose")

    def _on_self_durable(self, zxid: tuple) -> None:
        monitors = self.engine.monitors
        if monitors is not None:
            # Durable zxid frontier = cumulative accept (FIFO disk, so
            # these arrive in zxid order).
            monitors.note(self.cluster, "accept", self.node_id, slot=zxid)
        self._note_ack(zxid, self.node_id)

    def _note_ack(self, zxid: tuple, voter: int) -> None:
        if self.state != self.LEADING or zxid[0] != self.epoch:
            return
        s = self.acks.setdefault(zxid, set())
        s.add(voter)
        if len(s) >= self.cluster.quorum and zxid > self.committed_zxid:
            # Commit everything up to zxid in order.  The log is
            # append-only in zxid order and every entry below
            # delivered_upto is already committed, so the quorum check
            # only needs the (committed_zxid, zxid] window — scanning
            # from the front again would be quadratic under load.
            log, acks, quorum = self.log, self.acks, self.cluster.quorum
            for i in range(self.delivered_upto, len(log)):
                z = log[i][0]
                if z > zxid:
                    break
                if self.committed_zxid < z:
                    if len(acks.get(z, ())) < quorum and z != zxid:
                        return  # earlier proposal not yet quorum-acked
            self.committed_zxid = zxid
            self._bcast(("COMMIT", zxid), 16)
            self._deliver_upto(zxid)

    def _follower_durable(self, zxid: tuple, leader: int) -> None:
        monitors = self.engine.monitors
        if monitors is not None:
            monitors.note(self.cluster, "accept", self.node_id, slot=zxid)
        self._send(leader, ("ACK", zxid), 16)

    def _deliver_upto(self, zxid: tuple) -> None:
        obs = self.engine.obs
        monitors = self.engine.monitors
        while self.delivered_upto < len(self.log):
            z, payload, _sz = self.log[self.delivered_upto]
            if z > zxid:
                break
            self.delivered_upto += 1
            if monitors is not None:
                monitors.note(self.cluster, "commit", self.node_id, slot=z)
            if obs is not None:
                obs.mark(payload, "commit", self.engine.now)
            self.cluster.record_delivery(self.node_id, payload)
            cb = self._cbs.pop(z, None)
            if cb is not None:
                cb(z)
            self.engine.trace.count("zab.deliver")

    def _follower_step(self) -> None:
        # Forward client writes to the leader, as ZooKeeper followers do
        # (the harness always submits at the leader, so forwarded writes
        # carry no commit callback).
        while self.pending:
            payload, size, _cb = self.pending.pop(0)
            if self.leader is not None:
                self._send(self.leader, ("FORWARD", payload, size), size)
        if self.engine.now - self._last_hb_seen > self.cfg.election_timeout_ns:
            self._enter_election()

    # -------------------------------------------------------------- messages

    def _dispatch(self, src: int, msg: tuple) -> None:
        kind = msg[0]
        if self.state == self.LEADING:
            self._follower_seen[src] = self.engine.now
        if kind == "PROPOSE" and self.state == self.FOLLOWING:
            _, zxid, payload, size = msg
            if zxid[0] >= self.epoch:
                self.epoch = zxid[0]
                self.log.append((zxid, payload, size))
                self._charge(self.cfg.ack_cpu_ns)
                obs = self.engine.obs
                if obs is not None:
                    obs.mark(msg, "accept", self.engine.now)
                self.disk.append(lambda zxid=zxid, src=src:
                                 self._follower_durable(zxid, src))
        elif kind == "ACK":
            self._note_ack(msg[1], src)
        elif kind == "COMMIT" and self.state == self.FOLLOWING:
            zxid = msg[1]
            if zxid > self.committed_zxid:
                self.committed_zxid = zxid
            self._deliver_upto(self.committed_zxid)
        elif kind == "PING" and self.state == self.FOLLOWING:
            self._last_hb_seen = self.engine.now
            self._send(src, ("PONG",), 8)
            if msg[1] > self.committed_zxid:
                self.committed_zxid = msg[1]
                self._deliver_upto(self.committed_zxid)
        elif kind == "PONG":
            pass  # contact already noted above for a leading node
        elif kind == "FORWARD" and self.state == self.LEADING:
            _, payload, size = msg
            self.pending.append((payload, size, None))
        elif kind == "FLE_VOTE":
            if self.state == self.LEADING and self._phase is None:
                # A peer fell back to LOOKING (timeout under load): bring
                # it back with a fresh SYNC instead of letting it float.
                log_size = sum(sz for _z, _p, sz in self.log)
                self._send(src, ("SYNC", self.epoch, self.node_id, tuple(self.log)),
                           max(64, log_size))
            else:
                self._on_fle_vote(src, msg[1])
        elif kind == "VERIFY_REQ":
            self._send(src, ("VERIFY_REP", self.last_zxid()), 16)
        elif kind == "VERIFY_REP":
            self._verify_replies[src] = msg[1]
        elif kind == "SYNC" and self.state in (self.LOOKING, self.FOLLOWING):
            _, epoch, leader, log = msg
            if epoch >= self.epoch:
                self.epoch = epoch
                self.leader = leader
                prev_frontier = self.last_zxid()
                self.log = list(log)
                self.delivered_upto = min(self.delivered_upto, len(self.log))
                monitors = self.engine.monitors
                if monitors is not None:
                    # State transfer installs the leader's whole log:
                    # the accepted frontier jumps to its last zxid (a
                    # truncation when the old suffix was longer).
                    frontier = self.last_zxid()
                    kind = ("accept" if frontier >= prev_frontier
                            else "accept_trunc")
                    monitors.note(self.cluster, kind, self.node_id,
                                  slot=frontier)
                self.state = self.FOLLOWING
                self._last_hb_seen = self.engine.now
                self._send(leader, ("SYNC_ACK", epoch), 8)
                self.engine.trace.count("zab.sync")
        elif kind == "SYNC_ACK" and self.state == self.LEADING:
            self._sync_acks.add(src)
            if len(self._sync_acks) + 1 >= self.cluster.quorum and self._phase == "sync":
                self._phase = None  # broadcast mode open for business
                # A quorum now stores exactly our log: commit the synced
                # prefix (Zab's NEWLEADER commit), or the uncommitted
                # old-epoch suffix would block every new-epoch commit.
                if self.log:
                    self.committed_zxid = self.last_zxid()
                    monitors = self.engine.monitors
                    if monitors is not None:
                        # The leader's own copy of the synced log counts
                        # toward the quorum that stores the prefix.
                        monitors.note(self.cluster, "accept", self.node_id,
                                      slot=self.committed_zxid)
                    self._bcast(("COMMIT", self.committed_zxid), 16)
                    self._deliver_upto(self.committed_zxid)
                self.engine.trace.count("zab.broadcast_open")

    # -------------------------------------------------------------- election

    def _enter_election(self) -> None:
        if self.state != self.LOOKING:
            self.engine.trace.count("zab.elections_started")
        self.state = self.LOOKING
        self.leader = None
        self._phase = None
        self._fle_vote = (self.last_zxid(), self.node_id)
        self._fle_received = {self.node_id: self._fle_vote}
        self._fle_round_started = self.engine.now
        self._bcast(("FLE_VOTE", self._fle_vote), 24)

    def _on_fle_vote(self, src: int, vote: tuple) -> None:
        if self.state != self.LOOKING:
            # Tell latecomers who the leader is by echoing our vote.
            if self.leader is not None:
                self._send(src, ("FLE_VOTE", (self.last_zxid(), self.leader)), 24)
            return
        self._fle_received[src] = vote
        if self._fle_vote is None or vote > self._fle_vote:
            self._fle_vote = vote
            self._bcast(("FLE_VOTE", vote), 24)

    def _election_step(self) -> None:
        if self._fle_vote is None:
            self._enter_election()
            return
        agree = [s for s, v in self._fle_received.items() if v == self._fle_vote]
        if len(agree) >= self.cluster.quorum:
            winner = self._fle_vote[1]
            if winner == self.node_id:
                self._start_leading()
            # Followers wait for SYNC from the winner; re-elect on timeout.
            elif self.engine.now - self._fle_round_started > self.cfg.election_timeout_ns * 2:
                self._enter_election()
        elif self.engine.now - self._fle_round_started > self.cfg.election_timeout_ns:
            # Round stalled: rebroadcast our vote (notification loss model).
            self._fle_round_started = self.engine.now
            self._bcast(("FLE_VOTE", self._fle_vote), 24)

    def _start_leading(self) -> None:
        """Won FLE — but unlike Acuerdo we must *verify* we are up to
        date with an extra round before serving (§5), restarting the
        election if the check fails."""
        self.state = self.LEADING
        self.leader = self.node_id
        self._became_leader_at = self.engine.now
        self._follower_seen = {}
        self._phase = "verify"
        self._verify_replies = {}
        self._bcast(("VERIFY_REQ",), 8)
        self.engine.schedule(self.cfg.fle_round_ns * 4, self._finish_verify)
        self.engine.trace.count("zab.elected")

    def _finish_verify(self) -> None:
        if self.state != self.LEADING or self._phase != "verify":
            return
        mine = self.last_zxid()
        behind = [z for z in self._verify_replies.values() if z > mine]
        if behind:
            # Up-to-date check failed: back to election (the restart
            # Acuerdo's construction avoids).
            self.engine.trace.count("zab.verify_failed")
            self._enter_election()
            self.request_poll()
            return
        self.epoch = max(self.epoch, mine[0]) + 1
        self.counter = 0
        monitors = self.engine.monitors
        if monitors is not None:
            # The verified winner exclusively owns the new epoch.
            monitors.note(self.cluster, "leader", self.node_id,
                          term=self.epoch)
        self._phase = "sync"
        self._sync_acks = set()
        # State transfer: ship the full uncommitted suffix (coarse DIFF).
        log_size = sum(sz for _z, _p, sz in self.log[max(0, self.delivered_upto - 1):])
        for p in self.cluster.node_ids:
            if p != self.node_id and not self.cluster.nodes[p].crashed:
                self._send(p, ("SYNC", self.epoch, self.node_id, tuple(self.log)),
                           max(64, log_size))
        self.engine.trace.count("zab.sync_sent")
        # This ran as a scheduled event, outside the poll loop; the sends
        # above advanced busy_until, so a parked loop must re-derive.
        self.request_poll()


class ZabCluster(BroadcastSystem):
    """A ZooKeeper ensemble."""

    name = "zookeeper"

    def __init__(self, engine: Engine, n: int, config: Optional[ZabConfig] = None,
                 tcp_params: Optional[TcpParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or ZabConfig()
        self.net = self.substrate = build_substrate("tcp", engine, params=tcp_params)
        self.quorum = n // 2 + 1
        self.nodes: dict[int, ZabNode] = {i: ZabNode(self, i, self.cfg)
                                          for i in self.node_ids}

    def start(self) -> None:
        for nd in self.nodes.values():
            nd.start()
            nd._enter_election()

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        ldr = self.leader_id()
        if ldr is None:
            return False
        self.obs_begin(payload)
        self.nodes[ldr].client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        for nd in self.nodes.values():
            if not nd.crashed and nd.state == ZabNode.LEADING and nd._phase is None:
                return nd.node_id
        return None

    def crash(self, node_id: int) -> None:
        super().crash(node_id)
        # The leader's quorum-contact step-down reads peers' crashed
        # flags; wake parked survivors so their deadlines re-derive.
        for nd in self.nodes.values():
            if not nd.crashed:
                nd.request_poll()
