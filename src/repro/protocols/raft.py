"""Raft over TCP — the etcd baseline (§4, §5).

Standard Raft: AppendEntries replication with consistency checks,
commit on majority match, randomized election timeouts with possible
split votes (the livelock-shaped behaviour Acuerdo's monotone election
avoids — §3.3), and etcd's durability discipline: every appended batch
is fsynced on leader and followers before it is acknowledged.

The deployment costs (kernel TCP + fsync + the etcd request path) put
this system at the top of the latency band in Fig. 8 and the bottom of
the throughput ranking in Fig. 9, as measured in the paper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import TcpParams, build_substrate
from repro.sim.disk import Disk
from repro.sim.engine import Engine, us
from repro.sim.process import Process, ProcessConfig


@dataclass
class RaftConfig:
    """etcd-deployment cost knobs.

    ``fsync_ns`` is deliberately larger than the ZooKeeper model's: etcd
    syncs its WAL with stricter defaults, which is where the paper's
    ~5× gap between ZooKeeper and etcd comes from (Fig. 9)."""

    request_cpu_ns: int = 150_000       # grpc + boltdb + raft pipeline per op
    append_cpu_ns: int = 4_000
    fsync_ns: int = 600_000
    heartbeat_period_ns: int = us(150)
    election_timeout_min_ns: int = us(500)
    election_timeout_max_ns: int = us(1000)
    msg_overhead_bytes: int = 64        # grpc/protobuf framing
    max_batch: int = 128
    process: ProcessConfig = field(
        default_factory=lambda: ProcessConfig(poll_interval_ns=2_000, poll_jitter_ns=500))


class RaftNode(Process):
    """One etcd/Raft server."""

    FOLLOWER, CANDIDATE, LEADER = "follower", "candidate", "leader"

    def __init__(self, cluster: "RaftCluster", node_id: int, cfg: RaftConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process), name=f"etcd{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.ep = cluster.net.attach(self)
        self.disk = Disk(cluster.engine, cfg.fsync_ns, name=f"etcd{node_id}.wal")
        self.state = self.FOLLOWER
        self.term = 0
        self.voted_for: Optional[int] = None
        self.log: list[tuple[int, Any, int]] = []  # (term, payload, size)
        self.durable_len = 0
        self.commit_index = 0
        self.applied = 0
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self._cbs: dict[int, CommitCallback] = {}
        self.next_index: dict[int, int] = {}
        self.match_index: dict[int, int] = {}
        self._votes: set[int] = set()
        self._election_deadline = 0
        self._last_hb_sent = 0
        self._rng = cluster.engine.rng(f"raft.{node_id}")
        self._reset_election_timer()

    # ------------------------------------------------------------------ util

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(cost * cpu.speed_factor)

    def _send(self, dst: int, msg: tuple, size: int) -> None:
        self.cluster.net.send(self.node_id, dst, msg, size + self.cfg.msg_overhead_bytes)

    def _bcast(self, msg: tuple, size: int) -> None:
        # Fused fan-out: one macro-event carries all deliveries of this
        # broadcast (identical per-unicast costs and timestamps).
        self.cluster.net.broadcast(self.node_id, self.cluster.node_ids, msg,
                                   size + self.cfg.msg_overhead_bytes)

    def _reset_election_timer(self) -> None:
        span = self.cfg.election_timeout_max_ns - self.cfg.election_timeout_min_ns
        self._election_deadline = (self.engine.now + self.cfg.election_timeout_min_ns
                                   + self._rng.randrange(max(1, span)))

    def last_log(self) -> tuple[int, int]:
        """(last log term, last log index) for vote comparisons."""
        return (self.log[-1][0] if self.log else 0, len(self.log))

    # ------------------------------------------------------------------ poll

    def on_poll(self) -> None:
        for src, msg in self.ep.drain():
            self._dispatch(src, msg)
        now = self.engine.now
        if self.state == self.LEADER:
            self._leader_step()
        elif now >= self._election_deadline:
            self._start_election()

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        if self.ep.inbox:
            return False
        if self.state == self.LEADER and self.pending:
            return False
        if self.disk._busy:
            # WAL sync callbacks run outside the poll loop and advance
            # busy_until (ACK sends, commit advancement); keep the real
            # schedule until the device drains.
            return False
        return True

    def park_deadline(self) -> Optional[int]:
        if self.state == self.LEADER:
            return self._last_hb_sent + self.cfg.heartbeat_period_ns
        return self._election_deadline

    # -------------------------------------------------------------- election

    def _start_election(self) -> None:
        self.state = self.CANDIDATE
        self.term += 1
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self._reset_election_timer()
        lt, li = self.last_log()
        self._bcast(("VOTE_REQ", self.term, lt, li), 24)
        self.engine.trace.count("raft.elections_started")

    def _become_leader(self) -> None:
        self.state = self.LEADER
        monitors = self.engine.monitors
        if monitors is not None:
            monitors.note(self.cluster, "leader", self.node_id, term=self.term)
        n = len(self.log)
        self.next_index = {p: n for p in self.cluster.node_ids if p != self.node_id}
        self.match_index = {p: 0 for p in self.cluster.node_ids if p != self.node_id}
        # Raft commits a no-op at term start to learn the commit frontier.
        self.log.append((self.term, None, 1))
        n = len(self.log)
        self.disk.append(lambda n=n: self._on_durable(n))
        self._replicate(force=True)
        self.engine.trace.count("raft.elected")

    # ---------------------------------------------------------------- leader

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    def _leader_step(self) -> None:
        appended = False
        obs = self.engine.obs
        while self.pending:
            payload, size, cb = self.pending.pop(0)
            self._charge(self.cfg.request_cpu_ns)
            if obs is not None:
                obs.mark(payload, "propose", self.engine.now)
            self.log.append((self.term, payload, size))
            if cb is not None:
                self._cbs[len(self.log) - 1] = cb
            appended = True
        if appended:
            n = len(self.log)
            self.disk.append(lambda n=n: self._on_durable(n))
        now = self.engine.now
        if appended or now - self._last_hb_sent >= self.cfg.heartbeat_period_ns:
            self._last_hb_sent = now
            self._replicate(force=not appended)

    def _on_durable(self, upto: int) -> None:
        # Only what was in the log when the sync started is durable; a
        # sync must not vouch for entries appended while it ran.
        prev = self.durable_len
        self.durable_len = max(prev, min(upto, len(self.log)))
        if self.durable_len > prev:
            monitors = self.engine.monitors
            if monitors is not None:
                # Durable frontier = cumulative accept (1-based count).
                monitors.note(self.cluster, "accept", self.node_id,
                              slot=self.durable_len)
        self._advance_commit()

    def _replicate(self, force: bool) -> None:
        for p in list(self.next_index):
            if self.cluster.nodes[p].crashed:
                continue
            ni = self.next_index[p]
            entries = self.log[ni:ni + self.cfg.max_batch]
            if not entries and not force:
                continue
            prev_term = self.log[ni - 1][0] if ni > 0 else 0
            size = sum(sz for _t, _p, sz in entries)
            self._send(p, ("APPEND", self.term, ni, prev_term,
                           tuple(entries), self.commit_index), max(16, size))
            if entries:
                self.next_index[p] = ni + len(entries)

    def _advance_commit(self) -> None:
        if self.state != self.LEADER:
            return
        matches = sorted([self.durable_len] + list(self.match_index.values()), reverse=True)
        n = matches[self.cluster.quorum - 1]
        # Only entries of the current term commit by counting replicas
        # (Raft §5.4.2); earlier-term entries commit transitively.
        while n > self.commit_index and self.log[n - 1][0] != self.term:
            n -= 1
        if n > self.commit_index:
            self.commit_index = n
            self._apply()

    def _apply(self) -> None:
        obs = self.engine.obs
        monitors = self.engine.monitors
        while self.applied < self.commit_index:
            term, payload, _sz = self.log[self.applied]
            if monitors is not None:
                monitors.note(self.cluster, "commit", self.node_id,
                              slot=self.applied + 1)
            if payload is not None:
                if obs is not None:
                    obs.mark(payload, "commit", self.engine.now)
                self.cluster.record_delivery(self.node_id, payload)
            cb = self._cbs.pop(self.applied, None)
            if cb is not None:
                cb(self.applied)
            self.applied += 1
            self.engine.trace.count("raft.apply")

    def _follower_durable(self, upto: int, leader: int) -> None:
        prev = self.durable_len
        self.durable_len = max(prev, min(upto, len(self.log)))
        if self.durable_len > prev:
            monitors = self.engine.monitors
            if monitors is not None:
                monitors.note(self.cluster, "accept", self.node_id,
                              slot=self.durable_len)
        self._send(leader, ("APPEND_REP", self.term, True, self.durable_len), 16)

    # -------------------------------------------------------------- messages

    def _dispatch(self, src: int, msg: tuple) -> None:
        kind = msg[0]
        term = msg[1]
        if term > self.term:
            self.term = term
            self.voted_for = None
            if self.state != self.FOLLOWER:
                self.state = self.FOLLOWER
        if kind == "VOTE_REQ":
            _, cterm, clt, cli = msg
            grant = False
            if cterm >= self.term and self.voted_for in (None, src):
                mlt, mli = self.last_log()
                if (clt, cli) >= (mlt, mli):
                    grant = True
                    self.voted_for = src
                    self._reset_election_timer()
            self._send(src, ("VOTE_REP", self.term, grant), 16)
        elif kind == "VOTE_REP":
            _, vterm, grant = msg
            if self.state == self.CANDIDATE and vterm == self.term and grant:
                self._votes.add(src)
                if len(self._votes) >= self.cluster.quorum:
                    self._become_leader()
        elif kind == "APPEND":
            _, lterm, ni, prev_term, entries, leader_commit = msg
            if lterm < self.term:
                self._send(src, ("APPEND_REP", self.term, False, 0), 16)
                return
            self.state = self.FOLLOWER
            self._reset_election_timer()
            ok = ni == 0 or (len(self.log) >= ni and self.log[ni - 1][0] == prev_term)
            if not ok:
                self._send(src, ("APPEND_REP", self.term, False, min(len(self.log), ni)), 16)
                return
            if entries:
                del self.log[ni:]
                self.log.extend(entries)
                if self.durable_len > ni:
                    # Conflicting suffix replaced: the durable frontier
                    # falls back to the append point.
                    self.durable_len = ni
                    monitors = self.engine.monitors
                    if monitors is not None:
                        monitors.note(self.cluster, "accept_trunc",
                                      self.node_id, slot=ni)
                self._charge(self.cfg.append_cpu_ns * len(entries))
                obs = self.engine.obs
                if obs is not None:
                    now = self.engine.now
                    for _t, payload, _sz in entries:
                        obs.mark(payload, "accept", now)
                # etcd followers fsync before acknowledging.
                end = len(self.log)
                self.disk.append(lambda end=end, src=src:
                                 self._follower_durable(end, src))
            else:
                # Heartbeats may only acknowledge what is already durable.
                self._send(src, ("APPEND_REP", self.term, True, self.durable_len), 16)
            if leader_commit > self.commit_index:
                self.commit_index = min(leader_commit, len(self.log))
                self._apply()
        elif kind == "APPEND_REP":
            _, rterm, ok, match = msg
            if self.state != self.LEADER or rterm != self.term:
                return
            if ok:
                self.match_index[src] = max(self.match_index.get(src, 0), match)
                self._advance_commit()
            else:
                self.next_index[src] = max(0, min(match, self.next_index.get(src, 1) - 1))


class RaftCluster(BroadcastSystem):
    """An etcd cluster."""

    name = "etcd"

    def __init__(self, engine: Engine, n: int, config: Optional[RaftConfig] = None,
                 tcp_params: Optional[TcpParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or RaftConfig()
        self.net = self.substrate = build_substrate("tcp", engine, params=tcp_params)
        self.quorum = n // 2 + 1
        self.nodes: dict[int, RaftNode] = {i: RaftNode(self, i, self.cfg)
                                           for i in self.node_ids}

    def start(self) -> None:
        for nd in self.nodes.values():
            nd.start()

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        ldr = self.leader_id()
        if ldr is None:
            return False
        self.obs_begin(payload)
        self.nodes[ldr].client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        best = None
        for nd in self.nodes.values():
            if not nd.crashed and nd.state == RaftNode.LEADER:
                if best is None or nd.term > best.term:
                    best = nd
        return best.node_id if best is not None else None
