"""APUS: leader-based Paxos over RDMA (§4.1, §5).

APUS accelerates DARE's design by writing log entries directly into the
acceptors' memory with one-sided writes (the leader holds exclusive
access to the remote logs) and by batching: each batch holds at most one
message per client, and acceptors acknowledge batches rather than using
RDMA completion queues.

The behaviour the paper's analysis keys on — and the reason APUS sits
between Acuerdo and the TCP systems in Fig. 8 — is the **single pending
batch**: its Paxos engine was designed for reordering networks and can
only process one complete batch at a time, so the leader cannot form
batch ``k+1`` until batch ``k`` is committed.  A delay on any message of
a batch therefore stalls the whole system, in contrast to
Acuerdo/Derecho, which exploit FIFO delivery to process partial batches.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import RdmaParams, SharedStateTable, build_substrate
from repro.sim.engine import Engine, us
from repro.sim.process import Process, ProcessConfig


@dataclass
class ApusConfig:
    """Cost knobs.  Per-message CPU is higher than Acuerdo's because
    every message runs its own consensus instance (ballot bookkeeping,
    instance table updates) — the §4.1 "separate consensus instance on
    every message" overhead."""

    batch_max: int = 8              # one message per client; few clients
    paxos_cpu_ns: int = 1_500       # leader: per-message instance setup
    accept_cpu_ns: int = 900        # acceptor: per-message validation
    deliver_cpu_ns: int = 200
    ack_push_period_ns: int = us(30)  # acceptors acknowledge periodically
    heartbeat_timeout_ns: int = us(80)
    state_transfer_ns_per_entry: int = 300  # new-leader log reconciliation
    process: ProcessConfig = field(default_factory=ProcessConfig)


@dataclass
class _AckRow:
    """Acceptor state row pushed back to the leader."""

    acked: int      # log entries accepted up to (exclusive)
    term: int
    hb: int


class ApusNode(Process):
    """One APUS replica (leader or acceptor)."""

    def __init__(self, cluster: "ApusCluster", node_id: int, cfg: ApusConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process), name=f"apus{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.term = 0
        self.is_leader = node_id == 0
        self.log: list[tuple[Any, int]] = []     # (payload, size)
        self.commit_index = 0                    # entries delivered up to
        self.seen_commit = 0                     # commit index learnt from leader
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self.batch_in_flight: Optional[tuple[int, int]] = None  # (start, end)
        self._cbs: dict[int, CommitCallback] = {}
        self._hb = 0
        self._last_ack_push = 0
        self._leader_seen_at = 0
        self._stalled_polls = 0

    # ----------------------------------------------------------------- poll

    def on_poll(self) -> None:
        if self.is_leader:
            self._leader_step()
        else:
            self._acceptor_step()
        self._deliver()

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(cost * cpu.speed_factor)

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        """The APUS leader pushes its commit row + heartbeat on *every*
        poll, so its loop is never idle and never parks.  Acceptors are
        idle between periodic acks whenever nothing has landed."""
        if self.is_leader:
            return False
        if self.cluster.log_inboxes[self.node_id]:
            return False
        return self.cluster.delivered.get(self.node_id, 0) >= self.seen_commit

    def park_deadline(self) -> Optional[int]:
        # Next periodic acknowledgment push (>= comparison).
        return self._last_ack_push + self.cfg.ack_push_period_ns

    # ---------------------------------------------------------------- leader

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    def _leader_step(self) -> None:
        c = self.cluster
        # Try to finish the in-flight batch first.
        if self.batch_in_flight is not None:
            start, end = self.batch_in_flight
            acked = 1  # self
            for p in c.node_ids:
                if p == self.node_id:
                    continue
                row: _AckRow = c.ack_sst.read(self.node_id, p)
                if row is not None and row.term == self.term and row.acked >= end:
                    acked += 1
            if acked >= c.quorum:
                self.commit_index = end
                for i in range(start, end):
                    cb = self._cbs.pop(i, None)
                    if cb is not None:
                        self.engine.schedule_at(
                            max(self.engine.now, self.cpu.busy_until), cb, i)
                self.batch_in_flight = None
                self.engine.trace.count("apus.batch_commit")
            else:
                return  # single pending batch: nothing else can happen
        # Form the next batch (one per client up to batch_max).
        if self.pending and self.batch_in_flight is None:
            take = min(len(self.pending), self.cfg.batch_max)
            start = len(self.log)
            size_total = 0
            entries = []
            obs = self.engine.obs
            for _ in range(take):
                payload, size, cb = self.pending.pop(0)
                if cb is not None:
                    self._cbs[len(self.log)] = cb
                self.log.append((payload, size))
                entries.append((payload, size))
                size_total += size
                self._charge(self.cfg.paxos_cpu_ns)
                if obs is not None:
                    obs.mark(payload, "propose", self.engine.now)
            end = len(self.log)
            self.batch_in_flight = (start, end)
            monitors = self.engine.monitors
            if monitors is not None:
                # The leader's own log append counts toward the batch's
                # quorum (the "acked = 1  # self" below).
                monitors.note(self.cluster, "accept", self.node_id, slot=end)
            batch = tuple(entries)
            if obs is not None:
                # The batch tuple is the wire carrier; substrate marks
                # (nic_tx/wire/deposit) attribute to its lead message.
                obs.bind(batch, entries[0][0])
            # One-sided write of the batch into each acceptor's log,
            # posted once the per-instance CPU work rings the doorbell.
            for p in c.node_ids:
                if p == self.node_id:
                    continue
                region, rkey = c.log_regions[p]
                c.fabric.write(self.node_id, p, region, rkey,
                               (self.term, start), batch,
                               size_total + 16 * take,
                               wr_id=("apus", start),
                               earliest_ns=self.cpu.busy_until)
            self.engine.trace.count("apus.batch_send")
        # Piggyback/push commit index + heartbeat.
        self._hb += 1
        c.commit_sst.set_and_push(self.node_id, (self.term, self.commit_index, self._hb))

    # -------------------------------------------------------------- acceptor

    def _acceptor_step(self) -> None:
        c = self.cluster
        inbox = c.log_inboxes[self.node_id]
        progressed = False
        obs = self.engine.obs
        while inbox:
            (term, start), entries = inbox.pop(0)
            if term < self.term:
                continue
            if term > self.term:
                self.term = term
            monitors = self.engine.monitors
            if monitors is not None and start < len(self.log):
                # A new leader's first batch overwrites the stale tail.
                monitors.note(self.cluster, "accept_trunc", self.node_id,
                              slot=start)
            # Exclusive leader access: writes land at the stated offset.
            del self.log[start:]
            for payload, size in entries:
                self.log.append((payload, size))
                self._charge(self.cfg.accept_cpu_ns)
                if obs is not None:
                    obs.mark(payload, "accept", self.engine.now)
            if monitors is not None:
                # Accept at the CPU drain: APUS leaders count periodic
                # acks derived from this frontier, not NIC completions.
                monitors.note(self.cluster, "accept", self.node_id,
                              slot=len(self.log))
            progressed = True
        row = c.commit_sst.read(self.node_id, c.leader)
        if row is not None:
            term, cidx, _hb = row
            if term == self.term and cidx > self.seen_commit:
                self.seen_commit = min(cidx, len(self.log))
        now = self.engine.now
        # APUS acceptors acknowledge *periodically* — their batched-ack
        # cadence, not RDMA completions, is the acknowledgment path (§5).
        if now - self._last_ack_push >= self.cfg.ack_push_period_ns:
            self._last_ack_push = now
            self._hb += 1
            c.ack_sst.set_and_push(self.node_id,
                                   _AckRow(len(self.log), self.term, self._hb),
                                   targets=[c.leader],
                                   earliest_ns=self.cpu.busy_until)

    # ---------------------------------------------------------------- common

    def _deliver(self) -> None:
        limit = self.commit_index if self.is_leader else self.seen_commit
        obs = self.engine.obs
        monitors = self.engine.monitors
        while self.cluster.delivered.get(self.node_id, 0) < limit:
            i = self.cluster.delivered.get(self.node_id, 0)
            payload, _size = self.log[i]
            if monitors is not None:
                monitors.note(self.cluster, "commit", self.node_id, slot=i + 1)
            if obs is not None:
                obs.mark(payload, "commit", self.engine.now)
            self.cluster.record_delivery(self.node_id, payload)
            self.cluster.delivered[self.node_id] = i + 1
            self._charge(self.cfg.deliver_cpu_ns)


class ApusCluster(BroadcastSystem):
    """An APUS deployment with a fixed initial leader (node 0).

    Fail-over uses a Raft-style term bump with explicit state transfer:
    the new leader must pull log state from a quorum before serving —
    the round trip Acuerdo's up-to-date election avoids (§3.3)."""

    name = "apus"
    client_hop_ns = 1_100   # RDMA client transport

    def __init__(self, engine: Engine, n: int, config: Optional[ApusConfig] = None,
                 rdma_params: Optional[RdmaParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or ApusConfig()
        self.fabric = self.substrate = build_substrate(
            "rdma", engine, node_ids=self.node_ids, params=rdma_params)
        self.quorum = n // 2 + 1
        self.leader = 0
        self.delivered: dict[int, int] = {}
        # Remote log regions: the leader writes batches straight into
        # acceptor memory; inboxes model the written-but-not-scanned area.
        self.log_inboxes: dict[int, list] = {i: [] for i in self.node_ids}
        self.log_regions: dict[int, tuple] = {}
        for i in self.node_ids:
            region = self.fabric.register(
                i, f"apus.log.{i}", 1 << 22,
                on_write=lambda key, value, size, i=i: self.log_inboxes[i].append((key, value)))
            self.log_regions[i] = (region, region.grant())
        self.ack_sst = SharedStateTable(self.fabric, "apus.ack", self.node_ids,
                                        row_size_bytes=20, initial=None)
        self.commit_sst = SharedStateTable(self.fabric, "apus.commit", self.node_ids,
                                           row_size_bytes=20, initial=None)
        self.nodes: dict[int, ApusNode] = {i: ApusNode(self, i, self.cfg)
                                           for i in self.node_ids}
        # Poll-elision doorbells: batch writes, ack rows and commit rows
        # all arrive as one-sided writes and wake a parked acceptor.
        for i, nd in self.nodes.items():
            self.fabric.nic(i).waker = nd
        self.nodes[0].is_leader = True
        self._failover_scheduled = False

    def start(self) -> None:
        monitors = self.engine.monitors
        if monitors is not None:
            monitors.note(self, "leader", self.leader,
                          term=self.nodes[self.leader].term)
        for nd in self.nodes.values():
            nd.start()
        self.engine.schedule(self.cfg.heartbeat_timeout_ns, self._watchdog)

    def _watchdog(self) -> None:
        """Cluster-level failure detector driving APUS's (simplified)
        Paxos-based election: on leader death the next live node runs a
        term bump plus a state-transfer round before serving."""
        if self.nodes[self.leader].crashed:
            live = [i for i in self.node_ids if not self.nodes[i].crashed]
            if len(live) >= self.quorum:
                new = min(live)
                old_node = self.nodes[self.leader]
                nd = self.nodes[new]
                # State transfer: adopt the longest log among live nodes
                # (charged per entry — the cost Acuerdo's election avoids).
                donor = max(live, key=lambda i: len(self.nodes[i].log))
                transfer = self.nodes[donor].log[len(nd.log):]
                nd.log.extend(transfer)
                nd.term = max(self.nodes[i].term for i in live) + 1
                nd.commit_index = max(self.nodes[i].seen_commit for i in live + [donor])
                nd.commit_index = max(nd.commit_index, self.nodes[donor].seen_commit)
                nd._charge(self.cfg.state_transfer_ns_per_entry * max(1, len(transfer)))
                nd.is_leader = True
                monitors = self.engine.monitors
                if monitors is not None:
                    monitors.note(self, "leader", new, term=nd.term)
                    # The adopted donor log raises the new leader's
                    # accepted frontier before it serves.
                    monitors.note(self, "accept", new, slot=len(nd.log))
                nd.pending.extend(old_node.pending)
                old_node.pending = []
                nd.batch_in_flight = None
                self.leader = new
                self.engine.trace.count("apus.failover")
                # Promotion happened outside nd's poll loop; wake it so
                # the (never-parking) leader cadence starts at its next tick.
                nd.request_poll()
        self.engine.schedule(self.cfg.heartbeat_timeout_ns, self._watchdog)

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        nd = self.nodes[self.leader]
        if nd.crashed:
            return False
        self.obs_begin(payload)
        nd.client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        return None if self.nodes[self.leader].crashed else self.leader

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()
        self.fabric.crash_node(node_id)
