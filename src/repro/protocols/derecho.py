"""Derecho: virtual-synchrony atomic broadcast over RDMA (§4.1, §5).

The baseline Acuerdo is most directly compared against.  The behaviours
the paper's analysis attributes Derecho's latency gap to are modelled
explicitly:

1. **two writes per message** — data is written with one RDMA write and
   a separate per-pair counter is incremented with a second write; with
   the 80-byte wire minimum this doubles small-message bandwidth cost;
2. **all-node commit** — a message is delivered only once *every* active
   node has received it (virtual synchrony), so the cluster runs at the
   speed of its slowest member;
3. **commit-based ring-slot reuse** — a slot is reclaimed only when the
   message is committed across all active nodes, magnifying the impact
   of one slow node under memory pressure;
4. **view changes** — failures are hard outages: the survivors wedge,
   agree on a new view that configures the failed node out, trim the
   ragged edge, and resume.

Two modes, as evaluated in Fig. 8: ``leader`` (only node 0 sends) and
``all`` (every node proposes in round-robin order, with null messages
filling idle senders' turns so the round-robin order never stalls).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import (RdmaParams, RingBuffer, SharedStateTable,
                             SlotReleasePolicy, build_substrate)
from repro.sim.engine import Engine, us
from repro.sim.process import Process, ProcessConfig


class _Null:
    def __repr__(self) -> str:  # pragma: no cover
        return "<derecho-null>"


NULL = _Null()


class _Hole:
    """Placeholder for a round whose payload has not yet arrived (its
    RDMC bulk is still in flight while later ring messages landed)."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<hole>"


HOLE = _Hole()


class _RdmcMarker:
    """Ring metadata for a payload travelling over the RDMC relay tree."""

    __slots__ = ("size",)

    def __init__(self, size: int):
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<rdmc {self.size}B>"


def rdmc_children(position: int, n: int) -> list[int]:
    """Children of ``position`` in a binomial broadcast tree over ``n``
    slots (root = 0): in round k every holder p < 2^k forwards to
    p + 2^k, so p's children are the p + 2^k that it is the first
    holder able to serve."""
    children = []
    k = 0
    while (1 << k) <= position:
        k += 1
    while position + (1 << k) < n:
        children.append(position + (1 << k))
        k += 1
    return children


@dataclass
class DerechoConfig:
    """Cost and behaviour knobs for a Derecho deployment.

    ``broadcast_cpu_ns`` is higher than Acuerdo's: sending means posting
    two WQEs and updating per-pair counters, and delivery requires
    evaluating SST predicates over all rows rather than one quorum test.
    """

    mode: str = "leader"                 # "leader" or "all"
    ring_capacity: int = 8192
    signal_interval: int = 1000
    broadcast_cpu_ns: int = 1_500        # two WQEs + per-pair counters
    accept_cpu_ns: int = 700             # data + counter handling per msg
    deliver_cpu_ns: int = 300
    predicate_cpu_ns: int = 400          # per-poll SST predicate scan
    sst_push_period_ns: int = us(10)
    max_broadcasts_per_poll: int = 32    # keep heartbeats flowing in bursts
    # RDMC: payloads at or above this size travel over a binomial relay
    # tree (peer-to-peer) instead of leader-direct writes, spreading the
    # bandwidth load off the sender's link (§4.1: "for very large
    # messages, Derecho can use a peer-to-peer delivery system").
    # ``None`` disables relaying (all messages leader-direct).
    rdmc_threshold_bytes: Optional[int] = 16_384
    relay_cpu_ns: int = 900              # per-forward relay handling
    # Headroom over a fully loaded poll turn, as for Acuerdo; otherwise
    # a burst of sends masquerades as leader failure.
    heartbeat_timeout_ns: int = us(400)
    wedge_timeout_ns: int = us(120)      # max wait for everyone to wedge
    process: ProcessConfig = field(default_factory=ProcessConfig)


@dataclass
class _Row:
    """One node's SST row (its shared state, overwritten in place)."""

    received: tuple        # per-sender receive counts, current view
    delivered: int         # global round-robin index delivered up to
    hb: int
    wedged: bool
    view: int
    proposal: Optional[tuple] = None  # (view_no, members, trim_point)


class DerechoNode(Process):
    """One Derecho replica."""

    def __init__(self, cluster: "DerechoCluster", node_id: int, cfg: DerechoConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process), name=f"derecho{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.view = 0
        self.members: list[int] = list(cluster.node_ids)
        self.senders: list[int] = cluster.senders_for(self.members)
        self.msgs: dict[int, list[Any]] = {s: [] for s in self.senders}
        self.delivered_upto = 0          # next global RR index to deliver
        self.sent_rounds = 0             # my rounds sent (if I am a sender)
        self._round_seq: dict[int, int] = {}   # my round -> my ring seq
        self.pending_client: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self._cbs: dict[int, CommitCallback] = {}  # my round -> ack
        self._hb = 0
        self._last_push = 0
        self._peer_hb: dict[int, tuple[int, int]] = {p: (-1, 0) for p in self.members}
        self.wedged = False
        self._wedged_at: Optional[int] = None
        self._seen_sst_version = -1
        self.excluded = False  # configured out of the view while alive
        # RDMC bulk state: payloads received over the relay tree, and
        # ring markers waiting for their bulk to arrive.
        self._bulk: dict[tuple, tuple[Any, int]] = {}   # (view,sender,rnd) -> (payload,size)
        self._pending_markers: dict[int, list[tuple[int, int, int]]] = {}
        self._mon_claimed_view = -1   # last view announced to monitors
        self._mon_floor = 0           # ring floor last announced to monitors

    # ------------------------------------------------------------- SST helpers

    def _row(self, owner: int) -> _Row:
        return self.cluster.sst.read(self.node_id, owner)

    def _my_row(self) -> _Row:
        return self._row(self.node_id)

    def _push_row(self, **updates: Any) -> None:
        row = dataclasses.replace(self._my_row(), **updates)
        self.cluster.sst.set_and_push(self.node_id, row,
                                      earliest_ns=self.cpu.busy_until)

    # --------------------------------------------------------------- event loop

    def on_poll(self) -> None:
        if self.excluded:
            return
        got = self._drain_bulk()
        got |= self._drain_rings()
        sst_version = self.cluster.sst.version(self.node_id)
        changed = got or sst_version != self._seen_sst_version
        if changed:
            self._update_peer_hb()
        if not self.wedged:
            self._maybe_send()
            if changed:
                # Predicate evaluation only when a row or ring changed —
                # otherwise the poll is the L1-resident no-op of §3.2.
                self._deliver_stable()
                self._release_slots()
            self._check_peers()
        if changed or self.wedged:
            self._view_change_step()
        self._seen_sst_version = self.cluster.sst.version(self.node_id)
        self._maybe_push()

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        if self.excluded:
            # Configured out: on_poll is a permanent no-op.  Park on the
            # doorbell alone (stray deposits wake, no-op, re-park).
            return True
        if self.cluster.bulk_inboxes[self.node_id]:
            return False
        for s in self.senders:
            ring = self.cluster.rings.get(s)
            if ring is None or self.node_id not in ring._receivers:
                continue
            if ring.receiver(self.node_id)._ready:
                return False
        if self.cluster.sst.version(self.node_id) != self._seen_sst_version:
            return False
        if self.pending_client:
            return False
        if (not self.wedged and self.node_id in self.senders
                and len(self.senders) > 1):
            # Null hole-filling still owed (e.g. the ring was full).
            max_round = max(len(self.msgs.get(s, [])) for s in self.senders)
            if self.sent_rounds < max_round:
                return False
        return True

    def park_deadline(self) -> Optional[int]:
        if self.excluded:
            return None
        # The periodic SST heartbeat push (>= comparison) dominates; peer
        # expiries (strict >) and the wedge timeout (strict >) still bound
        # the wake when a heartbeat was last seen long ago.
        d = self._last_push + self.cfg.sst_push_period_ns
        for p in self.members:
            if p == self.node_id:
                continue
            t = self._peer_hb.get(p, (-1, 0))[1] + self.cfg.heartbeat_timeout_ns + 1
            if t < d:
                d = t
        if self.wedged and self._wedged_at is not None:
            t = self._wedged_at + self.cfg.wedge_timeout_ns + 1
            if t < d:
                d = t
        return d

    # ------------------------------------------------------------------- send

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending_client.append((payload, size, on_commit))
        self.request_poll()

    def _maybe_send(self) -> None:
        if self.node_id not in self.senders:
            return
        ring = self.cluster.rings[self.node_id]
        budget = self.cfg.max_broadcasts_per_poll
        obs = self.engine.obs
        monitors = self.engine.monitors
        if (monitors is not None and self.cfg.mode == "leader"
                and self.view > self._mon_claimed_view):
            # Leader mode has exactly one sender per view; claiming the
            # view as a term lets SingleLeaderPerTerm catch split views.
            self._mon_claimed_view = self.view
            monitors.note(self.cluster, "leader", self.node_id, term=self.view)
        k = len(self.senders)
        my_idx = self.senders.index(self.node_id)
        while self.pending_client and budget > 0:
            budget -= 1
            payload, size, cb = self.pending_client[0]
            if ring.free_slots() <= 0:
                ring.stalls += 1
                self.engine.trace.count("derecho.ring_full")
                return
            self._charge(self.cfg.broadcast_cpu_ns)
            if obs is not None:
                obs.mark(payload, "propose", self.engine.now)
            thr = self.cfg.rdmc_threshold_bytes
            if thr is not None and size >= thr and len(self.members) > 2:
                # RDMC: tiny marker through the ring, payload over the
                # binomial relay tree (leader sends ~log n copies, not
                # n-1).
                seq = ring.try_send((self.view, self.sent_rounds, _RdmcMarker(size)),
                                    64, earliest_ns=self.cpu.busy_until)
                self._bulk[(self.view, self.node_id, self.sent_rounds)] = (payload, size)
                self._forward_bulk(self.node_id, self.sent_rounds, payload, size)
                self.engine.trace.count("derecho.rdmc_send")
            else:
                msg = (self.view, self.sent_rounds, payload)
                if obs is not None:
                    # The ring message tuple is the wire carrier.
                    obs.bind(msg, payload)
                seq = ring.try_send(msg, size,
                                    earliest_ns=self.cpu.busy_until)
            self.pending_client.pop(0)
            self._round_seq[self.sent_rounds] = seq
            if monitors is not None:
                # Global round-robin index; views restart it, so the
                # monitor slot is the (view, index) pair.
                monitors.note(self.cluster, "slot_bind", self.node_id,
                              slot=(self.view, self.sent_rounds * k + my_idx),
                              key=payload, seq=seq, extra=ring.capacity)
            if cb is not None:
                self._cbs[self.sent_rounds] = cb
            self.sent_rounds += 1
            self.engine.trace.count("derecho.broadcast")
        # Round-robin hole filling: if another sender has raced ahead,
        # emit a null so the global order can keep advancing.
        if len(self.senders) > 1:
            max_round = max(len(self.msgs.get(s, [])) for s in self.senders)
            while self.sent_rounds < max_round:
                seq = ring.try_send((self.view, self.sent_rounds, NULL), 1)
                if seq is None:
                    return
                self._round_seq[self.sent_rounds] = seq
                if monitors is not None:
                    # Null filler: slot=None, no reuse-safety obligation.
                    monitors.note(self.cluster, "slot_bind", self.node_id,
                                  seq=seq, extra=ring.capacity)
                self.sent_rounds += 1
                self.engine.trace.count("derecho.null_send")

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(cost * cpu.speed_factor)

    # ------------------------------------------------------------------ RDMC

    def _relay_order(self, sender: int) -> list[int]:
        """Tree slot order for ``sender``'s transfers: sender first,
        remaining members in id order (all nodes derive it identically)."""
        return [sender] + [m for m in sorted(self.members) if m != sender]

    #: RDMC transfers are chunked so small control traffic (heartbeats,
    #: SST rows, ring markers) interleaves on the link instead of
    #: waiting behind a multi-megabyte write — as real RDMC does.  The
    #: chunk size sits at the NIC's QoS bulk threshold so chunks ride
    #: the bulk lane over the dedicated bulk QPs.
    RDMC_CHUNK = 16_384

    def _forward_bulk(self, sender: int, rnd: int, payload: Any, size: int) -> None:
        """Forward a bulk payload to this node's children in the tree,
        chunked and paced at link speed."""
        order = self._relay_order(sender)
        if self.node_id not in order:
            return
        pos = order.index(self.node_id)
        fabric = self.cluster.fabric
        chunk_gap = fabric.params.tx_serialization_ns(self.RDMC_CHUNK)
        nchunks = max(1, (size + self.RDMC_CHUNK - 1) // self.RDMC_CHUNK)
        for child_pos in rdmc_children(pos, len(order)):
            child = order[child_pos]
            if self.cluster.nodes[child].crashed:
                continue
            self._charge(self.cfg.relay_cpu_ns)
            region, rkey = self.cluster.bulk_regions[child]
            for ci in range(nchunks):
                csize = min(self.RDMC_CHUNK, size - ci * self.RDMC_CHUNK)
                # The payload object rides the last chunk; earlier chunks
                # carry only their byte cost.
                body = (payload, size) if ci == nchunks - 1 else None
                self.engine.schedule(
                    ci * chunk_gap,
                    fabric.write, self.node_id, child, region, rkey,
                    (self.view, sender, rnd, ci, nchunks), body, csize,
                    False, ("rdmc", sender, rnd), self.cpu.busy_until, "bulk")
            self.engine.trace.count("derecho.rdmc_relay")

    def _drain_bulk(self) -> bool:
        inbox = self.cluster.bulk_inboxes[self.node_id]
        got = False
        while inbox:
            (view, sender, rnd, _ci, _nchunks), body = inbox.pop(0)
            if view != self.view:
                self.engine.trace.count("derecho.stale_view_drop")
                continue
            if body is None:
                continue  # non-final chunk: bytes only (FIFO per QP
                          # guarantees all chunks precede the final one)
            payload, size = body
            self._bulk[(view, sender, rnd)] = (payload, size)
            got = True
            # Relay duty: pass it down the tree before consuming it.
            self._forward_bulk(sender, rnd, payload, size)
            self._complete_bulk(sender)
        return got

    def _complete_bulk(self, sender: int) -> None:
        """Fill reserved slots whose bulk has arrived (in marker order)."""
        pending = self._pending_markers.get(sender)
        while pending:
            view, rnd, _size = pending[0]
            entry = self._bulk.get((view, sender, rnd))
            if entry is None:
                return
            pending.pop(0)
            payload, _sz = entry
            self._store_put(sender, rnd, payload)
            self._charge(self.cfg.accept_cpu_ns)
            obs = self.engine.obs
            if obs is not None:
                obs.mark(payload, "accept", self.engine.now)
            monitors = self.engine.monitors
            if monitors is not None:
                monitors.note(
                    self.cluster, "accept_one", self.node_id,
                    slot=(view, rnd * len(self.senders) + self.senders.index(sender)),
                    key=payload)
            self._push_received()

    # ---------------------------------------------------------------- receive

    def _drain_rings(self) -> bool:
        got = False
        obs = self.engine.obs
        monitors = self.engine.monitors
        k = len(self.senders)
        for si, s in enumerate(self.senders):
            ring = self.cluster.rings.get(s)
            if ring is None or self.node_id not in ring._receivers:
                continue
            for _seq, (view, rnd, payload) in ring.receiver(self.node_id).poll():
                if view != self.view:
                    # In-flight leftovers from a superseded view.
                    self.engine.trace.count("derecho.stale_view_drop")
                    continue
                if isinstance(payload, _RdmcMarker):
                    # Bulk travels the relay tree; reserve the slot so
                    # later small messages don't close the prefix over it.
                    self._store_put(s, rnd, HOLE)
                    self._pending_markers.setdefault(s, []).append(
                        (view, rnd, payload.size))
                    self._complete_bulk(s)
                    got = True
                    continue
                self._store_put(s, rnd, payload)
                self._charge(self.cfg.accept_cpu_ns)
                if payload is not NULL:
                    if obs is not None:
                        obs.mark(payload, "accept", self.engine.now)
                    if monitors is not None:
                        monitors.note(self.cluster, "accept_one", self.node_id,
                                      slot=(view, rnd * k + si), key=payload)
                got = True
        if got:
            self._push_received()
        return got

    def _store_put(self, sender: int, rnd: int, payload: Any) -> None:
        store = self.msgs.setdefault(sender, [])
        while len(store) <= rnd:
            store.append(HOLE)
        store[rnd] = payload

    def _received_count(self, sender: int) -> int:
        """Contiguous received prefix — holes (bulk still in flight)
        stop the count, so stability can never cover a missing payload."""
        store = self.msgs.get(sender, [])
        n = 0
        for v in store:
            if v is HOLE:
                break
            n += 1
        return n

    def _push_received(self) -> None:
        counts = tuple(self._received_count(s) for s in self.senders)
        self._push_row(received=counts, hb=self._next_hb())

    def _next_hb(self) -> int:
        self._hb += 1
        return self._hb

    # ---------------------------------------------------------------- deliver

    def _min_received(self, members: Optional[list[int]] = None) -> tuple:
        """Per-sender receive counts at the slowest of ``members``
        (default: the whole view) — virtual synchrony's stability
        frontier."""
        mins = None
        for m in (members if members is not None else self.members):
            row = self._row(m)
            counts = row.received if row.view == self.view else None
            if counts is None or len(counts) != len(self.senders):
                return tuple(0 for _ in self.senders)
            mins = counts if mins is None else tuple(min(a, b) for a, b in zip(mins, counts))
        return mins if mins is not None else ()

    def _deliver_stable(self) -> None:
        self._charge(self.cfg.predicate_cpu_ns)
        mins = self._min_received()
        k = len(self.senders)
        progressed = False
        obs = self.engine.obs
        monitors = self.engine.monitors
        while True:
            g = self.delivered_upto
            s = self.senders[g % k]
            rnd = g // k
            if mins[g % k] <= rnd:
                break
            store = self.msgs.get(s, [])
            if rnd >= len(store) or store[rnd] is HOLE:
                break  # stable but not yet locally received (can't happen
                       # with prefix-based counts; defensive)
            payload = store[rnd]
            self.delivered_upto += 1
            progressed = True
            self._charge(self.cfg.deliver_cpu_ns)
            if payload is not NULL and payload is not None:
                if obs is not None:
                    obs.mark(payload, "commit", self.engine.now)
                if monitors is not None:
                    monitors.note(self.cluster, "commit", self.node_id,
                                  slot=(self.view, g), key=payload)
                self.cluster.record_delivery(self.node_id, payload)
            if s == self.node_id:
                cb = self._cbs.pop(rnd, None)
                if cb is not None:
                    self.engine.schedule_at(
                        max(self.engine.now, self.cpu.busy_until), cb, g)
            self.engine.trace.count("derecho.deliver")
        if progressed:
            self._push_row(delivered=self.delivered_upto, hb=self._next_hb())

    # ------------------------------------------------------------ slot reuse

    def _release_slots(self) -> None:
        """Commit-based reuse: a slot frees only once the message is
        delivered at *all* active members (contrast Acuerdo's
        accept-based release — §4.1)."""
        if self.node_id not in self.senders:
            return
        min_delivered = min((self._row(m).delivered for m in self.members), default=0)
        k = len(self.senders)
        my_idx = self.senders.index(self.node_id)
        # Rounds of mine fully delivered everywhere:
        full_rounds = min_delivered // k + (1 if min_delivered % k > my_idx else 0)
        if full_rounds > 0:
            seq = self._round_seq.get(full_rounds - 1)
            if seq is not None:
                ring = self.cluster.rings[self.node_id]
                for m in self.members:
                    ring.mark_released(m, seq + 1)
                monitors = self.engine.monitors
                if monitors is not None:
                    floor = ring.released_floor()
                    if floor > self._mon_floor:
                        self._mon_floor = floor
                        monitors.note(self.cluster, "slot_release",
                                      self.node_id, seq=floor)

    # ------------------------------------------------------------ view change

    def _update_peer_hb(self) -> None:
        """Track peer liveness every poll — including while wedged, or a
        healthy-but-wedged peer would be mistaken for dead and the view
        change would split."""
        now = self.engine.now
        for p in self.members:
            if p == self.node_id:
                continue
            row = self._row(p)
            hb = row.hb if row is not None else 0
            last, _ = self._peer_hb.get(p, (-1, 0))
            if hb != last:
                self._peer_hb[p] = (hb, now)

    def _check_peers(self) -> None:
        now = self.engine.now
        dead = [p for p in self.members
                if p != self.node_id
                and now - self._peer_hb.get(p, (-1, 0))[1] > self.cfg.heartbeat_timeout_ns]
        if dead and not self.wedged:
            self._wedge()

    def _wedge(self) -> None:
        self.wedged = True
        self._wedged_at = self.engine.now
        self._push_row(wedged=True, hb=self._next_hb())
        self.engine.trace.count("derecho.wedge")

    def _view_change_step(self) -> None:
        if not self.wedged:
            # Follow a proposal even if we had not noticed the failure.
            for m in self.members:
                row = self._row(m)
                if row and row.proposal and row.proposal[0] > self.view:
                    self._wedge()
                    break
            else:
                return
        now = self.engine.now
        live = [m for m in self.members
                if m == self.node_id
                or now - self._peer_hb.get(m, (-1, 0))[1] <= self.cfg.heartbeat_timeout_ns]
        ranks_ok = [m for m in self.members
                    if m == self.node_id or (self._row(m) and self._row(m).wedged)]
        everyone_ready = set(ranks_ok) >= set(live)
        timed_out = self._wedged_at is not None and \
            now - self._wedged_at > self.cfg.wedge_timeout_ns
        proposal = None
        for m in sorted(self.members):
            row = self._row(m)
            if row and row.proposal and row.proposal[0] == self.view + 1:
                proposal = row.proposal
                break
        if proposal is None and min(live) == self.node_id and (everyone_ready or timed_out):
            # I lead the view change.  The ragged-edge trim must cover
            # everything ANY member might already have delivered.  A
            # departing member's delivery frontier is bounded by its
            # *copies* of our receive counts, which are bounded by the
            # counts we froze at wedge time — so the safe trim is the
            # minimum over the SURVIVORS' own rows.  Including the
            # suspected-dead node's stale row here would trim below a
            # frontier it may have delivered (found by hypothesis).
            mins = self._min_received(members=sorted(live))
            proposal = (self.view + 1, tuple(sorted(live)), mins)
            self._push_row(proposal=proposal, hb=self._next_hb())
        if proposal is not None:
            self._install_view(proposal)

    def _install_view(self, proposal: tuple) -> None:
        view_no, members, trim = proposal
        if self.node_id not in members:
            # The survivors configured us out (we looked dead while
            # descheduled).  A removed node stops participating; real
            # Derecho re-admits it through an explicit join protocol,
            # which is out of scope here.
            self.excluded = True
            self.wedged = True
            self.engine.trace.count("derecho.excluded")
            return
        old_senders = self.senders
        # Ragged-edge handling: deliver everything stable in the old
        # view, discard the rest (clients were never acked for those).
        if len(trim) == len(old_senders):
            k = len(old_senders)
            while True:
                g = self.delivered_upto
                s = old_senders[g % k]
                rnd = g // k
                if trim[g % k] <= rnd or rnd >= len(self.msgs.get(s, [])):
                    break
                payload = self.msgs[s][rnd]
                self.delivered_upto += 1
                if payload is not NULL and payload is not None:
                    self.cluster.record_delivery(self.node_id, payload)
        self.view = view_no
        self.members = list(members)
        self.senders = self.cluster.senders_for(self.members)
        self.msgs = {s: [] for s in self.senders}
        self._bulk = {}
        self._pending_markers = {}
        self.delivered_upto = 0
        self.sent_rounds = 0
        self._round_seq = {}
        # Unacked messages are abandoned; real clients re-send on timeout.
        self._cbs = {}
        self.wedged = False
        self._wedged_at = None
        self._peer_hb = {p: (-1, self.engine.now) for p in self.members}
        self.cluster.on_view_installed(self.node_id, view_no, self.members)
        # Keep echoing the proposal after installing: rows overwrite each
        # other, so clearing it could hide the view change from peers
        # that have not read it yet.
        self._push_row(received=tuple(0 for _ in self.senders), delivered=0,
                       wedged=False, view=view_no, proposal=proposal, hb=self._next_hb())
        self.engine.trace.count("derecho.view_install")

    # ---------------------------------------------------------------- pushes

    def _maybe_push(self) -> None:
        now = self.engine.now
        if now - self._last_push >= self.cfg.sst_push_period_ns:
            self._last_push = now
            self._push_row(hb=self._next_hb())


class DerechoCluster(BroadcastSystem):
    """A Derecho group in ``leader`` or ``all`` mode."""

    client_hop_ns = 1_100   # RDMA client transport, like Acuerdo's

    def __init__(self, engine: Engine, n: int, config: Optional[DerechoConfig] = None,
                 rdma_params: Optional[RdmaParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or DerechoConfig()
        self.name = f"derecho-{self.cfg.mode}"
        if self.cfg.mode not in ("leader", "all"):
            raise ValueError(f"unknown derecho mode {self.cfg.mode!r}")
        self.fabric = self.substrate = build_substrate(
            "rdma", engine, node_ids=self.node_ids, params=rdma_params)
        senders = self.senders_for(self.node_ids)
        # Derecho's two-write send path and commit-based slot reuse:
        self.rings: dict[int, RingBuffer] = {
            s: RingBuffer(self.fabric, s, self.node_ids,
                          capacity=self.cfg.ring_capacity,
                          writes_per_message=2,
                          policy=SlotReleasePolicy.ON_COMMIT,
                          signal_interval=self.cfg.signal_interval,
                          name=f"derecho.ring.{s}")
            for s in senders}
        # RDMC bulk landing zones: one registered region per node.
        self.bulk_inboxes: dict[int, list] = {i: [] for i in self.node_ids}
        self.bulk_regions: dict[int, tuple] = {}
        for i in self.node_ids:
            region = self.fabric.register(
                i, f"derecho.bulk.{i}", 1 << 24,
                on_write=lambda key, value, size, i=i:
                    self.bulk_inboxes[i].append((key, value)))
            self.bulk_regions[i] = (region, region.grant())
        init_row = _Row(received=tuple(0 for _ in senders), delivered=0, hb=0,
                        wedged=False, view=0)
        self.sst = SharedStateTable(self.fabric, "derecho", self.node_ids,
                                    row_size_bytes=8 * (n + 4), initial=init_row,
                                    signal_interval=self.cfg.signal_interval)
        self.nodes: dict[int, DerechoNode] = {
            i: DerechoNode(self, i, self.cfg) for i in self.node_ids}
        # Poll-elision doorbells: ring slots, SST rows and RDMC bulk
        # chunks all arrive as one-sided writes into the node's NIC.
        for i, nd in self.nodes.items():
            self.fabric.nic(i).waker = nd
        self._rr_next = 0

    def senders_for(self, members: list[int]) -> list[int]:
        if self.cfg.mode == "leader":
            return [min(members)]
        return sorted(members)

    def start(self) -> None:
        for nd in self.nodes.values():
            nd.start()

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        ldr = self.leader_id()
        if ldr is None:
            return False
        if self.cfg.mode == "all":
            # Clients spread load round-robin over all senders.
            live = [s for s in self.nodes[ldr].senders if not self.nodes[s].crashed]
            if not live:
                return False
            target = live[self._rr_next % len(live)]
            self._rr_next += 1
            self.obs_begin(payload)
            self.nodes[target].client_broadcast(payload, size_bytes, on_commit)
            return True
        self.obs_begin(payload)
        self.nodes[ldr].client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        for nd in self.nodes.values():
            if not nd.crashed and not nd.wedged:
                sends = nd.senders
                live = [s for s in sends if not self.nodes[s].crashed]
                if live:
                    return min(live)
        return None

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()
        self.fabric.crash_node(node_id)

    def on_view_installed(self, node_id: int, view_no: int, members: list[int]) -> None:
        # Rebuild this sender's ring set lazily: new senders need rings.
        for s in self.senders_for(members):
            if s not in self.rings:
                self.rings[s] = RingBuffer(self.fabric, s, members,
                                           capacity=self.cfg.ring_capacity,
                                           writes_per_message=2,
                                           policy=SlotReleasePolicy.ON_COMMIT,
                                           signal_interval=self.cfg.signal_interval,
                                           name=f"derecho.ring.{s}.v{view_no}")
