"""Dolev reliable broadcast over TCP — the path-redundancy baseline.

Dolev's protocol (Dolev 1982) tolerates ``f < n/3`` Byzantine nodes in
a point-to-point network with *no* signatures by flooding each message
along with the path it travelled: a receiver trusts a (slot, value)
pair once it arrives directly from the source, or over ``f + 1``
pairwise node-disjoint relay paths — at most ``f`` of which can contain
a liar, so at least one path carried the truth.

Two modelling notes that matter to the adversary harness:

- a receiver folds the *transport-level sender* into every claimed
  path (``{src} ∪ P``): a relayer can fabricate the path list it
  forwards, but it cannot remove itself from the route the message
  actually took, so forged paths all share the forger and can never
  look disjoint (the ``inflate`` attack starves);
- the source itself may equivocate — plain Dolev only guarantees that
  *relayed* lies don't win, so the equivocation attack legitimately
  diverges deliveries and the log-prefix monitor must flag it.  (Bracha
  is the baseline that closes that hole.)

Total order rides the source's slot numbers, as in
:mod:`repro.protocols.bracha`; delivery emits no ``commit`` events —
direct receipt needs no quorum certificate, so there is no
commit-implies-quorum obligation to check.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import TcpParams, build_substrate
from repro.sim.engine import Engine
from repro.sim.process import Process, ProcessConfig


@dataclass
class DolevConfig:
    """Deployment cost knobs."""

    request_cpu_ns: int = 6_000
    relay_cpu_ns: int = 1_500
    max_requests_per_poll: int = 8
    msg_overhead_bytes: int = 40
    path_entry_bytes: int = 4
    process: ProcessConfig = field(
        default_factory=lambda: ProcessConfig(poll_interval_ns=2_000,
                                              poll_jitter_ns=500))


class DolevNode(Process):
    """One replica of the path-flooding broadcast."""

    def __init__(self, cluster: "DolevCluster", node_id: int,
                 cfg: DolevConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process),
                         name=f"dolev{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.ep = cluster.net.attach(self)
        #: (slot, value) -> effective paths observed so far
        self._paths: dict[tuple, list[frozenset]] = {}
        self._relayed: set[tuple] = set()
        self._delivered: set[int] = set()
        self._buffer: dict[int, Any] = {}
        self.next_deliver = 0
        self._max_slot = -1
        # source-only state
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self.next_slot = 0
        self._cbs: dict[int, CommitCallback] = {}

    # ------------------------------------------------------------------ util

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(
            cost * cpu.speed_factor)

    def _msg_bytes(self, size: int, path_len: int) -> int:
        return (size + self.cfg.msg_overhead_bytes
                + path_len * self.cfg.path_entry_bytes)

    def latest_slot(self) -> Optional[int]:
        """Highest slot this node has seen traffic for (adversarial
        pumps target it to collide with live consensus state)."""
        return self._max_slot if self._max_slot >= 0 else None

    # ------------------------------------------------------------------ poll

    def on_poll(self) -> None:
        if self.ep.inbox:
            for src, msg in self.ep.drain():
                self._dispatch(src, msg)
        if self.node_id == self.cluster.source:
            taken = 0
            while self.pending and taken < self.cfg.max_requests_per_poll:
                taken += 1
                payload, size, cb = self.pending.pop(0)
                s = self.next_slot
                self.next_slot += 1
                if cb is not None:
                    self._cbs[s] = cb
                self._charge(self.cfg.request_cpu_ns)
                msg = ("MSG", s, payload, size, ())
                obs = self.engine.obs
                if obs is not None:
                    obs.bind(msg, payload)
                    obs.mark(payload, "propose", self.engine.now)
                self._bcast(msg, self._msg_bytes(size, 0))
                self._accept(s, payload)       # source trusts itself
                self.engine.trace.count("dolev.send")

    def _bcast(self, msg: tuple, wire_bytes: int,
               skip: frozenset = frozenset()) -> None:
        nodes = self.cluster.nodes
        dsts = [p for p in self.cluster.node_ids
                if p != self.node_id and p not in skip
                and not nodes[p].crashed]
        self.cluster.net.broadcast(self.node_id, dsts, msg, wire_bytes)

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    # -------------------------------------------------------------- messages

    def _dispatch(self, src: int, msg: tuple) -> None:
        if msg[0] != "MSG":
            return
        _, s, v, size, path = msg
        if s > self._max_slot:
            self._max_slot = s
        source = self.cluster.source
        direct = src == source and not path
        # The claimed path cannot omit the hop that actually happened:
        # fold the transport-level sender in (the source itself is never
        # path material — path entries are relayers only).
        eff = frozenset(path) | ({src} if src != source else frozenset())
        if s not in self._delivered:
            if direct:
                self._accept(s, v)
            else:
                paths = self._paths.setdefault((s, v), [])
                if eff not in paths:
                    paths.append(eff)
                if self._disjoint_count(paths) >= self.cluster.f + 1:
                    self._accept(s, v)
        # Relay the first receipt of each (slot, value), while the route
        # is still short enough for the disjointness budget to care.
        if (s, v) not in self._relayed and len(eff) <= self.cluster.f:
            self._relayed.add((s, v))
            self._charge(self.cfg.relay_cpu_ns)
            fwd_path = tuple(sorted(eff | {self.node_id}))
            self._bcast(("MSG", s, v, size, fwd_path),
                        self._msg_bytes(size, len(fwd_path)),
                        skip=eff | {source})
            self.engine.trace.count("dolev.relay")

    @staticmethod
    def _disjoint_count(paths: "list[frozenset]") -> int:
        """Greedy maximum pairwise-disjoint subset size (paths are tiny:
        at most f relayer ids each)."""
        count = 0
        used: set = set()
        for p in sorted(paths, key=len):
            if not (p & used):
                count += 1
                used |= p
        return count

    def _accept(self, s: int, v: Any) -> None:
        if s in self._delivered:
            return
        self._delivered.add(s)
        self._buffer[s] = v
        source = self.node_id == self.cluster.source
        while self.next_deliver in self._buffer:
            slot = self.next_deliver
            val = self._buffer.pop(slot)
            self.next_deliver += 1
            self.cluster.record_delivery(self.node_id, val)
            if source:
                cb = self._cbs.pop(slot, None)
                if cb is not None:
                    cb(slot)
            self.engine.trace.count("dolev.deliver")


class DolevCluster(BroadcastSystem):
    """A Dolev reliable-broadcast deployment with a fixed source."""

    name = "dolev"

    def __init__(self, engine: Engine, n: int,
                 config: Optional[DolevConfig] = None,
                 tcp_params: Optional[TcpParams] = None,
                 record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or DolevConfig()
        self.net = self.substrate = build_substrate("tcp", engine,
                                                    params=tcp_params)
        self.f = (n - 1) // 3
        self.source = 0
        self.nodes: dict[int, DolevNode] = {
            i: DolevNode(self, i, self.cfg) for i in self.node_ids}

    def start(self) -> None:
        for nd in self.nodes.values():
            nd.start()

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        if self.nodes[self.source].crashed:
            return False
        self.obs_begin(payload)
        self.nodes[self.source].client_broadcast(payload, size_bytes,
                                                 on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        """The fixed source plays the serving-node role (no election,
        no term: Dolev emits no ``leader`` events)."""
        nd = self.nodes[self.source]
        return None if nd.crashed else self.source
