"""The common face of every atomic broadcast system in this repo.

The harness (workload clients, safety checker, Fig. 8/9 drivers) only
talks to :class:`BroadcastSystem`, so Acuerdo and the six baselines are
driven and measured by exactly the same code.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional

from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.substrate.interface import Substrate

#: Signature of a commit acknowledgment: called once, at the moment the
#: message is committed at (and deliverable from) the serving node.
CommitCallback = Callable[[Any], None]


class DeliveryRecorder:
    """Per-node delivered-message journals used by the safety checks.

    ``sequences[n]`` is the list of payloads node ``n`` delivered, in
    delivery order.  The atomic-broadcast properties (§2.2) are asserted
    over these: every pair of sequences must be prefix-related (Total
    Order, no gaps), payloads must have been broadcast (Integrity) and
    appear at most once per node (No Duplication).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.sequences: dict[int, list[Any]] = {}
        self.counts: dict[int, int] = {}

    def record(self, node_id: int, payload: Any) -> None:
        self.counts[node_id] = self.counts.get(node_id, 0) + 1
        if self.enabled:
            self.sequences.setdefault(node_id, []).append(payload)

    def delivered_count(self, node_id: int) -> int:
        return self.counts.get(node_id, 0)

    def check_total_order(self) -> None:
        """Raise AssertionError unless all sequences are prefix-related."""
        seqs = [s for s in self.sequences.values() if s]
        for i, a in enumerate(seqs):
            for b in seqs[i + 1:]:
                n = min(len(a), len(b))
                if a[:n] != b[:n]:
                    k = next(j for j in range(n) if a[j] != b[j])
                    raise AssertionError(
                        f"total order violated at position {k}: {a[k]!r} != {b[k]!r}")

    def check_no_duplication(self, key: Callable[[Any], Any] = lambda p: p) -> None:
        for node, seq in self.sequences.items():
            keys = [key(p) for p in seq]
            if len(keys) != len(set(keys)):
                raise AssertionError(f"node {node} delivered a message twice")

    def check_integrity(self, broadcast: set) -> None:
        for node, seq in self.sequences.items():
            for p in seq:
                if p not in broadcast:
                    raise AssertionError(f"node {node} delivered out-of-thin-air {p!r}")


class BroadcastSystem(abc.ABC):
    """A running atomic-broadcast deployment inside one engine.

    Lifecycle: construct → ``start()`` → feed with ``submit`` while
    running the engine → inspect ``deliveries`` / metrics.
    """

    #: short identifier used in benchmark output ("acuerdo", "zab", ...)
    name: str = "abstract"

    #: one-way client<->cluster transport latency (ns) for the closed-loop
    #: clients; RDMA systems override this with the one-sided-write cost.
    client_hop_ns: int = 14_000

    #: the transport this deployment runs over; every concrete cluster
    #: assigns its :class:`~repro.substrate.interface.Substrate` here, so
    #: harness code reads cost accounting uniformly across systems.
    substrate: Optional[Substrate] = None

    def __init__(self, engine: Engine, n: int, record_deliveries: bool = True):
        self.engine = engine
        self.n = n
        self.node_ids = list(range(n))
        #: consensus-group index when built inside ``engine.scoped(g)``
        #: (a :class:`~repro.shard.ShardedDeployment` shard), else None.
        self.group: Optional[int] = engine.scope_group
        # Captured scope label; spans of scoped deployments carry the
        # group tag (``shard.<g>.<system>.msg``) so multi-group traces
        # separate cleanly by shard in Perfetto.  Composed lazily in
        # span_label because subclasses may assign self.name after this.
        self._scope_label: Optional[str] = engine.scope
        self.deliveries = DeliveryRecorder(enabled=record_deliveries)
        #: callbacks ``(node_id, payload)`` invoked on every app-level
        #: delivery — the hook state-machine replication builds on.
        self.delivery_listeners: list[Callable[[int, Any], None]] = []
        monitors = engine.monitors
        if monitors is not None:
            # Online safety monitors: each consensus group gets its own
            # monitor instances (per-shard for free under engine.scoped).
            monitors.register_group(self)

    # ------------------------------------------------------------- lifecycle

    @abc.abstractmethod
    def start(self) -> None:
        """Start all replica processes (and any election needed)."""

    @abc.abstractmethod
    def processes(self) -> list[Process]:
        """All replica processes (for failure injection)."""

    # ---------------------------------------------------------------- client

    @abc.abstractmethod
    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        """Hand a client payload to the current serving node.

        Returns False when no node is currently able to take requests
        (mid-election); the client retries.  ``on_commit`` fires when the
        message commits at the serving node.
        """

    @abc.abstractmethod
    def leader_id(self) -> Optional[int]:
        """Current leader/serving node, or None during elections."""

    # --------------------------------------------------------------- failure

    def crash(self, node_id: int) -> None:
        """Crash-stop a replica: its process halts and, for RDMA systems,
        its NIC powers off."""
        for p in self.processes():
            if p.node_id == node_id:
                p.crash()

    def record_delivery(self, node_id: int, payload: Any) -> None:
        self.deliveries.record(node_id, payload)
        obs = self.engine.obs
        if obs is not None:
            # First app-level delivery closes the payload's span (later
            # replicas' deliveries find no open record and are no-ops).
            obs.finish(payload, self.engine.now)
        monitors = self.engine.monitors
        if monitors is not None:
            # Normalized deliver event: LogPrefixAgreement checks every
            # backend's total order through this one hook.
            monitors.note(self, "deliver", node_id, key=payload)
        for listener in self.delivery_listeners:
            listener(node_id, payload)

    # -------------------------------------------------------- observability

    def obs_begin(self, payload: Any) -> None:
        """Open a span for a client payload at submit time (no-op without
        an attached recorder).  Every concrete ``submit()`` calls this on
        the accepted-for-broadcast path."""
        obs = self.engine.obs
        if obs is not None:
            # begin() records the submit timestamp itself; the first
            # segment therefore starts at submit time by construction.
            obs.begin(payload, self.engine.now, label=self.span_label)

    @property
    def span_label(self) -> str:
        """Label given to this deployment's message spans; carries the
        group tag (``shard.<g>.``) for scoped (sharded) deployments."""
        if self._scope_label is not None:
            return f"{self._scope_label}.{self.name}.msg"
        return f"{self.name}.msg"

    # ------------------------------------------------------------ inspection

    def substrate_counters(self) -> dict[str, int]:
        """Transport totals under the ``substrate.<backend>.*`` namespace
        (empty when the system has not attached a substrate)."""
        if self.substrate is None:
            return {}
        return self.substrate.counters()

    def min_delivered(self) -> int:
        """Smallest per-node delivered count across live replicas."""
        live = [p.node_id for p in self.processes() if not p.crashed]
        if not live:
            return 0
        return min(self.deliveries.delivered_count(nid) for nid in live)
