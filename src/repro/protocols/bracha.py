"""Bracha reliable broadcast over TCP — a Byzantine-tolerant baseline.

Bracha's double-echo protocol (Bracha 1987) tolerates ``f < n/3``
Byzantine nodes with no authentication: a sequencer SENDs each message,
every node ECHOes what it received, sends READY once an echo quorum
``⌈(n+f+1)/2⌉`` agrees on one value, amplifies READY at ``f+1`` and
delivers at ``2f+1``.  The two-quorum structure guarantees any two
nodes that deliver a slot deliver the *same* value even when the
sequencer equivocates — the property the adversary harness checks by
firing the equivocation attack at it (the attack is *absorbed*: the
forked slot simply never reaches an echo quorum, so nothing diverges).

Total order rides the sequencer's slot numbers (a Byzantine-tolerant
*atomic* broadcast would rotate the sequencer or agree on batches; the
repro needs the reliable-broadcast core, which is where the Byzantine
quorum maths lives).  Cost model matches the TCP baselines: per-message
request/echo CPU plus the shared kernel send path — with ``O(n²)``
message complexity, which is the price of Byzantine tolerance the
Fig. 8-style comparison surfaces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import TcpParams, build_substrate
from repro.sim.engine import Engine
from repro.sim.process import Process, ProcessConfig


@dataclass
class BrachaConfig:
    """Deployment cost knobs (lean service, no disk in the loop)."""

    request_cpu_ns: int = 6_000
    echo_cpu_ns: int = 1_500
    max_requests_per_poll: int = 8
    msg_overhead_bytes: int = 40
    process: ProcessConfig = field(
        default_factory=lambda: ProcessConfig(poll_interval_ns=2_000,
                                              poll_jitter_ns=500))


class BrachaNode(Process):
    """One replica of the double-echo broadcast."""

    def __init__(self, cluster: "BrachaCluster", node_id: int,
                 cfg: BrachaConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process),
                         name=f"bracha{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.ep = cluster.net.attach(self)
        self._echoed: set[int] = set()            # slots this node echoed
        self._readied: set[int] = set()           # slots this node readied
        self._echoes: dict[tuple, set[int]] = {}  # (slot, value) -> echoers
        self._readies: dict[tuple, set[int]] = {}
        self._delivered: set[int] = set()
        self._buffer: dict[int, Any] = {}         # slot -> deliverable value
        self.next_deliver = 0
        # sequencer-only state
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self.next_slot = 0
        self._cbs: dict[int, CommitCallback] = {}

    # ------------------------------------------------------------------ util

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(
            cost * cpu.speed_factor)

    def _bcast(self, msg: tuple, size: int) -> None:
        nodes = self.cluster.nodes
        dsts = [p for p in self.cluster.node_ids
                if p != self.node_id and not nodes[p].crashed]
        self.cluster.net.broadcast(self.node_id, dsts, msg,
                                   size + self.cfg.msg_overhead_bytes)

    # ------------------------------------------------------------------ poll

    def on_poll(self) -> None:
        if self.ep.inbox:
            for src, msg in self.ep.drain():
                self._dispatch(src, msg)
        if self.node_id == self.cluster.sequencer:
            taken = 0
            while self.pending and taken < self.cfg.max_requests_per_poll:
                taken += 1
                payload, size, cb = self.pending.pop(0)
                s = self.next_slot
                self.next_slot += 1
                if cb is not None:
                    self._cbs[s] = cb
                self._charge(self.cfg.request_cpu_ns)
                msg = ("SEND", s, payload, size)
                obs = self.engine.obs
                if obs is not None:
                    obs.bind(msg, payload)
                    obs.mark(payload, "propose", self.engine.now)
                self._bcast(msg, size)
                self._on_send(s, payload, size)
                self.engine.trace.count("bracha.send")

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    # -------------------------------------------------------------- messages

    def _dispatch(self, src: int, msg: tuple) -> None:
        kind = msg[0]
        if kind == "SEND":
            self._on_send(msg[1], msg[2], msg[3])
        elif kind == "ECHO":
            self._on_echo(src, msg[1], msg[2], msg[3])
        elif kind == "READY":
            self._on_ready(src, msg[1], msg[2], msg[3])

    def _on_send(self, s: int, v: Any, size: int) -> None:
        # Echo at most one value per slot: the anti-equivocation rule.
        if s in self._echoed:
            return
        self._echoed.add(s)
        self._charge(self.cfg.echo_cpu_ns)
        monitors = self.engine.monitors
        if monitors is not None:
            # Echoing is this node's per-slot acceptance vote for v.
            monitors.note(self.cluster, "accept_one", self.node_id,
                          slot=s, key=v)
        self._bcast(("ECHO", s, v, size), size)
        self._on_echo(self.node_id, s, v, size)

    def _on_echo(self, src: int, s: int, v: Any, size: int) -> None:
        nodes = self._echoes.setdefault((s, v), set())
        nodes.add(src)     # a set: duplicated echoes collapse
        if len(nodes) >= self.cluster.echo_quorum and s not in self._readied:
            self._send_ready(s, v, size)

    def _on_ready(self, src: int, s: int, v: Any, size: int) -> None:
        nodes = self._readies.setdefault((s, v), set())
        nodes.add(src)
        if len(nodes) >= self.cluster.f + 1 and s not in self._readied:
            self._send_ready(s, v, size)   # READY amplification
        if len(nodes) >= 2 * self.cluster.f + 1 and s not in self._delivered:
            self._delivered.add(s)
            self._buffer[s] = v
            self._drain()

    def _send_ready(self, s: int, v: Any, size: int) -> None:
        self._readied.add(s)
        self._charge(self.cfg.echo_cpu_ns)
        monitors = self.engine.monitors
        if monitors is not None:
            # The ready vote re-asserts acceptance of v for slot s (the
            # per-node sets in the quorum monitor collapse the repeat).
            monitors.note(self.cluster, "accept_one", self.node_id,
                          slot=s, key=v)
        self._bcast(("READY", s, v, size), size)
        self._on_ready(self.node_id, s, v, size)

    def _drain(self) -> None:
        monitors = self.engine.monitors
        sequencer = self.node_id == self.cluster.sequencer
        while self.next_deliver in self._buffer:
            s = self.next_deliver
            v = self._buffer.pop(s)
            self.next_deliver += 1
            if monitors is not None:
                monitors.note(self.cluster, "commit", self.node_id,
                              slot=s, key=v)
            self.cluster.record_delivery(self.node_id, v)
            if sequencer:
                cb = self._cbs.pop(s, None)
                if cb is not None:
                    cb(s)
            self.engine.trace.count("bracha.deliver")


class BrachaCluster(BroadcastSystem):
    """A Bracha reliable-broadcast deployment with a fixed sequencer."""

    name = "bracha"

    def __init__(self, engine: Engine, n: int,
                 config: Optional[BrachaConfig] = None,
                 tcp_params: Optional[TcpParams] = None,
                 record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or BrachaConfig()
        self.net = self.substrate = build_substrate("tcp", engine,
                                                    params=tcp_params)
        #: Byzantine resilience and its two quorums.
        self.f = (n - 1) // 3
        self.echo_quorum = (n + self.f) // 2 + 1   # ⌈(n+f+1)/2⌉
        self.sequencer = 0
        self.nodes: dict[int, BrachaNode] = {
            i: BrachaNode(self, i, self.cfg) for i in self.node_ids}

    def start(self) -> None:
        for nd in self.nodes.values():
            nd.start()

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        if self.nodes[self.sequencer].crashed:
            return False
        self.obs_begin(payload)
        self.nodes[self.sequencer].client_broadcast(payload, size_bytes,
                                                    on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        """The fixed sequencer plays the serving-node role (there is no
        elected leader and no term — Bracha emits no ``leader`` events)."""
        nd = self.nodes[self.sequencer]
        return None if nd.crashed else self.sequencer
