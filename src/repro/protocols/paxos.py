"""Classic multi-Paxos over TCP — the libpaxos baseline (§4).

libpaxos is an in-memory Paxos implementation: a distinguished proposer
runs phase 2 per instance (phase 1 is amortised over the proposer's
reign), acceptors broadcast ACCEPTED to all learners, and every node
learns/delivers an instance once a quorum of acceptors has accepted it.
No disk is involved, so libpaxos sits *below* ZooKeeper/etcd but an
order of magnitude above the RDMA systems: every instance costs
kernel-TCP messages quadratic in the learner fan-out.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import TcpParams, build_substrate
from repro.sim.engine import Engine, us
from repro.sim.process import Process, ProcessConfig


@dataclass
class PaxosConfig:
    """libpaxos cost knobs."""

    window: int = 64                    # pipelined open instances
    propose_cpu_ns: int = 6_000         # per-instance proposer bookkeeping
    accept_cpu_ns: int = 3_000
    learn_cpu_ns: int = 1_500
    heartbeat_period_ns: int = us(150)
    leader_timeout_ns: int = us(800)
    prepare_cpu_ns: int = 8_000
    msg_overhead_bytes: int = 40
    process: ProcessConfig = field(
        default_factory=lambda: ProcessConfig(poll_interval_ns=2_000, poll_jitter_ns=500))


class PaxosNode(Process):
    """One libpaxos replica (proposer + acceptor + learner)."""

    def __init__(self, cluster: "PaxosCluster", node_id: int, cfg: PaxosConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process), name=f"paxos{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.ep = cluster.net.attach(self)
        # Acceptor state, per instance id.
        self.promised: dict[int, int] = {}
        self.accepted: dict[int, tuple[int, Any, int]] = {}   # iid -> (ballot, value, size)
        self.min_promised = 0            # ballot floor from PREPAREs
        # Learner state.
        self.learn_votes: dict[int, dict[int, int]] = {}      # iid -> {acceptor: ballot}
        self.chosen: dict[int, tuple[Any, int]] = {}
        self.next_deliver = 0
        # Proposer state.
        self.is_proposer = node_id == 0
        self.ballot = node_id + 1        # disjoint ballot spaces per node
        self.next_iid = 0
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self._cbs: dict[int, CommitCallback] = {}
        self.open_instances: set[int] = set()
        self._prepare_promises: dict[int, dict] = {}
        self.preparing = False
        self._last_hb_seen = 0
        self._last_hb_sent = 0

    # ------------------------------------------------------------------ util

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(cost * cpu.speed_factor)

    def _send(self, dst: int, msg: tuple, size: int) -> None:
        self.cluster.net.send(self.node_id, dst, msg, size + self.cfg.msg_overhead_bytes)

    def _bcast(self, msg: tuple, size: int, include_self: bool = False) -> None:
        # Fused fan-out: one macro-event carries all deliveries of this
        # broadcast (identical per-unicast costs and timestamps).
        self.cluster.net.broadcast(self.node_id, self.cluster.node_ids, msg,
                                   size + self.cfg.msg_overhead_bytes)
        if include_self:
            self._dispatch(self.node_id, msg)

    # ------------------------------------------------------------------ poll

    def on_poll(self) -> None:
        for src, msg in self.ep.drain():
            self._dispatch(src, msg)
        if self.is_proposer and not self.preparing:
            self._propose_step()
        elif not self.is_proposer:
            if self.engine.now - self._last_hb_seen > self.cfg.leader_timeout_ns:
                self._maybe_take_over()

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        if self.ep.inbox:
            return False
        if self.is_proposer and not self.preparing and self.pending:
            return False
        return True

    def park_deadline(self) -> Optional[int]:
        if self.is_proposer:
            if self.preparing:
                # Phase 1 outstanding: progress arrives only as PROMISE
                # messages (doorbell).
                return None
            return self._last_hb_sent + self.cfg.heartbeat_period_ns
        # Takeover: needs now - seen > timeout AND, when a lower-ranked
        # live node exists, now - seen >= timeout * (1 + rank).  Crashes
        # re-wake everyone (PaxosCluster.crash), so the stagger term can
        # be trusted between wakes.
        seen = self._last_hb_seen
        live_lower = any(p < self.node_id and not self.cluster.nodes[p].crashed
                         for p in self.cluster.node_ids)
        if live_lower:
            return seen + self.cfg.leader_timeout_ns * (1 + self.node_id)
        return seen + self.cfg.leader_timeout_ns + 1

    # -------------------------------------------------------------- proposer

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    def _propose_step(self) -> None:
        while self.pending and len(self.open_instances) < self.cfg.window:
            payload, size, cb = self.pending.pop(0)
            iid = self.next_iid
            self.next_iid += 1
            if cb is not None:
                self._cbs[iid] = cb
            self.open_instances.add(iid)
            self._charge(self.cfg.propose_cpu_ns)
            accept_msg = ("ACCEPT", self.ballot, iid, payload, size)
            obs = self.engine.obs
            if obs is not None:
                # The ACCEPT tuple is the wire carrier for this payload.
                obs.bind(accept_msg, payload)
                obs.mark(payload, "propose", self.engine.now)
            self._bcast(accept_msg, size, include_self=True)
            self.engine.trace.count("paxos.propose")
        now = self.engine.now
        if now - self._last_hb_sent >= self.cfg.heartbeat_period_ns:
            self._last_hb_sent = now
            self._bcast(("HB", self.ballot), 8)

    def _maybe_take_over(self) -> None:
        """Proposer timeout: run phase 1 with a higher ballot."""
        live_lower = [p for p in self.cluster.node_ids
                      if p < self.node_id and not self.cluster.nodes[p].crashed]
        if live_lower:
            # A lower-ranked live node should take over first; our
            # timeout is staggered by rank to avoid duels.
            if self.engine.now - self._last_hb_seen < \
                    self.cfg.leader_timeout_ns * (1 + self.node_id):
                return
        self.is_proposer = True
        self.preparing = True
        self.ballot += len(self.cluster.node_ids)
        monitors = self.engine.monitors
        if monitors is not None:
            # Ballot spaces are disjoint per node by construction; the
            # claim event still feeds the single-leader monitor.
            monitors.note(self.cluster, "leader", self.node_id,
                          term=self.ballot)
        self.next_iid = self.next_deliver
        self._prepare_promises = {}
        self._charge(self.cfg.prepare_cpu_ns)
        self._bcast(("PREPARE", self.ballot, self.next_deliver), 16, include_self=True)
        self.engine.trace.count("paxos.prepare")

    # -------------------------------------------------------------- messages

    def _dispatch(self, src: int, msg: tuple) -> None:
        kind = msg[0]
        if kind == "ACCEPT":
            _, ballot, iid, payload, size = msg
            if ballot >= self.min_promised and ballot >= self.promised.get(iid, 0):
                self.promised[iid] = ballot
                self.accepted[iid] = (ballot, payload, size)
                self._charge(self.cfg.accept_cpu_ns)
                monitors = self.engine.monitors
                if monitors is not None:
                    # Per-instance accept with value identity: only
                    # same-value accepts may justify the commit.
                    monitors.note(self.cluster, "accept_one", self.node_id,
                                  slot=iid, key=payload)
                obs = self.engine.obs
                if obs is not None:
                    obs.mark(msg, "accept", self.engine.now)
                # Acceptors broadcast ACCEPTED to every learner.
                self._bcast(("ACCEPTED", ballot, iid, payload, size), 24,
                            include_self=True)
        elif kind == "ACCEPTED":
            _, ballot, iid, payload, size = msg
            votes = self.learn_votes.setdefault(iid, {})
            votes[src] = ballot
            same = sum(1 for b in votes.values() if b == ballot)
            if same >= self.cluster.quorum and iid not in self.chosen:
                self.chosen[iid] = (payload, size)
                self._charge(self.cfg.learn_cpu_ns)
                self._deliver_ready()
        elif kind == "HB":
            self._last_hb_seen = self.engine.now
            if msg[1] > self.ballot and self.is_proposer and self.node_id != 0:
                pass  # higher proposer exists; benign in this model
        elif kind == "PREPARE":
            _, ballot, from_iid = msg
            if ballot > self.min_promised:
                self.min_promised = ballot
                if self.is_proposer and ballot > self.ballot:
                    self.is_proposer = False  # yield to the new proposer
                acc = {i: v for i, v in self.accepted.items() if i >= from_iid}
                self._send(src, ("PROMISE", ballot, acc), 24 + 16 * len(acc))
        elif kind == "PROMISE":
            _, ballot, acc = msg
            if not self.preparing or ballot != self.ballot:
                return
            self._prepare_promises[src] = acc
            if len(self._prepare_promises) + 1 >= self.cluster.quorum:
                self._finish_prepare()

    def _finish_prepare(self) -> None:
        """Phase 1 done: re-propose the highest-ballot accepted value per
        instance, then open for new values."""
        self.preparing = False
        merged: dict[int, tuple[int, Any, int]] = {
            i: v for i, v in self.accepted.items() if i >= self.next_deliver}
        for acc in self._prepare_promises.values():
            for iid, (b, payload, size) in acc.items():
                if iid not in merged or b > merged[iid][0]:
                    merged[iid] = (b, payload, size)
        for iid in sorted(merged):
            _b, payload, size = merged[iid]
            self.open_instances.add(iid)
            self.next_iid = max(self.next_iid, iid + 1)
            self._bcast(("ACCEPT", self.ballot, iid, payload, size), size,
                        include_self=True)
        self.engine.trace.count("paxos.takeover_done")

    # ---------------------------------------------------------------- learner

    def _deliver_ready(self) -> None:
        obs = self.engine.obs
        monitors = self.engine.monitors
        while self.next_deliver in self.chosen:
            payload, _size = self.chosen[self.next_deliver]
            if monitors is not None:
                monitors.note(self.cluster, "commit", self.node_id,
                              slot=self.next_deliver, key=payload)
            if obs is not None:
                obs.mark(payload, "commit", self.engine.now)
            self.cluster.record_delivery(self.node_id, payload)
            if self.is_proposer:
                cb = self._cbs.pop(self.next_deliver, None)
                if cb is not None:
                    cb(self.next_deliver)
                self.open_instances.discard(self.next_deliver)
            self.next_deliver += 1
            self.engine.trace.count("paxos.deliver")


class PaxosCluster(BroadcastSystem):
    """A libpaxos deployment (all nodes are acceptor+learner, node 0 the
    initial distinguished proposer)."""

    name = "libpaxos"

    def __init__(self, engine: Engine, n: int, config: Optional[PaxosConfig] = None,
                 tcp_params: Optional[TcpParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or PaxosConfig()
        self.net = self.substrate = build_substrate("tcp", engine, params=tcp_params)
        self.quorum = n // 2 + 1
        self.nodes: dict[int, PaxosNode] = {i: PaxosNode(self, i, self.cfg)
                                            for i in self.node_ids}

    def start(self) -> None:
        monitors = self.engine.monitors
        if monitors is not None:
            # Node 0 is the initial distinguished proposer at ballot 1.
            monitors.note(self, "leader", 0, term=self.nodes[0].ballot)
        for nd in self.nodes.values():
            nd.start()

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        ldr = self.leader_id()
        if ldr is None:
            return False
        self.obs_begin(payload)
        self.nodes[ldr].client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        best = None
        for nd in self.nodes.values():
            if not nd.crashed and nd.is_proposer and not nd.preparing:
                if best is None or nd.ballot > best.ballot:
                    best = nd
        return best.node_id if best is not None else None

    def crash(self, node_id: int) -> None:
        super().crash(node_id)
        # The takeover stagger reads peers' crashed flags; wake parked
        # survivors so their park deadlines re-derive from the new
        # liveness picture.
        for nd in self.nodes.values():
            if not nd.crashed:
                nd.request_poll()
