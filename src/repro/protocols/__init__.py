"""Atomic broadcast systems: Acuerdo's competitors from §4.

Every system here implements :class:`repro.protocols.base.BroadcastSystem`
so the harness can drive all seven identically (the same closed-loop
client, the same safety checker, the same metrics):

- :mod:`repro.protocols.derecho` — virtual synchrony over RDMA, in
  ``leader`` and ``all`` (round-robin senders) modes;
- :mod:`repro.protocols.apus` — leader-based Paxos over RDMA with
  APUS's single-outstanding-batch pipeline;
- :mod:`repro.protocols.paxos` — classic multi-Paxos over TCP
  (libpaxos);
- :mod:`repro.protocols.zab` — Zab over TCP (ZooKeeper), per-message
  follower ACKs and the post-election state-transfer check;
- :mod:`repro.protocols.raft` — Raft over TCP (etcd), randomized
  election timeouts and AppendEntries replication.

Acuerdo itself lives in :mod:`repro.core` and exposes the same
interface through :class:`repro.core.cluster.AcuerdoCluster`.
"""

from repro.protocols.base import BroadcastSystem, DeliveryRecorder

__all__ = ["BroadcastSystem", "DeliveryRecorder"]
