"""DARE: state machine replication on RDMA — the §5 ancestor baseline.

DARE (Poke & Hoefler, HPDC'15) pioneered RDMA atomic broadcast: leaders
hold exclusive write access to acceptor logs (acceptors close their
other connections and keep their CPUs passive), and replication is
driven entirely by the leader's RDMA completions.

The paper's §5 analysis pins DARE's cost on **fine-grained
completions**: "in order to send a message to a remote acceptor,
leaders must first write to the log, ensure the write is completed,
then mark the entry as valid" — two *sequential, signaled* writes per
entry per follower, each waiting for its completion before the next
step, in contrast to Acuerdo's fire-and-forget pipeline with selective
signaling.  We model exactly that chain.

For leader election, DARE "requires every acceptor to vote at most once
per election round.  Consequently, DARE can deadlock when several
acceptors fall into an election but split their vote among several
valid contenders; this split vote deadlock will result in another
expensive timeout and election round.  To deal with this ... DARE uses
randomized timeouts", i.e. Raft-style elections with slack timeouts —
modelled as such.

DARE is not in the paper's Fig. 8 (APUS superseded it); this module
exists for the extension benchmark (`test_bench_extension_dare_mu.py`)
that places the whole RDMA lineage on one axis.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import RdmaParams, SharedStateTable, build_substrate
from repro.sim.engine import Engine, us
from repro.sim.process import Process, ProcessConfig


@dataclass
class DareConfig:
    """DARE cost/behaviour knobs."""

    entry_cpu_ns: int = 600            # leader per-entry bookkeeping
    deliver_cpu_ns: int = 200
    commit_push_period_ns: int = us(4)
    heartbeat_timeout_min_ns: int = us(600)   # randomized, slack (§5)
    heartbeat_timeout_max_ns: int = us(1_400)
    heartbeat_period_ns: int = us(100)
    max_inflight: int = 64             # pipelined entries per follower chain
    process: ProcessConfig = field(default_factory=ProcessConfig)


class DareNode(Process):
    """One DARE replica.

    Acceptors are CPU-passive for replication: their logs fill via
    one-sided writes and they only wake to deliver and to monitor the
    leader.  All replication control runs at the leader, driven by its
    completion queue.
    """

    def __init__(self, cluster: "DareCluster", node_id: int, cfg: DareConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process), name=f"dare{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.term = 0
        self.is_leader = False
        self.log: list[tuple[Any, int]] = []
        self.commit_index = 0
        self.seen_commit = 0
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self._cbs: dict[int, CommitCallback] = {}
        # Leader-side replication chains: per follower, the next entry to
        # write and the phase of the in-flight step.
        self._chain_next: dict[int, int] = {}      # follower -> next entry idx
        self._chain_phase: dict[int, tuple] = {}   # follower -> ("entry"|"valid", idx)
        self._acked: dict[int, int] = {}           # follower -> entries valid upto
        self._votes: set[int] = set()
        self._rng = cluster.engine.rng(f"dare.{node_id}")
        self._deadline = 0
        self._reset_timer()
        self._last_hb_sent = 0
        self._last_commit_push = 0

    # ------------------------------------------------------------------ util

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(cost * cpu.speed_factor)

    def _reset_timer(self) -> None:
        span = self.cfg.heartbeat_timeout_max_ns - self.cfg.heartbeat_timeout_min_ns
        self._deadline = (self.engine.now + self.cfg.heartbeat_timeout_min_ns
                          + self._rng.randrange(max(1, span)))

    # ------------------------------------------------------------------ poll

    def on_poll(self) -> None:
        if self.is_leader:
            self._drain_completions()
            self._advance_chains()
            self._advance_commit()
            self._push_commit_row()
        else:
            self._acceptor_step()
            if self.engine.now >= self._deadline:
                self.cluster.run_election(self.node_id)
                self._reset_timer()
        self._deliver()

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        """Idle iff no chain can advance, nothing is drainable and no
        commit is deliverable.  Log/commit-row deposits and completions
        ring the doorbell; election hand-offs call request_poll."""
        if self.is_leader:
            if self.pending or len(self.cluster.fabric.nic(self.node_id).cq):
                return False
            log_len = len(self.log)
            nodes = self.cluster.nodes
            for p, nxt in self._chain_next.items():
                if (p not in self._chain_phase and not nodes[p].crashed
                        and nxt < log_len
                        and nxt - self._acked.get(p, 0) < self.cfg.max_inflight):
                    return False
            if self._acked:
                acks = sorted([log_len] + list(self._acked.values()), reverse=True)
                if acks[self.cluster.quorum - 1] > self.commit_index:
                    return False
        elif self.cluster.log_inboxes[self.node_id]:
            return False
        limit = self.commit_index if self.is_leader else self.seen_commit
        if self.cluster.delivered.get(self.node_id, 0) < limit:
            return False
        return True

    def park_deadline(self) -> Optional[int]:
        if self.is_leader:
            return self._last_commit_push + self.cfg.commit_push_period_ns
        # Randomized election timeout: fires at the first tick >= _deadline.
        return self._deadline

    # ---------------------------------------------------------------- leader

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    def become_leader(self, term: int) -> None:
        self.is_leader = True
        self.term = term
        monitors = self.engine.monitors
        if monitors is not None:
            monitors.note(self.cluster, "leader", self.node_id, term=term)
        peers = [p for p in self.cluster.node_ids if p != self.node_id]
        self._chain_next = {p: min(self._acked.get(p, 0), len(self.log)) for p in peers}
        self._chain_phase = {}
        self._acked = {p: self._chain_next[p] for p in peers}
        self.engine.trace.count("dare.elected")

    def _advance_chains(self) -> None:
        obs = self.engine.obs
        monitors = self.engine.monitors
        # Pull pending client payloads into the local log first.
        while self.pending:
            payload, size, cb = self.pending.pop(0)
            if cb is not None:
                self._cbs[len(self.log)] = cb
            self.log.append((payload, size))
            self._charge(self.cfg.entry_cpu_ns)
            if monitors is not None:
                # The leader's local append counts toward the quorum
                # (the len(self.log) term in _advance_commit).
                monitors.note(self.cluster, "accept", self.node_id,
                              slot=len(self.log))
            if obs is not None:
                obs.mark(payload, "propose", self.engine.now)
        # Per-follower chains: entry write -> completion -> valid write
        # -> completion -> next entry.  The fine-grained completion
        # discipline of §5, pipelined at most max_inflight deep.
        for p, nxt in self._chain_next.items():
            if p in self._chain_phase:
                continue  # a step is already in flight to this follower
            if self.cluster.nodes[p].crashed:
                continue
            if nxt >= len(self.log) or nxt - self._acked.get(p, 0) >= self.cfg.max_inflight:
                continue
            payload, size = self.log[nxt]
            region, rkey = self.cluster.log_regions[p]
            self._chain_phase[p] = ("entry", nxt)
            val = (payload, size)
            if obs is not None:
                # Each entry write is a wire carrier for its payload.
                obs.bind(val, payload)
            self.cluster.fabric.write(
                self.node_id, p, region, rkey, ("entry", self.term, nxt),
                val, size, signaled=True,
                wr_id=("dare-entry", p, nxt), earliest_ns=self.cpu.busy_until)

    def _drain_completions(self) -> None:
        for comp in self.cluster.fabric.nic(self.node_id).cq.drain():
            kind = comp.wr_id[0] if isinstance(comp.wr_id, tuple) else None
            if kind == "dare-entry":
                _, p, idx = comp.wr_id
                # Entry is durable at the follower: mark it valid with a
                # second signaled write.
                region, rkey = self.cluster.log_regions[p]
                self._chain_phase[p] = ("valid", idx)
                self.cluster.fabric.write(
                    self.node_id, p, region, rkey, ("valid", self.term, idx),
                    None, 8, signaled=True, wr_id=("dare-valid", p, idx),
                    earliest_ns=self.cpu.busy_until)
            elif kind == "dare-valid":
                _, p, idx = comp.wr_id
                self._acked[p] = max(self._acked.get(p, 0), idx + 1)
                self._chain_phase.pop(p, None)
                self._chain_next[p] = idx + 1

    def _advance_commit(self) -> None:
        if not self._acked:
            return
        acks = sorted([len(self.log)] + list(self._acked.values()), reverse=True)
        majority = acks[self.cluster.quorum - 1]
        if majority > self.commit_index:
            self.commit_index = majority

    def _push_commit_row(self) -> None:
        now = self.engine.now
        if now - self._last_commit_push >= self.cfg.commit_push_period_ns:
            self._last_commit_push = now
            self.cluster.commit_sst.set_and_push(
                self.node_id, (self.term, self.commit_index, now),
                earliest_ns=self.cpu.busy_until)

    # -------------------------------------------------------------- acceptor

    def _acceptor_step(self) -> None:
        inbox = self.cluster.log_inboxes[self.node_id]
        obs = self.engine.obs
        while inbox:
            key, value = inbox.pop(0)
            kind, term, idx = key
            if term < self.term:
                continue
            self.term = max(self.term, term)
            if kind == "entry":
                payload, size = value
                if obs is not None:
                    obs.mark(payload, "accept", self.engine.now)
                while len(self.log) < idx:
                    self.log.append((None, 0))
                if idx < len(self.log):
                    self.log[idx] = (payload, size)
                else:
                    self.log.append((payload, size))
            # "valid" markers need no acceptor CPU: validity is checked
            # when delivering.
        row = self.cluster.commit_sst.read(self.node_id, self.cluster.leader)
        if row is not None:
            term, cidx, _ts = row
            if term >= self.term and cidx > self.seen_commit:
                self.seen_commit = min(cidx, len(self.log))
                self._reset_timer()

    # ---------------------------------------------------------------- common

    def _deliver(self) -> None:
        limit = self.commit_index if self.is_leader else self.seen_commit
        delivered = self.cluster.delivered.setdefault(self.node_id, 0)
        obs = self.engine.obs
        monitors = self.engine.monitors
        while delivered < limit:
            payload, _size = self.log[delivered]
            if monitors is not None:
                monitors.note(self.cluster, "commit", self.node_id,
                              slot=delivered + 1)
            if payload is not None:
                if obs is not None:
                    obs.mark(payload, "commit", self.engine.now)
                self.cluster.record_delivery(self.node_id, payload)
            cb = self._cbs.pop(delivered, None)
            if cb is not None:
                self.engine.schedule_at(max(self.engine.now, self.cpu.busy_until),
                                        cb, delivered)
            delivered += 1
            self._charge(self.cfg.deliver_cpu_ns)
        self.cluster.delivered[self.node_id] = delivered


class DareCluster(BroadcastSystem):
    """A DARE deployment.

    Elections use randomized timeouts with at-most-one-vote-per-round
    acceptors, so split votes force whole new rounds (§5) — implemented
    in :meth:`run_election`, which the timing-out acceptor triggers.
    """

    name = "dare"
    client_hop_ns = 1_100

    def __init__(self, engine: Engine, n: int, config: Optional[DareConfig] = None,
                 rdma_params: Optional[RdmaParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or DareConfig()
        self.fabric = self.substrate = build_substrate(
            "rdma", engine, node_ids=self.node_ids, params=rdma_params)
        self.quorum = n // 2 + 1
        self.leader = 0
        self.delivered: dict[int, int] = {}
        self.log_inboxes: dict[int, list] = {i: [] for i in self.node_ids}
        self.log_regions: dict[int, tuple] = {}
        for i in self.node_ids:
            region = self.fabric.register(
                i, f"dare.log.{i}", 1 << 22,
                on_write=lambda key, value, size, i=i: self._log_deposit(i, key, value))
            self.log_regions[i] = (region, region.grant())
        self.commit_sst = SharedStateTable(self.fabric, "dare.commit", self.node_ids,
                                           row_size_bytes=24, initial=None)
        self.nodes: dict[int, DareNode] = {i: DareNode(self, i, self.cfg)
                                           for i in self.node_ids}
        # Poll-elision doorbells: log and commit-SST deposits (and the
        # leader's completions) wake a parked replica.
        for i, nd in self.nodes.items():
            self.fabric.nic(i).waker = nd
        self._election_term = 0
        self._round_votes: dict[int, int] = {}   # term -> votes for candidate
        self._round_voted: dict[int, set] = {}   # term -> acceptors that voted

    def _log_deposit(self, i: int, key: Any, value: Any) -> None:
        self.log_inboxes[i].append((key, value))
        if key[0] == "valid":
            monitors = self.engine.monitors
            if monitors is not None:
                # The entry became durable-and-valid at node i; the
                # leader's commit counts the completion of exactly this
                # write, ahead of any follower CPU drain.
                monitors.note(self, "accept", i, slot=key[2] + 1)

    def start(self) -> None:
        self.nodes[0].become_leader(term=1)
        self._election_term = 1
        for nd in self.nodes.values():
            nd.start()

    # -------------------------------------------------------------- election

    def run_election(self, candidate: int) -> None:
        """One DARE election round started by a timing-out acceptor.

        Every live acceptor votes at most once per term, for the first
        candidate that reaches it; concurrent candidates split the vote
        and the round fails, forcing a new randomized timeout (§5)."""
        if self.nodes[candidate].crashed:
            return
        term = self._election_term + 1
        voted = self._round_voted.setdefault(term, set())
        votes = 0
        for p in self.node_ids:
            nd = self.nodes[p]
            if nd.crashed or p in voted:
                continue
            # Vote only for candidates whose log is at least as long.
            if len(self.nodes[candidate].log) >= len(nd.log) or p == candidate:
                voted.add(p)
                votes += 1
        self.engine.trace.count("dare.election_rounds")
        if votes >= self.quorum:
            self._election_term = term
            old = self.nodes[self.leader]
            if old.is_leader:
                old.is_leader = False
            self.leader = candidate
            nd = self.nodes[candidate]
            nd.pending.extend(old.pending)
            old.pending = []
            nd.become_leader(term)
            # Both role changes happened outside the victims' poll loops:
            # the deposed leader must resume acceptor-timeout polling and
            # the candidate (if not the caller) its replication chains.
            old.request_poll()
            nd.request_poll()
        else:
            self.engine.trace.count("dare.split_vote")

    # ------------------------------------------------------------- interface

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        nd = self.nodes[self.leader]
        if nd.crashed or not nd.is_leader:
            return False
        self.obs_begin(payload)
        nd.client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        nd = self.nodes[self.leader]
        return self.leader if (not nd.crashed and nd.is_leader) else None

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()
        self.fabric.crash_node(node_id)
