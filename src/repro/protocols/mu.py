"""Mu: microsecond consensus via completion-as-acknowledgment (§5).

Mu (Aguilera et al., OSDI'20) is the most recent related system the
paper discusses — and the one experiment its authors could not run:
"Mu's software is both tuned and specialized for an Infiniband network
and was incapable of running on our RoCE cluster."  The simulation has
no such constraint, so this module reproduces Mu's mechanism and the
extension benchmark puts it on the same axis as Acuerdo:

- **Completion as the acknowledgment**: the leader writes a log entry
  into each follower's memory and treats the RDMA *completion* (the
  NIC-level transport ACK) as that follower's acceptance — follower
  CPUs never wake to acknowledge (§5: "Mu does not require follower
  CPUs to wake up to acknowledge messages").  Commit therefore takes a
  single signaled write round to a quorum: the fastest possible path,
  and Mu's published sub-2 µs consensus numbers follow from it.
- **Exclusive connections**: for the completion to imply acceptance,
  the leader must hold the *only* open connection into each follower's
  log region.  Elections consequently require closing and re-opening
  RDMA connections (re-registering memory), which makes fail-over
  dramatically more expensive than Acuerdo's — the trade-off the
  extension benchmark measures.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.protocols.base import BroadcastSystem, CommitCallback
from repro.substrate import RdmaParams, SharedStateTable, build_substrate
from repro.sim.engine import Engine, ms, us
from repro.sim.process import Process, ProcessConfig


@dataclass
class MuConfig:
    """Mu cost/behaviour knobs."""

    entry_cpu_ns: int = 350              # lean leader path (Mu is tiny)
    deliver_cpu_ns: int = 150
    commit_push_period_ns: int = us(4)
    heartbeat_timeout_ns: int = us(600)
    # Fail-over must tear down and re-establish exclusive connections:
    # close QPs, re-register memory, exchange rkeys (§5/§2.1) — a
    # millisecond-class operation even on fast networks.
    reconnect_ns: int = ms(2)
    max_inflight: int = 256
    process: ProcessConfig = field(default_factory=ProcessConfig)


class MuNode(Process):
    """One Mu replica."""

    def __init__(self, cluster: "MuCluster", node_id: int, cfg: MuConfig):
        super().__init__(cluster.engine, node_id,
                         dataclasses.replace(cfg.process), name=f"mu{node_id}")
        self.cluster = cluster
        self.cfg = cfg
        self.term = 0
        self.is_leader = False
        self.log: list[tuple[Any, int]] = []
        self.commit_index = 0
        self.seen_commit = 0
        self.pending: list[tuple[Any, int, Optional[CommitCallback]]] = []
        self._cbs: dict[int, CommitCallback] = {}
        self._acks: dict[int, set[int]] = {}     # entry idx -> followers acked
        self._next_write: dict[int, int] = {}    # follower -> next entry to write
        self._last_commit_push = 0
        self._last_leader_sign = 0

    def _charge(self, cost: int) -> None:
        cpu = self.cpu
        cpu.busy_until = max(cpu.busy_until, self.engine.now) + int(cost * cpu.speed_factor)

    # ------------------------------------------------------------------ poll

    def on_poll(self) -> None:
        if self.is_leader:
            self._drain_completions()
            self._replicate()
            self._push_commit_row()
        else:
            self._acceptor_step()
            if self.engine.now - self._last_leader_sign > self.cfg.heartbeat_timeout_ns:
                self.cluster.request_failover(self.node_id)
                self._last_leader_sign = self.engine.now  # rate-limit requests
        self._deliver()

    # --------------------------------------------------------- poll elision

    def park_ready(self) -> bool:
        """Idle iff nothing to replicate, drain or deliver.  New input
        rings the doorbell: log writes and commit-row pushes arrive over
        QPs, completions ring the poster, and client_broadcast /
        fail-over hand-offs call request_poll."""
        if self.is_leader:
            if self.pending or len(self.cluster.fabric.nic(self.node_id).cq):
                return False
            log_len = len(self.log)
            nodes = self.cluster.nodes
            for p, nxt in self._next_write.items():
                if (nxt < log_len and not nodes[p].crashed
                        and nxt - self.commit_index < self.cfg.max_inflight):
                    return False
        elif self.cluster.log_inboxes[self.node_id]:
            return False
        limit = self.commit_index if self.is_leader else self.seen_commit
        if self.cluster.delivered.get(self.node_id, 0) < limit:
            return False
        return True

    def park_deadline(self) -> Optional[int]:
        if self.is_leader:
            # Next commit-row heartbeat push (>= comparison: due exactly
            # at the period boundary).
            return self._last_commit_push + self.cfg.commit_push_period_ns
        # Next possible leader-timeout expiry (strict >: first instant
        # the detector can fire is one ns past the window).
        return self._last_leader_sign + self.cfg.heartbeat_timeout_ns + 1

    # ---------------------------------------------------------------- leader

    def client_broadcast(self, payload: Any, size: int,
                         on_commit: Optional[CommitCallback] = None) -> None:
        self.pending.append((payload, size, on_commit))
        self.request_poll()

    def become_leader(self, term: int) -> None:
        self.is_leader = True
        self.term = term
        monitors = self.engine.monitors
        if monitors is not None:
            monitors.note(self.cluster, "leader", self.node_id, term=term)
        peers = [p for p in self.cluster.node_ids if p != self.node_id]
        self._next_write = {p: len(self.log) for p in peers}
        self._acks = {}

    def _replicate(self) -> None:
        obs = self.engine.obs
        monitors = self.engine.monitors
        while self.pending:
            payload, size, cb = self.pending.pop(0)
            if cb is not None:
                self._cbs[len(self.log)] = cb
            self.log.append((payload, size))
            self._charge(self.cfg.entry_cpu_ns)
            if monitors is not None:
                # The leader's local append is its own acceptance (the
                # "+ 1" in the quorum count below).
                monitors.note(self.cluster, "accept", self.node_id,
                              slot=len(self.log))
            if obs is not None:
                obs.mark(payload, "propose", self.engine.now)
        for p, nxt in self._next_write.items():
            if self.cluster.nodes[p].crashed:
                continue
            while nxt < len(self.log) and nxt - self.commit_index < self.cfg.max_inflight:
                payload, size = self.log[nxt]
                region, rkey = self.cluster.log_regions[p]
                val = (payload, size)
                if obs is not None:
                    obs.bind(val, payload)
                # ONE signaled write; its completion IS the acceptance.
                self.cluster.fabric.write(
                    self.node_id, p, region, rkey, (self.term, nxt),
                    val, size, signaled=True,
                    wr_id=("mu", p, nxt), earliest_ns=self.cpu.busy_until)
                nxt += 1
            self._next_write[p] = nxt

    def _drain_completions(self) -> None:
        for comp in self.cluster.fabric.nic(self.node_id).cq.drain():
            if not (isinstance(comp.wr_id, tuple) and comp.wr_id[0] == "mu"):
                continue
            _, p, idx = comp.wr_id
            acks = self._acks.setdefault(idx, set())
            acks.add(p)
            # Quorum = leader (has it locally) + enough completions.
            if len(acks) + 1 >= self.cluster.quorum and idx >= self.commit_index:
                self.commit_index = max(self.commit_index, idx + 1)

    def _push_commit_row(self) -> None:
        now = self.engine.now
        if now - self._last_commit_push >= self.cfg.commit_push_period_ns:
            self._last_commit_push = now
            self.cluster.commit_sst.set_and_push(
                self.node_id, (self.term, self.commit_index, now),
                earliest_ns=self.cpu.busy_until)

    # -------------------------------------------------------------- acceptor

    def _acceptor_step(self) -> None:
        inbox = self.cluster.log_inboxes[self.node_id]
        obs = self.engine.obs
        while inbox:
            (term, idx), value = inbox.pop(0)
            if term < self.term:
                continue
            self.term = max(self.term, term)
            payload, size = value
            if obs is not None:
                obs.mark(payload, "accept", self.engine.now)
            while len(self.log) < idx:
                self.log.append((None, 0))
            if idx < len(self.log):
                self.log[idx] = (payload, size)
            else:
                self.log.append((payload, size))
        row = self.cluster.commit_sst.read(self.node_id, self.cluster.leader)
        if row is not None:
            term, cidx, ts = row
            if term >= self.term and cidx > self.seen_commit:
                self.seen_commit = min(cidx, len(self.log))
            self._last_leader_sign = max(self._last_leader_sign, ts)

    # ---------------------------------------------------------------- common

    def _deliver(self) -> None:
        limit = self.commit_index if self.is_leader else self.seen_commit
        delivered = self.cluster.delivered.setdefault(self.node_id, 0)
        obs = self.engine.obs
        monitors = self.engine.monitors
        while delivered < limit:
            payload, _size = self.log[delivered]
            if monitors is not None:
                monitors.note(self.cluster, "commit", self.node_id,
                              slot=delivered + 1)
            if payload is not None:
                if obs is not None:
                    obs.mark(payload, "commit", self.engine.now)
                self.cluster.record_delivery(self.node_id, payload)
            cb = self._cbs.pop(delivered, None)
            if cb is not None:
                self.engine.schedule_at(max(self.engine.now, self.cpu.busy_until),
                                        cb, delivered)
            delivered += 1
            self._charge(self.cfg.deliver_cpu_ns)
        self.cluster.delivered[self.node_id] = delivered


class MuCluster(BroadcastSystem):
    """A Mu deployment: fastest normal path, slowest fail-over."""

    name = "mu"
    client_hop_ns = 1_100

    def __init__(self, engine: Engine, n: int, config: Optional[MuConfig] = None,
                 rdma_params: Optional[RdmaParams] = None, record_deliveries: bool = True):
        super().__init__(engine, n, record_deliveries)
        self.cfg = config or MuConfig()
        self.fabric = self.substrate = build_substrate(
            "rdma", engine, node_ids=self.node_ids, params=rdma_params)
        self.quorum = n // 2 + 1
        self.leader = 0
        self.delivered: dict[int, int] = {}
        self.log_inboxes: dict[int, list] = {i: [] for i in self.node_ids}
        self.log_regions: dict[int, tuple] = {}
        for i in self.node_ids:
            self._register_log(i)
        self.commit_sst = SharedStateTable(self.fabric, "mu.commit", self.node_ids,
                                           row_size_bytes=24, initial=None)
        self.nodes: dict[int, MuNode] = {i: MuNode(self, i, self.cfg)
                                         for i in self.node_ids}
        # Poll-elision doorbells: log-region and commit-SST deposits (and
        # CQ completions) wake a parked replica.
        for i, nd in self.nodes.items():
            self.fabric.nic(i).waker = nd
        self._failover_in_progress = False

    def _register_log(self, i: int) -> None:
        region = self.fabric.register(
            i, f"mu.log.{i}", 1 << 22,
            on_write=lambda key, value, size, i=i: self._log_deposit(i, key, value))
        self.log_regions[i] = (region, region.grant())

    def _log_deposit(self, i: int, key: Any, value: Any) -> None:
        self.log_inboxes[i].append((key, value))
        monitors = self.engine.monitors
        if monitors is not None:
            # Completion-as-acknowledgment: the leader treats the NIC
            # completion of this deposit as node i's acceptance, so the
            # accept event belongs here — the follower's CPU drain can
            # run after the leader has already committed.
            monitors.note(self, "accept", i, slot=key[1] + 1)

    def start(self) -> None:
        self.nodes[0].become_leader(term=1)
        for nd in self.nodes.values():
            nd.start()

    # -------------------------------------------------------------- failover

    def request_failover(self, requester: int) -> None:
        """Followers that lose the leader trigger reconnection-based
        fail-over: every follower closes its exclusive connection,
        re-registers its log for the new leader, and only then can the
        new term start (§5's close-and-reopen requirement)."""
        if self._failover_in_progress:
            return
        old = self.nodes[self.leader]
        if not old.crashed and old.is_leader:
            return  # leader fine; spurious timeout
        live = [i for i in self.node_ids if not self.nodes[i].crashed]
        if len(live) < self.quorum:
            return
        self._failover_in_progress = True
        new = max(live, key=lambda i: len(self.nodes[i].log))
        self.engine.trace.count("mu.failover_started")
        # Re-registration revokes old rkeys; in-flight old-leader writes
        # will be rejected at delivery, which is exactly Mu's guarantee.
        self.engine.schedule(self.cfg.reconnect_ns, self._finish_failover, new)

    def _finish_failover(self, new: int) -> None:
        # Every live log is re-registered: old rkeys die, and only the
        # new leader is handed the fresh ones — exclusivity restored.
        for i in self.node_ids:
            if not self.nodes[i].crashed:
                self._register_log(i)
        nd = self.nodes[new]
        old = self.nodes[self.leader]
        nd.pending.extend(old.pending)
        old.pending = []
        nd.seen_commit = max(nd.seen_commit, nd.commit_index)
        nd.commit_index = max(nd.commit_index, nd.seen_commit, len(nd.log))
        self.leader = new
        nd.become_leader(term=self._next_term())
        self._failover_in_progress = False
        self.engine.trace.count("mu.failover_done")
        # The hand-off mutated the new leader outside its poll loop.
        nd.request_poll()

    def _next_term(self) -> int:
        return max(n.term for n in self.nodes.values()) + 1

    # ------------------------------------------------------------- interface

    def processes(self):
        return list(self.nodes.values())

    def submit(self, payload: Any, size_bytes: int,
               on_commit: Optional[CommitCallback] = None) -> bool:
        nd = self.nodes[self.leader]
        if nd.crashed or not nd.is_leader or self._failover_in_progress:
            return False
        self.obs_begin(payload)
        nd.client_broadcast(payload, size_bytes, on_commit)
        return True

    def leader_id(self) -> Optional[int]:
        nd = self.nodes[self.leader]
        if nd.crashed or not nd.is_leader or self._failover_in_progress:
            return None
        return self.leader

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()
        self.fabric.crash_node(node_id)
