"""Reproduction of "Acuerdo: Fast Atomic Broadcast over RDMA" (ICPP '22).

Top-level convenience surface; see the subpackages for the full API:

- :mod:`repro.sim` — deterministic discrete-event kernel;
- :mod:`repro.substrate` — the unified transport layer (cost models,
  endpoint/substrate interfaces, backend registry);
- :mod:`repro.rdma` — the simulated RDMA backend;
- :mod:`repro.net` — the kernel-TCP backend;
- :mod:`repro.core` — the Acuerdo protocol (the paper's contribution);
- :mod:`repro.protocols` — the six baseline systems of §4;
- :mod:`repro.apps` — state-machine replication and the §4.3 hash table;
- :mod:`repro.workloads` — Fig. 8 / Table 1 / Fig. 9 load generators;
- :mod:`repro.harness` — experiment drivers and rendering.
"""

from repro.core import AcuerdoCluster, AcuerdoConfig
from repro.sim import Engine, ms, sec, us
from repro.substrate import build_substrate

__version__ = "1.1.0"

__all__ = [
    "AcuerdoCluster",
    "AcuerdoConfig",
    "Engine",
    "build_substrate",
    "us",
    "ms",
    "sec",
    "__version__",
]
