#!/usr/bin/env python3
"""Fail-over drill: repeatedly kill Acuerdo leaders and watch recovery.

Demonstrates §3.3/§3.4: every election converges on an up-to-date
leader with no post-election state transfer; committed messages are
preserved across epochs; downtime per election is the Table 1 quantity
(detection to first-new-message readiness, including the diff).

Run:  python examples/failover_drill.py
"""

from repro.core import AcuerdoCluster
from repro.sim import Engine, ms, us
from repro.workloads.openloop import OpenLoopClient


def main() -> None:
    engine = Engine(seed=99)
    cluster = AcuerdoCluster(engine, n=7)
    cluster.start()
    engine.run(until=ms(1))

    client = OpenLoopClient(cluster, period_ns=us(5), message_size=10)
    client.start()

    killed = []
    for round_no in range(3):
        engine.run(until=engine.now + ms(5))
        leader = cluster.leader_id()
        print(f"round {round_no}: leader is node {leader}; "
              f"{client.committed} messages committed so far")
        cluster.crash(leader)
        killed.append(leader)
        engine.run(until=engine.now + ms(5))
        new = cluster.leader_id()
        epoch = cluster.nodes[new].E_cur
        print(f"   -> killed node {leader}; node {new} won epoch "
              f"(round={epoch.round}, leader={epoch.leader})")

    engine.run(until=engine.now + ms(10))
    client.stop()

    durations = engine.trace.series("acuerdo.election_duration_ns")
    print(f"\nelection durations (detection->first send, incl. diff): "
          f"{[round(d / 1e6, 3) for d in durations]} ms")
    print(f"longest commit gap seen by the open-loop client: "
          f"{client.longest_commit_gap() / 1e6:.3f} ms")

    # Safety held throughout: all survivors delivered the same prefix.
    cluster.deliveries.check_total_order()
    survivors = [i for i in cluster.node_ids if i not in killed]
    counts = {i: cluster.deliveries.delivered_count(i) for i in survivors}
    print(f"delivered counts at survivors: {counts}")
    print("total order preserved across", len(killed), "fail-overs: OK")


if __name__ == "__main__":
    main()
