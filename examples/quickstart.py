#!/usr/bin/env python3
"""Quickstart: a 3-node Acuerdo instance broadcasting client messages.

Builds the cluster over the simulated RDMA fabric, broadcasts a stream
of payloads, and shows the atomic-broadcast guarantees holding: every
replica delivers the same messages in the same order, with commit
latencies in the microsecond band the paper reports.

Run:  python examples/quickstart.py
"""

from repro.core import AcuerdoCluster
from repro.sim import Engine, ms, us


def main() -> None:
    engine = Engine(seed=2024)
    cluster = AcuerdoCluster(engine, n=3)
    cluster.start()

    # Cold start: the replicas elect a leader before serving (§3.3).
    engine.run(until=ms(1))
    roles = {i: r.value for i, r in cluster.roles().items()}
    print(f"leader elected: node {cluster.leader_id()}; roles: {roles}")

    # Broadcast 100 payloads, measuring commit latency at the leader.
    latencies = []

    def feed(i: int = 0) -> None:
        if i >= 100:
            return
        t0 = engine.now
        cluster.submit({"op": "put", "seq": i}, size_bytes=10,
                       on_commit=lambda hdr, t0=t0: latencies.append(engine.now - t0))
        engine.schedule(us(3), feed, i + 1)

    feed()
    engine.run(until=ms(3))

    print(f"\ncommitted {len(latencies)}/100 messages")
    print(f"mean commit latency: {sum(latencies) / len(latencies) / 1000:.1f} us "
          f"(paper: ~10 us for small groups and messages)")

    # Atomic broadcast guarantees (§2.2), checked across all replicas.
    cluster.deliveries.check_total_order()
    cluster.deliveries.check_no_duplication(key=lambda p: p["seq"])
    for node_id in cluster.node_ids:
        seq = cluster.deliveries.sequences[node_id]
        assert [p["seq"] for p in seq] == list(range(100))
    print("total order / no duplication / integrity: OK on all replicas")


if __name__ == "__main__":
    main()
