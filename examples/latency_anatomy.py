#!/usr/bin/env python3
"""Where do Acuerdo's ~10 microseconds go?

Instruments a 3-node cluster and prints the per-stage latency anatomy
of a committed message: client hop, ring broadcast, follower
acceptance, quorum, commit, acknowledgment — the measured counterpart
of the §3.2 walkthrough (Fig. 3).

Run:  python examples/latency_anatomy.py
"""

from repro.core import AcuerdoCluster
from repro.harness.breakdown import LatencyAnatomy
from repro.sim import Engine, ms, us


def main() -> None:
    engine = Engine(seed=11)
    cluster = AcuerdoCluster(engine, n=3)
    cluster.preseed_leader(0)
    cluster.start()
    anatomy = LatencyAnatomy(cluster)

    def fire(i: int = 0) -> None:
        if i < 200:
            anatomy.probe(i, {"op": "put", "seq": i}, size=10)
            engine.schedule(us(5), fire, i + 1)

    fire()
    engine.run(until=ms(5))

    print(anatomy.render())
    print(
        "\nReading the anatomy against §3.2:\n"
        "  broadcast     — header stamped, one coupled RDMA write posted\n"
        "  first_accept  — the write landed and a follower's poll found it\n"
        "  quorum_accept — the second follower (quorum for n=3) accepted\n"
        "  committed     — the overwritten Accept-SST row reached the\n"
        "                  leader and the quorum test passed (Fig. 6)\n"
        "  acked         — commit callback after the handler's CPU work\n"
        "The client transport hops (~1.1 us each way) sit on top of the\n"
        "committed figure in the Fig. 8 client-observed numbers."
    )


if __name__ == "__main__":
    main()
