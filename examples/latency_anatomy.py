#!/usr/bin/env python3
"""Where do Acuerdo's ~10 microseconds go?

Two span-based views of the same question, both driven by the
``repro.obs`` instrumentation (the marks `repro trace` exports):

1. the critical-path *phase* anatomy — mean time per span segment
   (propose, NIC serialisation, wire, PCIe deposit, remote poll,
   accept, commit) across every message of a captured run;
2. the classic *stage* anatomy — per-probe milestones (broadcast,
   first accept, quorum, commit, ack) on a hand-driven cluster,
   the measured counterpart of the §3.2 walkthrough (Fig. 3).

Run:  python examples/latency_anatomy.py
"""

from repro.core import AcuerdoCluster
from repro.harness import RunSpec, render_table
from repro.harness.breakdown import LatencyAnatomy
from repro.obs import capture_run
from repro.obs.spans import PHASES
from repro.sim import Engine, ms, us


def phase_view() -> None:
    spec = RunSpec(system="acuerdo", n=3, payload_bytes=10, window=1,
                   duration_ms=5.0, seed=11, capture_spans=True)
    res = capture_run(spec)
    means = res.recorder.phase_means()
    rows = [[p, round(means[p] / 1000.0, 3)] for p in PHASES if p in means]
    print(render_table(
        f"Acuerdo critical-path phases, mean us "
        f"({len(res.messages)} spans, window {spec.window})",
        ["phase", "mean_us"], rows))


def stage_view() -> None:
    engine = Engine(seed=11)
    cluster = AcuerdoCluster(engine, n=3)
    cluster.preseed_leader(0)
    cluster.start()
    anatomy = LatencyAnatomy(cluster)

    def fire(i: int = 0) -> None:
        if i < 200:
            anatomy.probe(i, {"op": "put", "seq": i}, size=10)
            engine.schedule(us(5), fire, i + 1)

    fire()
    engine.run(until=ms(5))
    print(anatomy.render())


def main() -> None:
    phase_view()
    print()
    stage_view()
    print(
        "\nReading the anatomy against §3.2:\n"
        "  broadcast     — header stamped, one coupled RDMA write posted\n"
        "  first_accept  — the write landed and a follower's poll found it\n"
        "  quorum_accept — the second follower (quorum for n=3) accepted\n"
        "  committed     — the overwritten Accept-SST row reached the\n"
        "                  leader and the quorum test passed (Fig. 6)\n"
        "  acked         — commit callback after the handler's CPU work\n"
        "The phase table splits the broadcast→accept gap further: NIC\n"
        "serialisation, wire propagation, PCIe deposit and the remote\n"
        "poll loop each get their own segment, summing exactly to the\n"
        "delivery latency (the invariant tests/obs asserts).  The client\n"
        "transport hops (~1.1 us each way) sit on top of the committed\n"
        "figure in the Fig. 8 client-observed numbers."
    )


if __name__ == "__main__":
    main()
