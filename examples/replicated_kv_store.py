#!/usr/bin/env python3
"""The paper's §4.3 use case: a crash-resilient replicated hash table.

Update commands (create/set/delete) are replicated through Acuerdo and
acknowledged once committed; gets are served locally at any replica,
bypassing the broadcast entirely.  Halfway through the run the leader
crashes — the table stays available and consistent through the
fail-over, and no acknowledged update is lost.

Run:  python examples/replicated_kv_store.py
"""

from repro.apps.hashtable import ReplicatedHashTable
from repro.core import AcuerdoCluster
from repro.sim import Engine, ms, us
from repro.workloads.ycsb import YcsbLoadWorkload


def main() -> None:
    engine = Engine(seed=7)
    cluster = AcuerdoCluster(engine, n=5)
    cluster.start()
    engine.run(until=ms(1))
    table = ReplicatedHashTable(cluster)
    workload = YcsbLoadWorkload(engine, record_count=500, value_size=64)

    acked: list[str] = []

    def apply_ops(i: int = 0) -> None:
        if i >= 400:
            return
        op = workload.next_op()
        table.submit_op(op, on_commit=lambda _x, k=op.key: acked.append(k))
        engine.schedule(us(10), apply_ops, i + 1)

    apply_ops()
    engine.run(until=ms(2))
    acked_before_crash = len(acked)
    old_leader = cluster.leader_id()
    print(f"leader {old_leader} serving; {acked_before_crash} updates acked; "
          f"table size at replica 1: {table.size(1)}")

    # Kill the leader mid-stream.
    cluster.crash(old_leader)
    print(f"crashed node {old_leader} — electing a replacement...")
    engine.run(until=ms(12))
    print(f"new leader: node {cluster.leader_id()} "
          f"(election took sub-millisecond, Table 1)")

    engine.run(until=ms(30))
    print(f"total updates acked: {len(acked)}/400")

    # Consistency: every live replica applied the same op stream.
    table.assert_replicas_consistent()
    live = [i for i in cluster.node_ids if not cluster.nodes[i].crashed]
    sizes = {i: table.size(i) for i in live}
    print(f"replica table sizes (live nodes): {sizes}")

    # Local gets bypass the broadcast: read a hot key from each replica.
    hot = workload.key(0)
    values = {i: table.get(i, hot) for i in live}
    assert len({v for v in values.values()}) <= 1
    print(f"local get({hot!r}) agrees on all live replicas: OK")


if __name__ == "__main__":
    main()
