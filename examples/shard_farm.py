#!/usr/bin/env python3
"""Shard farm: 16 Acuerdo groups serving 100,000 users from one engine.

Builds a `ShardedDeployment` (16 independent 3-node groups behind a
key-hashed router), models the user population as one aggregate
Poisson arrival process with Zipfian(0.99) key skew, and shows the
scale-out story: requests spread across every group, each group runs
the ordinary single-group protocol, and killing one group's leader
leaves the other fifteen serving.

Run:  PYTHONPATH=src python examples/shard_farm.py
"""

from repro.harness.shardsweep import farm_group_config
from repro.harness.runspec import RunSpec
from repro.shard import ShardedDeployment, aggregate_client
from repro.sim import Engine, ms

SHARDS = 16
USERS = 100_000
RATE_RPS = 400_000.0


def main() -> None:
    spec = RunSpec(system="acuerdo", workload="openloop", shards=SHARDS,
                   users=USERS, skew=0.99, arrival_rate=RATE_RPS, seed=42)
    engine = Engine(seed=spec.seed)
    farm = ShardedDeployment(engine, system=spec.system, shards=SHARDS,
                             n=spec.n, group_config=farm_group_config(spec))
    farm.settle()
    print(f"{SHARDS} groups settled; leaders: "
          f"{[farm.leader_of(g) for g in range(SHARDS)]}")

    client = aggregate_client(farm, users=USERS, rate_rps=RATE_RPS,
                              skew=spec.skew)
    client.start()
    engine.run(until=engine.now + ms(10))

    lats = sorted(farm.all_latencies_ns())
    print(f"\n{client.sent} requests from {USERS} users in 10 ms of sim "
          f"time; {farm.total_committed()} committed")
    print(f"mean latency {sum(lats) / len(lats) / 1e3:.1f} us, "
          f"p99 {lats[int(len(lats) * 0.99)] / 1e3:.1f} us")
    share = [s / client.sent for s in farm.submitted]
    print(f"hottest shard carries {max(share):.1%} of load "
          f"(uniform would be {1 / SHARDS:.1%}) — Zipfian skew at work")

    # Kill one group's leader mid-stream: the farm degrades by exactly
    # one shard while the other groups keep committing.
    victim = 3
    injector = farm.injector()
    injector.crash_at(engine.now + ms(1), (victim, farm.leader_of(victim)))
    engine.run(until=engine.now + ms(5))
    client.stop()
    engine.run(until=engine.now + ms(1))

    print(f"\nkilled group {victim}'s leader; farm committed "
          f"{farm.total_committed()} of {farm.total_submitted()} total")
    print(f"group {victim} dropped {farm.dropped[victim]} requests during "
          f"its election; other groups dropped "
          f"{sum(farm.dropped) - farm.dropped[victim]}")


if __name__ == "__main__":
    main()
