#!/usr/bin/env python3
"""The RDMA consensus lineage, including the run the paper couldn't do.

§5 of the paper compares Acuerdo against DARE, APUS, Derecho and Mu by
argument; Mu in particular "was incapable of running on our RoCE
cluster".  The simulation runs them all side by side and renders the
latency/throughput plane as an ASCII plot.

Run:  python examples/rdma_lineage.py
"""

from repro.harness import RunSpec, build_from_spec, render_table, settle
from repro.harness.plot import ascii_plot
from repro.sim import Engine, ms
from repro.workloads.closedloop import ClosedLoopClient

LINEAGE = ["dare", "apus", "derecho-leader", "acuerdo", "mu"]


def sweep(name: str) -> list[tuple[float, float]]:
    """(throughput MB/s, latency us) points over a small window sweep."""
    points = []
    for window in (1, 4, 16):
        engine = Engine(seed=7)
        system = build_from_spec(RunSpec(system=name, n=3, seed=7), engine)
        settle(system)
        client = ClosedLoopClient(system, window=window, message_size=10,
                                  warmup=30)
        client.start()
        deadline = engine.now + ms(300)
        while len(client.latencies) < 250 and engine.now < deadline:
            engine.run(until=engine.now + ms(4))
        client.stop()
        res = client.result()
        points.append((res.throughput_mb_per_sec, res.mean_latency_us))
    return points


def main() -> None:
    series = {name: sweep(name) for name in LINEAGE}
    rows = [[name, round(pts[0][1], 1), round(max(p[0] for p in pts), 3)]
            for name, pts in series.items()]
    rows.sort(key=lambda r: r[1])
    print(render_table(
        "RDMA consensus lineage (3 nodes, 10 B): window-1 latency and "
        "best observed throughput",
        ["system", "floor_lat_us", "best_tput_MB_s"], rows))
    print()
    print(ascii_plot(series, log_x=True, log_y=True, width=60, height=14,
                     x_label="throughput MB/s", y_label="latency us",
                     title="Latency vs throughput (ideal = bottom right)"))
    print("\n§5's qualitative ordering, measured: mu < acuerdo < "
          "derecho < dare < apus on latency;\nAcuerdo keeps the best "
          "latency of any system with a survivable fail-over story.")


if __name__ == "__main__":
    main()
