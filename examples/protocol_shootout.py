#!/usr/bin/env python3
"""Protocol shootout: all seven systems of §4 at one load point.

Runs Acuerdo, Derecho (both modes), APUS, libpaxos, ZooKeeper and etcd
on identical 3-node clusters with identical closed-loop clients, and
prints the latency/throughput table — a single-point preview of the
Fig. 8 curves (the full sweeps live in ``benchmarks/``).

Run:  python examples/protocol_shootout.py
"""

from repro.harness import RunSpec, SYSTEMS, build_from_spec, render_table, settle
from repro.sim import Engine, ms
from repro.workloads.closedloop import ClosedLoopClient


def measure(name: str, window: int = 4, size: int = 10) -> list:
    engine = Engine(seed=42)
    system = build_from_spec(RunSpec(system=name, n=3, seed=42), engine)
    settle(system)
    client = ClosedLoopClient(system, window=window, message_size=size, warmup=30)
    client.start()
    deadline = engine.now + ms(400)
    while len(client.latencies) < 300 and engine.now < deadline:
        engine.run(until=engine.now + ms(4))
    client.stop()
    res = client.result()
    return [name, round(res.mean_latency_us, 1),
            round(res.percentile_latency_us(99), 1),
            round(res.throughput_mb_per_sec, 3),
            res.completed]


def main() -> None:
    rows = [measure(name) for name in SYSTEMS]
    rows.sort(key=lambda r: r[1])
    print(render_table(
        "Atomic broadcast shootout: 3 nodes, 10-byte messages, window 4",
        ["system", "mean_lat_us", "p99_lat_us", "tput_MB_s", "msgs"],
        rows))
    print("\nExpected shape (paper Fig. 8a): acuerdo fastest; derecho ~2x"
          "\nbehind; apus next; TCP systems one-two orders of magnitude up.")


if __name__ == "__main__":
    main()
