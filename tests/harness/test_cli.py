"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_shootout_runs_and_prints_table(capsys):
    rc = main(["shootout", "--systems", "acuerdo", "--messages", "80"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Shootout" in out and "acuerdo" in out


def test_shootout_extensions_flag(capsys):
    rc = main(["shootout", "--systems", "mu", "--messages", "60"])
    assert rc == 0
    assert "mu" in capsys.readouterr().out


def test_fig8_single_system(capsys):
    rc = main(["fig8", "--panel", "a", "--systems", "acuerdo",
               "--messages", "80"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 8(a)" in out and "Summary" in out


def test_elections_command(capsys):
    rc = main(["elections", "--nodes", "3", "--kills", "1"])
    assert rc == 0
    assert "Election durations" in capsys.readouterr().out


def test_table1_command(capsys):
    rc = main(["table1", "--sizes", "3", "--kills", "1"])
    assert rc == 0
    assert "Table 1" in capsys.readouterr().out


def test_seed_changes_timing_not_structure(capsys):
    main(["--seed", "5", "shootout", "--systems", "acuerdo", "--messages", "60"])
    a = capsys.readouterr().out
    main(["--seed", "6", "shootout", "--systems", "acuerdo", "--messages", "60"])
    b = capsys.readouterr().out
    assert a.splitlines()[0] == b.splitlines()[0]


def test_shard_command_prints_sweep_table(capsys):
    rc = main(["--workers", "1", "shard", "--shards", "1", "2",
               "--skews", "0.99", "--users", "5000", "--rate", "100000",
               "--duration-ms", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Shard farm" in out and "hottest_share" in out
    # one row per (shards, skew) grid point
    assert out.count("0.99") >= 2


def test_trace_command_accepts_shard_flags(tmp_path, capsys):
    out_file = tmp_path / "farm.json"
    rc = main(["trace", "--shards", "2", "--users", "2000", "--skew", "0.9",
               "--rate", "100000", "--duration-ms", "2",
               "--out", str(out_file)])
    assert rc == 0
    text = out_file.read_text()
    assert "shard.0.acuerdo.msg" in text and "shard.1.acuerdo.msg" in text
