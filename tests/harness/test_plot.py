"""Tests for the ASCII plot renderer."""

from repro.harness.plot import ascii_plot


def _lines(out):
    return out.splitlines()


def test_plot_places_markers_for_each_series():
    out = ascii_plot({"fast": [(1, 10), (2, 10)], "slow": [(1, 1000), (2, 1000)]},
                     width=30, height=8, log_y=True)
    assert "a=fast" in out and "b=slow" in out
    body = "\n".join(_lines(out))
    assert "a" in body and "b" in body


def test_log_y_separates_bands():
    out = ascii_plot({"lo": [(1, 10)], "hi": [(1, 1000)]},
                     width=20, height=10, log_y=True)
    rows = [i for i, line in enumerate(_lines(out)) if "|" in line]
    lo_row = next(i for i, l in enumerate(_lines(out)) if "a" in l.split("|")[-1:] or
                  ("|" in l and "a" in l.split("|")[1]))
    hi_row = next(i for i, l in enumerate(_lines(out)) if "|" in l and "b" in l.split("|")[1])
    assert hi_row < lo_row  # higher value plots nearer the top


def test_collisions_marked_with_star():
    out = ascii_plot({"x": [(1, 5)], "y": [(1, 5)]}, width=10, height=5,
                     log_y=False)
    assert "*" in out


def test_empty_series_handled():
    assert "(no data)" in ascii_plot({}, title="T")


def test_nonpositive_values_dropped_on_log_axes():
    out = ascii_plot({"s": [(1, 0), (1, -5), (2, 100)]}, log_y=True,
                     width=10, height=5)
    assert "a" in out


def test_axis_ticks_present():
    out = ascii_plot({"s": [(1, 10), (100, 1000)]}, log_x=True, log_y=True,
                     width=20, height=6, x_label="tput", y_label="lat")
    assert "tput" in out and "lat" in out
    assert "1e" in out  # log ticks
