"""Tests for the latency-anatomy instrument."""

from repro.core import AcuerdoCluster
from repro.harness.breakdown import LatencyAnatomy, Stages
from repro.sim import Engine, ms, us


def _instrumented(seed=1):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, 3)
    c.preseed_leader(0)
    c.start()
    return e, c, LatencyAnatomy(c)


def test_all_stages_recorded_in_order():
    e, c, an = _instrumented()
    an.probe(0, ("p", 0))
    e.run(until=ms(1))
    st = an.stages[0]
    assert st.broadcast is not None
    assert st.first_accept is not None
    assert st.committed is not None
    assert st.acked is not None
    assert (st.submitted <= st.broadcast <= st.first_accept
            <= st.committed <= st.acked)


def test_stage_costs_match_cost_model():
    """Anatomy must agree with the substrate: first acceptance happens
    about one one-sided write plus one poll after broadcast."""
    e, c, an = _instrumented()
    for i in range(20):
        an.probe(i, ("p", i))
        e.run(until=e.now + us(8))
    e.run(until=ms(2))
    gaps = [st.first_accept - st.broadcast for st in an.stages.values()
            if st.first_accept and st.broadcast]
    mean_gap = sum(gaps) / len(gaps)
    p = c.fabric.params
    one_way = p.nic_tx_ns + p.tx_serialization_ns(10) + p.propagation_ns + p.nic_rx_ns
    assert one_way * 0.8 < mean_gap < one_way + us(2)  # + poll discovery


def test_instrumentation_adds_no_simulated_time():
    lat_plain = []
    e1 = Engine(seed=3)
    c1 = AcuerdoCluster(e1, 3)
    c1.preseed_leader(0)
    c1.start()
    t0 = e1.now
    c1.submit(("p", 0), 10, lambda h: lat_plain.append(e1.now))
    e1.run(until=ms(1))

    e2, c2, an = _instrumented(seed=3)
    an.probe(0, ("p", 0))
    e2.run(until=ms(1))
    assert an.stages[0].acked == lat_plain[0]


def test_render_produces_table():
    e, c, an = _instrumented()
    an.probe(0, ("p", 0))
    e.run(until=ms(1))
    out = an.render()
    assert "latency anatomy" in out
    assert "committed" in out


def test_stages_rows_skips_missing():
    st = Stages(submitted=100)
    st.committed = 1100
    assert st.rows() == [("committed", 1.0)]
