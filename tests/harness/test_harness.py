"""Tests for the experiment harness (factory, fig8/fig9/table1 drivers)."""


import pytest

from repro.harness import RunSpec, SYSTEMS, build_from_spec, settle
from repro.harness.fig8 import knee, floor, point, sweep
from repro.harness.fig9 import grid_spec
from repro.harness.fig9 import point as fig9_point
from repro.harness.render import render_table, render_series
from repro.harness.table1 import election_spec, elections
from repro.sim import Engine


def test_factory_builds_every_system():
    for name in SYSTEMS:
        e = Engine(seed=1)
        s = build_from_spec(RunSpec(system=name, n=3), e)
        assert s.name in (name, name.replace("derecho-", "derecho-"))
        assert s.n == 3


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        RunSpec(system="nope")


def test_settle_produces_leader_everywhere():
    for name in SYSTEMS:
        e = Engine(seed=2)
        s = build_from_spec(RunSpec(system=name, n=3), e)
        settle(s)
        assert s.leader_id() is not None, name


def test_fig8_point_measures():
    p = point(RunSpec(system="acuerdo", n=3, payload_bytes=10, window=2),
              min_completions=100)
    assert p.completed >= 100
    assert p.throughput_mb_s > 0
    assert 1 < p.mean_latency_us < 100


def test_fig8_sweep_stops_at_saturation():
    pts = sweep(RunSpec(system="acuerdo", n=3, payload_bytes=10),
                min_completions=120, max_window=256)
    assert 2 <= len(pts) <= 9
    assert pts[0].window == 1
    k = knee(pts)
    f = floor(pts)
    assert k.throughput_mb_s >= f.throughput_mb_s
    assert f.window == 1


def test_fig9_point_counts_ops():
    spec = grid_spec("acuerdo", 3, window=32).replace(duration_ms=200.0)
    p = fig9_point(spec, min_completions=150, record_count=500)
    assert p.ops_per_sec > 10_000  # RDMA KV should be deep into 10^4+


def test_table1_returns_durations():
    durations = elections(election_spec(3, kills=1, kill_period_ms=2.0),
                          kills=1)
    assert len(durations) >= 1
    assert all(0 < d < 50 for d in durations)  # milliseconds


def test_render_table_formats():
    out = render_table("T", ["a", "bb"], [[1, 2.5], [10_000, float("nan")]])
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "10,000" in out and "nan" in out


def test_render_series_formats():
    out = render_series("S", {"sys": [(1, 2.0), (2, 4.0)]}, "w", "lat")
    assert "sys" in out and "w -> lat" in out
