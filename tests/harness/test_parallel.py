"""run_points: parallel sweeps must be indistinguishable from sequential.

Every driver (Fig. 8/9, Table 1, benchmarks) now fans its points through
:func:`repro.harness.parallel.run_points`; these tests pin the contract
that makes that safe: submission-ordered collection, bit-identical
results and trace fingerprints at any worker count, and original
exceptions surfacing from crashed workers.

Worker functions live at module level so they pickle into pool workers.
"""

from __future__ import annotations

import pytest

from repro.harness.factory import build_from_spec, settle
from repro.harness.fig8 import point
from repro.harness.parallel import default_workers, run_points, WORKERS_ENV
from repro.harness.runspec import RunSpec
from repro.sim.engine import Engine, ms, us


def _fingerprint_point(name: str, seed: int, messages: int):
    """A small deterministic workload returning the full trace
    fingerprint (counters + sample digests + event count)."""
    engine = Engine(seed=seed)
    system = build_from_spec(RunSpec(system=name, n=3), engine)
    settle(system)
    state = {"submitted": 0}

    def pump():
        if state["submitted"] < messages:
            if system.submit(("m", state["submitted"]), 64):
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(10))
    delivered = tuple(sorted(system.deliveries.counts.items()))
    return (engine.trace.fingerprint(), delivered)


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 2:
        raise ValueError(f"point {x} exploded")
    return x


POINTS = [("acuerdo", 11, 8), ("acuerdo", 12, 8), ("zookeeper", 11, 6)]


def test_results_in_submission_order():
    assert run_points(_square, [(3,), (1,), (2,)], workers=2) == [9, 1, 4]


def test_bare_points_are_wrapped():
    assert run_points(_square, [3, 1, 2], workers=1) == [9, 1, 4]


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_matches_sequential_fingerprints(workers):
    seq = run_points(_fingerprint_point, POINTS, workers=1)
    par = run_points(_fingerprint_point, POINTS, workers=workers)
    assert par == seq


def test_parallel_matches_sequential_fig8_point():
    pts = [(RunSpec(system="acuerdo", n=3, payload_bytes=100, window=w,
                    seed=5), 60) for w in (1, 2, 4)]
    seq = run_points(point, pts, workers=1)
    par = run_points(point, pts, workers=2)
    assert par == seq


@pytest.mark.parametrize("workers", [1, 3])
def test_crashing_point_surfaces_original_exception(workers):
    with pytest.raises(ValueError, match="point 2 exploded"):
        run_points(_boom, [(1,), (2,), (3,), (4,)], workers=workers)


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert default_workers() == 3
    monkeypatch.delenv(WORKERS_ENV)
    assert default_workers() >= 1
