"""The adversarial scenario suite: classification, matrix, CLI."""

from __future__ import annotations

import json

import pytest

from repro.harness.adversary import (
    ADVERSARY_SYSTEMS,
    AttackOutcome,
    attack_matrix,
    classify,
    render_matrix,
    run_attack,
)
from repro.sim.byzantine import BYZ_MODES


class _FakeInjector:
    def __init__(self, attempts=0, landed=0, blocked=0):
        self.attempts = {"equivocate": attempts}
        self.landed = {"equivocate": landed}
        self.blocked = {"equivocate": blocked}


# ----------------------------------------------------------- classification


def test_classify_no_applicable_surface_is_na():
    assert classify(_FakeInjector(), "equivocate", 0) == "n/a"


def test_classify_violations_win():
    byz = _FakeInjector(attempts=3, landed=3)
    assert classify(byz, "equivocate", 2) == "detected"


def test_classify_all_blocked_is_neutralized():
    byz = _FakeInjector(attempts=3, blocked=3)
    assert classify(byz, "equivocate", 0) == "neutralized"


def test_classify_landed_but_clean_is_absorbed():
    byz = _FakeInjector(attempts=3, landed=3)
    assert classify(byz, "equivocate", 0) == "absorbed"


def test_classify_attempted_but_inert_is_no_effect():
    assert classify(_FakeInjector(attempts=3), "equivocate", 0) == "no-effect"


# ---------------------------------------------------------------- run_attack


def test_run_attack_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown attack mode"):
        run_attack("acuerdo", "lie")


def test_run_attack_no_protection_resolves_the_ablation_row():
    out = run_attack("acuerdo", "equivocate", n=4, seed=7, protection=False)
    assert out.system == "acuerdo-unprotected"
    assert out.outcome == "detected"


def test_outcome_to_dict_is_json_serialisable():
    out = run_attack("zookeeper", "equivocate", n=4, seed=7)
    d = out.to_dict()
    assert d["system"] == "zookeeper" and d["mode"] == "equivocate"
    assert isinstance(d["by_monitor"], dict)
    json.dumps(d)                           # round-trips to JSON


# -------------------------------------------------------------- the matrix


def test_attack_matrix_covers_the_product_and_renders():
    systems = ("acuerdo", "bracha")
    modes = ("equivocate", "replay_sst")
    outcomes = attack_matrix(systems, modes, n=4, seed=7)
    assert [(o.system, o.mode) for o in outcomes] == [
        (s, m) for s in systems for m in modes]
    # The two headline cells of the suite:
    cell = {(o.system, o.mode): o for o in outcomes}
    assert cell[("acuerdo", "replay_sst")].outcome == "neutralized"
    assert cell[("bracha", "equivocate")].outcome == "absorbed"
    assert cell[("bracha", "equivocate")].violations == 0
    text = render_matrix(outcomes)
    lines = text.splitlines()
    assert lines[0].startswith("system")
    assert any(line.startswith("acuerdo") and "neutralized" in line
               for line in lines)
    assert any(line.startswith("bracha") and "absorbed" in line
               for line in lines)


def test_adversary_systems_include_the_ablation_and_the_bft_baselines():
    assert "acuerdo-unprotected" in ADVERSARY_SYSTEMS
    assert "dolev" in ADVERSARY_SYSTEMS and "bracha" in ADVERSARY_SYSTEMS


def test_attack_outcome_is_frozen():
    out = AttackOutcome(system="x", mode="equivocate", attacker=0,
                        outcome="n/a", attempts=0, landed=0, blocked=0,
                        violations=0)
    with pytest.raises(Exception):
        out.system = "y"


# --------------------------------------------------------------------- CLI


def test_cli_adversary_json_single_cell(capsys):
    from repro.__main__ import main

    rc = main(["adversary", "--systems", "bracha", "--modes", "equivocate",
               "--nodes", "4", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc) == 1
    assert doc[0]["system"] == "bracha"
    assert doc[0]["outcome"] == "absorbed"
    assert doc[0]["violations"] == 0


def test_cli_adversary_matrix_table(capsys):
    from repro.__main__ import main

    rc = main(["--seed", "7", "adversary", "--systems", "zookeeper",
               "--modes", "equivocate", "--matrix"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "WITNESS zookeeper/equivocate" in out
    assert "two leaders for term" in out


def test_cli_adversary_rejects_unknown_mode(capsys):
    from repro.__main__ import main

    rc = main(["adversary", "--modes", "lie"])
    assert rc == 2
    assert "unknown attack mode" in capsys.readouterr().err


def test_cli_shootout_byz_flag_fails_exit_code_on_detection(capsys):
    from repro.__main__ import main

    rc = main(["shootout", "--systems", "zookeeper", "--nodes", "4",
               "--messages", "40", "--check-invariants",
               "--byz", "equivocate:1@1"])
    assert rc == 1
    assert "VIOLATION" in capsys.readouterr().err


def test_cli_shootout_partition_flag_applies(capsys):
    from repro.__main__ import main

    rc = main(["shootout", "--systems", "acuerdo", "--messages", "40",
               "--check-invariants", "--partition", "0,1|2@1-4"])
    assert rc == 0                          # quorum holds; no violation


def test_every_mode_is_spellable_from_the_cli():
    from repro.sim.failure import parse_byz

    for mode in BYZ_MODES:
        assert parse_byz(f"{mode}:1@2")[0] == mode
