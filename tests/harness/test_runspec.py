"""Tests for the unified RunSpec harness API."""

import pickle

import pytest

from repro.harness import RunSpec, WORKLOADS
from repro.obs.spans import SpanRecorder


def test_defaults_are_valid():
    spec = RunSpec()
    assert spec.system == "acuerdo"
    assert spec.resolved_backend == "rdma"
    assert spec.workload in WORKLOADS


def test_unknown_system_rejected():
    with pytest.raises(ValueError, match="unknown system"):
        RunSpec(system="pbft")


def test_backend_is_an_assertion_not_an_override():
    assert RunSpec(system="zookeeper", backend="tcp").resolved_backend == "tcp"
    with pytest.raises(ValueError, match="runs over"):
        RunSpec(system="zookeeper", backend="rdma")


def test_numeric_and_workload_validation():
    with pytest.raises(ValueError):
        RunSpec(workload="twitter")
    with pytest.raises(ValueError):
        RunSpec(n=0)
    with pytest.raises(ValueError):
        RunSpec(payload_bytes=0)
    with pytest.raises(ValueError):
        RunSpec(window=0)
    with pytest.raises(ValueError):
        RunSpec(duration_ms=0)
    with pytest.raises(ValueError):
        RunSpec(workers=0)


def test_frozen_and_hashable():
    spec = RunSpec()
    with pytest.raises(Exception):
        spec.window = 16
    assert spec == RunSpec()
    assert hash(spec) == hash(RunSpec())


def test_replace_revalidates():
    spec = RunSpec(window=8)
    assert spec.replace(window=32).window == 32
    assert spec.replace(window=32) != spec
    with pytest.raises(ValueError):
        spec.replace(window=0)


def test_round_trip_dict():
    spec = RunSpec(system="apus", payload_bytes=100, seed=9,
                   workload="openloop")
    data = spec.to_dict()
    assert data["system"] == "apus"
    assert RunSpec.from_dict(data) == spec
    with pytest.raises(ValueError, match="unknown RunSpec fields"):
        RunSpec.from_dict({**data, "frobnicate": 1})


def test_picklable_for_process_pools():
    spec = RunSpec(system="etcd", seed=4)
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_make_engine_capture_gate():
    plain = RunSpec(seed=7).make_engine()
    assert plain.obs is None
    traced = RunSpec(seed=7, capture_spans=True).make_engine()
    assert isinstance(traced.obs, SpanRecorder)
    assert traced.obs.tracer is traced.trace


def test_retired_keyword_entry_points_name_their_runspec_fields():
    """The PR-3 keyword signatures are gone: calling one raises a
    TypeError that tells the caller which RunSpec field replaces each
    keyword (so stale call sites self-diagnose)."""
    from repro.harness.factory import build_system
    from repro.harness.fig8 import fig8_point, fig8_sweep
    from repro.harness.fig9 import fig9_point
    from repro.harness.table1 import table1_elections

    for retired, fields in [
        (build_system, ["RunSpec.system", "RunSpec.n", "build_from_spec"]),
        (fig8_point, ["RunSpec.system", "RunSpec.payload_bytes",
                      "RunSpec.duration_ms"]),
        (fig8_sweep, ["RunSpec.system", "RunSpec.payload_bytes",
                      "RunSpec.workers"]),
        (fig9_point, ["RunSpec.system", "RunSpec.payload_bytes",
                      "RunSpec.duration_ms"]),
        (table1_elections, ["RunSpec", "duration_ms"]),
    ]:
        with pytest.raises(TypeError) as exc:
            retired("acuerdo", 3, 10)
        for field in fields:
            assert field in str(exc.value), (retired.__name__, field)


def test_shard_fields_default_to_single_group():
    spec = RunSpec()
    assert (spec.shards, spec.users, spec.skew, spec.arrival_rate) == \
        (1, 0, 0.0, 0.0)


def test_shard_fields_validate():
    import pytest

    with pytest.raises(ValueError):
        RunSpec(shards=0)
    with pytest.raises(ValueError):
        RunSpec(users=-1)
    with pytest.raises(ValueError):
        RunSpec(skew=1.0)
    with pytest.raises(ValueError):
        RunSpec(arrival_rate=-5.0)


def test_shard_fields_round_trip():
    spec = RunSpec(shards=8, users=100_000, skew=0.99, arrival_rate=5e5)
    assert RunSpec.from_dict(spec.to_dict()) == spec
