"""Tests for the metrics registry and the one-flat-dict contract.

Satellite of the observability PR: ``Tracer.summary()``,
``Substrate.counters()`` and ``publish_counters()`` must all return the
same flat ``dict[str, int | float]`` shape with dotted names, because
they all route through :class:`~repro.obs.metrics.MetricsRegistry`.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import Tracer


def test_record_and_snapshot_sorted():
    reg = MetricsRegistry()
    reg.record("b.two", 2)
    reg.record("a.one", 1.5)
    assert reg.snapshot() == {"a.one": 1.5, "b.two": 2}
    assert list(reg.snapshot()) == ["a.one", "b.two"]


def test_record_validates_names_and_values():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.record("", 1)
    with pytest.raises(ValueError):
        reg.record(None, 1)
    with pytest.raises(TypeError):
        reg.record("x", "not a number")
    with pytest.raises(TypeError):
        reg.record("x", True)  # bools are not metrics


def test_last_write_wins():
    reg = MetricsRegistry()
    reg.record("x", 1)
    reg.record("x", 7)
    assert reg["x"] == 7
    assert len(reg) == 1


def test_ingest_namespaced_prefixes_keys():
    reg = MetricsRegistry()
    reg.ingest_namespaced("substrate.rdma", {"tx_msgs": 3, "tx_bytes": 90})
    assert reg.snapshot() == {"substrate.rdma.tx_bytes": 90,
                              "substrate.rdma.tx_msgs": 3}


def test_ingest_tracer_counters_verbatim_samples_as_means():
    t = Tracer()
    t.count("acuerdo.commit", 5)
    t.sample("lat_ns", 10)
    t.sample("lat_ns", 30)
    reg = MetricsRegistry()
    reg.ingest_tracer(t)
    assert reg["acuerdo.commit"] == 5
    assert reg["lat_ns"] == 20.0


def test_snapshot_names_filter():
    reg = MetricsRegistry()
    reg.merge({"a": 1, "b": 2, "c": 3})
    assert reg.snapshot(names=["a", "c", "missing"]) == {"a": 1, "c": 3}


def test_publish_assigns_not_increments():
    reg = MetricsRegistry()
    reg.record("substrate.rdma.tx_msgs", 10)
    t = Tracer()
    reg.publish(t)
    reg.publish(t)  # re-publish must not double-count
    assert t.counters["substrate.rdma.tx_msgs"] == 10


def test_tracer_summary_routes_through_registry():
    t = Tracer()
    t.count("proto.commit", 4)
    t.sample("obs.delivery_latency_ns", 100)
    t.sample("obs.delivery_latency_ns", 200)
    s = t.summary()
    assert s == {"proto.commit": 4, "obs.delivery_latency_ns": 150.0}
    assert t.summary(names=["proto.commit"]) == {"proto.commit": 4}


def test_substrate_counters_share_the_flat_shape():
    """Substrate.counters() and Tracer.summary() agree on the shape:
    flat dotted names, int/float values, key-sorted."""
    from repro.harness import RunSpec, build_from_spec, settle

    spec = RunSpec(system="acuerdo", n=3, payload_bytes=10)
    system = build_from_spec(spec)
    settle(system)
    counters = system.substrate.counters()
    assert counters
    assert all(isinstance(k, str) and k.startswith("substrate.rdma.")
               for k in counters)
    assert all(isinstance(v, (int, float)) for v in counters.values())
    assert list(counters) == sorted(counters)

    published = system.substrate.publish_counters()
    assert published == counters
    summary = system.substrate.engine.trace.summary()
    for k, v in counters.items():
        assert summary[k] == v
