"""Unit tests for the span recorder (repro.obs.spans)."""

from repro.obs.spans import PHASES, SpanRecorder
from repro.sim.trace import Tracer


def _recorder():
    return SpanRecorder(tracer=Tracer())


def test_exact_sum_and_segment_order():
    rec = _recorder()
    payload = {"op": "put"}
    rec.begin(payload, 100)
    rec.mark(payload, "propose", 150)
    rec.mark(payload, "wire", 400)
    rec.mark(payload, "accept", 700)
    span = rec.finish(payload, 1000)
    assert span.start_ns == 100 and span.end_ns == 1000
    assert [s.phase for s in span.segments] == [
        "propose", "wire", "accept", "deliver"]
    assert sum(s.duration_ns for s in span.segments) == span.duration_ns
    # Segments tile the span contiguously.
    prev = span.start_ns
    for seg in span.segments:
        assert seg.start_ns == prev
        prev = seg.end_ns
    assert prev == span.end_ns


def test_earliest_mark_per_phase_wins():
    rec = _recorder()
    p = object()
    rec.begin(p, 0)
    rec.mark(p, "accept", 900)   # second replica
    rec.mark(p, "accept", 300)   # first replica — defines the phase
    span = rec.finish(p, 1000)
    assert span.phase_bounds("accept") == (0, 300)


def test_marks_clamped_into_span():
    rec = _recorder()
    p = object()
    rec.begin(p, 500)
    rec.mark(p, "propose", 100)    # before begin -> clamps to 500
    rec.mark(p, "commit", 99999)   # after finish -> clamps to end
    span = rec.finish(p, 800)
    assert span.phase_bounds("propose") == (500, 500)
    assert span.phase_bounds("commit") == (500, 800)
    assert sum(s.duration_ns for s in span.segments) == 300


def test_same_ns_marks_break_ties_in_phase_order():
    rec = _recorder()
    p = object()
    rec.begin(p, 0)
    # Reverse insertion order; canonical PHASES order must win the tie.
    rec.mark(p, "commit", 50)
    rec.mark(p, "accept", 50)
    rec.mark(p, "propose", 50)
    span = rec.finish(p, 60)
    phases = [s.phase for s in span.segments]
    assert phases == ["propose", "accept", "commit", "deliver"]


def test_bind_aliases_carrier_to_payload_span():
    rec = _recorder()
    payload, carrier = object(), object()
    rec.begin(payload, 0)
    rec.bind(carrier, payload)
    rec.mark(carrier, "nic_tx", 10)
    # finish() accepts the carrier too (record_delivery sees wire objects).
    span = rec.finish(carrier, 100)
    assert span is not None
    assert span.phase_bounds("nic_tx") == (0, 10)
    assert rec.open_spans == 0


def test_unbound_marks_and_double_finish_are_noops():
    rec = _recorder()
    rec.mark(object(), "wire", 10)          # never begun: dropped
    p = object()
    rec.begin(p, 0)
    rec.finish(p, 10)
    assert rec.finish(p, 20) is None        # already closed
    assert len(rec.messages) == 1


def test_rebegin_keeps_original_start():
    rec = _recorder()
    p = object()
    rec.begin(p, 100)
    rec.begin(p, 500)  # client retry of the same object
    span = rec.finish(p, 1000)
    assert span.start_ns == 100


def test_discard_unregisters_payload_and_carriers():
    rec = _recorder()
    payload, carrier = object(), object()
    rec.begin(payload, 0)
    rec.bind(carrier, payload)
    rec.discard(payload)
    assert rec.open_spans == 0
    assert rec.finish(carrier, 10) is None


def test_finish_samples_tracer():
    tracer = Tracer()
    rec = SpanRecorder(tracer=tracer)
    for i in range(3):
        p = object()
        rec.begin(p, 0)
        rec.finish(p, 100 * (i + 1))
    assert tracer.get("obs.messages_traced") == 3
    assert tracer.series("obs.delivery_latency_ns") == [100, 200, 300]
    assert [s.duration_ns for s in rec.messages] == [100, 200, 300]


def test_side_event_cap_counts_drops():
    rec = _recorder()
    rec.MAX_SIDE_EVENTS = 2
    for i in range(4):
        rec.nic_tx(0, "data", i, i + 1, 64)
    assert len(rec.nic_events) == 2
    assert rec.dropped_side_events == 2


def test_phase_means_averages_across_spans():
    rec = _recorder()
    for end in (100, 300):
        p = object()
        rec.begin(p, 0)
        rec.mark(p, "propose", 50)
        rec.finish(p, end)
    means = rec.phase_means()
    assert means["propose"] == 50.0
    assert means["deliver"] == ((100 - 50) + (300 - 50)) / 2


def test_phases_cover_the_critical_path_in_order():
    # The canonical order the exact-sum segmentation sorts ties by.
    assert PHASES[0] == "submit"
    assert PHASES[-1] == "deliver"
    for p in ("propose", "nic_tx", "wire", "deposit", "poll_notice",
              "accept", "quorum", "commit"):
        assert p in PHASES
