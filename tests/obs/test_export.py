"""Exporter tests: golden Chrome-trace file, validators, CLI shim."""

import json
import pathlib

import pytest

from repro.obs.export import (CHROME_SCHEMA, TIMELINE_SCHEMA, chrome_trace,
                              timeline, validate_chrome_trace, validate_file,
                              validate_timeline)
from repro.obs.spans import SpanRecorder

GOLDEN = pathlib.Path(__file__).parent / "golden" / "chrome_small.json"


def small_recorder() -> SpanRecorder:
    """A tiny, fully deterministic capture: two messages, one NIC
    interval, one process deschedule.  Regenerate the golden file with::

        PYTHONPATH=src:tests python -c \
            "from obs.test_export import regenerate; regenerate()"
    """
    rec = SpanRecorder()
    a, b = ("msg", 0), ("msg", 1)
    rec.begin(a, 100, label="probe.0")
    rec.mark(a, "propose", 150)
    rec.mark(a, "wire", 800)
    rec.mark(a, "accept", 1500)
    rec.mark(a, "commit", 2600)
    rec.finish(a, 3000)
    rec.begin(b, 2000, label="probe.1")
    rec.mark(b, "propose", 2100)
    rec.finish(b, 4500)
    rec.nic_tx(0, "data", 200, 760, 128)
    rec.process_event("deschedule", "node1", 1000, 1200)
    return rec


def regenerate() -> None:  # pragma: no cover - manual maintenance hook
    doc = chrome_trace(small_recorder(), metadata={"purpose": "golden"})
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def test_chrome_export_matches_golden_file():
    doc = chrome_trace(small_recorder(), metadata={"purpose": "golden"})
    assert GOLDEN.exists(), "golden file missing — run regenerate()"
    assert json.loads(GOLDEN.read_text()) == json.loads(
        json.dumps(doc, sort_keys=True))


def test_chrome_export_is_valid_and_carries_exact_ns():
    doc = chrome_trace(small_recorder())
    validate_chrome_trace(doc)
    assert doc["schema"] == CHROME_SCHEMA
    xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    for ev in xs:
        # Float µs timestamps are lossy; the integer ns in args are not.
        assert ev["ts"] == ev["args"]["start_ns"] / 1000.0
        assert isinstance(ev["args"]["start_ns"], int)
        assert isinstance(ev["args"]["dur_ns"], int)
    spans = {e["args"]["msg_id"]: e["args"]["dur_ns"]
             for e in xs if e.get("cat") == "message"}
    assert spans == {0: 2900, 1: 2500}


def test_timeline_export_is_valid_and_contiguous():
    rec = small_recorder()
    doc = timeline(rec, metrics={"x": 1}, metadata={"seed": 7})
    validate_timeline(doc)
    assert doc["schema"] == TIMELINE_SCHEMA
    assert doc["metrics"] == {"x": 1}
    assert doc["metadata"] == {"seed": 7}
    m0 = doc["messages"][0]
    assert m0["label"] == "probe.0"
    assert [s["phase"] for s in m0["segments"]] == [
        "propose", "wire", "accept", "commit", "deliver"]
    assert sum(s["duration_ns"] for s in m0["segments"]) == m0["duration_ns"]


def test_validators_reject_broken_sums():
    doc = chrome_trace(small_recorder())
    for ev in doc["traceEvents"]:
        if ev.get("cat") == "phase":
            ev["args"]["dur_ns"] += 1  # break the exact-sum invariant
            break
    with pytest.raises(ValueError, match="segments sum"):
        validate_chrome_trace(doc)

    tdoc = timeline(small_recorder())
    tdoc["messages"][0]["segments"][0]["duration_ns"] += 1
    with pytest.raises(ValueError, match="segments sum"):
        validate_timeline(tdoc)


def test_validators_reject_wrong_schema():
    with pytest.raises(ValueError, match="schema"):
        validate_chrome_trace({"schema": "bogus", "traceEvents": []})
    with pytest.raises(ValueError, match="schema"):
        validate_timeline({"schema": "bogus", "messages": []})


def test_validate_file_round_trip(tmp_path):
    doc = chrome_trace(small_recorder())
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(doc))
    assert "valid repro.obs.chrome/v1 (2 message spans)" in validate_file(str(path))

    tpath = tmp_path / "timeline.json"
    tpath.write_text(json.dumps(timeline(small_recorder())))
    assert "valid repro.obs.timeline/v1 (2 message spans)" in validate_file(str(tpath))

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(ValueError, match="unknown schema"):
        validate_file(str(bad))
