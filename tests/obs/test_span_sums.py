"""Property test: span children sum exactly to the delivery latency.

For every §4 system (and the DARE/Mu extensions), a captured run must
produce message spans whose phase-segment durations sum — in integer
sim-ns, exact equality — to the span duration, which is itself the
value sampled into the tracer as ``obs.delivery_latency_ns``.  Both
exporters must validate the same documents.
"""

import pytest

from repro.harness import RunSpec
from repro.harness.factory import EXTENSION_SYSTEMS, SYSTEMS
from repro.obs import capture_run, validate_chrome_trace, validate_timeline

ALL_SYSTEMS = SYSTEMS + EXTENSION_SYSTEMS


@pytest.fixture(scope="module")
def captures():
    out = {}
    for name in ALL_SYSTEMS:
        spec = RunSpec(system=name, n=3, payload_bytes=32, window=4,
                       duration_ms=4.0, seed=2, capture_spans=True)
        out[name] = capture_run(spec, min_completions=40)
    return out


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_children_sum_exactly_to_span(captures, name):
    res = captures[name]
    assert res.messages, f"{name}: no spans captured"
    for span in res.messages:
        child_sum = sum(seg.duration_ns for seg in span.segments)
        assert child_sum == span.duration_ns == span.end_ns - span.start_ns
        prev = span.start_ns
        for seg in span.segments:
            assert seg.start_ns == prev, f"{name}: gap in span {span.msg_id}"
            prev = seg.end_ns


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_span_durations_are_the_latency_samples(captures, name):
    res = captures[name]
    tracer = res.recorder.tracer
    samples = tracer.series("obs.delivery_latency_ns")
    assert samples == [s.duration_ns for s in res.messages]
    assert tracer.get("obs.messages_traced") == len(res.messages)


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_exports_validate(captures, name):
    res = captures[name]
    validate_chrome_trace(res.chrome())
    validate_timeline(res.timeline())


def test_rdma_systems_trace_substrate_phases(captures):
    """Acuerdo spans must resolve the substrate-level phases, not just
    protocol milestones — that is the point of the span tree."""
    phases = set()
    for span in captures["acuerdo"].messages:
        phases.update(seg.phase for seg in span.segments)
    for expected in ("propose", "nic_tx", "wire", "deposit", "poll_notice",
                     "accept", "commit", "deliver"):
        assert expected in phases, f"acuerdo spans never hit {expected}"


def test_metrics_fold_tracer_and_substrate(captures):
    snap = captures["acuerdo"].metrics.snapshot()
    assert "obs.messages_traced" in snap
    assert "obs.delivery_latency_ns" in snap
    assert any(k.startswith("substrate.rdma.") for k in snap)
