"""Poll elision must be invisible: parked runs are bit-identical.

The doorbell/parking machinery fast-forwards idle poll loops, but every
virtual poll tick draws the same jitter from the same RNG stream as the
real schedule would, so the observable run — trace fingerprint, delivery
order and timing, tracer summary — must be *identical* with parking on
(the default) and off (``REPRO_PARK=0``).  Executed events, the host-cost
proxy, are the only thing allowed to change, and only downward.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.factory import build_from_spec, settle
from repro.harness.runspec import RunSpec
from repro.sim.engine import Engine, ms, us
from tests.substrate.test_golden_fingerprints import GOLDEN_FINGERPRINTS

SYSTEMS = sorted(GOLDEN_FINGERPRINTS)


def run_observed(name, n=3, seed=7, messages=24):
    """The golden-fingerprint workload, with delivery latencies and the
    tracer summary captured alongside the fingerprint."""
    engine = Engine(seed=seed)
    system = build_from_spec(RunSpec(system=name, n=n), engine)
    settle(system)
    state = {"submitted": 0}
    submit_ns: dict = {}
    deliveries: list = []

    system.delivery_listeners.append(
        lambda node_id, payload: deliveries.append((node_id, payload, engine.now)))

    def pump():
        if state["submitted"] < messages:
            payload = ("m", state["submitted"])
            if system.submit(payload, 64):
                submit_ns[payload] = engine.now
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(30))
    latencies = tuple((node, payload, t - submit_ns[payload])
                      for node, payload, t in deliveries if payload in submit_ns)
    observed = (
        engine.trace.fingerprint(),
        tuple(sorted(system.deliveries.counts.items())),
        system.leader_id(),
        latencies,
        tuple(sorted(engine.trace.summary().items())),
    )
    return observed, engine.events_executed


def run_with_park(flag, name):
    prior = os.environ.get("REPRO_PARK")
    os.environ["REPRO_PARK"] = flag
    try:
        return run_observed(name)
    finally:
        if prior is None:
            os.environ.pop("REPRO_PARK", None)
        else:
            os.environ["REPRO_PARK"] = prior


@pytest.mark.parametrize("name", SYSTEMS)
def test_parked_run_is_bit_identical(name):
    parked, parked_events = run_with_park("1", name)
    unparked, unparked_events = run_with_park("0", name)
    assert parked == unparked
    # Parking may only remove events, never add or reorder them.
    assert parked_events <= unparked_events


def test_parking_elides_events_overall():
    """Across the whole suite the elision must actually bite (a single
    protocol may be too busy to park much, but not all of them)."""
    totals = {"1": 0, "0": 0}
    for name in SYSTEMS:
        for flag in totals:
            totals[flag] += run_with_park(flag, name)[1]
    assert totals["1"] < totals["0"]
