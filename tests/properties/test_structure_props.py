"""Property-based tests for core data structures (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core import Epoch, Message, MessageLog, MsgHdr, Vote
from repro.core.election import decide_vote, max_vote, new_bigger_epoch, won_election, \
    VoteDecision
from repro.core.types import VOTE_ZERO

epochs = st.builds(Epoch, st.integers(0, 5), st.integers(0, 6))
hdrs = st.builds(MsgHdr, epochs, st.integers(0, 50))
votes = st.builds(Vote, epochs, hdrs)


# ---------------------------------------------------------------- orderings

@given(hdrs, hdrs, hdrs)
def test_header_order_is_total_and_transitive(a, b, c):
    assert (a < b) or (b < a) or (a == b)
    if a < b and b < c:
        assert a < c


@given(hdrs)
def test_header_next_strictly_increases_within_epoch(h):
    n = h.next()
    assert n > h
    assert n.e == h.e


@given(epochs, epochs, st.integers(0, 6))
def test_new_bigger_epoch_dominates_both_inputs(e_new, seen, self_id):
    e = new_bigger_epoch(e_new, seen, self_id)
    assert e > e_new and e > seen
    assert e.leader == self_id


# ------------------------------------------------------------- message log

@given(st.lists(st.tuples(hdrs, st.text(max_size=3)), max_size=40))
def test_log_headers_always_sorted_and_lookup_consistent(entries):
    log = MessageLog()
    model: dict[MsgHdr, str] = {}
    for hdr, payload in entries:
        log.insert(Message(hdr, payload, 10))
        model[hdr] = payload
    assert log.headers() == sorted(model)
    for hdr, payload in model.items():
        assert log.get(hdr).payload == payload
    assert len(log) == len(model)


@given(st.lists(hdrs, unique=True, max_size=30), hdrs)
def test_log_truncate_matches_model(headers, cut):
    log = MessageLog()
    for h in headers:
        log.insert(Message(h, "p", 10))
    removed = log.truncate_from(cut)
    assert sorted(m.hdr for m in removed) == sorted(h for h in headers if h >= cut)
    assert log.headers() == sorted(h for h in headers if h < cut)


@given(st.lists(hdrs, unique=True, max_size=30), hdrs, hdrs)
def test_log_range_matches_model(headers, lo, hi):
    log = MessageLog()
    for h in headers:
        log.insert(Message(h, "p", 10))
    got = [m.hdr for m in log.range(lo, hi)]
    assert got == sorted(h for h in headers if lo < h <= hi)


@given(st.lists(hdrs, unique=True, max_size=30), hdrs)
def test_log_trim_below_keeps_suffix(headers, cut):
    log = MessageLog()
    for h in headers:
        log.insert(Message(h, "p", 10))
    log.trim_below(cut)
    assert log.headers() == sorted(h for h in headers if h >= cut)


# --------------------------------------------------------------- elections

@given(st.dictionaries(st.integers(0, 6), votes, max_size=7))
def test_max_vote_is_an_upper_bound(table)  :
    mx = max_vote(table)
    for v in table.values():
        assert v <= mx


@given(st.integers(0, 6), votes, epochs, hdrs,
       st.dictionaries(st.integers(0, 6), votes, max_size=7),
       st.booleans())
def test_decide_vote_never_decreases_own_vote(self_id, own, e_new, accepted,
                                              table, timed_out):
    action = decide_vote(self_id, own, e_new, accepted, table, timed_out)
    if action.decision is VoteDecision.VOTE_SELF:
        # Self-votes strictly exceed both own vote and the visible max.
        assert action.new_vote.e_new > e_new or action.new_vote > own
        assert action.new_vote.e_new.leader == self_id
    elif action.decision is VoteDecision.JOIN_MAX:
        assert action.new_vote > own
        # Joining requires the candidate to subsume our state.
        assert accepted <= action.new_vote.acpt


@given(st.dictionaries(st.integers(0, 8), votes, min_size=1, max_size=9),
       st.integers(0, 8))
def test_winner_dominates_agreeing_voters(table, self_id):
    own = table.get(self_id, VOTE_ZERO)
    quorum = len(table) // 2 + 1
    if won_election(self_id, table, own, quorum):
        # Everyone whose row equals the winning vote voted for self_id
        # with the winner's accepted header — by construction at least
        # as large as what rule 2 allowed them to join with.
        assert own.e_new.leader == self_id
        agreeing = [k for k, v in table.items() if v == own]
        assert len(agreeing) >= quorum


@settings(max_examples=30)
@given(st.lists(hdrs, min_size=3, max_size=5),
       st.integers(0, 100))
def test_synchronous_election_converges_and_winner_is_up_to_date(accepted_list, _salt):
    """Fixed-point convergence on arbitrary accepted-state vectors."""
    n = len(accepted_list)
    accepted = dict(enumerate(accepted_list))
    table = {i: VOTE_ZERO for i in range(n)}
    e_new = {i: Epoch(0, 0) for i in range(n)}
    for round_no in range(40):
        changed = False
        for i in range(n):
            a = decide_vote(i, table[i], e_new[i], accepted[i], dict(table),
                            timed_out=(round_no == 0))
            if a.decision is not VoteDecision.HOLD and a.new_vote != table[i]:
                table[i] = a.new_vote
                e_new[i] = a.new_e_new
                changed = True
        if not changed:
            break
    assert not changed, "election must converge"
    quorum = n // 2 + 1
    winners = [i for i in range(n) if won_election(i, table, table[i], quorum)]
    assert len(winners) == 1
    w = winners[0]
    voters = [i for i in range(n) if table[i] == table[w]]
    for v in voters:
        assert accepted[w] >= accepted[v], "up-to-date property violated"
