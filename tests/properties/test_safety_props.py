"""End-to-end atomic-broadcast safety under randomized failure schedules.

For Acuerdo and for each baseline, hypothesis generates workloads and
failure schedules (crash timings, deschedules, slow nodes) and asserts
the §2.2 properties over the delivered sequences:

- Integrity: nothing delivered that was not broadcast;
- No Duplication: no payload delivered twice at one node;
- Total Order: all per-node sequences are prefix-related.

Liveness is NOT asserted under arbitrary schedules (a majority crash
legitimately halts progress); safety must hold regardless.
"""

from hypothesis import given, settings, strategies as st

from repro.core import AcuerdoCluster
from repro.harness.factory import build_from_spec
from repro.harness.runspec import RunSpec
from repro.sim import Engine, ms, us


def _run_schedule(system_name: str, n: int, seed: int, crashes: list[int],
                  deschedules: list[tuple[int, int]], msgs: int,
                  horizon_ms: int) -> object:
    engine = Engine(seed=seed)
    system = build_from_spec(RunSpec(system=system_name, n=n), engine,
                             record_deliveries=True)
    if isinstance(system, AcuerdoCluster):
        system.preseed_leader(0)
    system.start()
    engine.run(until=ms(1))

    # Failure schedule: crash at most f nodes, spread over the run.
    f = (n - 1) // 2
    for k, victim in enumerate(crashes[:f]):
        engine.schedule_at(ms(2 + 3 * k), system.crash, victim % n)
    for k, (victim, dur_us) in enumerate(deschedules[:3]):
        procs = system.processes()
        p = procs[victim % len(procs)]
        engine.schedule_at(ms(1 + k), p.deschedule, us(50 + dur_us % 2000))

    def feed(i=0):
        if i >= msgs:
            return
        system.submit(("p", i), 10)
        engine.schedule(us(20), feed, i + 1)

    feed()
    engine.run(until=ms(horizon_ms))
    return system


def _assert_safety(system, msgs: int) -> None:
    system.deliveries.check_total_order()
    system.deliveries.check_no_duplication()
    system.deliveries.check_integrity({("p", i) for i in range(msgs)})


schedule = st.tuples(
    st.integers(0, 2**16),                                   # seed
    st.lists(st.integers(0, 8), max_size=2),                 # crash victims
    st.lists(st.tuples(st.integers(0, 8), st.integers(0, 2000)), max_size=3),
)


@settings(max_examples=20, deadline=None)
@given(schedule)
def test_acuerdo_safety_under_failures(sched):
    seed, crashes, deschedules = sched
    system = _run_schedule("acuerdo", 5, seed, crashes, deschedules,
                           msgs=40, horizon_ms=15)
    _assert_safety(system, 40)


@settings(max_examples=10, deadline=None)
@given(schedule)
def test_derecho_safety_under_failures(sched):
    seed, crashes, deschedules = sched
    system = _run_schedule("derecho-leader", 3, seed, crashes[:1], deschedules,
                           msgs=30, horizon_ms=15)
    _assert_safety(system, 30)


@settings(max_examples=10, deadline=None)
@given(schedule)
def test_apus_safety_under_failures(sched):
    seed, crashes, deschedules = sched
    system = _run_schedule("apus", 3, seed, crashes[:1], deschedules,
                           msgs=30, horizon_ms=15)
    _assert_safety(system, 30)


@settings(max_examples=8, deadline=None)
@given(schedule)
def test_zab_safety_under_failures(sched):
    seed, crashes, deschedules = sched
    system = _run_schedule("zookeeper", 3, seed, crashes[:1], deschedules,
                           msgs=20, horizon_ms=80)
    _assert_safety(system, 20)


@settings(max_examples=8, deadline=None)
@given(schedule)
def test_raft_safety_under_failures(sched):
    seed, crashes, deschedules = sched
    system = _run_schedule("etcd", 3, seed, crashes[:1], deschedules,
                           msgs=15, horizon_ms=120)
    _assert_safety(system, 15)


@settings(max_examples=8, deadline=None)
@given(schedule)
def test_paxos_safety_under_failures(sched):
    seed, crashes, deschedules = sched
    system = _run_schedule("libpaxos", 3, seed, crashes[:1], deschedules,
                           msgs=25, horizon_ms=60)
    _assert_safety(system, 25)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 2**16), st.lists(st.integers(0, 8), max_size=2))
def test_acuerdo_liveness_with_quorum(seed, crashes):
    """When at most f nodes crash and the rest run, committed messages
    keep flowing after fail-over (liveness under the paper's fault
    model)."""
    system = _run_schedule("acuerdo", 5, seed, crashes, [], msgs=40,
                           horizon_ms=25)
    live = [p.node_id for p in system.processes() if not p.crashed]
    assert len(live) >= 3
    delivered = max(system.deliveries.delivered_count(i) for i in live)
    assert delivered >= 35  # open-loop drops during elections tolerated
