"""Property-based tests for the RDMA substrate invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.rdma import RdmaFabric, RdmaParams, RingBuffer, SharedStateTable
from repro.sim import Engine


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 200), st.floats(0.0, 0.4), st.integers(0, 2**16))
def test_qp_fifo_exactly_once_under_loss(count, loss, seed):
    """Reliable connection: every write delivered exactly once, in order,
    for any loss rate."""
    e = Engine(seed=seed)
    fab = RdmaFabric(e, [0, 1], RdmaParams(loss_prob=loss))
    seen = []
    reg = fab.register(1, "r", 1 << 16, on_write=lambda k, v, s: seen.append(k))
    for i in range(count):
        fab.write(0, 1, reg, reg.grant(), i, None, 10)
    e.run()
    assert seen == list(range(count))


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 64), st.lists(st.integers(0, 63), max_size=80),
       st.integers(0, 2**16))
def test_ring_conservation_and_order(capacity, release_marks, seed):
    """Ring buffer: receivers see a prefix of the send sequence, in
    order, and the sender never exceeds capacity minus releases."""
    e = Engine(seed=seed)
    fab = RdmaFabric(e, [0, 1])
    ring = RingBuffer(fab, 0, [0, 1], capacity=capacity)
    sent = []
    marks = iter(release_marks)
    for step in range(80):
        seq = ring.try_send(step, 10)
        if seq is not None:
            sent.append(step)
        else:
            # Stalled: release per the scripted marks (may not help).
            m = next(marks, None)
            if m is None:
                break
            ring.mark_released(0, m)
            ring.mark_released(1, m)
        assert 0 <= ring.free_slots() <= capacity
    e.run()
    got = [p for _seq, p in ring.receiver(1).poll()]
    assert got == sent  # exact prefix, in order, nothing lost or duplicated


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=60),
       st.integers(0, 2**16))
def test_sst_reader_sees_monotone_prefix_of_monotone_writer(values, seed):
    """If the writer's row only increases, no reader ever observes it
    decrease — the §3.2 cumulative-acknowledgment invariant."""
    e = Engine(seed=seed)
    fab = RdmaFabric(e, [0, 1, 2])
    sst = SharedStateTable(fab, "m", [0, 1, 2], initial=-1)
    running_max = -1
    observed = []

    def observe():
        observed.append(sst.read(2, 0))
        if e.pending:
            e.schedule(137, observe)

    e.schedule(0, observe)
    for v in values:
        running_max = max(running_max, v)
        sst.set_and_push(0, running_max)
        e.run(until=e.now + 211)
    e.run()
    assert observed == sorted(observed)
    assert sst.read(1, 0) == running_max
    assert sst.read(2, 0) == running_max


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 400), st.integers(1, 1000), st.integers(0, 2**16))
def test_selective_signaling_retires_all_wqes(count, interval, seed):
    """Any signaling cadence with a trailing signaled write retires every
    WQE once completions drain."""
    e = Engine(seed=seed)
    fab = RdmaFabric(e, [0, 1], RdmaParams(max_send_queue=1 << 16))
    reg = fab.register(1, "r", 1 << 16, on_write=lambda k, v, s: None)
    rkey = reg.grant()
    for i in range(count):
        fab.write(0, 1, reg, rkey, i, None, 10,
                  signaled=(i % interval == interval - 1 or i == count - 1))
    e.run()
    assert fab.qp(0, 1).outstanding == 0
    assert reg.writes_received == count
