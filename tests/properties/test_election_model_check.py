"""Exhaustive model checking of the election fixed point (Fig. 7).

The hypothesis tests sample random schedules; these tests *enumerate*
every reachable state of a small abstract model and verify the paper's
claims about the election on all of them:

- **Termination / no livelock** (§3.3: "This algorithm terminates
  provided all non-failed nodes continue to respond"): from every
  reachable state, the fixed point is reached within a bounded number
  of steps.
- **Agreement**: at most one node can ever satisfy the win predicate
  for a given final vote table.
- **Up-to-date property**: whenever a node wins, its accepted header
  dominates every voter in its quorum — under *every* possible
  interleaving of vote steps and every pattern of stale vote views.

Model: n nodes, each with a fixed accepted header.  A step picks one
node, shows it a (possibly stale) view of the vote table — any subset
of other nodes' current votes may be hidden — and applies the paper's
vote rules.  This over-approximates SST propagation delay: a node may
act on arbitrarily old information, which is exactly what one-sided
overwriting rows permit.

Epoch rounds are bounded (the timeout branch could otherwise raise
epochs forever, as repeated timeouts can in reality), making this
*bounded* model checking: the safety invariants are verified on every
state reachable within the round budget.
"""

from __future__ import annotations

import itertools

from repro.core.election import VoteDecision, decide_vote, won_election
from repro.core.types import Epoch, MsgHdr, Vote, VOTE_ZERO

E, H = Epoch, MsgHdr


def _explore(accepted: dict[int, Vote], max_states: int = 200_000,
             max_round: int = 2) -> tuple[int, int]:
    """BFS over all interleavings with stale views; returns
    (states explored, wins observed) and asserts the invariants.
    Transitions that would push an epoch round past ``max_round`` are
    pruned (bounded model checking)."""
    n = len(accepted)
    quorum = n // 2 + 1
    init = tuple(VOTE_ZERO for _ in range(n))
    init_e_new = tuple(E(0, 0) for _ in range(n))
    seen = {(init, init_e_new)}
    frontier = [(init, init_e_new)]
    wins = 0
    while frontier:
        assert len(seen) < max_states, "state space blew up: no fixed point?"
        votes, e_news = frontier.pop()
        table = dict(enumerate(votes))
        # Check win predicate + up-to-date at this state.
        winners = [i for i in range(n)
                   if won_election(i, table, votes[i], quorum)]
        assert len(winners) <= 1, (votes, winners)
        for w in winners:
            wins += 1
            voters = [i for i in range(n) if votes[i] == votes[w]]
            assert len(voters) >= quorum
            for v in voters:
                assert accepted[w] >= accepted[v], \
                    f"up-to-date violated: winner {w} behind voter {v}"
        # Expand: each node, acting on each possible stale view.
        for i in range(n):
            others = [j for j in range(n) if j != i]
            for hidden in itertools.chain.from_iterable(
                    itertools.combinations(others, k) for k in range(len(others) + 1)):
                view = {j: (VOTE_ZERO if j in hidden else votes[j])
                        for j in range(n)}
                # timed_out=True covers the self-vote branch; False the
                # join branch — explore both.
                for timed_out in (False, True):
                    a = decide_vote(i, votes[i], e_news[i], accepted[i],
                                    view, timed_out)
                    if a.decision is VoteDecision.HOLD or a.new_vote == votes[i]:
                        continue
                    if a.new_vote.e_new.round > max_round:
                        continue  # round budget: bounded exploration
                    nv = list(votes)
                    ne = list(e_news)
                    nv[i] = a.new_vote
                    ne[i] = a.new_e_new
                    state = (tuple(nv), tuple(ne))
                    if state not in seen:
                        seen.add(state)
                        frontier.append(state)
    return len(seen), wins


def _acc(*cnts: int) -> dict[int, MsgHdr]:
    e = E(0, 9)
    return {i: H(e, c) for i, c in enumerate(cnts)}


def test_three_nodes_equal_logs():
    states, wins = _explore(_acc(5, 5, 5))
    assert wins > 0  # some interleavings do produce a winner


def test_three_nodes_distinct_logs():
    states, wins = _explore(_acc(1, 7, 4))
    assert wins > 0


def test_three_nodes_one_empty_log():
    _explore(_acc(0, 0, 9))


def test_three_nodes_adversarial_tie_breaking():
    # Two equally up-to-date nodes, one behind: every interleaving must
    # keep the up-to-date property even with maximally stale views.
    _explore(_acc(6, 6, 2))


def test_bounded_rounds_under_fair_scheduling():
    """Fair synchronous rounds (fresh views, everyone steps) must reach
    a winner quickly for every permutation of accepted states."""
    for perm in itertools.permutations([2, 5, 8]):
        accepted = _acc(*perm)
        votes = {i: VOTE_ZERO for i in range(3)}
        e_news = {i: E(0, 0) for i in range(3)}
        for round_no in range(25):
            changed = False
            for i in range(3):
                a = decide_vote(i, votes[i], e_news[i], accepted[i],
                                dict(votes), timed_out=(round_no == 0))
                if a.decision is not VoteDecision.HOLD and a.new_vote != votes[i]:
                    votes[i], e_news[i] = a.new_vote, a.new_e_new
                    changed = True
            if not changed:
                break
        assert not changed, f"no convergence for {perm}"
        winners = [i for i in range(3) if won_election(i, votes, votes[i], 2)]
        assert len(winners) == 1
        # The most up-to-date node must be the winner under fairness.
        assert accepted[winners[0]] == max(accepted.values())
