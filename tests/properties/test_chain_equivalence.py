"""Macro-event fusion must be invisible: fused runs are bit-identical.

Compiled event chains collapse a fan-out's (or an arrival batch's) N
heap entries into one, but every step still executes at its own
timestamp with its own tie-break seq, drawing from the same RNG streams
in the same order — so the observable run (trace fingerprint, delivery
order and timing, leader, tracer summary) must be *identical* with
fusion on (the default) and off (``REPRO_CHAIN=0``).  Unlike parking,
fusion does not elide any execution: the executed-event count must be
*equal*; only heap pushes may drop.
"""

from __future__ import annotations

import os

import pytest

from tests.properties.test_park_equivalence import SYSTEMS, run_observed


def run_with_chain(flag, name):
    prior = os.environ.get("REPRO_CHAIN")
    os.environ["REPRO_CHAIN"] = flag
    try:
        return run_observed(name)
    finally:
        if prior is None:
            os.environ.pop("REPRO_CHAIN", None)
        else:
            os.environ["REPRO_CHAIN"] = prior


@pytest.mark.parametrize("name", SYSTEMS)
def test_fused_run_is_bit_identical(name):
    fused, fused_events = run_with_chain("1", name)
    unfused, unfused_events = run_with_chain("0", name)
    assert fused == unfused
    # Fusion changes how events are stored, never whether they run.
    assert fused_events == unfused_events


def _shard_invariants(flag):
    from repro.harness.hostperf import SHARD_POINT
    from repro.harness.shardsweep import shard_point

    prior = os.environ.get("REPRO_CHAIN")
    os.environ["REPRO_CHAIN"] = flag
    try:
        spec = SHARD_POINT.replace(duration_ms=2.0)
        pt = shard_point(spec)
    finally:
        if prior is None:
            os.environ.pop("REPRO_CHAIN", None)
        else:
            os.environ["REPRO_CHAIN"] = prior
    behaviour = (pt.submitted, pt.committed, pt.dropped, pt.mean_latency_us,
                 pt.p50_latency_us, pt.p99_latency_us, pt.hottest_share,
                 pt.events_executed)
    return behaviour, pt.heap_pushes


def test_shard_farm_fused_is_bit_identical_and_cheaper():
    """The farm path exercises batched arrivals on top of the fan-out
    chains; behaviour must match exactly while heap traffic drops."""
    fused, fused_pushes = _shard_invariants("1")
    unfused, unfused_pushes = _shard_invariants("0")
    assert fused == unfused
    assert fused_pushes < unfused_pushes


def test_fusion_reduces_heap_pushes_on_rdma_systems():
    """On an SST/ring system the fan-out chains must actually bite."""
    from repro.harness.factory import build_from_spec, settle
    from repro.harness.runspec import RunSpec
    from repro.sim.engine import Engine, ms

    def pushes(flag):
        prior = os.environ.get("REPRO_CHAIN")
        os.environ["REPRO_CHAIN"] = flag
        try:
            engine = Engine(seed=11)
            system = build_from_spec(RunSpec(system="acuerdo", n=3), engine)
            settle(system)
            for i in range(8):
                system.submit(("c", i), 64)
            engine.run(until=engine.now + ms(2))
            return engine.heap_pushes
        finally:
            if prior is None:
                os.environ.pop("REPRO_CHAIN", None)
            else:
                os.environ["REPRO_CHAIN"] = prior

    assert pushes("1") < pushes("0")
