"""ShardRouter: stable placement, skew shape, worker-independence.

The router is the farm's only cross-group coupling point, so its hash
must be a pure function of the key — independent of
``PYTHONHASHSEED``, the host, and the worker process a sweep point
lands in.  A golden key→shard table pins the placement forever (moving
keys between shards would silently re-route every recorded workload).
"""

from __future__ import annotations

import pytest

from repro.harness.parallel import run_points
from repro.shard.router import ShardRouter, stable_key_hash

#: Golden placement over 16 shards.  These values are frozen: a change
#: means every key in every recorded farm run re-routes.
GOLDEN_16 = {
    0: 15,
    1: 1,
    7: 7,
    42: 5,
    1000: 8,
    123456789: 9,
    "user-0": 7,
    "user-9999": 1,
    "hot": 4,
    b"bytes-key": 2,
}


def test_golden_placement_is_frozen():
    router = ShardRouter(16)
    got = {k: router.shard_of(k) for k in GOLDEN_16}
    assert got == GOLDEN_16


def test_all_shards_reachable():
    router = ShardRouter(8)
    hist = router.histogram(range(10_000))
    assert len(hist) == 8
    assert all(count > 0 for count in hist)
    # splitmix64 over sequential ints should spread near-uniformly.
    assert max(hist) < 2 * min(hist)


def test_strings_and_ints_hash_independently():
    assert stable_key_hash(7) != stable_key_hash("7")
    assert stable_key_hash(True) != stable_key_hash(1)


def test_same_key_same_shard_across_types_of_call():
    router = ShardRouter(64)
    for key in ("alpha", 17, b"blob"):
        assert router.shard_of(key) == router.shard_of(key)


def test_shard_of_rejects_bad_counts():
    with pytest.raises(ValueError):
        ShardRouter(0)


def _placement_table(shards: int, n_keys: int) -> tuple:
    """Module-level (picklable) point: the full placement of the first
    ``n_keys`` int and string keys."""
    router = ShardRouter(shards)
    ints = tuple(router.shard_of(k) for k in range(n_keys))
    strs = tuple(router.shard_of(f"user-{k}") for k in range(n_keys))
    return ints + strs


def test_placement_identical_across_pool_workers(monkeypatch):
    """Pool workers are fresh interpreters (own PYTHONHASHSEED-equivalent
    state); placement must still match the in-process table."""
    local = _placement_table(16, 500)
    monkeypatch.delenv("PYTHONHASHSEED", raising=False)
    results = run_points(_placement_table, [(16, 500), (16, 500)], workers=2)
    assert results == [local, local]
