"""ShardedDeployment: scoped identities, routing, metrics, failures.

The farm's contract: groups share one engine but nothing else — each
group's RNG streams, process names and span labels live under its
``shard.<g>.*`` prefix; routing is per-key stable; per-shard metrics
come out namespaced; and failure injection addresses replicas by
``(group, node)`` while bare ints stay unambiguous-or-loud.
"""

from __future__ import annotations

import pytest

from repro.shard import ShardedDeployment, aggregate_client
from repro.sim.engine import Engine, ms


def _farm(shards: int = 4, seed: int = 11) -> tuple[Engine, ShardedDeployment]:
    engine = Engine(seed=seed)
    dep = ShardedDeployment(engine, system="acuerdo", shards=shards, n=3)
    dep.settle()
    return engine, dep


def _drive(engine: Engine, dep: ShardedDeployment, horizon_ns: int = ms(5)):
    client = aggregate_client(dep, users=10_000, rate_rps=200_000.0,
                              skew=0.99)
    client.start()
    engine.run(until=engine.now + horizon_ns)
    client.stop()
    return client


def test_groups_get_scoped_identities():
    _, dep = _farm(shards=3)
    for g, group in enumerate(dep.groups):
        assert group.group == g
        for p in group.processes():
            assert p.group == g
            assert p.name.startswith(f"shard.{g}.")
            assert p.addr == (g, p.node_id)


def test_single_shard_keeps_flat_identities():
    _, dep = _farm(shards=1)
    [group] = dep.groups
    assert group.group is None
    for p in group.processes():
        assert p.group is None
        assert p.addr == p.node_id
        assert not p.name.startswith("shard.")


def test_requests_spread_and_commit_across_shards():
    engine, dep = _farm(shards=4)
    client = _drive(engine, dep)
    assert client.committed > 0
    assert sum(dep.submitted) == client.sent
    assert sum(dep.committed) == client.committed
    # Zipfian over 10k users still reaches every one of 4 shards.
    assert all(s > 0 for s in dep.submitted)


def test_routing_is_per_key_stable():
    _, dep = _farm(shards=8)
    for key in ("user-1", 42, "hot"):
        assert dep.shard_of(key) == dep.shard_of(key)


def test_metrics_are_namespaced_per_shard():
    engine, dep = _farm(shards=2)
    _drive(engine, dep)
    snap = dep.metrics().snapshot()
    for g in range(2):
        assert snap[f"shard.{g}.submitted"] == dep.submitted[g]
        assert snap[f"shard.{g}.committed"] == dep.committed[g]
        # Each group's own substrate counters, re-namespaced.
        assert any(k.startswith(f"shard.{g}.substrate.") for k in snap)
    assert snap["shard.count"] == 2
    assert snap["shard.total.committed"] == dep.total_committed()


def test_injector_accepts_group_node_addresses():
    engine, dep = _farm(shards=3)
    inj = dep.injector()
    inj.crash_at(engine.now + ms(1), (1, 2))
    engine.run(until=engine.now + ms(2))
    crashed = [p for p in dep.groups[1].processes() if p.crashed]
    assert [p.node_id for p in crashed] == [2]
    # Other groups untouched.
    assert not any(p.crashed for p in dep.groups[0].processes())
    assert (1, 2) not in inj.alive()
    assert (0, 2) in inj.alive()


def test_bare_int_address_is_loud_when_ambiguous():
    _, dep = _farm(shards=2)
    inj = dep.injector()
    with pytest.raises(KeyError, match=r"ambiguous.*\(group, node_id\)"):
        inj.crash_at(0, 0)


def test_killing_one_group_leader_leaves_others_serving():
    engine, dep = _farm(shards=3)
    inj = dep.injector()
    leader = dep.leader_of(0)
    assert leader is not None
    inj.crash_at(engine.now + ms(1), (0, leader))
    engine.run(until=engine.now + ms(2))
    # The other groups keep their leaders and keep committing.
    for g in (1, 2):
        assert dep.leader_of(g) is not None
    before = dep.committed[1]
    assert dep.submit_keyed("probe", ("p", 0, "probe"), 64) in (True, False)
    engine.run(until=engine.now + ms(2))
    assert sum(dep.committed) >= before


def test_group_config_callable_is_applied_per_group():
    from repro.core.config import AcuerdoConfig
    from repro.sim.engine import us

    engine = Engine(seed=5)
    seen: list[int] = []

    def cfg(g: int) -> dict:
        seen.append(g)
        return {"config": AcuerdoConfig(commit_push_period_ns=us(10 + g))}

    dep = ShardedDeployment(engine, system="acuerdo", shards=3, n=3,
                            group_config=cfg)
    assert seen == [0, 1, 2]
    assert [grp.cfg.commit_push_period_ns for grp in dep.groups] == \
        [us(10), us(11), us(12)]


def test_deployment_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        ShardedDeployment(Engine(seed=1), shards=0)
