"""Property: a 1-shard farm is the single-group run, bit for bit.

``ShardedDeployment(shards=1)`` enters no identity scope and adds only
host-side routing bookkeeping, so driving it with the aggregate client
must produce the *same trace fingerprint* (sorted counters + sample
digests + event count) as building the group directly and driving it
with an identically-configured :class:`OpenLoopClient`.  This is the
refactor's no-regression proof: scaling out changed nothing about one
group.

Covered for the three consensus styles the farm hosts: Acuerdo, Raft
(etcd) and Zab (zookeeper).
"""

from __future__ import annotations

import pytest

from repro.harness.factory import build_from_spec, settle
from repro.harness.runspec import RunSpec
from repro.shard import ARRIVAL_STREAM, ShardedDeployment, aggregate_client
from repro.sim.engine import Engine, ms
from repro.workloads.openloop import OpenLoopClient

SEED = 7
USERS = 1_000
RATE_RPS = 50_000.0        # one request per 20 us
DURATION_NS = ms(10)
SYSTEMS = ["acuerdo", "etcd", "zookeeper"]


def _plain(system: str):
    engine = Engine(seed=SEED)
    sys_ = build_from_spec(RunSpec(system=system, n=3), engine)
    settle(sys_)
    client = OpenLoopClient(sys_, period_ns=20_000, message_size=64,
                            arrival="poisson", key_dist="zipfian",
                            key_space=USERS, skew=0.99,
                            rng_stream=ARRIVAL_STREAM)
    client.start()
    engine.run(until=DURATION_NS)
    return engine.trace.fingerprint(), client.committed


def _sharded(system: str):
    engine = Engine(seed=SEED)
    dep = ShardedDeployment(engine, system=system, shards=1, n=3)
    dep.settle()
    client = aggregate_client(dep, users=USERS, rate_rps=RATE_RPS, skew=0.99)
    client.start()
    engine.run(until=DURATION_NS)
    return engine.trace.fingerprint(), client.committed


@pytest.mark.parametrize("system", SYSTEMS)
def test_one_shard_farm_is_fingerprint_identical(system):
    plain_fp, plain_committed = _plain(system)
    farm_fp, farm_committed = _sharded(system)
    assert farm_fp == plain_fp
    assert farm_committed == plain_committed


def test_one_shard_routing_is_pure_bookkeeping():
    """The farm's own counters agree with the client's view."""
    engine = Engine(seed=SEED)
    dep = ShardedDeployment(engine, system="acuerdo", shards=1, n=3)
    dep.settle()
    client = aggregate_client(dep, users=USERS, rate_rps=RATE_RPS, skew=0.99)
    client.start()
    engine.run(until=DURATION_NS)
    assert dep.total_submitted() == client.sent
    assert dep.total_committed() == client.committed
    assert dep.submitted == [client.sent]
