"""Space-parallel shard farms: slice/serial equivalence and routing.

The contract under test (DESIGN.md §13): running a farm's groups as
contiguous slices on separate worker engines produces bit-identical
per-shard results to the single-engine farm — same per-group
fingerprints (substrate counters, submit/commit/drop, exact latency
sequences, leader, violations), same latency percentiles, same
violation counts — across every combination of slice width, poll
parking, and macro-event fusion.  Only the host-cost fields
(``events_executed``/``heap_pushes``, which sum over worker engines)
and the self-describing ``workers`` field may differ.
"""

import dataclasses

import pytest

from repro.harness.runspec import RunSpec
from repro.harness.shardsweep import shard_point, shard_sweep
from repro.shard.parallel import parallel_shard_point, slice_ranges

#: Small but non-trivial: 4 Zipfian-skewed groups, ~1000 arrivals.
FARM = RunSpec(system="acuerdo", n=3, workload="openloop", duration_ms=5.0,
               seed=11, shards=4, users=2000, skew=0.99,
               arrival_rate=200_000.0)

#: ShardPoint fields allowed to differ between serial and sliced runs.
HOST_COST = {"events_executed", "heap_pushes", "workers"}


def behaviour(point) -> dict:
    return {k: v for k, v in dataclasses.asdict(point).items()
            if k not in HOST_COST}


# ------------------------------------------------------------ slice_ranges


def test_slice_ranges_even_split():
    assert slice_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_slice_ranges_uneven_split_front_loads_remainder():
    assert slice_ranges(5, 2) == [(0, 3), (3, 5)]
    assert slice_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]


def test_slice_ranges_more_workers_than_shards():
    assert slice_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]


def test_slice_ranges_covers_exactly():
    for shards in (1, 2, 5, 8, 13):
        for workers in (1, 2, 3, 4, 16):
            ranges = slice_ranges(shards, workers)
            assert ranges[0][0] == 0 and ranges[-1][1] == shards
            assert all(lo < hi for lo, hi in ranges)
            assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))


def test_slice_ranges_rejects_nonpositive():
    with pytest.raises(ValueError):
        slice_ranges(0, 2)
    with pytest.raises(ValueError):
        slice_ranges(4, 0)


# ------------------------------------------------- parallel == serial


@pytest.mark.parametrize("park", ["0", "1"])
@pytest.mark.parametrize("chain", ["0", "1"])
def test_parallel_matches_serial_across_modes(monkeypatch, park, chain):
    """workers in {1, 2, 4} x REPRO_PARK x REPRO_CHAIN: identical
    per-shard fingerprints, latency percentiles, and violation counts."""
    monkeypatch.setenv("REPRO_PARK", park)
    monkeypatch.setenv("REPRO_CHAIN", chain)
    serial_collect = {}
    serial = shard_point(FARM, collect=serial_collect)
    assert serial.workers == 1
    for workers in (2, 4):
        collect = {}
        par = shard_point(FARM.replace(workers=workers), collect=collect)
        assert par.workers == workers
        assert collect["shard_fingerprints"] == \
            serial_collect["shard_fingerprints"]
        assert behaviour(par) == behaviour(serial)
        assert par.violations == serial.violations == 0


def test_parallel_monitored_matches_serial():
    spec = FARM.replace(check_invariants=True)
    serial_collect, par_collect = {}, {}
    serial = shard_point(spec, collect=serial_collect)
    par = shard_point(spec.replace(workers=4), collect=par_collect)
    assert par_collect["shard_fingerprints"] == \
        serial_collect["shard_fingerprints"]
    assert behaviour(par) == behaviour(serial)
    assert par.violations == 0 and par_collect["violations"] == []


def test_parallel_point_latency_percentiles_exact():
    serial = shard_point(FARM)
    par = parallel_shard_point(FARM.replace(workers=2))
    assert par.p50_latency_us == serial.p50_latency_us
    assert par.p99_latency_us == serial.p99_latency_us
    assert par.mean_latency_us == serial.mean_latency_us
    assert (par.submitted, par.committed, par.dropped) == \
        (serial.submitted, serial.committed, serial.dropped)


def test_workers_clamped_to_shards():
    par = parallel_shard_point(FARM.replace(workers=16))
    assert par.workers == FARM.shards


def test_slice_side_channel_shapes():
    collect = {}
    parallel_shard_point(FARM.replace(workers=2), collect=collect)
    assert collect["slices"] == [(0, 2), (2, 4)]
    assert len(collect["slice_seconds"]) == 2
    assert all(s > 0 for s in collect["slice_seconds"])
    assert set(collect["shard_fingerprints"]) == {0, 1, 2, 3}
    assert collect["foreign"] > 0      # each slice skipped foreign keys


# ------------------------------------------------------- crash routing


def test_crash_lands_on_owning_worker():
    """A (group, node) kill must land on the right worker's slice: the
    crashed group's fingerprint changes, every other group's does not,
    and the sliced run still matches the serial run bit for bit."""
    crashed = FARM.replace(crashes=("2:1@1",))
    healthy_c, serial_c, par_c = {}, {}, {}
    shard_point(FARM, collect=healthy_c)
    serial = shard_point(crashed, collect=serial_c)
    par = shard_point(crashed.replace(workers=4), collect=par_c)
    assert par_c["shard_fingerprints"] == serial_c["shard_fingerprints"]
    assert behaviour(par) == behaviour(serial)
    assert serial_c["shard_fingerprints"][2] != \
        healthy_c["shard_fingerprints"][2]
    for g in (0, 1, 3):
        assert serial_c["shard_fingerprints"][g] == \
            healthy_c["shard_fingerprints"][g]


def test_partition_routed_to_owning_group():
    cut = FARM.replace(partitions=("0:0,0:1|0:2@1-3",))
    healthy_c, serial_c, par_c = {}, {}, {}
    shard_point(FARM, collect=healthy_c)
    serial = shard_point(cut, collect=serial_c)
    par = shard_point(cut.replace(workers=2), collect=par_c)
    assert par_c["shard_fingerprints"] == serial_c["shard_fingerprints"]
    assert behaviour(par) == behaviour(serial)
    assert serial_c["shard_fingerprints"][0] != \
        healthy_c["shard_fingerprints"][0]
    for g in (1, 2, 3):
        assert serial_c["shard_fingerprints"][g] == \
            healthy_c["shard_fingerprints"][g]


# -------------------------------------------------- schedule validation


def test_bare_crash_address_rejected_on_farm():
    with pytest.raises(ValueError, match="ambiguous"):
        shard_point(FARM.replace(crashes=("1@1",)))


def test_out_of_range_crash_group_names_valid_range():
    with pytest.raises(ValueError, match=r"0\.\.3"):
        shard_point(FARM.replace(crashes=("9:0@1",)))


def test_byz_rejected_on_farm():
    with pytest.raises(ValueError, match="not ?supported|not supported"):
        shard_point(FARM.replace(byz=("equivocate:0:1@1",)))


def test_cross_group_partition_rejected():
    with pytest.raises(ValueError, match="spans groups"):
        shard_point(FARM.replace(partitions=("0:0,1:1|0:2@1",)))


def test_bare_partition_members_rejected_on_farm():
    with pytest.raises(ValueError, match="bare node ids"):
        shard_point(FARM.replace(partitions=("0,1|2@1",)))


def test_cli_rejects_bad_group_at_parse_time(capsys):
    from repro.__main__ import main

    rc = main(["--workers", "1", "shard", "--shards", "4", "--skews", "0.0",
               "--users", "500", "--rate", "100000", "--duration-ms", "1.0",
               "--crash", "7:0@1"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "0..3" in err and "group 7" in err


# ------------------------------------------------------------ sweeps


def test_shard_sweep_threads_workers_and_heartbeat():
    spec = FARM.replace(workers=2)
    pts = shard_sweep(spec, [2, 4], [0.0], heartbeat_us=40)
    assert [p.shards for p in pts] == [2, 4]
    assert all(p.workers == 2 for p in pts)
    serial_pts = shard_sweep(FARM, [2, 4], [0.0], heartbeat_us=40)
    assert [behaviour(p) for p in pts] == [behaviour(p) for p in serial_pts]
