"""Unit tests for memory regions, rkeys and access enforcement."""

import pytest

from repro.rdma import AccessError, MemoryRegion, RdmaFabric
from repro.sim import Engine


def test_write_requires_matching_rkey():
    store = {}
    r = MemoryRegion(owner=1, name="t", size_bytes=64,
                     on_write=lambda k, v, s: store.__setitem__(k, v))
    r.remote_write(r.grant(), "a", 1, 8)
    assert store == {"a": 1}
    with pytest.raises(AccessError):
        r.remote_write(r.grant() + 1, "b", 2, 8)


def test_revoked_region_rejects_writes():
    r = MemoryRegion(1, "t", 64, on_write=lambda k, v, s: None)
    key = r.grant()
    r.revoke()
    with pytest.raises(AccessError):
        r.remote_write(key, "a", 1, 8)


def test_rkeys_are_unique():
    a = MemoryRegion(0, "a", 8, on_write=lambda *args: None)
    b = MemoryRegion(0, "b", 8, on_write=lambda *args: None)
    assert a.rkey != b.rkey


def test_region_counts_traffic():
    r = MemoryRegion(0, "t", 64, on_write=lambda *args: None)
    r.remote_write(r.grant(), 0, None, 48)
    r.remote_write(r.grant(), 1, None, 16)
    assert r.writes_received == 2
    assert r.bytes_received == 64


def test_reregistration_revokes_old_rkey():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    r1 = fab.register(1, "buf", 64, on_write=lambda *args: None)
    old_key = r1.grant()
    fab.register(1, "buf", 64, on_write=lambda *args: None)
    with pytest.raises(AccessError):
        r1.remote_write(old_key, 0, None, 8)


def test_fabric_region_lookup():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    r = fab.register(0, "x", 8, on_write=lambda *args: None)
    assert fab.region(0, "x") is r
