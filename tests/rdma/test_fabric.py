"""Unit tests for cluster-wide RDMA wiring."""


from repro.rdma import RdmaFabric, RdmaParams
from repro.sim import Engine


def test_all_to_all_qps_created():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1, 2])
    for a in range(3):
        for b in range(3):
            if a != b:
                qp = fab.qp(a, b)
                assert qp.src.node_id == a and qp.dst.node_id == b


def test_add_node_later_wires_both_directions():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    fab.add_node(7)
    assert fab.qp(0, 7).dst.node_id == 7
    assert fab.qp(7, 1).src.node_id == 7
    # Re-adding is a no-op returning the same NIC.
    assert fab.add_node(7) is fab.nic(7)


def test_total_tx_bytes_aggregates_all_nics():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    reg = fab.register(1, "r", 64, on_write=lambda *a: None)
    fab.write(0, 1, reg, reg.grant(), 0, None, 10)
    e.run()
    assert fab.total_tx_bytes() == fab.params.wire_bytes(10)


def test_crash_node_blocks_future_traffic_both_ways():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1, 2])
    seen = []
    reg = fab.register(2, "r", 64, on_write=lambda k, v, s: seen.append(k))
    fab.crash_node(0)
    fab.write(0, 2, reg, reg.grant(), "from-crashed", None, 10)
    fab.write(1, 2, reg, reg.grant(), "from-live", None, 10)
    e.run()
    assert seen == ["from-live"]


def test_params_shared_across_fabric():
    p = RdmaParams(propagation_ns=123)
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1], p)
    assert fab.qp(0, 1).params.propagation_ns == 123
    assert fab.nic(0).params is p
