"""Unit tests for reliable-connection queue pairs and the NIC cost model."""

import pytest

from repro.rdma import RdmaFabric, RdmaParams, SendQueueFullError
from repro.sim import Engine, us


def _pair(params=None, seed=1):
    e = Engine(seed=seed)
    fab = RdmaFabric(e, [0, 1], params)
    store = {}
    region = fab.register(1, "buf", 4096, on_write=lambda k, v, s: store.__setitem__(k, v))
    return e, fab, region, store


def test_write_lands_in_remote_region():
    e, fab, region, store = _pair()
    fab.write(0, 1, region, region.grant(), "slot0", b"hello", 10)
    e.run()
    assert store["slot0"] == b"hello"
    assert region.writes_received == 1


def test_write_latency_matches_cost_model():
    p = RdmaParams()
    e, fab, region, store = _pair(p)
    times = {}
    fab.write(0, 1, region, region.grant(), "k", 1, 10)
    e.run()
    expected = p.nic_tx_ns + p.tx_serialization_ns(10) + p.propagation_ns + p.nic_rx_ns
    assert e.now == expected
    # Small writes land in ~1us, the RDMA anchor from the paper.
    assert us(0.5) < expected < us(2)


def test_fifo_delivery_order():
    e, fab, region, _ = _pair()
    seen = []
    reg2 = fab.register(1, "fifo", 4096, on_write=lambda k, v, s: seen.append(k))
    for i in range(20):
        fab.write(0, 1, reg2, reg2.grant(), i, None, 10)
    e.run()
    assert seen == list(range(20))


def test_fifo_preserved_under_loss():
    p = RdmaParams(loss_prob=0.3)
    e = Engine(seed=9)
    fab = RdmaFabric(e, [0, 1], p)
    seen = []
    reg = fab.register(1, "lossy", 4096, on_write=lambda k, v, s: seen.append(k))
    for i in range(200):
        fab.write(0, 1, reg, reg.grant(), i, None, 10)
    e.run()
    assert seen == list(range(200))  # reliable connection: lossless, ordered
    assert fab.qp(0, 1).retransmits > 0


def test_loss_adds_retransmit_delay():
    clean = RdmaParams(loss_prob=0.0)
    lossy = RdmaParams(loss_prob=1.0)

    def run(p):
        e = Engine(seed=2)
        fab = RdmaFabric(e, [0, 1], p)
        reg = fab.register(1, "r", 64, on_write=lambda k, v, s: None)
        fab.write(0, 1, reg, reg.grant(), 0, None, 10)
        e.run()
        return e.now

    assert run(lossy) - run(clean) == lossy.retransmit_timeout_ns


def test_link_serialization_contends_across_qps():
    p = RdmaParams()
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1, 2], p)
    done = []
    r1 = fab.register(1, "a", 1 << 20, on_write=lambda k, v, s: done.append(("n1", e.now)))
    r2 = fab.register(2, "b", 1 << 20, on_write=lambda k, v, s: done.append(("n2", e.now)))
    big = 100_000
    fab.write(0, 1, r1, r1.grant(), 0, None, big)
    fab.write(0, 2, r2, r2.grant(), 0, None, big)
    e.run()
    t1 = dict(done)["n1"]
    t2 = dict(done)["n2"]
    # Second write serialises behind the first on node 0's single link.
    assert abs(t2 - t1) >= p.tx_serialization_ns(big) * 0.9


def test_signaled_write_generates_completion_covering_unsignaled():
    e, fab, region, _ = _pair()
    rkey = region.grant()
    for i in range(9):
        fab.write(0, 1, region, rkey, i, None, 10, signaled=False)
    fab.write(0, 1, region, rkey, 9, None, 10, signaled=True, wr_id="batch")
    e.run()
    cq = fab.nic(0).cq
    entries = cq.drain()
    assert len(entries) == 1
    assert entries[0].wr_id == "batch"
    assert entries[0].covers == 10
    assert fab.qp(0, 1).outstanding == 0


def test_unsignaled_writes_accumulate_until_send_queue_full():
    p = RdmaParams(max_send_queue=16)
    e, fab, region, _ = _pair(p)
    rkey = region.grant()
    for i in range(16):
        fab.write(0, 1, region, rkey, i, None, 10)
    with pytest.raises(SendQueueFullError):
        fab.write(0, 1, region, rkey, 16, None, 10)


def test_selective_signaling_keeps_queue_bounded():
    p = RdmaParams(max_send_queue=64)
    e, fab, region, _ = _pair(p)
    rkey = region.grant()
    for i in range(1000):
        fab.write(0, 1, region, rkey, i, None, 10, signaled=(i % 16 == 15))
        if i % 40 == 39:
            # Let completions drain periodically, as a polling sender would.
            e.run(until=e.now + us(50))
    e.run()
    # Only the unsignaled tail after the last signaled write remains;
    # the queue never grew anywhere near the 64-entry bound.
    assert fab.qp(0, 1).outstanding < 16


def test_crashed_destination_swallows_writes():
    e, fab, region, store = _pair()
    fab.crash_node(1)
    fab.write(0, 1, region, region.grant(), "k", 1, 10)
    e.run()
    assert store == {}


def test_crashed_source_sends_nothing():
    e, fab, region, store = _pair()
    fab.crash_node(0)
    fab.write(0, 1, region, region.grant(), "k", 1, 10)
    e.run()
    assert store == {}
    assert fab.qp(0, 1).posted == 0


def test_min_wire_message_floors_cost():
    p = RdmaParams()
    assert p.wire_bytes(1) == p.min_wire_bytes
    assert p.wire_bytes(10) == p.min_wire_bytes
    assert p.wire_bytes(1000) == 1000 + p.header_bytes
    assert p.tx_serialization_ns(1) == p.tx_serialization_ns(10)


def test_bulk_lane_does_not_delay_control_traffic():
    """QoS lanes: a large transfer on the bulk QP leaves small control
    writes' latency untouched."""
    p = RdmaParams()
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    times = {}
    reg = fab.register(1, "r", 1 << 22,
                       on_write=lambda k, v, s: times.__setitem__(k, e.now))
    rkey = reg.grant()
    fab.write(0, 1, reg, rkey, "bulk", None, 1 << 20, lane="bulk")
    fab.write(0, 1, reg, rkey, "ctl", None, 10)
    e.run()
    one_way = p.nic_tx_ns + p.tx_serialization_ns(10) + p.propagation_ns + p.nic_rx_ns
    assert times["ctl"] <= one_way + 10  # not queued behind the megabyte
    assert times["bulk"] > times["ctl"]


def test_bulk_lane_preserves_order_within_lane():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    seen = []
    reg = fab.register(1, "r", 1 << 22, on_write=lambda k, v, s: seen.append(k))
    rkey = reg.grant()
    for i in range(5):
        fab.write(0, 1, reg, rkey, i, None, 1 << 17, lane="bulk")
    e.run()
    assert seen == [0, 1, 2, 3, 4]
