"""Unit tests for write-based mailboxes."""

from repro.rdma import Mailbox, RdmaFabric
from repro.sim import Engine


def test_send_and_drain():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    mbox = Mailbox(fab, owner=1, name="reqs")
    mbox.send(0, {"op": "set"}, 32)
    e.run()
    assert mbox.drain() == [(0, {"op": "set"})]
    assert mbox.drain() == []


def test_arrival_order_preserved_per_sender():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    mbox = Mailbox(fab, 1, "reqs")
    for i in range(5):
        mbox.send(0, i, 16)
    e.run()
    assert [p for _, p in mbox.drain()] == [0, 1, 2, 3, 4]


def test_multiple_senders_interleave():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1, 2])
    mbox = Mailbox(fab, 2, "reqs")
    mbox.send(0, "a", 16)
    mbox.send(1, "b", 16)
    e.run()
    got = mbox.drain()
    assert {src for src, _ in got} == {0, 1}


def test_drain_max_batch():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    mbox = Mailbox(fab, 1, "reqs")
    for i in range(10):
        mbox.send(0, i, 16)
    e.run()
    assert len(mbox.drain(max_batch=4)) == 4
    assert mbox.backlog == 6


def test_signal_interval():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    mbox = Mailbox(fab, 1, "reqs", signal_interval=3)
    for i in range(9):
        mbox.send(0, i, 16)
    e.run()
    assert fab.nic(0).cq.total_seen == 3
