"""Unit tests for ring-slot accounting control and SST change counters."""

from repro.rdma import RdmaFabric, RingBuffer, SharedStateTable
from repro.sim import Engine


def _ring(capacity=4):
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1, 2])
    return e, RingBuffer(fab, 0, [0, 1, 2], capacity=capacity)


def test_exclude_keeps_mirroring_but_frees_accounting():
    e, ring = _ring(capacity=2)
    ring.try_send("a", 10)
    ring.try_send("b", 10)
    ring.mark_released(0, 2)
    ring.mark_released(1, 2)
    assert ring.try_send("c", 10) is None     # receiver 2 wedges
    ring.exclude_from_accounting(2)
    assert ring.try_send("c", 10) is not None  # unwedged...
    e.run()
    assert [p for _s, p in ring.receiver(2).poll()] == ["a", "b", "c"]  # ...still mirrored


def test_include_in_accounting_readmits():
    e, ring = _ring(capacity=2)
    ring.try_send("a", 10)
    ring.exclude_from_accounting(2)
    ring.include_in_accounting(2, ring.next_seq)
    ring.mark_released(0, 1)
    ring.mark_released(1, 1)
    assert ring.free_slots() == 2  # readmitted at the current frontier


def test_include_clamps_to_sent():
    e, ring = _ring(capacity=4)
    ring.try_send("a", 10)
    ring.include_in_accounting(1, 999)
    assert ring._released[1] <= ring.next_seq


def test_include_ignores_removed_receiver():
    e, ring = _ring()
    ring.drop_receiver(2)
    ring.include_in_accounting(2, 0)
    assert 2 not in ring._released


def test_sst_version_bumps_on_remote_and_local_writes():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    sst = SharedStateTable(fab, "v", [0, 1], initial=0)
    v0 = sst.version(1)
    sst.set_and_push(0, 42)
    assert sst.version(0) > 0  # local write bumped the writer's copy
    e.run()
    assert sst.version(1) > v0  # remote apply bumped the reader's copy


def test_sst_version_stable_without_traffic():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    sst = SharedStateTable(fab, "v", [0, 1], initial=0)
    v = sst.version(1)
    e.run()
    assert sst.version(1) == v
