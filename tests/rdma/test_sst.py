"""Unit tests for the shared state table (Fig. 2)."""

from repro.rdma import RdmaFabric, SharedStateTable
from repro.sim import Engine, us


def _sst(n=3, seed=1, **kw):
    e = Engine(seed=seed)
    fab = RdmaFabric(e, list(range(n)))
    sst = SharedStateTable(fab, "t", list(range(n)), initial=0, **kw)
    return e, fab, sst


def test_local_write_is_immediate_remote_needs_push():
    e, fab, sst = _sst()
    sst.write_local(0, 7)
    assert sst.read(0, 0) == 7
    assert sst.read(1, 0) == 0  # not pushed yet
    sst.push(0)
    e.run()
    assert sst.read(1, 0) == 7
    assert sst.read(2, 0) == 7


def test_push_to_subset():
    e, fab, sst = _sst()
    sst.set_and_push(0, 5, targets=[1])
    e.run()
    assert sst.read(1, 0) == 5
    assert sst.read(2, 0) == 0


def test_overwrite_semantics_last_writer_wins():
    e, fab, sst = _sst()
    for v in (1, 2, 3):
        sst.set_and_push(0, v)
    e.run()
    assert sst.read(1, 0) == 3
    assert sst.read(2, 0) == 3


def test_each_node_owns_its_row():
    e, fab, sst = _sst()
    sst.set_and_push(0, "zero")
    sst.set_and_push(1, "one")
    sst.set_and_push(2, "two")
    e.run()
    for reader in range(3):
        assert sst.read(reader, 0) == "zero"
        assert sst.read(reader, 1) == "one"
        assert sst.read(reader, 2) == "two"


def test_snapshot_is_a_copy():
    e, fab, sst = _sst()
    snap = sst.snapshot(0)
    snap[1] = "mutated"
    assert sst.read(0, 1) == 0


def test_monotone_values_never_observed_regressing():
    """FIFO delivery means a reader never sees a row go backwards when
    the writer only ever increases it — the property §3.2 leans on."""
    e, fab, sst = _sst()
    observed = []

    def observe():
        observed.append(sst.read(1, 0))
        if e.now < us(50):
            e.schedule(200, observe)

    e.schedule(0, observe)
    for i in range(1, 101):
        sst.set_and_push(0, i)
        # Interleave pushes with simulated time so deliveries spread out.
        e.run(until=e.now + 300)
    e.run()
    assert observed == sorted(observed)
    assert sst.read(1, 0) == 100


def test_push_without_self_target():
    e, fab, sst = _sst()
    sst.write_local(1, 9)
    sst.push(1, targets=[1])  # pushing to self is a no-op, not an error
    e.run()
    assert sst.read(1, 1) == 9


def test_signal_interval_generates_completions():
    e, fab, sst = _sst(signal_interval=5)
    for i in range(25):
        sst.set_and_push(0, i, targets=[1])
    e.run()
    assert fab.nic(0).cq.total_seen == 5
