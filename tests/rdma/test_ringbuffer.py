"""Unit tests for the RDMA ring buffer (§3.2)."""

from repro.rdma import RdmaFabric, RingBuffer, SlotReleasePolicy
from repro.sim import Engine


def _ring(n=3, capacity=8, writes_per_message=1, seed=1):
    e = Engine(seed=seed)
    fab = RdmaFabric(e, list(range(n)))
    ring = RingBuffer(fab, 0, list(range(n)), capacity=capacity,
                      writes_per_message=writes_per_message)
    return e, fab, ring


def test_broadcast_reaches_all_receivers():
    e, fab, ring = _ring()
    ring.try_send("hello", 10)
    e.run()
    for r in range(3):
        assert ring.receiver(r).poll() == [(0, "hello")]


def test_self_delivery_is_local_and_polled():
    e, fab, ring = _ring()
    ring.try_send("x", 10)
    # Before any engine time passes, the sender's own mirror has it...
    assert ring.receiver(0).poll() == [(0, "x")]
    # ...but remote mirrors need wire time.
    assert ring.receiver(1).poll() == []
    e.run()
    assert ring.receiver(1).poll() == [(0, "x")]


def test_messages_arrive_in_order_and_batch():
    e, fab, ring = _ring(capacity=64)
    for i in range(10):
        ring.try_send(i, 10)
    e.run()
    batch = ring.receiver(2).poll()
    assert [seq for seq, _ in batch] == list(range(10))
    assert [p for _, p in batch] == list(range(10))


def test_poll_max_batch_limits_drain():
    e, fab, ring = _ring(capacity=64)
    for i in range(10):
        ring.try_send(i, 10)
    e.run()
    rr = ring.receiver(1)
    first = rr.poll(max_batch=3)
    assert len(first) == 3
    assert rr.backlog == 7
    assert len(rr.poll()) == 7


def test_ring_fills_without_release():
    e, fab, ring = _ring(capacity=4)
    for i in range(4):
        assert ring.try_send(i, 10) is not None
    assert ring.try_send(99, 10) is None
    assert ring.stalls == 1
    assert ring.free_slots() == 0


def test_release_frees_slots_at_min_across_receivers():
    e, fab, ring = _ring(capacity=4)
    for i in range(4):
        ring.try_send(i, 10)
    e.run()
    for r in range(3):
        ring.receiver(r).poll()
    # Two receivers release, one lags: still full.
    ring.mark_released(0, 4)
    ring.mark_released(1, 4)
    assert ring.free_slots() == 0
    ring.mark_released(2, 2)
    assert ring.free_slots() == 2
    assert ring.try_send("ok", 10) is not None


def test_release_never_exceeds_sent():
    e, fab, ring = _ring(capacity=4)
    ring.try_send("a", 10)
    ring.mark_released(1, 100)
    assert ring.free_slots() <= ring.capacity


def test_release_is_monotone():
    e, fab, ring = _ring(capacity=8)
    for i in range(4):
        ring.try_send(i, 10)
    ring.mark_released(1, 3)
    ring.mark_released(1, 1)  # stale info must not regress
    assert ring._released[1] == 3


def test_drop_receiver_unblocks_slow_node():
    e, fab, ring = _ring(capacity=2)
    ring.try_send("a", 10)
    ring.try_send("b", 10)
    ring.mark_released(0, 2)
    ring.mark_released(1, 2)
    assert ring.try_send("c", 10) is None  # receiver 2 wedges the ring
    ring.drop_receiver(2)
    assert ring.try_send("c", 10) is not None


def test_unicast_targets_only_named_receiver():
    e, fab, ring = _ring()
    ring.try_send("just-for-1", 10, targets=[1])
    e.run()
    assert ring.receiver(1).poll() == [(0, "just-for-1")]
    assert ring.receiver(2).poll() == []


def test_two_write_mode_needs_counter_to_become_visible():
    e, fab, ring = _ring(writes_per_message=2)
    ring.try_send("msg", 10)
    e.run()
    assert ring.receiver(1).poll() == [(0, "msg")]


def test_two_write_mode_doubles_wire_messages():
    e1, fab1, ring1 = _ring(writes_per_message=1)
    e2, fab2, ring2 = _ring(writes_per_message=2)
    for ring, e in ((ring1, e1), (ring2, e2)):
        for i in range(10):
            ring.try_send(i, 10)
        e.run()
    one = fab1.nic(0).tx_msgs
    two = fab2.nic(0).tx_msgs
    assert two == 2 * one


def test_two_write_mode_doubles_small_message_bandwidth_cost():
    # The §4.1 argument: with an 80-byte wire minimum, data+counter costs
    # twice the bytes of a coupled write for 10-byte payloads.
    e1, fab1, ring1 = _ring(writes_per_message=1)
    e2, fab2, ring2 = _ring(writes_per_message=2)
    for ring, e in ((ring1, e1), (ring2, e2)):
        for i in range(100):
            ring.try_send(i, 10)
        e.run()
    assert fab2.nic(0).tx_bytes == 2 * fab1.nic(0).tx_bytes


def test_selective_signaling_interval():
    e = Engine(seed=1)
    fab = RdmaFabric(e, [0, 1])
    ring = RingBuffer(fab, 0, [0, 1], capacity=4096, signal_interval=10)
    for i in range(100):
        ring.try_send(i, 10)
    e.run()
    assert fab.nic(0).cq.total_seen == 10  # one completion per 10 writes


def test_policy_labels():
    e, fab, _ = _ring()
    accept = RingBuffer(fab, 1, [0, 1], policy=SlotReleasePolicy.ON_ACCEPT)
    commit = RingBuffer(fab, 2, [0, 2], policy=SlotReleasePolicy.ON_COMMIT)
    assert accept.policy is SlotReleasePolicy.ON_ACCEPT
    assert commit.policy is SlotReleasePolicy.ON_COMMIT
