"""Unit tests for the pure election rules (Fig. 7 lines 96-127)."""

from repro.core import Epoch, MsgHdr, Vote, VOTE_ZERO, HDR_ZERO
from repro.core.election import (
    VoteDecision,
    decide_vote,
    max_vote,
    new_bigger_epoch,
    won_election,
)


E = Epoch
H = MsgHdr


def test_max_vote_picks_largest():
    votes = {0: Vote(E(1, 0), HDR_ZERO), 1: Vote(E(2, 1), HDR_ZERO), 2: None}
    assert max_vote(votes) == Vote(E(2, 1), HDR_ZERO)


def test_max_vote_empty_is_zero():
    assert max_vote({}) == VOTE_ZERO
    assert max_vote({0: None}) == VOTE_ZERO


def test_new_bigger_epoch_strictly_increases():
    e = new_bigger_epoch(E(3, 1), E(5, 2), self_id=1)
    assert e > E(3, 1) and e > E(5, 2)
    assert e.leader == 1


def test_new_bigger_epoch_reuses_round_when_id_wins_tie():
    # Seen (5, 2), self is 7: (5, 7) > (5, 2) already.
    e = new_bigger_epoch(E(0, 0), E(5, 2), self_id=7)
    assert e == E(5, 7)


def test_new_bigger_epoch_bumps_round_when_id_loses_tie():
    e = new_bigger_epoch(E(0, 0), E(5, 7), self_id=2)
    assert e == E(6, 2)


def test_vote_self_when_more_up_to_date():
    my_acc = H(E(0, 9), 5)
    votes = {1: Vote(E(1, 1), H(E(0, 9), 3))}
    a = decide_vote(0, VOTE_ZERO, E(0, 9), my_acc, votes, timed_out=False)
    assert a.decision is VoteDecision.VOTE_SELF
    assert a.new_vote.acpt == my_acc
    assert a.new_vote.e_new.leader == 0
    assert a.new_vote.e_new > E(1, 1)


def test_join_max_when_candidate_subsumes_us():
    my_acc = H(E(0, 9), 3)
    mx = Vote(E(1, 1), H(E(0, 9), 5))
    a = decide_vote(0, VOTE_ZERO, E(0, 9), my_acc, {1: mx}, timed_out=False)
    assert a.decision is VoteDecision.JOIN_MAX
    # Joining adopts the candidate's accepted header, not our own.
    assert a.new_vote == mx
    assert a.new_e_new == E(1, 1)


def test_hold_when_already_at_max():
    mx = Vote(E(1, 1), H(E(0, 9), 5))
    a = decide_vote(0, mx, E(1, 1), H(E(0, 9), 5), {0: mx, 1: mx}, timed_out=False)
    assert a.decision is VoteDecision.HOLD


def test_timeout_forces_self_candidacy():
    mx = Vote(E(1, 1), H(E(0, 9), 5))
    a = decide_vote(0, mx, E(1, 1), H(E(0, 9), 5), {1: mx}, timed_out=True)
    assert a.decision is VoteDecision.VOTE_SELF
    assert a.new_vote.e_new > E(1, 1)


def test_votes_never_decrease():
    """Repeatedly applying the rules with arbitrary snapshots only ever
    raises a node's vote (monotone fixed point)."""
    own = VOTE_ZERO
    e_new = E(0, 0)
    acc = H(E(0, 1), 2)
    snapshots = [
        {1: Vote(E(1, 1), H(E(0, 1), 9))},
        {1: Vote(E(1, 1), H(E(0, 1), 1))},   # smaller acpt: we self-vote
        {2: Vote(E(9, 2), H(E(0, 1), 9))},
        {},
    ]
    for snap in snapshots:
        a = decide_vote(0, own, e_new, acc, snap, timed_out=False)
        if a.decision is not VoteDecision.HOLD:
            assert a.new_vote >= own
            own = a.new_vote
            e_new = a.new_e_new


def test_won_election_requires_quorum_and_self_leadership():
    v = Vote(E(2, 0), H(E(1, 1), 4))
    votes = {0: v, 1: v, 2: Vote(E(1, 1), HDR_ZERO)}
    assert won_election(0, votes, v, quorum=2)
    assert not won_election(0, votes, v, quorum=3)
    # Same table, but the vote names someone else leader:
    other = Vote(E(2, 1), H(E(1, 1), 4))
    assert not won_election(0, {0: other, 1: other}, other, quorum=2)


def test_convergence_to_most_up_to_date_candidate():
    """Simulate the fixed-point loop synchronously: all nodes exchange
    votes until stable; the winner must dominate every voter's accepted
    header (the up-to-date property §3.3)."""
    accepted = {0: H(E(0, 1), 3), 1: H(E(0, 1), 5), 2: H(E(0, 1), 4)}
    votes = {i: VOTE_ZERO for i in range(3)}
    e_new = {i: E(0, 1) for i in range(3)}

    for _ in range(20):  # bounded rounds: must converge long before this
        changed = False
        for i in range(3):
            a = decide_vote(i, votes[i], e_new[i], accepted[i], dict(votes),
                            timed_out=(votes == {j: VOTE_ZERO for j in range(3)}))
            if a.decision is not VoteDecision.HOLD and a.new_vote != votes[i]:
                votes[i] = a.new_vote
                e_new[i] = a.new_e_new
                changed = True
        if not changed:
            break
    assert not changed, "election failed to converge"
    winner_votes = [i for i in range(3) if won_election(i, votes, votes[i], 2)]
    assert winner_votes == [1], "most up-to-date node must win"
    # Up-to-date property: winner's accepted dominates all agreeing voters.
    win_vote = votes[1]
    for i, v in votes.items():
        if v == win_vote:
            assert accepted[1] >= accepted[i]


def test_zero_vote_cannot_win():
    """The never-voted row (epoch (0,0)) syntactically names node 0 as
    leader; the win predicate must reject it or a silent table would
    'elect' node 0 at bootstrap (found by the election model checker)."""
    table = {i: VOTE_ZERO for i in range(3)}
    assert not won_election(0, table, VOTE_ZERO, quorum=2)
