"""Integration tests: Acuerdo elections and leader transition (§3.3-3.4)."""

from repro.core import AcuerdoCluster
from repro.core.node import Role
from repro.sim import Engine, ms


def _cold(n=3, seed=1):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, n)
    c.start()
    return e, c


def test_cold_start_elects_exactly_one_leader():
    e, c = _cold(5)
    e.run(until=ms(1))
    roles = [n.role for n in c.nodes.values()]
    assert roles.count(Role.LEADER) == 1
    assert roles.count(Role.FOLLOWER) == 4
    epochs = {n.E_cur for n in c.nodes.values()}
    assert len(epochs) == 1  # everyone joined the same epoch


def test_cold_start_all_cluster_sizes():
    for n in (3, 5, 7, 9):
        e, c = _cold(n, seed=n)
        e.run(until=ms(2))
        assert c.leader_id() is not None, f"no leader for n={n}"


def test_failover_elects_new_leader_and_resumes():
    e, c = _cold(3)
    e.run(until=ms(1))
    old = c.leader_id()
    for i in range(10):
        c.submit(("pre", i), 10)
    e.run(until=ms(2))
    c.crash(old)
    e.run(until=ms(4))
    new = c.leader_id()
    assert new is not None and new != old
    for i in range(10):
        c.submit(("post", i), 10)
    e.run(until=ms(6))
    for nid in range(3):
        if nid == old:
            continue
        seq = c.deliveries.sequences[nid]
        assert [p for p in seq if p[0] == "post"] == [("post", i) for i in range(10)]
    c.deliveries.check_total_order()


def test_committed_messages_survive_failover():
    """Everything committed before the crash is preserved into the new
    epoch (the safety half of atomic broadcast)."""
    e, c = _cold(5, seed=3)
    e.run(until=ms(1))
    old = c.leader_id()
    acked = []
    for i in range(20):
        c.submit(("m", i), 10, lambda hdr, i=i: acked.append(i))
    e.run(until=ms(2))
    assert len(acked) == 20
    c.crash(old)
    e.run(until=ms(5))
    for nid in range(5):
        if nid == old:
            continue
        got = [p for p in c.deliveries.sequences.get(nid, [])]
        assert got[:20] == [("m", i) for i in range(20)]


def test_new_leader_is_most_up_to_date_of_quorum():
    """Up-to-date property: the winner's accepted header dominates the
    last-accepted header of every node that voted for it."""
    e, c = _cold(5, seed=9)
    e.run(until=ms(1))
    old = c.leader_id()
    for i in range(15):
        c.submit(("m", i), 10)
    e.run(until=ms(2))
    accepted_before = {i: n.Accepted for i, n in c.nodes.items() if i != old}
    c.crash(old)
    e.run(until=ms(5))
    new = c.leader_id()
    assert new is not None
    win_vote = c.vote_sst.read(new, new)
    voters = [i for i in accepted_before
              if c.vote_sst.read(new, i) == win_vote]
    assert len(voters) >= 3  # quorum of 5
    for v in voters:
        assert accepted_before[new] >= accepted_before[v]


def test_sequential_failovers():
    e, c = _cold(5, seed=5)
    e.run(until=ms(1))
    killed = []
    for _ in range(2):
        ldr = c.leader_id()
        assert ldr is not None
        for i in range(5):
            c.submit(("k", len(killed), i), 10)
        e.run(until=e.now + ms(1))
        c.crash(ldr)
        killed.append(ldr)
        e.run(until=e.now + ms(3))
    assert c.leader_id() is not None
    assert c.leader_id() not in killed
    c.deliveries.check_total_order()


def test_deposed_leader_rejoins_as_follower():
    """A leader that is descheduled (not crashed) long enough to be
    deposed must rejoin the new epoch as a follower via the diff."""
    e, c = _cold(3, seed=2)
    e.run(until=ms(1))
    old = c.leader_id()
    c.nodes[old].deschedule(ms(2))  # long pause, not a crash
    e.run(until=ms(8))
    new = c.leader_id()
    assert new != old
    assert c.nodes[old].role is Role.FOLLOWER
    assert c.nodes[old].E_cur == c.nodes[new].E_cur
    # And it still delivers new traffic.
    n_before = c.deliveries.delivered_count(old)
    for i in range(5):
        c.submit(("late", i), 10)
    e.run(until=e.now + ms(2))
    assert c.deliveries.delivered_count(old) >= n_before + 5
    c.deliveries.check_total_order()


def test_election_duration_recorded():
    e, c = _cold(3, seed=4)
    e.run(until=ms(1))
    c.crash(c.leader_id())
    e.run(until=ms(4))
    durations = e.trace.series("acuerdo.election_duration_ns")
    assert durations, "fail-over election must record a duration"
    assert all(0 < d < ms(3) for d in durations)


def test_no_quorum_no_leader():
    """With a majority crashed, no new leader can be elected (safety
    over liveness)."""
    e, c = _cold(3, seed=6)
    e.run(until=ms(1))
    ldr = c.leader_id()
    others = [i for i in range(3) if i != ldr]
    c.crash(ldr)
    c.crash(others[0])
    e.run(until=ms(6))
    assert c.leader_id() is None
    assert c.nodes[others[1]].role is Role.ELECTING
