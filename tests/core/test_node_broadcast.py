"""Integration tests: Acuerdo normal broadcast mode (Figs. 4-6)."""

from repro.core import AcuerdoCluster, AcuerdoConfig
from repro.core.node import Role
from repro.sim import Engine, ms, us


def _steady_cluster(n=3, seed=1, **cfg_kw):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, n, config=AcuerdoConfig(**cfg_kw) if cfg_kw else None)
    c.preseed_leader(0)
    c.start()
    return e, c


def _feed(e, c, count, gap_us=2.0, size=10, collect=None):
    def go(i=0):
        if i < count:
            t0 = e.now
            cb = (lambda hdr, t0=t0: collect.append(e.now - t0)) if collect is not None else None
            c.submit(("m", i), size, cb)
            e.schedule(us(gap_us), go, i + 1)
    go()


def test_all_nodes_deliver_everything_in_order():
    e, c = _steady_cluster()
    _feed(e, c, 100)
    e.run(until=ms(2))
    for nid in range(3):
        assert c.deliveries.sequences[nid] == [("m", i) for i in range(100)]


def test_commit_latency_in_microsecond_band():
    e, c = _steady_cluster()
    lats = []
    _feed(e, c, 50, collect=lats)
    e.run(until=ms(2))
    assert len(lats) == 50
    mean = sum(lats) / len(lats)
    # Leader-side commit in single-digit microseconds (paper: ~10us
    # including the client hop).
    assert us(1) <= mean <= us(10)


def test_follower_commits_trail_leader():
    e, c = _steady_cluster()
    _feed(e, c, 20)
    e.run(until=ms(2))
    ldr, fol = c.nodes[0], c.nodes[1]
    assert ldr.Committed == fol.Committed  # both fully caught up at the end
    assert fol.Committed.cnt == 20


def test_accept_sst_tracks_newest_header_only():
    e, c = _steady_cluster()
    _feed(e, c, 30)
    e.run(until=ms(2))
    for k in range(3):
        h = c.accept_sst.read(0, k)
        assert h.cnt == 30  # cumulative acknowledgment: only the newest


def test_quorum_commit_without_slowest_node():
    """Quorum (not all-node) commit: with one follower descheduled, the
    leader keeps committing at full speed — §4.1's core claim."""
    e, c = _steady_cluster()
    c.nodes[2].deschedule(ms(5))  # node 2 off-CPU for the whole run
    lats = []
    _feed(e, c, 100, collect=lats)
    e.run(until=ms(4))
    assert len(lats) == 100
    assert sum(lats) / len(lats) <= us(10)
    # The descheduled node has delivered nothing yet...
    assert c.deliveries.delivered_count(2) == 0
    # ...but catches up in one batch once rescheduled.
    e.run(until=ms(8))
    assert c.deliveries.delivered_count(2) == 100
    c.deliveries.check_total_order()


def test_pipelining_no_wait_for_acks():
    """The leader can have many messages in flight: submitting a burst
    at once commits it all without per-message round trips."""
    e, c = _steady_cluster()
    lats = []
    for i in range(64):
        t0 = e.now
        c.submit(("burst", i), 10, lambda hdr, t0=t0: lats.append(e.now - t0))
    e.run(until=ms(1))
    assert len(lats) == 64
    # The whole burst commits in little more than the leader's serial
    # send CPU plus one round trip: far less than 64 sequential round
    # trips (~6us each, i.e. ~400us if Acuerdo waited per message).
    assert max(lats) < us(150)


def test_ring_full_backpressure_recovers():
    e, c = _steady_cluster(ring_capacity=16)
    for i in range(200):
        c.submit(("m", i), 10)
    e.run(until=ms(5))
    assert c.deliveries.delivered_count(0) == 200
    c.deliveries.check_total_order()


def test_large_messages_commit():
    e, c = _steady_cluster()
    lats = []
    _feed(e, c, 20, size=1000, collect=lats)
    e.run(until=ms(2))
    assert len(lats) == 20
    small_e, small_c = _steady_cluster()
    small = []
    _feed(small_e, small_c, 20, size=10, collect=small)
    small_e.run(until=ms(2))
    assert sum(lats) / 20 > sum(small) / 20  # 1000B costs more wire time


def test_no_duplication_and_integrity():
    e, c = _steady_cluster()
    _feed(e, c, 50)
    e.run(until=ms(2))
    c.deliveries.check_no_duplication()
    c.deliveries.check_integrity({("m", i) for i in range(50)})


def test_submit_fails_during_election():
    e = Engine(seed=1)
    c = AcuerdoCluster(e, 3)
    # Not started, nobody is leader yet.
    assert c.leader_id() is None
    assert c.submit("x", 10) is False


def test_roles_view():
    e, c = _steady_cluster()
    roles = c.roles()
    assert roles[0] is Role.LEADER
    assert roles[1] is Role.FOLLOWER and roles[2] is Role.FOLLOWER
