"""Catch-up behaviour: the §3 'efficient catch-up' claims, end to end."""

from repro.core import AcuerdoCluster, AcuerdoConfig
from repro.sim import Engine, ms, us


def _cluster(seed=1, **cfg):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, 3, config=AcuerdoConfig(**cfg) if cfg else None)
    c.preseed_leader(0)
    c.start()
    return e, c


def test_descheduled_follower_catches_up_in_batches():
    """Messages accumulate in the ring while the node is off-CPU; one
    poll drains the whole backlog (receiver-side batching)."""
    e, c = _cluster()
    c.nodes[2].deschedule(ms(2))
    for i in range(200):
        c.submit(("m", i), 10)
    e.run(until=ms(1.8))
    assert c.deliveries.delivered_count(2) == 0
    backlog = c.rings[0].receiver(2).backlog
    assert backlog >= 200
    # Within a short window after waking, everything is delivered.
    e.run(until=ms(3.2))
    assert c.deliveries.delivered_count(2) == 200
    c.deliveries.check_total_order()


def test_catchup_is_faster_than_arrival_rate():
    """The §3 premise: the CPU drains batches faster than the network
    fills them, so a lagging node converges instead of diverging."""
    e, c = _cluster()
    # Continuous load while node 2 is repeatedly descheduled.
    def feed(i=0):
        if i < 1500:
            c.submit(("m", i), 10)
            e.schedule(us(4), feed, i + 1)
    feed()
    for k in range(4):
        e.schedule(ms(1 + k), c.nodes[2].deschedule, us(400))
    e.run(until=ms(10))
    # Node 2 fully converged despite the interruptions.
    assert c.deliveries.delivered_count(2) == 1500
    c.deliveries.check_total_order()


def test_cumulative_ack_means_one_push_per_batch():
    """Accepting a batch produces ONE Accept-SST push (the newest header
    acknowledges the rest) — the traffic reduction §3.2 claims over
    Zab's per-message ACKs."""
    e, c = _cluster()
    pushes_before = c.accept_sst.pushes
    c.nodes[1].deschedule(ms(1))
    for i in range(100):
        c.submit(("m", i), 10)
    e.run(until=ms(0.9))
    mid = c.accept_sst.pushes
    e.run(until=ms(2))
    # Node 1 woke with ~100 queued messages; its accept traffic is a
    # handful of pushes, not one per message.
    node1_pushes_after_wake = c.accept_sst.pushes - mid
    assert node1_pushes_after_wake < 20
    assert c.deliveries.delivered_count(1) == 100


def test_evicted_then_recovered_node_rejoins_via_next_epoch():
    """A node silent past eviction re-enters slot accounting and gets a
    diff at the next election."""
    e, c = _cluster(seed=4)
    # Silence node 2 long enough to be evicted (3x leader timeout).
    c.nodes[2].deschedule(ms(3))
    def feed(lo, hi):
        def go(i=lo):
            if i < hi:
                c.submit(("m", i), 10)
                e.schedule(us(10), go, i + 1)
        go()
    feed(0, 100)
    e.run(until=ms(2.5))
    assert 2 in c.nodes[0]._evicted
    # Node 2 wakes: its heartbeats resume and the leader re-admits it.
    e.run(until=ms(6))
    assert 2 not in c.nodes[0]._evicted
    feed(100, 150)
    e.run(until=ms(9))
    assert c.deliveries.delivered_count(2) >= 150
    c.deliveries.check_total_order()
