"""Integration tests for the fully simulated RDMA client path (§4.3)."""

from repro.core import AcuerdoCluster
from repro.core.clientport import AcuerdoClientPort
from repro.sim import Engine, ms, us


def _setup(n=3, seed=1):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, n)
    c.preseed_leader(0)
    port = AcuerdoClientPort(c)
    c.start()
    port.start()
    return e, c, port


def test_request_reply_roundtrip():
    e, c, port = _setup()
    replies = []
    port.request({"op": "put"}, 10, on_reply=replies.append)
    e.run(until=ms(1))
    assert replies == [0]
    assert c.deliveries.delivered_count(0) == 1


def test_client_observed_latency_close_to_delay_model():
    """The fully simulated path should agree with the workloads' fixed
    client_hop_ns model to within poll jitter."""
    e, c, port = _setup()
    lats = []

    def fire(i=0):
        if i >= 50:
            return
        t0 = e.now
        port.request(("m", i), 10, on_reply=lambda r: (lats.append(e.now - t0),
                                                       fire(i + 1)))

    fire()
    e.run(until=ms(5))
    assert len(lats) == 50
    mean = sum(lats) / len(lats)
    modeled = 2 * c.client_hop_ns + us(4)  # hops + commit path
    assert 0.5 * modeled < mean < 3 * modeled, (mean, modeled)


def test_pipelined_requests_all_reply():
    e, c, port = _setup()
    replies = []
    for i in range(64):
        port.request(("b", i), 10, on_reply=replies.append)
    e.run(until=ms(3))
    assert sorted(replies) == list(range(64))
    c.deliveries.check_total_order()


def test_requests_to_non_leader_are_dropped_and_resendable():
    e, c, port = _setup()
    replies = []
    # Force the request at a follower's mailbox.
    port._req_boxes[1].send(port.node_id, (99, "lost", 10), 26)
    e.run(until=ms(1))
    assert replies == []
    assert e.trace.get("acuerdo.client_req_dropped") == 1
    # The client re-sends to the real leader and succeeds.
    port.request("retry", 10, on_reply=replies.append)
    e.run(until=ms(2))
    assert len(replies) == 1


def test_two_clients_interleave():
    e, c, _ = _setup()
    a = AcuerdoClientPort(c)
    b = AcuerdoClientPort(c)
    a.start()
    b.start()
    got = {"a": 0, "b": 0}
    for i in range(10):
        a.request(("a", i), 10, on_reply=lambda r: got.__setitem__("a", got["a"] + 1))
        b.request(("b", i), 10, on_reply=lambda r: got.__setitem__("b", got["b"] + 1))
    e.run(until=ms(3))
    assert got == {"a": 10, "b": 10}
    c.deliveries.check_total_order()
