"""Network partitions: majority progress, minority safety, healing."""

from repro.core import AcuerdoCluster
from repro.core.node import Role
from repro.sim import Engine, ms


def _cluster(n=5, seed=1):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, n)
    c.preseed_leader(0)
    c.start()
    return e, c


def test_majority_side_keeps_committing():
    e, c = _cluster()
    c.fabric.set_partition({0, 1, 2}, {3, 4})
    acked = []
    for i in range(30):
        c.submit(("m", i), 10, lambda x, i=i: acked.append(i))
    e.run(until=ms(3))
    assert len(acked) == 30
    for nid in (0, 1, 2):
        assert c.deliveries.delivered_count(nid) == 30
    for nid in (3, 4):
        assert c.deliveries.delivered_count(nid) == 0


def test_minority_side_cannot_elect():
    e, c = _cluster()
    # Leader (0) lands in the minority: the majority elects a successor;
    # the minority must not produce a second serving leader.
    c.fabric.set_partition({0, 1}, {2, 3, 4})
    e.run(until=ms(5))
    leaders = [i for i, n in c.nodes.items()
               if n.role is Role.LEADER]
    majority_leaders = [l for l in leaders if l in (2, 3, 4)]
    assert len(majority_leaders) == 1
    # Old leader may still think it leads, but nothing it proposes can
    # commit (its quorum is gone): submit through it and verify.
    stuck = []
    c.nodes[0].client_broadcast(("stale", 1), 10, lambda h: stuck.append(1))
    e.run(until=ms(8))
    assert stuck == []


def test_heal_reunifies_and_catches_up():
    e, c = _cluster(seed=2)
    c.fabric.set_partition({0, 1, 2}, {3, 4})
    for i in range(20):
        c.submit(("m", i), 10)
    e.run(until=ms(3))
    c.fabric.heal_partition()
    e.run(until=ms(12))
    # The minority rejoins (via catch-up or a diff) and converges.
    counts = {nid: c.deliveries.delivered_count(nid) for nid in range(5)}
    assert all(v >= 20 for v in counts.values()), counts
    c.deliveries.check_total_order()
    c.deliveries.check_no_duplication()


def test_safety_when_leader_partitioned_mid_stream():
    e, c = _cluster(seed=3)
    acked = []
    for i in range(10):
        c.submit(("pre", i), 10, lambda x, i=i: acked.append(i))
    e.run(until=ms(2))
    c.fabric.set_partition({0}, {1, 2, 3, 4})
    e.run(until=ms(6))
    new = [i for i in (1, 2, 3, 4) if c.nodes[i].role is Role.LEADER]
    assert len(new) == 1
    for i in range(10):
        c.submit(("post", i), 10)
    e.run(until=ms(10))
    c.fabric.heal_partition()
    e.run(until=ms(20))
    c.deliveries.check_total_order()
    # Everything acked pre-partition survived into the new epoch.
    for nid in (1, 2, 3, 4):
        seq = c.deliveries.sequences[nid]
        assert [p for p in seq if p[0] == "pre"] == [("pre", i) for i in range(10)]


def test_tcp_partition_blocks_zab_minority():
    from repro.protocols.zab import ZabCluster

    e = Engine(seed=4)
    c = ZabCluster(e, 3)
    c.start()
    e.run(until=ms(8))
    ldr = c.leader_id()
    others = [i for i in range(3) if i != ldr]
    c.net.set_partition({ldr}, set(others))
    e.run(until=ms(60))
    # The old leader lost its quorum and stepped down; the majority
    # elected among themselves.
    new = c.leader_id()
    assert new in others or new is None
    c.net.heal_partition()
    e.run(until=ms(120))
    assert c.leader_id() is not None
    c.deliveries.check_total_order()
