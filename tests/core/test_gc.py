"""Tests for log garbage collection."""

from repro.core import AcuerdoCluster, AcuerdoConfig
from repro.sim import Engine, ms, us


def _cluster(seed=1, **cfg):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, 3, config=AcuerdoConfig(**cfg))
    c.preseed_leader(0)
    c.start()
    return e, c


def test_log_stays_bounded_on_long_runs():
    e, c = _cluster(gc_period_ns=us(200))
    def feed(i=0):
        if i < 2000:
            c.submit(("m", i), 10)
            e.schedule(us(3), feed, i + 1)
    feed()
    e.run(until=ms(10))
    assert c.deliveries.delivered_count(0) == 2000
    for nid in range(3):
        assert len(c.nodes[nid].log) < 500, (nid, len(c.nodes[nid].log))
    assert e.trace.get("acuerdo.gc_trimmed") > 1000


def test_gc_never_trims_beyond_slowest_peer():
    """A descheduled peer's frozen commit row pins the log — entries it
    has not committed must survive for future diffs."""
    e, c = _cluster(gc_period_ns=us(200))
    c.nodes[2].deschedule(ms(5))
    frozen = c.nodes[2].Committed
    def feed(i=0):
        if i < 300:
            c.submit(("m", i), 10)
            e.schedule(us(5), feed, i + 1)
    feed()
    e.run(until=ms(4))
    # Leader keeps everything above node 2's frozen commit point.
    ldr_log = c.nodes[0].log
    assert len(ldr_log) >= 300
    # Once node 2 wakes and catches up, GC reclaims the backlog.
    e.run(until=ms(12))
    assert c.deliveries.delivered_count(2) == 300
    e.run(until=ms(14))
    assert len(c.nodes[0].log) < 300


def test_failover_after_gc_preserves_safety():
    e, c = _cluster(seed=3, gc_period_ns=us(200))
    def feed(lo, hi):
        def go(i=lo):
            if i < hi:
                c.submit(("m", i), 10)
                e.schedule(us(5), go, i + 1)
        go()
    feed(0, 400)
    e.run(until=ms(5))
    assert e.trace.get("acuerdo.gc_trimmed") > 0
    c.crash(c.leader_id())
    e.run(until=ms(9))
    feed(1000, 1100)
    e.run(until=ms(14))
    c.deliveries.check_total_order()
    live = [i for i in range(3) if not c.nodes[i].crashed]
    for nid in live:
        assert c.deliveries.delivered_count(nid) >= 480
