"""Unit tests for the ordered message log."""

from repro.core import Epoch, Message, MessageLog, MsgHdr


def _msg(round_, leader, cnt, payload="p"):
    return Message(MsgHdr(Epoch(round_, leader), cnt), payload, 10)


def test_insert_and_lookup():
    log = MessageLog()
    m = _msg(0, 1, 1)
    log.insert(m)
    assert log.get(m.hdr) is m
    assert m.hdr in log
    assert len(log) == 1
    assert log.get(_msg(0, 1, 2).hdr) is None


def test_insert_overwrite_same_header():
    log = MessageLog()
    log.insert(_msg(0, 1, 1, "old"))
    log.insert(_msg(0, 1, 1, "new"))
    assert len(log) == 1
    assert log.get(MsgHdr(Epoch(0, 1), 1)).payload == "new"


def test_headers_sorted_regardless_of_insert_order():
    log = MessageLog()
    for cnt in (3, 1, 2):
        log.insert(_msg(0, 1, cnt))
    assert [h.cnt for h in log.headers()] == [1, 2, 3]


def test_cross_epoch_ordering():
    log = MessageLog()
    log.insert(_msg(1, 2, 1))
    log.insert(_msg(0, 1, 5))
    hs = log.headers()
    assert hs[0].e == Epoch(0, 1)
    assert hs[1].e == Epoch(1, 2)


def test_truncate_from_removes_tail():
    log = MessageLog()
    for cnt in range(1, 6):
        log.insert(_msg(0, 1, cnt))
    removed = log.truncate_from(MsgHdr(Epoch(0, 1), 3))
    assert [m.hdr.cnt for m in removed] == [3, 4, 5]
    assert [h.cnt for h in log.headers()] == [1, 2]


def test_truncate_from_no_match_is_noop():
    log = MessageLog()
    log.insert(_msg(0, 1, 1))
    assert log.truncate_from(MsgHdr(Epoch(5, 5), 0)) == []
    assert len(log) == 1


def test_range_default_is_half_open_lo_closed_hi():
    log = MessageLog()
    for cnt in range(1, 6):
        log.insert(_msg(0, 1, cnt))
    got = [m.hdr.cnt for m in log.range(MsgHdr(Epoch(0, 1), 2), MsgHdr(Epoch(0, 1), 4))]
    assert got == [3, 4]


def test_range_inclusive_bounds():
    log = MessageLog()
    for cnt in range(1, 6):
        log.insert(_msg(0, 1, cnt))
    lo, hi = MsgHdr(Epoch(0, 1), 2), MsgHdr(Epoch(0, 1), 4)
    assert [m.hdr.cnt for m in log.range(lo, hi, inclusive_lo=True)] == [2, 3, 4]
    assert [m.hdr.cnt for m in log.range(lo, hi, inclusive_hi=False)] == [3]


def test_range_spans_epochs():
    log = MessageLog()
    log.insert(_msg(0, 1, 8))
    log.insert(_msg(0, 1, 9))
    log.insert(_msg(1, 2, 1))
    got = list(log.range(MsgHdr(Epoch(0, 1), 8), MsgHdr(Epoch(1, 2), 1)))
    assert [m.hdr for m in got] == [MsgHdr(Epoch(0, 1), 9), MsgHdr(Epoch(1, 2), 1)]


def test_trim_below_garbage_collects():
    log = MessageLog()
    for cnt in range(1, 11):
        log.insert(_msg(0, 1, cnt))
    n = log.trim_below(MsgHdr(Epoch(0, 1), 8))
    assert n == 7
    assert [h.cnt for h in log.headers()] == [8, 9, 10]


def test_last_hdr():
    log = MessageLog()
    assert log.last_hdr() is None
    log.insert(_msg(0, 1, 2))
    log.insert(_msg(0, 1, 1))
    assert log.last_hdr() == MsgHdr(Epoch(0, 1), 2)


def test_extend():
    log = MessageLog()
    log.extend(_msg(0, 1, c) for c in (2, 1))
    assert len(log) == 2
