"""Unit tests for Acuerdo's wire types and their total order (Fig. 1)."""

from repro.core import Epoch, MsgHdr, Vote, Message, HDR_ZERO, EPOCH_ZERO, VOTE_ZERO
from repro.core.types import diff_payload_size, HDR_BYTES


def test_epochs_order_by_round_then_leader():
    assert Epoch(0, 1) < Epoch(0, 2)
    assert Epoch(0, 9) < Epoch(1, 0)
    assert Epoch(2, 3) == Epoch(2, 3)
    assert max(Epoch(1, 5), Epoch(2, 0)) == Epoch(2, 0)


def test_headers_order_by_epoch_then_count():
    e01, e02 = Epoch(0, 1), Epoch(0, 2)
    assert MsgHdr(e01, 5) < MsgHdr(e01, 6)
    assert MsgHdr(e01, 999) < MsgHdr(e02, 0)
    assert MsgHdr(e01, 1) > MsgHdr(e01, 0)


def test_header_next_increments_count_within_epoch():
    h = MsgHdr(Epoch(3, 1), 7)
    assert h.next() == MsgHdr(Epoch(3, 1), 8)
    assert h.next() > h


def test_votes_order_by_epoch_then_accepted():
    e1, e2 = Epoch(1, 0), Epoch(1, 1)
    h_lo, h_hi = MsgHdr(EPOCH_ZERO, 1), MsgHdr(EPOCH_ZERO, 2)
    assert Vote(e1, h_hi) < Vote(e2, h_lo)   # epoch dominates
    assert Vote(e1, h_lo) < Vote(e1, h_hi)   # then accepted header


def test_zero_constants_are_minimal():
    assert EPOCH_ZERO <= Epoch(0, 0)
    assert HDR_ZERO <= MsgHdr(Epoch(0, 0), 0)
    assert VOTE_ZERO <= Vote(Epoch(0, 0), HDR_ZERO)


def test_message_is_diff_iff_count_zero():
    e = Epoch(1, 2)
    assert Message(MsgHdr(e, 0), (), 10).is_diff
    assert not Message(MsgHdr(e, 1), "x", 10).is_diff


def test_diff_payload_size_accounts_for_entries():
    e = Epoch(1, 0)
    entries = [Message(MsgHdr(e, i), "p", 100) for i in range(1, 4)]
    assert diff_payload_size(entries) == 3 * (100 + HDR_BYTES) + HDR_BYTES
    assert diff_payload_size([]) == HDR_BYTES


def test_headers_are_hashable_log_keys():
    d = {MsgHdr(Epoch(0, 1), 1): "a"}
    assert d[MsgHdr(Epoch(0, 1), 1)] == "a"
