"""Tests for the YCSB-load generator."""

import pytest

from repro.apps.hashtable import KvOp
from repro.sim import Engine
from repro.workloads.ycsb import YcsbLoadWorkload, ZipfianGenerator


def _zipf(n=1000, theta=0.99, seed=1):
    return ZipfianGenerator(n, theta, Engine(seed=seed).rng("z"))


def test_zipfian_range():
    z = _zipf()
    draws = [z.next() for _ in range(5000)]
    assert all(0 <= d < 1000 for d in draws)


def test_zipfian_is_skewed():
    z = _zipf()
    draws = [z.next() for _ in range(20000)]
    top = sum(1 for d in draws if d < 10)
    # With theta=.99 over 1000 items, the hottest 1% gets a large share.
    assert top / len(draws) > 0.25


def test_zipfian_lower_theta_less_skew():
    z99, z50 = _zipf(theta=0.99), _zipf(theta=0.5)
    hot99 = sum(1 for _ in range(20000) if z99.next() < 10)
    hot50 = sum(1 for _ in range(20000) if z50.next() < 10)
    assert hot99 > 2 * hot50


def test_zipfian_validates_args():
    rng = Engine(seed=1).rng("z")
    with pytest.raises(ValueError):
        ZipfianGenerator(0, 0.99, rng)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, 1.5, rng)


def test_zipfian_deterministic_per_seed():
    a = [_zipf(seed=7).next() for _ in range(10)]
    b = [_zipf(seed=7).next() for _ in range(10)]
    assert a == b


def test_workload_generates_write_ops():
    w = YcsbLoadWorkload(Engine(seed=1), record_count=100, value_size=32)
    ops = list(w.ops(500))
    assert all(isinstance(op, KvOp) for op in ops)
    kinds = {op.kind for op in ops}
    assert kinds <= {"create", "set", "delete"}
    assert "create" in kinds and "set" in kinds


def test_workload_value_size_respected():
    w = YcsbLoadWorkload(Engine(seed=1), record_count=100, value_size=64)
    for op in w.ops(100):
        if op.kind != "delete":
            assert len(op.value) == 64


def test_workload_keys_within_keyspace():
    w = YcsbLoadWorkload(Engine(seed=1), record_count=50)
    for op in w.ops(200):
        assert op.key.startswith("user")
        assert 0 <= int(op.key[4:]) < 50


def test_delete_fraction_approximate():
    w = YcsbLoadWorkload(Engine(seed=1), record_count=100, delete_fraction=0.2)
    ops = list(w.ops(2000))
    frac = sum(1 for op in ops if op.kind == "delete") / len(ops)
    assert 0.15 < frac < 0.25


def test_mixed_workload_read_fractions():
    from repro.workloads.ycsb import YcsbMixedWorkload

    for mix, frac in (("load", 0.0), ("a", 0.5), ("b", 0.95), ("c", 1.0)):
        w = YcsbMixedWorkload(Engine(seed=2), mix=mix, record_count=100)
        ops = [w.next_op() for _ in range(1000)]
        reads = sum(1 for op in ops if isinstance(op, tuple) and op[0] == "get")
        assert abs(reads / 1000 - frac) < 0.06, (mix, reads)


def test_mixed_workload_rejects_unknown_mix():
    from repro.workloads.ycsb import YcsbMixedWorkload

    with pytest.raises(ValueError):
        YcsbMixedWorkload(Engine(seed=1), mix="z")


def test_mixed_workload_writes_are_kvops():
    from repro.workloads.ycsb import YcsbMixedWorkload

    w = YcsbMixedWorkload(Engine(seed=3), mix="a", record_count=50, value_size=16)
    for op in (w.next_op() for _ in range(200)):
        if isinstance(op, KvOp):
            assert op.kind == "set" and len(op.value) == 16
        else:
            assert op[0] == "get" and op[1].startswith("user")
