"""Tests for the closed-loop and open-loop clients."""

from repro.core import AcuerdoCluster
from repro.sim import Engine, ms, us
from repro.workloads.closedloop import ClosedLoopClient
from repro.workloads.openloop import OpenLoopClient


def _system(seed=1, n=3):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, n)
    c.preseed_leader(0)
    c.start()
    return e, c


def test_closed_loop_keeps_window_outstanding():
    e, c = _system()
    client = ClosedLoopClient(c, window=4, message_size=10)
    client.start()
    e.run(until=ms(2))
    client.stop()
    # outstanding = sent - completed never exceeds the window
    assert 0 <= client.sent - client.completed <= 4


def test_closed_loop_latency_includes_client_hops():
    e, c = _system()
    client = ClosedLoopClient(c, window=1, message_size=10)
    res = client.run_for(ms(2))
    assert res.completed > 50
    # Client-observed latency must exceed 2x the one-way hop.
    assert res.mean_latency_us * 1000 > 2 * c.client_hop_ns


def test_closed_loop_throughput_scales_with_window_until_knee():
    t = {}
    for w in (1, 4):
        e, c = _system()
        client = ClosedLoopClient(c, window=w, message_size=10)
        t[w] = client.run_for(ms(3)).throughput_mb_per_sec
    assert t[4] > 2.5 * t[1]


def test_closed_loop_warmup_excluded():
    e, c = _system()
    client = ClosedLoopClient(c, window=2, message_size=10, warmup=10)
    res = client.run_for(ms(2))
    assert res.completed == len(res.latencies_ns) + 10


def test_closed_loop_result_stats():
    e, c = _system()
    client = ClosedLoopClient(c, window=2, message_size=100)
    res = client.run_for(ms(2))
    assert res.message_size == 100
    assert res.throughput_mb_per_sec > 0
    assert res.percentile_latency_us(99) >= res.percentile_latency_us(50)


def test_closed_loop_retries_without_leader():
    e = Engine(seed=1)
    c = AcuerdoCluster(e, 3)
    c.start()  # cold: election in progress at client start
    client = ClosedLoopClient(c, window=2, message_size=10)
    client.start()
    e.run(until=ms(3))
    client.stop()
    assert client.completed > 0  # retried through the election


def test_open_loop_fixed_rate():
    e, c = _system()
    client = OpenLoopClient(c, period_ns=us(10), message_size=10)
    client.start()
    e.run(until=ms(1))
    client.stop()
    assert 90 <= client.sent <= 110
    assert client.committed > 80


def test_open_loop_measures_commit_gap_across_failover():
    e, c = _system(n=5, seed=3)
    client = OpenLoopClient(c, period_ns=us(10), message_size=10)
    client.start()
    e.run(until=ms(1))
    baseline_gap = client.longest_commit_gap()
    c.crash(c.leader_id())
    e.run(until=ms(5))
    client.stop()
    gap = client.longest_commit_gap()
    # The fail-over window dominates the largest observed gap.
    assert gap > 3 * baseline_gap
    assert client.dropped >= 0


def test_open_loop_default_touches_no_rng():
    """The fixed/unkeyed default must not create an RNG stream — that is
    what keeps historical runs bit-identical to pre-mode clients."""
    e, c = _system()
    client = OpenLoopClient(c, period_ns=us(10), message_size=10)
    assert client._rng is None
    client.start()
    e.run(until=ms(1))
    assert client.committed > 0


def test_open_loop_poisson_is_seeded_and_deterministic():
    def run():
        e, c = _system(seed=9)
        client = OpenLoopClient(c, period_ns=us(10), message_size=10,
                                arrival="poisson")
        client.start()
        e.run(until=ms(2))
        return client.sent, client.committed, tuple(client.commit_times)

    assert run() == run()


def test_open_loop_poisson_varies_interarrivals():
    e, c = _system(seed=3)
    client = OpenLoopClient(c, period_ns=us(10), message_size=10,
                            arrival="poisson")
    client.start()
    e.run(until=ms(2))
    gaps = {b - a for a, b in zip(client.commit_times, client.commit_times[1:])}
    assert len(gaps) > 1   # fixed mode would commit on a strict cadence


def test_open_loop_zipfian_keys_are_skewed_and_in_range():
    e, c = _system(seed=5)
    keys = []
    client = OpenLoopClient(c, period_ns=us(5), message_size=10,
                            key_dist="zipfian", key_space=100, skew=0.99,
                            payload_fn=lambda i, k: keys.append(k) or ("m", i, k))
    client.start()
    e.run(until=ms(3))
    assert keys and all(0 <= k < 100 for k in keys)
    top = max(keys.count(k) for k in set(keys))
    assert top > len(keys) / 20   # hottest key far above uniform 1/100


def test_open_loop_uniform_keys_cover_the_space():
    e, c = _system(seed=5)
    client = OpenLoopClient(c, period_ns=us(5), message_size=10,
                            key_dist="uniform", key_space=4)
    client.start()
    e.run(until=ms(2))
    # keyed default payloads are ("ol", i, key)
    assert client.sent > 20


def test_open_loop_records_latencies():
    e, c = _system()
    client = OpenLoopClient(c, period_ns=us(10), message_size=10)
    client.start()
    e.run(until=ms(1))
    assert len(client.latencies_ns) == client.committed
    assert all(lat > 0 for lat in client.latencies_ns)


def test_open_loop_rejects_unknown_modes():
    import pytest

    e, c = _system()
    with pytest.raises(ValueError):
        OpenLoopClient(c, period_ns=us(10), message_size=10, arrival="burst")
    with pytest.raises(ValueError):
        OpenLoopClient(c, period_ns=us(10), message_size=10, key_dist="pareto")


def _run_openloop_observed(chain_flag, seed=3, arrival="poisson",
                           key_dist="uniform", chain_batch=64):
    """One open-loop run under the given REPRO_CHAIN flag: the
    per-message observables plus the engine's event/heap counters."""
    import os

    prior = os.environ.get("REPRO_CHAIN")
    os.environ["REPRO_CHAIN"] = chain_flag
    try:
        e, c = _system(seed=seed)
        client = OpenLoopClient(c, period_ns=us(5), message_size=10,
                                arrival=arrival, key_dist=key_dist,
                                key_space=64, chain_batch=chain_batch)
        client.start()
        e.run(until=ms(2))
        client.stop()
        e.run(until=ms(2) + us(50))
        observed = (client.sent, client.committed, client.dropped,
                    tuple(client.commit_times), tuple(client.latencies_ns),
                    repr(e.trace.fingerprint()), e.events_executed)
        return observed, e.heap_pushes
    finally:
        if prior is None:
            os.environ.pop("REPRO_CHAIN", None)
        else:
            os.environ["REPRO_CHAIN"] = prior


def test_open_loop_batched_arrivals_bit_identical():
    """Fused arrival batches must reproduce the per-tick schedule
    exactly — same submissions, commits, latencies, fingerprint and
    executed-event count — while paying fewer heap pushes."""
    fused, fused_pushes = _run_openloop_observed("1")
    unfused, unfused_pushes = _run_openloop_observed("0")
    assert fused == unfused
    assert fused_pushes < unfused_pushes


def test_open_loop_batched_fixed_rate_bit_identical():
    """The batch path also covers the RNG-free fixed-rate client."""
    fused, _ = _run_openloop_observed("1", arrival="fixed", key_dist=None)
    unfused, _ = _run_openloop_observed("0", arrival="fixed", key_dist=None)
    assert fused == unfused


def test_open_loop_custom_payload_fn_keeps_per_tick_path():
    """A stateful payload_fn must be called at its tick's time, so the
    client declines to batch (payloads would be pre-built early)."""
    import os

    assert os.environ.get("REPRO_CHAIN", "1") != "0"
    e, c = _system()
    calls = []
    client = OpenLoopClient(c, period_ns=us(10), message_size=10,
                            payload_fn=lambda i: calls.append(e.now) or ("m", i))
    client.start()
    e.run(until=ms(1))
    client.stop()
    # One call per submission, at strictly increasing tick times.
    assert len(calls) == client.sent
    assert all(a < b for a, b in zip(calls, calls[1:]))
