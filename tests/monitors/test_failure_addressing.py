"""Unified ``(group, node)`` failure addressing and the CLI safety flags.

One address grammar serves every text boundary — ``"1"`` (flat node),
``"3:1"`` (group 3's node 1), ``"addr@ms"`` crash-schedule entries —
and the :class:`FailureInjector` refuses ambiguous flat ids in sharded
deployments instead of silently picking a group.
"""

from __future__ import annotations

import pytest

from repro.sim.failure import (
    FailureInjector,
    format_addr,
    parse_addr,
    parse_crash,
    schedule_crashes,
)


# ----------------------------------------------------------- the grammar


def test_parse_addr_accepts_every_spelling():
    assert parse_addr("1") == 1
    assert parse_addr("3:1") == (3, 1)
    assert parse_addr(7) == 7
    assert parse_addr((2, 0)) == (2, 0)


@pytest.mark.parametrize("bad", ["", "a", "1:b", "1:2:3", (1, 2, 3), (1, "x")])
def test_parse_addr_rejects_malformed_addresses(bad):
    with pytest.raises(ValueError):
        parse_addr(bad)


def test_format_addr_round_trips():
    for spelled in ("0", "17", "3:1", "0:0"):
        assert format_addr(parse_addr(spelled)) == spelled
        assert format_addr(spelled) == spelled


def test_parse_crash_entries():
    assert parse_crash("0@5") == (0, 5.0)
    assert parse_crash("3:1@2.5") == ((3, 1), 2.5)
    for bad in ("0", "0@", "0@soon", "0@-1", "x@5"):
        with pytest.raises(ValueError):
            parse_crash(bad)


def test_runspec_validates_crash_entries_eagerly():
    from repro.harness import RunSpec

    spec = RunSpec(system="acuerdo", crashes=["0@5", "1:2@3"])
    assert spec.crashes == ("0@5", "1:2@3")    # normalised to a tuple
    with pytest.raises(ValueError):
        RunSpec(system="acuerdo", crashes=("0",))


# ------------------------------------------------------------- injection


class _FakeProc:
    """Just enough Process surface for injector address resolution."""

    def __init__(self, node_id, group=None):
        self.node_id = node_id
        self.group = group
        self.crashed = False

    def crash(self):
        self.crashed = True

    @property
    def addr(self):
        return self.node_id if self.group is None else (self.group,
                                                        self.node_id)


class _FakeEngine:
    def __init__(self):
        self.scheduled = []

    def schedule_at(self, t, fn, *args):
        self.scheduled.append((t, fn, args))


def test_bare_int_is_ambiguous_across_groups_and_names_the_alternatives():
    procs = [_FakeProc(n, group=g) for g in (0, 1) for n in (0, 1, 2)]
    inj = FailureInjector(_FakeEngine(), procs)
    with pytest.raises(KeyError) as exc:
        inj.crash_at(0, 1)
    msg = str(exc.value)
    assert "ambiguous" in msg and "groups [0, 1]" in msg
    assert "(0, 1)" in msg and "'1:1'" in msg
    # The hierarchical spellings all resolve.
    assert inj._proc((1, 2)) is procs[5]
    assert inj._proc("0:2") is procs[2]


def test_bare_int_keeps_its_meaning_in_single_group_runs():
    procs = [_FakeProc(n) for n in range(3)]
    inj = FailureInjector(_FakeEngine(), procs)
    assert inj._proc(2) is procs[2]
    assert inj._proc("2") is procs[2]
    with pytest.raises(KeyError):
        inj._proc(9)


def test_alive_reports_hierarchical_addresses_in_sharded_runs():
    procs = [_FakeProc(n, group=0) for n in range(2)]
    inj = FailureInjector(_FakeEngine(), procs)
    procs[0].crashed = True
    assert inj.alive() == [(0, 1)]


def test_schedule_crashes_applies_a_runspec_schedule():
    from repro.harness import RunSpec, build_from_spec, settle
    from repro.sim import Engine, ms

    engine = Engine(seed=1)
    system = build_from_spec(RunSpec(system="acuerdo", n=3), engine)
    settle(system)
    inj = schedule_crashes(engine, system.processes(), ["2@1"])
    assert inj is not None
    engine.run(until=engine.now + ms(2))
    assert sorted(inj.alive()) == [0, 1]
    assert schedule_crashes(engine, system.processes(), []) is None


# ----------------------------------------------------------------- CLI


def test_cli_shootout_check_invariants_exits_zero(capsys):
    from repro.__main__ import main

    rc = main(["shootout", "--systems", "acuerdo", "--messages", "80",
               "--check-invariants", "--crash", "2@2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "violations" in out      # the monitored column is rendered


def test_cli_shard_check_invariants_exits_zero(capsys):
    from repro.__main__ import main

    rc = main(["--workers", "1", "shard", "--shards", "2", "--skews", "0.0",
               "--users", "1000", "--rate", "100000", "--duration-ms", "2.0",
               "--check-invariants"])
    assert rc == 0
    assert "violations" in capsys.readouterr().out


def test_cli_trace_check_invariants_exits_zero(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    rc = main(["trace", "--system", "acuerdo", "--duration-ms", "2.0",
               "--check-invariants", "--out", str(out)])
    assert rc == 0
    assert out.exists()


def test_cli_rejects_malformed_crash_flag():
    from repro.__main__ import main

    with pytest.raises(ValueError):
        main(["shootout", "--systems", "acuerdo", "--messages", "20",
              "--crash", "nonsense"])
