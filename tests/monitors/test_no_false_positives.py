"""Monitors-on sweeps over healthy systems: zero violations, identical
behaviour.

The monitors' value depends on silence when nothing is wrong — a
false positive on any of the nine golden systems, on a sharded farm or
across election churn would make ``--check-invariants`` unusable as a
CI gate.  These runs also pin the zero-interference contract: a
monitored run must produce the bit-identical measurement of the same
spec unmonitored (monitors observe, never steer).
"""

from __future__ import annotations

import pytest

from repro.harness import RunSpec
from repro.harness.factory import EXTENSION_SYSTEMS, SYSTEMS
from repro.harness.fig8 import point

ALL_SYSTEMS = SYSTEMS + EXTENSION_SYSTEMS


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_golden_systems_run_clean_under_monitors(name):
    spec = RunSpec(system=name, n=3, payload_bytes=10, window=4,
                   check_invariants=True)
    collect: dict = {}
    p = point(spec, min_completions=120, collect=collect)
    assert p.completed >= 120, (name, p.completed)
    assert collect["violations"] == 0, name


def test_monitored_run_is_bit_identical_to_unmonitored():
    spec = RunSpec(system="acuerdo", n=3, payload_bytes=100, window=8)
    plain = point(spec, min_completions=200)
    checked = point(spec.replace(check_invariants=True), min_completions=200)
    assert checked == plain


def test_follower_crash_run_stays_clean():
    # Crash a follower mid-run: the quorum path keeps committing and the
    # monitors must not mistake the survivor re-quorum for a violation.
    spec = RunSpec(system="acuerdo", n=3, payload_bytes=10, window=4,
                   crashes=("2@3",), check_invariants=True)
    collect: dict = {}
    p = point(spec, min_completions=200, collect=collect)
    assert p.completed >= 200
    assert collect["violations"] == 0


def test_election_churn_stays_clean():
    # Repeated leader kills exercise the leader/term events hardest;
    # elections() calls engine.monitors.check() itself, so a false
    # positive raises here.
    from repro.harness.table1 import election_spec, elections

    spec = election_spec(3, kills=2, kill_period_ms=2.0)
    durations = elections(spec.replace(check_invariants=True), kills=2)
    # Both kills fire; at least one fail-over completes inside the short
    # run (the monitors audited all of the churn either way).
    assert len(durations) >= 1


def test_five_node_churn_with_slow_nodes_stays_clean():
    # n=5 adds slow followers and exercises the heartbeat-eviction /
    # epoch re-baselining path: a deposed leader waking from its kill
    # window gets its ring floor jumped administratively.  Those floor
    # jumps release unaccepted old-epoch slots (recovered by the next
    # epoch's diff) and must be tagged admin, not reported as early
    # release.
    from repro.harness.table1 import election_spec, elections

    spec = election_spec(5, kills=2, kill_period_ms=4.0)
    durations = elections(spec.replace(check_invariants=True), kills=2)
    assert len(durations) >= 1


def test_eight_shard_farm_runs_clean_per_group():
    from repro.harness.hostperf import SHARD_POINT
    from repro.harness.shardsweep import shard_point

    spec = SHARD_POINT.replace(duration_ms=4.0, check_invariants=True)
    pt = shard_point(spec)
    assert pt.shards == 8 and pt.committed > 0
    assert pt.violations == 0


def test_sharded_farm_monitors_every_group_independently():
    # The registry must hold one monitor set per consensus group — the
    # per-shard instances are what let one forged group fire without
    # implicating its neighbours.
    from repro.harness.hostperf import SHARD_POINT
    from repro.monitors import MonitorRegistry
    from repro.shard import ShardedDeployment

    spec = SHARD_POINT.replace(shards=4, duration_ms=2.0,
                               check_invariants=True)
    engine = spec.make_engine()
    assert isinstance(engine.monitors, MonitorRegistry)
    dep = ShardedDeployment(engine, system=spec.system, shards=4, n=spec.n)
    dep.settle()
    assert set(engine.monitors.groups) == {0, 1, 2, 3}
    # Forge a second leader inside shard 2 only.
    engine.monitors.ingest(2, "acuerdo", 3, "leader", 0, t=engine.now,
                           term="forged")
    engine.monitors.ingest(2, "acuerdo", 3, "leader", 1, t=engine.now,
                           term="forged")
    vs = engine.monitors.finish()
    assert [v.group for v in vs] == [2]
