"""Fault-seeded monitor tests: every shipped monitor fires on its
seeded fault, with the right witness — and stays silent on the
corresponding healthy history.

Histories are forged through :meth:`MonitorRegistry.ingest`, the
fault-seeding entry point: the simulator itself never produces these
event sequences (that is the point), so each test states the adversarial
history explicitly.
"""

from __future__ import annotations

import pytest

from repro.monitors import (
    CommitQuorumAccept,
    DEFAULT_MONITORS,
    LogPrefixAgreement,
    Monitor,
    MonitorRegistry,
    SingleLeaderPerTerm,
    SlotReuseSafety,
    SstMonotonic,
    Violation,
)


def _registry(factories=None) -> MonitorRegistry:
    return MonitorRegistry(engine=None, factories=factories)


def _only(registry: MonitorRegistry, monitor_name: str) -> Violation:
    """The run's single violation, asserted to come from ``monitor_name``."""
    vs = registry.finish()
    assert len(vs) == 1, [str(v) for v in vs]
    assert vs[0].monitor == monitor_name
    return vs[0]


# --------------------------------------------------------- single leader


def test_forged_second_leader_fires_with_both_claims_as_witness():
    r = _registry()
    first = r.ingest(None, "acuerdo", 3, "leader", 0, t=100, term=7)
    second = r.ingest(None, "acuerdo", 3, "leader", 2, t=250, term=7)
    v = _only(r, "single_leader_per_term")
    assert v.witness == (first, second)
    assert v.t == 250 and v.protocol == "acuerdo" and v.group is None
    assert "term 7" in v.detail and "node 0" in v.detail and "node 2" in v.detail


def test_releader_same_node_and_new_terms_are_clean():
    r = _registry()
    r.ingest(None, "etcd", 5, "leader", 1, t=10, term=3)
    r.ingest(None, "etcd", 5, "leader", 1, t=20, term=3)   # re-announce
    r.ingest(None, "etcd", 5, "leader", 4, t=30, term=4)   # new term
    assert r.finish() == []


def test_leader_claims_are_per_group():
    # The same term claimed by different nodes in *different* groups is
    # two independent elections, not a violation.
    r = _registry()
    r.ingest(0, "acuerdo", 3, "leader", 0, t=10, term=1)
    r.ingest(1, "acuerdo", 3, "leader", 2, t=11, term=1)
    assert r.finish() == []
    assert set(r.groups) == {0, 1}


# --------------------------------------------------------- log prefix


def test_divergent_delivery_fires_with_position_and_both_payloads():
    r = _registry()
    a, b = object(), object()
    first = r.ingest(None, "zookeeper", 3, "deliver", 0, t=10, key=a)
    r.ingest(None, "zookeeper", 3, "deliver", 1, t=11, key=a)
    r.ingest(None, "zookeeper", 3, "deliver", 0, t=20, key=b)
    # Node 2 starts delivering from position 0 with the wrong payload —
    # the truncated/diverged-follower fault.
    bad = r.ingest(None, "zookeeper", 3, "deliver", 2, t=30, key=b)
    v = _only(r, "log_prefix_agreement")
    assert v.witness == (first, bad)
    assert "position 0" in v.detail and v.t == 30


def test_prefix_related_logs_at_different_lengths_are_clean():
    r = _registry()
    keys = ["k0", "k1", "k2"]
    for i, k in enumerate(keys):
        r.ingest(None, "acuerdo", 3, "deliver", 0, t=i, key=k)
    # A trailing node that has only delivered a prefix is fine.
    r.ingest(None, "acuerdo", 3, "deliver", 1, t=10, key="k0")
    r.ingest(None, "acuerdo", 3, "deliver", 1, t=11, key="k1")
    assert r.finish() == []


def test_equal_but_distinct_payload_objects_are_clean():
    # Forged events may rebuild payloads; value equality must suffice.
    r = _registry()
    r.ingest(None, "apus", 3, "deliver", 0, t=1, key=(1, "x"))
    r.ingest(None, "apus", 3, "deliver", 1, t=2, key=(1, "x"))
    assert r.finish() == []


# --------------------------------------------------------- commit quorum


def test_early_commit_fires_with_commit_and_accepts_as_witness():
    r = _registry()
    acc = r.ingest(None, "libpaxos", 3, "accept", 0, t=5, slot=9)
    commit = r.ingest(None, "libpaxos", 3, "commit", 0, t=6, slot=9)
    v = _only(r, "commit_quorum_accept")
    assert v.witness[0] is commit
    assert acc in v.witness
    assert "only 1 accept(s)" in v.detail and "quorum is 2" in v.detail


def test_commit_covered_by_cumulative_frontiers_is_clean():
    r = _registry()
    r.ingest(None, "acuerdo", 5, "accept", 0, t=1, slot=12)
    r.ingest(None, "acuerdo", 5, "accept", 1, t=2, slot=12)
    r.ingest(None, "acuerdo", 5, "accept", 3, t=3, slot=15)
    r.ingest(None, "acuerdo", 5, "commit", 0, t=4, slot=12)  # 3 >= quorum(5)=3
    assert r.finish() == []


def test_quorum_for_a_different_value_does_not_justify_the_commit():
    # Per-instance accepts carry value identity: two accepts of value X
    # must not cover a commit of value Y at the same slot.
    r = _registry()
    r.ingest(None, "libpaxos", 3, "accept_one", 0, t=1, slot=4, key="X")
    r.ingest(None, "libpaxos", 3, "accept_one", 1, t=2, slot=4, key="X")
    r.ingest(None, "libpaxos", 3, "commit", 2, t=3, slot=4, key="Y")
    v = _only(r, "commit_quorum_accept")
    assert "slot 4" in v.detail


def test_truncation_lowers_the_frontier_before_commit_checks():
    r = _registry()
    r.ingest(None, "etcd", 3, "accept", 0, t=1, slot=10)
    r.ingest(None, "etcd", 3, "accept", 1, t=2, slot=10)
    r.ingest(None, "etcd", 3, "commit", 0, t=3, slot=8)   # clean: 2 accepts
    # A state-transfer install truncates node 1 back below slot 9...
    r.ingest(None, "etcd", 3, "accept_trunc", 1, t=4, slot=3)
    # ...so a commit of slot 9 is now covered by node 0 alone.
    r.ingest(None, "etcd", 3, "commit", 0, t=5, slot=9)
    v = _only(r, "commit_quorum_accept")
    assert "slot 9" in v.detail


# --------------------------------------------------------- slot reuse


def test_bind_over_unreleased_slot_fires():
    r = _registry()
    prior = r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=1, slot="m0",
                     seq=0, extra=4)
    for s in range(1, 4):
        r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=1 + s, slot=f"m{s}",
                 seq=s)
    # Capacity 4, floor still 0: seq 4 wraps onto live seq 0.
    wrap = r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=9, slot="m4", seq=4)
    v = _only(r, "slot_reuse_safety")
    assert v.witness == (prior, wrap)
    assert "seq 4" in v.detail and "unreleased seq 0" in v.detail


def test_release_before_quorum_accept_fires():
    # Standalone monitor (no CommitQuorumAccept sibling to alias).
    r = _registry(factories=[SlotReuseSafety])
    bind = r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=1, slot="hdr0",
                    seq=0, extra=8)
    r.ingest(None, "acuerdo", 3, "accept", 0, t=2, slot="hdr0")
    rel = r.ingest(None, "acuerdo", 3, "slot_release", 0, t=3, seq=1)
    v = _only(r, "slot_reuse_safety")
    assert v.witness == (bind, rel)
    assert "before a quorum of 2" in v.detail


def test_administrative_release_waives_quorum_obligation():
    # Eviction / epoch re-baselining jumps the floor past slots nobody
    # accepted; the freed tail is recovered by the next epoch's diff,
    # so an ``extra="admin"`` release must not trip the quorum check.
    r = _registry(factories=[SlotReuseSafety])
    r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=1, slot="hdr0", seq=0,
             extra=8)
    r.ingest(None, "acuerdo", 3, "slot_release", 0, t=2, seq=1, extra="admin")
    assert r.finish() == []


def test_administrative_release_still_advances_floor_for_overwrite_check():
    # The admin waiver pops bound slots and moves the floor, so the
    # overwrite hazard keeps its exact arithmetic afterwards.
    r = _registry(factories=[SlotReuseSafety])
    for seq in range(4):
        r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=seq, slot=seq,
                 seq=seq, extra=4)
    r.ingest(None, "acuerdo", 3, "slot_release", 0, t=5, seq=2, extra="admin")
    # Floor is now 2: seq 5 sits exactly on live seq 1? No — live is
    # seq 5 - cap = 1 < floor 2, so this bind is clean...
    r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=6, slot=5, seq=5)
    assert r.finish() == []
    # ...but seq 6 wraps onto unreleased seq 2 and still fires.
    r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=7, slot=6, seq=6)
    v = _only(r, "slot_reuse_safety")
    assert "unreleased seq 2" in v.detail


def test_release_after_quorum_accept_is_clean_including_wraparound():
    r = _registry(factories=[SlotReuseSafety])
    for seq in range(12):                     # 3 laps of a capacity-4 ring
        r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=seq, slot=seq,
                 seq=seq, extra=4)
        r.ingest(None, "acuerdo", 3, "accept", 0, t=seq, slot=seq)
        r.ingest(None, "acuerdo", 3, "accept", 1, t=seq, slot=seq)
        r.ingest(None, "acuerdo", 3, "slot_release", 0, t=seq, seq=seq + 1)
    assert r.finish() == []


def test_filler_slots_carry_no_release_obligation():
    r = _registry(factories=[SlotReuseSafety])
    r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=1, slot=None, seq=0,
             extra=4)
    r.ingest(None, "acuerdo", 3, "slot_release", 0, t=2, seq=1)
    assert r.finish() == []


def test_slot_reuse_aliases_commit_quorum_accept_in_the_default_set():
    # With both monitors registered (the default set), SlotReuseSafety
    # shares CommitQuorumAccept's accept bookkeeping and unsubscribes
    # from the accept kinds — but must still see accepts routed only to
    # its sibling.
    r = _registry()
    r.ingest(None, "acuerdo", 3, "accept", 0, t=1, slot="h0")
    g = r.groups[None]
    srs = next(m for m in g.monitors if isinstance(m, SlotReuseSafety))
    cqa = next(m for m in g.monitors if isinstance(m, CommitQuorumAccept))
    assert srs._cum is cqa._cum and srs._per is cqa._per
    assert srs.KINDS == frozenset({"slot_bind", "slot_release"})
    assert g.handlers["accept"] == [cqa.on_mark]
    r.ingest(None, "acuerdo", 3, "accept", 1, t=2, slot="h0")
    r.ingest(None, "acuerdo", 3, "slot_bind", 0, t=3, slot="h0", seq=0,
             extra=8)
    r.ingest(None, "acuerdo", 3, "slot_release", 0, t=4, seq=1)
    assert r.finish() == []


# ------------------------------------------------------ sst monotonicity


def test_sst_row_going_backwards_fires():
    r = _registry()
    r.ingest(None, "acuerdo", 3, "sst_row", 1, t=10,
             key="accept", seq=0, slot=7, extra=3)       # 3 -> 7: fine
    r.ingest(None, "acuerdo", 3, "sst_row", 1, t=20,
             key="accept", seq=0, slot=2, extra=7)       # 7 -> 2: replay
    v = _only(r, "sst_monotonic")
    assert "went" in v.detail and "backwards" in v.detail
    assert "'accept'" in v.detail and "row 0" in v.detail


def test_monotone_and_incomparable_sst_writes_stay_clean():
    r = _registry()
    r.ingest(None, "acuerdo", 3, "sst_row", 1, t=10,
             key="accept", seq=0, slot=5, extra=5)       # idempotent
    r.ingest(None, "acuerdo", 3, "sst_row", 1, t=20,
             key="accept", seq=0, slot=9, extra=5)       # forward
    r.ingest(None, "acuerdo", 3, "sst_row", 2, t=30,
             key="vote", seq=1, slot=(1, 2), extra=None) # first write
    r.ingest(None, "acuerdo", 3, "sst_row", 2, t=40,
             key="vote", seq=1, slot="x", extra=(1, 2))  # incomparable
    assert r.finish() == []


# ----------------------------------------------------- registry plumbing


def test_kind_dispatch_only_reaches_subscribers():
    seen: list[str] = []

    class CommitsOnly(Monitor):
        name = "commits_only"
        KINDS = frozenset({"commit"})

        def on_mark(self, ev):
            seen.append(ev.kind)

    class Everything(Monitor):
        name = "everything"
        KINDS = None

        def on_mark(self, ev):
            seen.append(f"*{ev.kind}")

    r = _registry(factories=[CommitsOnly, Everything])
    r.ingest(None, "acuerdo", 3, "accept", 0, t=1, slot=1)
    r.ingest(None, "acuerdo", 3, "commit", 0, t=2, slot=1)
    assert seen == ["*accept", "commit", "*commit"]
    assert r.events_seen == 2


def test_finish_folds_violation_counts_into_metrics():
    from repro.obs.metrics import MetricsRegistry

    r = _registry()
    r.ingest(None, "acuerdo", 3, "leader", 0, t=1, term=1)
    r.ingest(None, "acuerdo", 3, "leader", 1, t=2, term=1)
    metrics = MetricsRegistry()
    r.finish(metrics)
    snap = metrics.snapshot()
    assert snap["monitor.single_leader_per_term.violations"] == 1
    assert snap["monitor.log_prefix_agreement.violations"] == 0
    assert snap["monitor.commit_quorum_accept.violations"] == 0
    assert snap["monitor.slot_reuse_safety.violations"] == 0
    assert snap["monitor.violations"] == 1
    assert snap["monitor.events"] == 2


def test_check_raises_with_every_violation_listed():
    r = _registry()
    r.ingest(None, "mu", 3, "leader", 0, t=1, term=1)
    r.ingest(None, "mu", 3, "leader", 1, t=2, term=1)
    with pytest.raises(AssertionError) as exc:
        r.check()
    assert "single_leader_per_term" in str(exc.value)
    assert "1 safety violation" in str(exc.value)


def test_violation_str_names_shard_and_monitor():
    r = _registry()
    r.ingest(4, "acuerdo", 3, "leader", 0, t=9, term=2)
    r.ingest(4, "acuerdo", 3, "leader", 1, t=10, term=2)
    (v,) = r.finish()
    s = str(v)
    assert "[single_leader_per_term]" in s and "shard 4" in s
    assert "acuerdo" in s and "@ 10 ns" in s


def test_default_monitors_want_no_spans_and_on_span_short_circuits():
    r = _registry()
    r.ingest(None, "acuerdo", 3, "commit", 0, t=1, slot=1)
    assert not r.spans_wanted
    # A span-shaped object with no usable label must not even be parsed.
    r.on_span(object())
    assert r.finish(None) is r.violations


def test_span_routing_reaches_overriding_monitors_by_shard_label():
    got: list[tuple] = []

    class SpanTap(Monitor):
        name = "span_tap"
        KINDS = frozenset()

        def on_span(self, span):
            got.append((self.ctx.group, span.label))

    class _Span:
        def __init__(self, label):
            self.label = label

    r = _registry(factories=[SpanTap])
    r.ingest(None, "acuerdo", 3, "commit", 0, t=1, slot=1)   # group None
    r.ingest(2, "acuerdo", 3, "commit", 0, t=1, slot=1)      # group 2
    assert r.spans_wanted
    r.on_span(_Span("m17"))                 # unsharded label -> group None
    r.on_span(_Span("shard.2.m4"))          # sharded label -> group 2
    r.on_span(_Span("shard.9.m1"))          # unknown group: dropped
    assert got == [(None, "m17"), (2, "shard.2.m4")]


def test_default_monitor_set_is_the_shipped_invariants():
    assert DEFAULT_MONITORS == (SingleLeaderPerTerm, LogPrefixAgreement,
                                CommitQuorumAccept, SlotReuseSafety,
                                SstMonotonic)
