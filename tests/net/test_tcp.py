"""Unit tests for the TCP substrate."""

from repro.net import TcpNetwork, TcpParams
from repro.rdma import RdmaParams
from repro.sim import Engine, Process, ProcessConfig, us


class Echo(Process):
    """Process that records what it drains from its endpoint."""

    def __init__(self, engine, node_id, net):
        super().__init__(engine, node_id,
                         ProcessConfig(poll_interval_ns=200, poll_jitter_ns=0))
        self.ep = net.attach(self)
        self.got = []

    def on_poll(self):
        for src, payload in self.ep.drain():
            self.got.append((src, payload, self.engine.now))


def _pair(params=None, seed=1):
    e = Engine(seed=seed)
    net = TcpNetwork(e, params)
    a, b = Echo(e, 0, net), Echo(e, 1, net)
    a.start()
    b.start()
    return e, net, a, b


def test_message_delivered_to_inbox():
    e, net, a, b = _pair()
    net.send(0, 1, "hello", 100)
    e.run(until=us(100))
    assert [(s, p) for s, p, _ in b.got] == [(0, "hello")]


def test_fifo_per_channel():
    e, net, a, b = _pair()
    for i in range(20):
        net.send(0, 1, i, 64)
    e.run(until=us(500))
    assert [p for _, p, _ in b.got] == list(range(20))


def test_tcp_latency_an_order_of_magnitude_above_rdma():
    p = TcpParams()
    e, net, a, b = _pair(p)
    net.send(0, 1, "x", 10)
    e.run(until=us(200))
    tcp_latency = b.got[0][2]
    r = RdmaParams()
    rdma_latency = r.nic_tx_ns + r.tx_serialization_ns(10) + r.propagation_ns + r.nic_rx_ns
    assert tcp_latency > 8 * rdma_latency


def test_send_charges_sender_cpu():
    e, net, a, b = _pair()
    before = a.cpu.busy_until
    net.send(0, 1, "x", 10)
    assert a.cpu.busy_until >= before + net.params.kernel_send_cpu_ns


def test_recv_charges_receiver_cpu():
    e, net, a, b = _pair()
    for i in range(10):
        net.send(0, 1, i, 10)
    e.run(until=us(500))
    # Receiving 10 messages cost at least 10 recv syscalls of CPU.
    assert b.cpu.busy_until >= 10 * net.params.kernel_recv_cpu_ns


def test_crashed_receiver_drops_messages():
    e, net, a, b = _pair()
    b.crash()
    net.send(0, 1, "x", 10)
    e.run(until=us(100))
    assert b.got == []
    assert len(b.ep.inbox) == 0


def test_crashed_sender_sends_nothing():
    e, net, a, b = _pair()
    a.crash()
    net.send(0, 1, "x", 10)
    e.run(until=us(100))
    assert b.got == []


def test_broadcast_skips_self():
    e = Engine(seed=1)
    net = TcpNetwork(e)
    procs = [Echo(e, i, net) for i in range(3)]
    for p in procs:
        p.start()
    net.broadcast(0, [0, 1, 2], "all", 10)
    e.run(until=us(200))
    assert procs[0].got == []
    assert [p for _, p, _ in procs[1].got] == ["all"]
    assert [p for _, p, _ in procs[2].got] == ["all"]


def test_loss_delays_but_preserves_order():
    p = TcpParams(loss_prob=0.5)
    e, net, a, b = _pair(p, seed=4)
    for i in range(50):
        net.send(0, 1, i, 10)
    e.run(until=us(5000))
    assert [x for _, x, _ in b.got] == list(range(50))


def test_wakeup_makes_idle_receiver_responsive():
    # Receiver polls every 50us, but the epoll wakeup delivers sooner.
    e = Engine(seed=1)
    net = TcpNetwork(e)

    class Lazy(Echo):
        def __init__(self, engine, node_id, net):
            Process.__init__(self, engine, node_id,
                             ProcessConfig(poll_interval_ns=us(50), poll_jitter_ns=0))
            self.ep = net.attach(self)
            self.got = []

    a = Lazy(e, 0, net)
    b = Lazy(e, 1, net)
    a.start()
    b.start()
    net.send(0, 1, "ping", 10)
    e.run(until=us(40))
    assert b.got, "wakeup should beat the 50us poll period"
