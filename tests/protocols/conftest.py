"""Shared helpers for driving any BroadcastSystem in tests."""

from __future__ import annotations


from repro.sim import ms, us


def drive(system, engine, count, gap_us=50.0, size=10, start=0, tag="m"):
    """Feed ``count`` payloads with retry-on-no-leader; returns the list
    acked callbacks append to (latencies in ns)."""
    lats: list[int] = []

    def go(i=start):
        if i >= start + count:
            return
        t0 = engine.now
        ok = system.submit((tag, i), size, lambda x, t0=t0: lats.append(engine.now - t0))
        if ok:
            engine.schedule(us(gap_us), go, i + 1)
        else:
            engine.schedule(us(gap_us * 2), go, i)

    go()
    return lats


def settle(system, engine, horizon_ms):
    """Start the system and run until a leader exists (or fail)."""
    system.start()
    engine.run(until=ms(horizon_ms))
    assert system.leader_id() is not None, f"{system.name}: no leader after settle"
