"""Unit tests for the shared BroadcastSystem plumbing."""

import pytest

from repro.protocols.base import DeliveryRecorder


def test_total_order_accepts_prefix_related_sequences():
    r = DeliveryRecorder()
    for p in ("a", "b", "c"):
        r.record(0, p)
    for p in ("a", "b"):
        r.record(1, p)
    r.record(2, "a")
    r.check_total_order()  # prefixes are fine


def test_total_order_rejects_divergence():
    r = DeliveryRecorder()
    r.record(0, "a")
    r.record(0, "b")
    r.record(1, "a")
    r.record(1, "x")
    with pytest.raises(AssertionError, match="total order"):
        r.check_total_order()


def test_no_duplication():
    r = DeliveryRecorder()
    r.record(0, "a")
    r.record(0, "a")
    with pytest.raises(AssertionError, match="twice"):
        r.check_no_duplication()


def test_no_duplication_with_key():
    r = DeliveryRecorder()
    r.record(0, {"id": 1})
    r.record(0, {"id": 1})
    with pytest.raises(AssertionError):
        r.check_no_duplication(key=lambda p: p["id"])


def test_integrity():
    r = DeliveryRecorder()
    r.record(0, "known")
    r.check_integrity({"known"})
    r.record(0, "forged")
    with pytest.raises(AssertionError, match="thin-air"):
        r.check_integrity({"known"})


def test_counts_tracked_even_when_recording_disabled():
    r = DeliveryRecorder(enabled=False)
    r.record(0, "a")
    r.record(0, "b")
    assert r.delivered_count(0) == 2
    assert r.sequences == {}


def test_delivery_listeners_invoked():
    from repro.core import AcuerdoCluster
    from repro.sim import Engine, ms

    e = Engine(seed=1)
    c = AcuerdoCluster(e, 3)
    c.preseed_leader(0)
    c.start()
    heard = []
    c.delivery_listeners.append(lambda nid, payload: heard.append((nid, payload)))
    c.submit("x", 10)
    e.run(until=ms(1))
    assert ({n for n, _ in heard} == {0, 1, 2})
    assert all(p == "x" for _, p in heard)
