"""Tests for the Zab/ZooKeeper baseline."""

from repro.protocols.zab import ZabCluster
from repro.sim import Engine, ms, us

from tests.protocols.conftest import drive


def _cluster(n=3, seed=1):
    e = Engine(seed=seed)
    c = ZabCluster(e, n)
    c.start()
    e.run(until=ms(5))
    assert c.leader_id() is not None
    return e, c


def test_election_then_ordered_delivery():
    e, c = _cluster()
    lats = drive(c, e, 30, gap_us=100)
    e.run(until=ms(30))
    assert len(lats) == 30
    for nid in range(3):
        assert [p for p in c.deliveries.sequences[nid]] == [("m", i) for i in range(30)]


def test_latency_band_hundreds_of_microseconds():
    """TCP + fsync + request pipeline put ZooKeeper two orders of
    magnitude above the RDMA systems (Fig. 8)."""
    e, c = _cluster()
    lats = drive(c, e, 20, gap_us=200)
    e.run(until=ms(30))
    mean = sum(lats) / len(lats)
    assert us(80) < mean < us(2000), mean


def test_followers_ack_every_proposal():
    """Per-message ACK traffic — the contrast with Acuerdo's single
    overwritten SST row."""
    e, c = _cluster()
    ldr = c.leader_id()
    follower = next(i for i in range(3) if i != ldr)
    before = c.nodes[follower].ep.sent
    drive(c, e, 20, gap_us=100)
    e.run(until=ms(30))
    acks = c.nodes[follower].ep.sent - before
    assert acks >= 20  # at least one TCP message back per proposal


def test_failover_preserves_committed_messages():
    e, c = _cluster(seed=3)
    lats = drive(c, e, 20, gap_us=100)
    e.run(until=ms(20))
    assert len(lats) == 20
    old = c.leader_id()
    c.crash(old)
    e.run(until=ms(60))
    new = c.leader_id()
    assert new is not None and new != old
    post = drive(c, e, 10, gap_us=100, start=100, tag="post")
    e.run(until=ms(90))
    assert len(post) == 10
    c.deliveries.check_total_order()
    for nid in range(3):
        if nid == old:
            continue
        assert c.deliveries.sequences[nid][:20] == [("m", i) for i in range(20)]


def test_election_includes_sync_phase():
    e, c = _cluster(seed=4)
    assert c.engine.trace.get("zab.sync_sent") >= 1
    assert c.engine.trace.get("zab.broadcast_open") >= 1


def test_new_leader_has_highest_zxid():
    """FLE picks by (zxid, id); after the verify round the winner must
    not be behind any live peer."""
    e, c = _cluster(seed=5)
    drive(c, e, 15, gap_us=100)
    e.run(until=ms(20))
    old = c.leader_id()
    c.crash(old)
    e.run(until=ms(60))
    new = c.leader_id()
    assert new is not None
    new_zxid = c.nodes[new].last_zxid()
    for i in range(3):
        if i in (old, new):
            continue
        assert new_zxid >= c.nodes[i].committed_zxid


def test_group_commit_batches_fsyncs():
    e, c = _cluster(seed=6)
    ldr = c.leader_id()
    for i in range(50):
        c.submit(("burst", i), 10)
    e.run(until=ms(40))
    assert c.deliveries.delivered_count(ldr) >= 50
    # 50 appends share far fewer than 50 fsyncs.
    assert c.nodes[ldr].disk.syncs < 30


def test_no_quorum_no_leader():
    e, c = _cluster(seed=7)
    survivors = [i for i in range(3)]
    c.crash(survivors[0])
    c.crash(survivors[1])
    e.run(until=ms(80))
    assert c.leader_id() is None
