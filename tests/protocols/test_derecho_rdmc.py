"""Tests for Derecho's RDMC large-message relay path (§4.1)."""

from repro.protocols.derecho import DerechoCluster, DerechoConfig, rdmc_children
from repro.sim import Engine, ms, us


def test_binomial_tree_shape():
    assert rdmc_children(0, 7) == [1, 2, 4]
    assert rdmc_children(1, 7) == [3, 5]
    assert rdmc_children(2, 7) == [6]
    assert rdmc_children(3, 7) == []
    assert rdmc_children(0, 2) == [1]
    # Every non-root node has exactly one parent (tree covers all).
    for n in (3, 5, 8, 9):
        covered = set()
        for p in range(n):
            for c in rdmc_children(p, n):
                assert c not in covered
                covered.add(c)
        assert covered == set(range(1, n))


def _cluster(n=7, threshold=16_384, seed=1):
    e = Engine(seed=seed)
    c = DerechoCluster(e, n, DerechoConfig(mode="leader",
                                           rdmc_threshold_bytes=threshold))
    c.start()
    return e, c


def test_large_messages_deliver_in_order_everywhere():
    e, c = _cluster()
    for i in range(12):
        c.submit(("big", i), 64_000)
    e.run(until=ms(15))
    for nid in range(7):
        assert c.deliveries.sequences[nid] == [("big", i) for i in range(12)]


def test_small_messages_bypass_rdmc():
    e, c = _cluster()
    for i in range(10):
        c.submit(("small", i), 10)
    e.run(until=ms(3))
    assert e.trace.get("derecho.rdmc_send") == 0
    assert c.deliveries.delivered_count(3) == 10


def test_mixed_sizes_keep_total_order():
    e, c = _cluster()
    for i in range(20):
        size = 64_000 if i % 3 == 0 else 10
        c.submit(("m", i), size)
    e.run(until=ms(20))
    for nid in range(7):
        assert c.deliveries.sequences[nid] == [("m", i) for i in range(20)]


def test_rdmc_reduces_leader_egress():
    def leader_tx(threshold):
        e, c = _cluster(threshold=threshold, seed=2)
        def feed(i=0):
            if i < 15:
                c.submit(("big", i), 64_000)
                e.schedule(us(40), feed, i + 1)
        feed()
        e.run(until=ms(20))
        assert c.deliveries.delivered_count(3) == 15
        return c.fabric.nic(0).tx_bytes

    direct = leader_tx(None)
    relayed = leader_tx(16_384)
    # Root sends to ~log2(n) children instead of n-1 followers.
    assert direct > 1.4 * relayed, (direct, relayed)


def test_relay_nodes_share_forwarding_load():
    e, c = _cluster()
    for i in range(10):
        c.submit(("big", i), 64_000)
    e.run(until=ms(15))
    # Interior tree nodes transmitted bulk bytes too.
    senders_with_bulk = sum(
        1 for nid in range(1, 7) if c.fabric.nic(nid).tx_bytes > 64_000)
    assert senders_with_bulk >= 2
    assert e.trace.get("derecho.rdmc_relay") > 10


def test_control_traffic_not_starved_by_bulk():
    """Heartbeats keep flowing during heavy bulk transfer: no spurious
    view change (the NIC QoS lane separation)."""
    e, c = _cluster(seed=3)
    for i in range(30):
        c.submit(("big", i), 256_000)
    e.run(until=ms(40))
    assert e.trace.get("derecho.wedge") == 0
    assert all(n.view == 0 for n in c.nodes.values())
