"""Tests for the Raft/etcd baseline."""

from repro.protocols.raft import RaftCluster
from repro.sim import Engine, ms

from tests.protocols.conftest import drive


def _cluster(n=3, seed=1):
    e = Engine(seed=seed)
    c = RaftCluster(e, n)
    c.start()
    e.run(until=ms(10))
    assert c.leader_id() is not None
    return e, c


def test_election_then_ordered_delivery():
    e, c = _cluster()
    lats = drive(c, e, 25, gap_us=200)
    e.run(until=ms(60))
    assert len(lats) == 25
    for nid in range(3):
        got = [p for p in c.deliveries.sequences[nid]]
        assert got == [("m", i) for i in range(25)]


def test_randomized_timeouts_differ_across_nodes():
    e = Engine(seed=2)
    c = RaftCluster(e, 5)
    c.start()
    deadlines = {i: c.nodes[i]._election_deadline for i in range(5)}
    assert len(set(deadlines.values())) > 1


def test_latency_band_dominated_by_fsync():
    e, c = _cluster()
    lats = drive(c, e, 15, gap_us=500)
    e.run(until=ms(60))
    mean = sum(lats) / len(lats)
    # Two fsyncs (leader + follower) on the commit path.
    assert mean > c.cfg.fsync_ns, mean


def test_failover_new_term_resumes_service():
    e, c = _cluster(seed=3)
    lats = drive(c, e, 15, gap_us=300)
    e.run(until=ms(40))
    assert len(lats) == 15
    old = c.leader_id()
    old_term = c.nodes[old].term
    c.crash(old)
    e.run(until=ms(80))
    new = c.leader_id()
    assert new is not None and new != old
    assert c.nodes[new].term > old_term
    post = drive(c, e, 8, gap_us=300, start=100, tag="post")
    e.run(until=ms(120))
    assert len(post) == 8
    c.deliveries.check_total_order()


def test_committed_entries_survive_failover():
    e, c = _cluster(seed=4)
    lats = drive(c, e, 12, gap_us=300)
    e.run(until=ms(40))
    assert len(lats) == 12
    old = c.leader_id()
    c.crash(old)
    e.run(until=ms(100))
    for nid in range(3):
        if nid == old:
            continue
        assert [p for p in c.deliveries.sequences[nid][:12]] == \
            [("m", i) for i in range(12)]


def test_leader_appends_noop_at_term_start():
    e, c = _cluster(seed=5)
    ldr = c.leader_id()
    assert c.nodes[ldr].log, "term-start no-op missing"
    assert c.nodes[ldr].log[0][1] is None


def test_vote_denied_to_stale_log():
    e, c = _cluster(seed=6)
    drive(c, e, 10, gap_us=300)
    e.run(until=ms(40))
    ldr = c.leader_id()
    follower = next(i for i in range(3) if i != ldr)
    nd = c.nodes[follower]
    assert nd.log, "follower should have replicated entries"
    candidate = next(i for i in range(3) if i not in (ldr, follower))
    # A candidate advertising an empty log must not win nd's vote.
    nd._dispatch(candidate, ("VOTE_REQ", nd.term + 1, 0, 0))
    assert nd.voted_for is None


def test_follower_fsyncs_before_ack():
    e, c = _cluster(seed=7)
    ldr = c.leader_id()
    follower = next(i for i in range(3) if i != ldr)
    syncs_before = c.nodes[follower].disk.syncs
    drive(c, e, 10, gap_us=300)
    e.run(until=ms(40))
    assert c.nodes[follower].disk.syncs > syncs_before


def test_no_quorum_no_leader():
    e, c = _cluster(seed=8)
    ldr = c.leader_id()
    others = [i for i in range(3) if i != ldr]
    c.crash(others[0])
    c.crash(ldr)
    e.run(until=ms(120))
    assert c.leader_id() is None
