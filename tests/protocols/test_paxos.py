"""Tests for the libpaxos baseline (multi-Paxos over TCP)."""

from repro.protocols.paxos import PaxosCluster, PaxosConfig
from repro.sim import Engine, ms, us

from tests.protocols.conftest import drive


def _cluster(n=3, seed=1, **kw):
    e = Engine(seed=seed)
    c = PaxosCluster(e, n, PaxosConfig(**kw) if kw else None)
    c.start()
    return e, c


def test_ordered_delivery_at_all_learners():
    e, c = _cluster()
    lats = drive(c, e, 30, gap_us=100)
    e.run(until=ms(30))
    assert len(lats) == 30
    for nid in range(3):
        assert c.deliveries.sequences[nid] == [("m", i) for i in range(30)]


def test_latency_above_rdma_below_disk_systems():
    e, c = _cluster()
    lats = drive(c, e, 20, gap_us=100)
    e.run(until=ms(20))
    mean = sum(lats) / len(lats)
    assert us(15) < mean < us(300), mean  # TCP-bound, no fsync


def test_window_limits_open_instances():
    e, c = _cluster(window=4)
    for i in range(40):
        c.submit(("w", i), 10)
    e.run(until=us(100))  # before any round trips complete
    assert len(c.nodes[0].open_instances) <= 4
    e.run(until=ms(40))
    assert c.deliveries.delivered_count(0) == 40


def test_per_instance_message_complexity():
    """Every instance costs O(n^2) ACCEPTED fan-out — the per-message
    consensus overhead §4.1 contrasts with Acuerdo's amortised SST row."""
    e, c = _cluster()
    sent_before = sum(nd.ep.sent for nd in c.nodes.values())
    drive(c, e, 10, gap_us=200)
    e.run(until=ms(20))
    sent = sum(nd.ep.sent for nd in c.nodes.values()) - sent_before
    # >= accept(n-1) + accepted broadcast 3*(n-1) per message, minus HBs.
    assert sent >= 10 * 6


def test_proposer_takeover_after_crash():
    e, c = _cluster(seed=3)
    lats = drive(c, e, 15, gap_us=100)
    e.run(until=ms(15))
    assert len(lats) == 15
    c.crash(0)
    e.run(until=ms(40))
    assert c.leader_id() == 1
    post = drive(c, e, 10, gap_us=100, start=100, tag="post")
    e.run(until=ms(70))
    assert len(post) == 10
    c.deliveries.check_total_order()


def test_takeover_reproposes_in_flight_instances():
    """Values accepted under the old ballot must survive into the new
    proposer's reign (Paxos safety)."""
    e, c = _cluster(seed=4)
    drive(c, e, 10, gap_us=50)
    e.run(until=ms(10))
    delivered_before = c.deliveries.delivered_count(1)
    c.crash(0)
    e.run(until=ms(50))
    # Node 1 took over and every previously delivered value is retained
    # in the same positions.
    seq1 = c.deliveries.sequences[1]
    assert seq1[:delivered_before] == [("m", i) for i in range(delivered_before)]
    c.deliveries.check_no_duplication()


def test_acceptor_rejects_lower_ballot_after_promise():
    e, c = _cluster(seed=5)
    e.run(until=ms(1))
    nd = c.nodes[2]
    nd._dispatch(1, ("PREPARE", 100, 0))
    accepted_before = dict(nd.accepted)
    nd._dispatch(0, ("ACCEPT", 1, 5, "stale", 10))
    assert nd.accepted == accepted_before  # ballot 1 < promised 100
