"""Tests for the Derecho baseline (virtual synchrony over RDMA)."""

from repro.protocols.derecho import DerechoCluster, DerechoConfig
from repro.sim import Engine, ms, us

from tests.protocols.conftest import drive


def _cluster(n=3, mode="leader", seed=1, **kw):
    e = Engine(seed=seed)
    c = DerechoCluster(e, n, DerechoConfig(mode=mode, **kw))
    c.start()
    return e, c


def test_leader_mode_delivers_in_order_everywhere():
    e, c = _cluster()
    lats = drive(c, e, 50, gap_us=3)
    e.run(until=ms(3))
    assert len(lats) == 50
    for nid in range(3):
        assert c.deliveries.sequences[nid] == [("m", i) for i in range(50)]


def test_all_mode_delivers_round_robin_total_order():
    e, c = _cluster(mode="all")
    lats = drive(c, e, 60, gap_us=3)
    e.run(until=ms(3))
    assert len(lats) == 60
    c.deliveries.check_total_order()
    c.deliveries.check_no_duplication()
    for nid in range(3):
        assert len(c.deliveries.sequences[nid]) == 60


def test_all_mode_spreads_sends_across_nodes():
    e, c = _cluster(mode="all")
    drive(c, e, 30, gap_us=3)
    e.run(until=ms(3))
    sends = {i: c.nodes[i].sent_rounds for i in range(3)}
    assert all(v > 0 for v in sends.values())


def test_null_messages_fill_round_robin_holes():
    e, c = _cluster(mode="all")
    # Submit directly to one sender only: others must emit nulls.
    for i in range(10):
        c.nodes[1].client_broadcast(("solo", i), 10)
    e.run(until=ms(3))
    assert e.trace.get("derecho.null_send") > 0
    for nid in range(3):
        assert c.deliveries.sequences[nid] == [("solo", i) for i in range(10)]


def test_two_writes_per_message_on_the_wire():
    e, c = _cluster()
    drive(c, e, 20, gap_us=3)
    e.run(until=ms(3))
    ring = c.rings[0]
    assert ring.writes_per_message == 2


def test_commit_requires_all_nodes_slow_node_slows_commits():
    """Virtual synchrony: one slow node throttles everyone (§4.1).

    The slowdown is kept below the failure-detection threshold (a
    *long-latency* node, not a dead one) so Derecho must keep waiting
    for it rather than configuring it out."""
    def run(slow_factor):
        e, c = _cluster(seed=2, heartbeat_timeout_ns=us(500))
        c.nodes[2].config.speed_factor = slow_factor
        c.nodes[2].cpu.speed_factor = slow_factor
        lats = drive(c, e, 40, gap_us=8)
        e.run(until=ms(5))
        assert len(lats) == 40
        assert all(2 in n.members for n in c.nodes.values()), \
            "slow node must not be reconfigured out in this scenario"
        return sum(lats) / len(lats)

    mean_fast = run(1.0)
    mean_slow = run(12.0)
    assert mean_slow > 2 * mean_fast, (mean_fast, mean_slow)


def test_slow_node_eventually_reconfigured_out():
    """Past the detection threshold, Derecho treats slowness as failure
    and configures the node out of the view — the §5 contrast with
    Acuerdo's just-let-it-catch-up behaviour."""
    e, c = _cluster(seed=2)
    # A genuinely unresponsive node: descheduled far beyond the
    # failure-detection timeout (not merely long-latency).
    c.nodes[2].deschedule(ms(3))
    drive(c, e, 40, gap_us=5)
    e.run(until=ms(2.5))
    assert all(2 not in n.members for n in (c.nodes[0], c.nodes[1]))
    assert e.trace.get("derecho.view_install") > 0
    # When it wakes inside the new view's world, it learns it was
    # configured out and stops participating.
    e.run(until=ms(6))
    assert c.nodes[2].excluded


def test_view_change_excludes_crashed_node_and_resumes():
    e, c = _cluster()
    drive(c, e, 20, gap_us=3)
    e.run(until=ms(3))
    c.crash(2)
    e.run(until=ms(6))
    live_views = {i: n.view for i, n in c.nodes.items() if not n.crashed}
    assert set(live_views.values()) == {1}
    assert all(2 not in n.members for n in c.nodes.values() if not n.crashed)
    post = drive(c, e, 10, gap_us=3, start=100, tag="post")
    e.run(until=ms(9))
    assert len(post) == 10
    c.deliveries.check_total_order()


def test_committed_messages_survive_view_change():
    e, c = _cluster(seed=4)
    lats = drive(c, e, 30, gap_us=3)
    e.run(until=ms(3))
    assert len(lats) == 30
    before = {i: list(s) for i, s in c.deliveries.sequences.items()}
    c.crash(2)
    e.run(until=ms(8))
    for nid in (0, 1):
        assert c.deliveries.sequences[nid][:30] == before[nid][:30]


def test_commit_based_slot_reuse_stalls_sender_when_ring_small():
    """With a tiny ring and one slow node, commit-based release makes
    the sender stall — the §4.1 contrast with Acuerdo."""
    e, c = _cluster(seed=3, ring_capacity=8)
    c.nodes[2].config.speed_factor = 40.0
    c.nodes[2].cpu.speed_factor = 40.0
    for i in range(60):
        c.submit(("m", i), 10)
    e.run(until=ms(5))
    assert c.rings[0].stalls > 0 or e.trace.get("derecho.ring_full") > 0


def test_seven_node_cluster():
    e, c = _cluster(n=7, seed=5)
    lats = drive(c, e, 30, gap_us=5)
    e.run(until=ms(4))
    assert len(lats) == 30
    c.deliveries.check_total_order()
    for nid in range(7):
        assert c.deliveries.delivered_count(nid) == 30
