"""Tests for the §5 extension systems: DARE and Mu."""

from repro.protocols.dare import DareCluster
from repro.protocols.mu import MuCluster
from repro.sim import Engine, ms

from tests.protocols.conftest import drive


def _dare(n=3, seed=1):
    e = Engine(seed=seed)
    c = DareCluster(e, n)
    c.start()
    return e, c


def _mu(n=3, seed=1):
    e = Engine(seed=seed)
    c = MuCluster(e, n)
    c.start()
    return e, c


# ------------------------------------------------------------------- DARE

def test_dare_ordered_delivery():
    e, c = _dare()
    lats = drive(c, e, 40, gap_us=20)
    e.run(until=ms(8))
    assert len(lats) == 40
    for nid in range(3):
        assert c.deliveries.sequences[nid] == [("m", i) for i in range(40)]


def test_dare_fine_grained_completions_cost_two_rounds():
    """Each entry needs write->completion->valid->completion before it
    counts — slower than Acuerdo's fire-and-forget (§5)."""
    from repro.harness.fig8 import point
    from repro.harness.runspec import RunSpec

    dare = point(RunSpec(system="dare", n=3, payload_bytes=10, window=1),
                 min_completions=120)
    acu = point(RunSpec(system="acuerdo", n=3, payload_bytes=10, window=1),
                min_completions=120)
    assert dare.mean_latency_us > 1.15 * acu.mean_latency_us


def test_dare_completions_drive_replication_without_acceptor_cpu():
    e, c = _dare()
    # Stall both acceptors' CPUs entirely: replication and commit at the
    # leader must still proceed (completion-driven).
    c.nodes[1].cpu.stall(ms(5))
    c.nodes[2].cpu.stall(ms(5))
    done = []
    c.submit(("x", 0), 10, lambda i: done.append(i))
    e.run(until=ms(2))
    assert done == [0]


def test_dare_failover():
    e, c = _dare(seed=3)
    lats = drive(c, e, 20, gap_us=20)
    e.run(until=ms(5))
    assert len(lats) == 20
    c.crash(0)
    e.run(until=ms(12))
    assert c.leader_id() is not None and c.leader_id() != 0
    post = drive(c, e, 10, gap_us=20, start=100, tag="post")
    e.run(until=ms(18))
    assert len(post) == 10
    c.deliveries.check_total_order()


# --------------------------------------------------------------------- Mu

def test_mu_ordered_delivery():
    e, c = _mu()
    lats = drive(c, e, 40, gap_us=20)
    e.run(until=ms(8))
    assert len(lats) == 40
    for nid in range(3):
        assert c.deliveries.sequences[nid] == [("m", i) for i in range(40)]


def test_mu_completion_as_ack_beats_acuerdo_latency():
    """Mu's single-signaled-write commit path is the fastest of the
    lineage (its OSDI'20 microsecond claims) — the simulation runs the
    comparison the paper's testbed could not (§5)."""
    from repro.harness.fig8 import point
    from repro.harness.runspec import RunSpec

    mu = point(RunSpec(system="mu", n=3, payload_bytes=10, window=1),
               min_completions=120)
    acu = point(RunSpec(system="acuerdo", n=3, payload_bytes=10, window=1),
                min_completions=120)
    assert mu.mean_latency_us < acu.mean_latency_us


def test_mu_followers_never_ack_with_cpu():
    e, c = _mu()
    done = []
    c.nodes[1].cpu.stall(ms(5))
    c.nodes[2].cpu.stall(ms(5))
    c.submit(("x", 0), 10, lambda i: done.append(i))
    e.run(until=ms(2))
    assert done == [0]  # commits on completions alone


def test_mu_failover_requires_reconnection_and_is_slow():
    e, c = _mu(seed=3)
    lats = drive(c, e, 20, gap_us=20)
    e.run(until=ms(5))
    assert len(lats) == 20
    t0 = e.now
    c.crash(0)
    e.run(until=ms(30))
    assert e.trace.get("mu.failover_done") >= 1
    new = c.leader_id()
    assert new is not None and new != 0
    # Reconnection dominates: downtime is at least reconnect_ns.
    post = drive(c, e, 10, gap_us=20, start=100, tag="post")
    e.run(until=ms(40))
    assert len(post) == 10
    c.deliveries.check_total_order()


def test_mu_old_leader_writes_rejected_after_rekey():
    """Re-registration during fail-over revokes the deposed leader's
    rkeys — its in-flight writes can no longer land (the §5 exclusivity
    guarantee)."""
    e, c = _mu(seed=4)
    drive(c, e, 10, gap_us=20)
    e.run(until=ms(5))
    old_region, old_rkey = c.log_regions[1]
    c.crash(0)
    e.run(until=ms(30))
    import pytest
    from repro.rdma import AccessError

    with pytest.raises(AccessError):
        old_region.remote_write(old_rkey, (99, 99), ("stale", 10), 10)
