"""Tests for the APUS baseline (Paxos over RDMA, single pending batch)."""

from repro.protocols.apus import ApusCluster, ApusConfig
from repro.sim import Engine, ms, us

from tests.protocols.conftest import drive


def _cluster(n=3, seed=1, **kw):
    e = Engine(seed=seed)
    c = ApusCluster(e, n, ApusConfig(**kw) if kw else None)
    c.start()
    return e, c


def test_basic_broadcast_and_delivery():
    e, c = _cluster()
    lats = drive(c, e, 40, gap_us=10)
    e.run(until=ms(5))
    assert len(lats) == 40
    for nid in range(3):
        assert c.deliveries.sequences[nid] == [("m", i) for i in range(40)]


def test_batch_contains_multiple_pending_messages():
    e, c = _cluster()
    for i in range(30):
        c.submit(("b", i), 10)
    e.run(until=ms(2))
    # 30 messages submitted at once need far fewer than 30 batch sends.
    assert e.trace.get("apus.batch_send") < 10
    assert c.deliveries.delivered_count(0) == 30


def test_single_pending_batch_serializes_rounds():
    """APUS cannot pipeline: with batch_max=1, k submissions take ~k
    sequential batch round trips (§4.1), unlike Acuerdo's burst commit
    in roughly one round trip."""
    e, c = _cluster(batch_max=1)
    ack_times = []
    for i in range(10):
        c.submit(("s", i), 10, lambda x: ack_times.append(e.now))
    e.run(until=ms(5))
    assert len(ack_times) == 10
    span = ack_times[-1] - ack_times[0]
    single_rtt = ack_times[0]
    assert span > 5 * single_rtt, (span, single_rtt)
    assert e.trace.get("apus.batch_send") == 10


def test_slow_acceptor_in_required_quorum_stalls_system():
    """When the quorum cannot avoid the slow acceptor (here: one
    acceptor crashed, so the other is required), every batch — and the
    whole pipeline behind it — runs at the slow node's speed."""
    e, c = _cluster(seed=2)
    c.crash(1)  # quorum is now forced to {leader, node 2}
    c.nodes[2].config.speed_factor = 30.0
    c.nodes[2].cpu.speed_factor = 30.0
    lats = drive(c, e, 20, gap_us=10)
    e.run(until=ms(10))
    assert len(lats) == 20
    e2, c2 = _cluster(seed=2)
    c2.crash(1)
    base = drive(c2, e2, 20, gap_us=10)
    e2.run(until=ms(10))
    assert sum(lats) / len(lats) > 2 * (sum(base) / len(base))


def test_five_nodes_quorum_tolerates_one_slow_acceptor():
    """With 5 nodes the quorum is 3: one slow acceptor is out-voted, so
    (unlike the 3-node case) latency stays low — APUS is still quorum
    based, just batch-serial."""
    e, c = _cluster(n=5, seed=3)
    c.nodes[4].config.speed_factor = 30.0
    c.nodes[4].cpu.speed_factor = 30.0
    lats = drive(c, e, 30, gap_us=10)
    e.run(until=ms(5))
    assert len(lats) == 30
    assert sum(lats) / len(lats) < us(50)


def test_failover_preserves_committed_and_resumes():
    e, c = _cluster(seed=4)
    lats = drive(c, e, 20, gap_us=10)
    e.run(until=ms(3))
    assert len(lats) == 20
    c.crash(0)
    e.run(until=ms(6))
    assert c.leader_id() == 1
    post = drive(c, e, 10, gap_us=10, start=100, tag="post")
    e.run(until=ms(9))
    assert len(post) == 10
    c.deliveries.check_total_order()
    for nid in (1, 2):
        assert c.deliveries.sequences[nid][:20] == [("m", i) for i in range(20)]


def test_leader_log_writes_are_one_sided():
    """Replication lands in acceptor memory without acceptor CPU: the
    acceptor only pays when its poll drains the written area."""
    e, c = _cluster()
    c.submit(("x", 0), 10)
    # Stall acceptor CPUs; the write must still arrive in their regions.
    c.nodes[1].cpu.stall(ms(1))
    c.nodes[2].cpu.stall(ms(1))
    e.run(until=us(500))
    assert len(c.log_inboxes[1]) + len(c.nodes[1].log) >= 1
    assert len(c.log_inboxes[2]) + len(c.nodes[2].log) >= 1
