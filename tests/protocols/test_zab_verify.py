"""The §5 contrast: ZooKeeper's post-election verify round.

"Currently ZooKeeper has to perform an additional message exchange (and
wait) after the leader is elected to check if its state is up to date.
If this check fails, the election process is restarted."  Acuerdo's
election makes this round unnecessary by construction.
"""

from repro.protocols.zab import ZabCluster, ZabNode
from repro.sim import Engine, ms, us


def _settled(n=3, seed=1):
    e = Engine(seed=seed)
    c = ZabCluster(e, n)
    c.start()
    e.run(until=ms(5))
    assert c.leader_id() is not None
    return e, c


def test_verify_round_happens_after_every_election():
    e, c = _settled()
    # Winning FLE is not enough: a verify request went to every peer.
    assert e.trace.get("zab.elected") >= 1
    assert e.trace.get("zab.sync_sent") >= 1


def test_stale_winner_fails_verify_and_restarts():
    """Force a stale node into LEADING (as a mis-converged FLE would):
    the verify round must detect a more up-to-date peer and restart the
    election instead of serving."""
    e, c = _settled(seed=2)
    ldr = c.leader_id()
    # Commit some state so the real leader is ahead.
    for i in range(10):
        c.submit(("m", i), 10)
    e.run(until=ms(20))
    stale = next(i for i in range(3) if i != ldr)
    nd = c.nodes[stale]
    nd.log = nd.log[: len(nd.log) // 2]  # truncate: now genuinely stale
    nd.delivered_upto = min(nd.delivered_upto, len(nd.log))
    nd.state = ZabNode.LOOKING
    nd._start_leading()
    e.run(until=e.now + ms(10))
    assert e.trace.get("zab.verify_failed") >= 1
    # The cluster converges back to a leader that is NOT the stale node
    # with its truncated log still truncated.
    e.run(until=e.now + ms(40))
    final = c.leader_id()
    assert final is not None
    assert c.nodes[final].last_zxid() >= max(
        n.committed_zxid for n in c.nodes.values() if not n.crashed)


def test_acuerdo_needs_no_verify_round():
    """Counterpart assertion: an Acuerdo winner starts sending with no
    post-election exchange — the first thing out of a new leader is the
    diff itself."""
    from repro.core import AcuerdoCluster

    e = Engine(seed=3)
    c = AcuerdoCluster(e, 3)
    c.start()
    e.run(until=ms(1))
    c.crash(c.leader_id())
    e.run(until=ms(4))
    new = c.leader_id()
    assert new is not None
    # Election durations (detect -> ready-to-send) are microseconds:
    # no verify round, no state transfer to the leader.
    durations = e.trace.series("acuerdo.election_duration_ns")
    assert durations and max(durations) < us(500)
