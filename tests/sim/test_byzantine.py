"""Byzantine injection: grammar, true positives, and bit-identity.

Three obligations, per attack mode:

- **true positive** — the attack, mounted against a system whose
  safety argument does not cover it, trips a monitor and produces a
  witness line naming the forged state;
- **no false positive** — the identical monitored workload with no
  injector armed reports zero violations on every adversary-matrix
  system;
- **bit-identity** — attaching an injector that never arms (and not
  attaching one at all) leaves the run bit-identical to the golden
  fingerprints: the hooks are ``is None``-gated and a gate that is
  merely *present* must be invisible.
"""

from __future__ import annotations

import pytest

from repro.harness.adversary import ADVERSARY_SYSTEMS, _build, run_attack
from repro.harness.factory import build_from_spec, settle
from repro.harness.runspec import RunSpec
from repro.monitors import MonitorRegistry
from repro.sim.byzantine import (
    BYZ_MODES,
    ByzantineInjector,
    parse_byz,
    schedule_byz,
)
from repro.sim.engine import Engine, ms, us
from tests.substrate.test_golden_fingerprints import (
    GOLDEN_FINGERPRINTS,
    run_protocol,
)


# ----------------------------------------------------------- the grammar


def test_parse_byz_entries():
    assert parse_byz("equivocate:1@2") == ("equivocate", 1, 2.0)
    assert parse_byz("inflate:3:1@0.5") == ("inflate", (3, 1), 0.5)
    assert parse_byz("dup_ring:0@0") == ("dup_ring", 0, 0.0)


@pytest.mark.parametrize("bad", [
    "equivocate",        # no addr / time
    "equivocate:1",      # no @MS
    "lie:1@2",           # unknown mode
    "equivocate:@2",     # empty addr
    "equivocate:x@2",    # bad addr
    "equivocate:1@soon", # bad time
    "equivocate:1@-1",   # negative time
    "@2",                # nothing at all
])
def test_parse_byz_rejects_malformed_entries(bad):
    with pytest.raises(ValueError):
        parse_byz(bad)


def test_runspec_validates_byz_entries_eagerly():
    spec = RunSpec(system="acuerdo", byz=["equivocate:1@2"])
    assert spec.byz == ("equivocate:1@2",)      # normalised to a tuple
    with pytest.raises(ValueError):
        RunSpec(system="acuerdo", byz=("equivocate:1",))


def test_injector_rejects_unknown_mode():
    engine = Engine(seed=1)
    system = build_from_spec(RunSpec(system="acuerdo", n=3), engine)
    byz = ByzantineInjector(engine, system)
    with pytest.raises(ValueError):
        byz.schedule("lie", 1, 2.0)
    with pytest.raises(ValueError):
        byz.arm("lie", 1)


# ---------------------------------------------------------- true positives

#: For every attack mode, one (system, oracle) pair where the attack
#: must land AND be caught: the mode's true-positive witness.
TRUE_POSITIVES = [
    ("equivocate", "acuerdo-unprotected", "single_leader_per_term"),
    ("replay_sst", "acuerdo-unprotected", "sst_monotonic"),
    ("inflate", "acuerdo-unprotected", "commit_quorum_accept"),
    ("corrupt_ring", "acuerdo", "log_prefix_agreement"),
    ("dup_ring", "acuerdo", "log_prefix_agreement"),
    ("tamper", "zookeeper", "log_prefix_agreement"),
    ("duplicate", "zookeeper", "log_prefix_agreement"),
]


def test_every_mode_has_a_true_positive_row():
    assert {m for m, _, _ in TRUE_POSITIVES} == set(BYZ_MODES)


@pytest.mark.parametrize("mode,system,monitor", TRUE_POSITIVES)
def test_attack_true_positive_with_witness(mode, system, monitor):
    out = run_attack(system, mode, n=4, seed=7)
    assert out.outcome == "detected"
    assert out.attempts > 0 and out.landed > 0
    assert out.violations > 0
    assert monitor in dict(out.by_monitor)
    assert out.witness                      # a concrete witness line
    assert monitor in out.witness or "node" in out.witness


def test_equivocation_witness_names_both_leaders():
    out = run_attack("acuerdo-unprotected", "equivocate", n=4, seed=7)
    assert "two leaders for term" in out.witness


# ------------------------------------------------- protection / absorption


def test_sst_protection_neutralizes_replay_and_inflate():
    """The RDMA protection-domain argument: a non-owner's write into a
    remote SST row bounces off the per-row grant before any monitor
    could even see it."""
    for mode in ("replay_sst", "inflate", "equivocate"):
        out = run_attack("acuerdo", mode, n=4, seed=7)
        assert out.outcome == "neutralized", (mode, out)
        assert out.blocked > 0 and out.landed == 0
        assert out.violations == 0


def test_bracha_absorbs_sequencer_equivocation():
    """The echo quorum intersects: a forked SEND cannot produce two
    delivered values for one slot — violations stay zero and the
    workload completes."""
    out = run_attack("bracha", "equivocate", n=4, seed=7)
    assert out.outcome == "absorbed"
    assert out.landed > 0
    assert out.violations == 0
    assert out.completed == 80              # liveness kept too


def test_dolev_sender_folding_defeats_path_forgery():
    """A relayer can fabricate the path list it forwards but not remove
    itself from the route: forged paths all share the forger, never
    look disjoint, and the flood is absorbed."""
    out = run_attack("dolev", "inflate", n=4, seed=7)
    assert out.outcome == "absorbed"
    assert out.violations == 0


def test_dolev_flags_source_equivocation():
    """Plain Dolev only defends against lying *relayers*; a forked
    source legitimately diverges deliveries and the prefix monitor
    must say so (Bracha is the baseline that closes this hole)."""
    out = run_attack("dolev", "equivocate", n=4, seed=7)
    assert out.outcome == "detected"
    assert "log_prefix_agreement" in dict(out.by_monitor)


# ------------------------------------------------------- no false positives


@pytest.mark.parametrize("system", ADVERSARY_SYSTEMS)
def test_honest_run_reports_zero_violations(system):
    """The exact adversary-harness workload, monitors attached, no
    injector armed: every system must come out clean."""
    engine = Engine(seed=7)
    registry = MonitorRegistry(engine)
    sys_obj = _build(system, engine, 4)
    settle(sys_obj, preseed=False)
    state = {"submitted": 0}

    def pump():
        if state["submitted"] < 80:
            if sys_obj.submit(("cl", state["submitted"]), 64):
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(10))
    assert registry.finish() == []


# ------------------------------------------------------------ bit-identity


@pytest.mark.parametrize("name", ["acuerdo", "zookeeper", "bracha"])
def test_unarmed_injector_is_bit_invisible(name):
    """Attaching the injector without arming any mode must not move a
    single event: the golden-fingerprint workload still matches."""
    engine = Engine(seed=7)
    system = build_from_spec(RunSpec(system=name, n=3), engine)
    settle(system)
    ByzantineInjector(engine, system)       # attached, never armed
    state = {"submitted": 0}

    def pump():
        if state["submitted"] < 24:
            if system.submit(("m", state["submitted"]), 64):
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(30))
    observed = (engine.trace.fingerprint(),
                tuple(sorted(system.deliveries.counts.items())),
                system.leader_id())
    assert observed == GOLDEN_FINGERPRINTS[name]


def test_byz_off_matches_golden_for_every_system():
    """`run_protocol` never attaches an injector; the golden table is
    asserted per-system elsewhere — here we spot-check that the hook
    sites (tcp, fabric, ringbuffer, sst) left acuerdo untouched."""
    assert run_protocol("acuerdo") == GOLDEN_FINGERPRINTS["acuerdo"]


# ----------------------------------------------------------- the schedule


def test_schedule_byz_applies_a_runspec_schedule():
    engine = Engine(seed=7)
    system = build_from_spec(RunSpec(system="acuerdo", n=3), engine)
    settle(system)
    byz = schedule_byz(engine, system, ["corrupt_ring:0@0.2"])
    assert byz is not None and engine.byz is byz
    state = {"submitted": 0}

    def pump():
        # ("cl", i) payloads: the forgery predicate targets client
        # leaves, as in the adversary harness workload.
        if state["submitted"] < 24:
            if system.submit(("cl", state["submitted"]), 64):
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(5))
    assert byz.attempts["corrupt_ring"] > 0
    assert byz.counters()["attempts"]["corrupt_ring"] > 0


def test_schedule_byz_empty_schedule_is_none():
    engine = Engine(seed=7)
    system = build_from_spec(RunSpec(system="acuerdo", n=3), engine)
    assert schedule_byz(engine, system, []) is None
    assert engine.byz is None
