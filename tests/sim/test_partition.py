"""Partition schedules: grammar, injection surface, and determinism.

``--partition "GROUPS@MS[-MS]"`` entries flow through
:func:`repro.sim.failure.parse_partition` into
:meth:`FailureInjector.partition_at` / :meth:`heal_at` against the
deployment's substrate.  The schedule must be deterministic — the same
cut and heal produce the same observable run whether the poll-parking
fast path is on or off.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.factory import build_from_spec, settle
from repro.harness.runspec import RunSpec
from repro.sim.engine import Engine, ms, us
from repro.sim.failure import (
    FailureInjector,
    parse_partition,
    schedule_partitions,
)


# ----------------------------------------------------------- the grammar


def test_parse_partition_entries():
    assert parse_partition("0,1|2@5") == (((0, 1), (2,)), 5.0, None)
    assert parse_partition("0,1|2@5-20") == (((0, 1), (2,)), 5.0, 20.0)
    assert parse_partition("0|1|2@0.5") == (((0,), (1,), (2,)), 0.5, None)
    assert parse_partition("0, 1|2@1") == (((0, 1), (2,)), 1.0, None)


@pytest.mark.parametrize("bad", [
    "0,1|2",            # no @MS
    "@5",               # no groups
    "0,1|2@soon",       # non-numeric time
    "0,1|2@5-x",        # non-numeric heal time
    "0,1|2@-1",         # negative start
    "0,1|2@5-2",        # heal before cut
    "0,x|2@5",          # non-int node id
    "0,|2@5",           # empty member
    "|@5",              # empty groups
])
def test_parse_partition_rejects_malformed_entries(bad):
    with pytest.raises(ValueError):
        parse_partition(bad)


def test_runspec_validates_partition_entries_eagerly():
    spec = RunSpec(system="acuerdo", partitions=["0,1|2@5-20"])
    assert spec.partitions == ("0,1|2@5-20",)    # normalised to a tuple
    with pytest.raises(ValueError):
        RunSpec(system="acuerdo", partitions=("0,1|2",))


# ------------------------------------------------------------- injection


def test_partition_methods_require_a_substrate():
    engine = Engine(seed=1)
    inj = FailureInjector(engine, [])
    with pytest.raises(ValueError, match="no substrate"):
        inj.partition_at(us(5), (0, 1), (2,))
    with pytest.raises(ValueError, match="no substrate"):
        inj.heal_at(us(5))


def test_schedule_partitions_empty_schedule_is_none():
    engine = Engine(seed=1)
    assert schedule_partitions(engine, None, []) is None


def test_partition_drops_cross_group_traffic_then_heals():
    """Cut the ZAB leader (node 2) off mid-workload: the substrate
    counts the dropped crossings, commits stall for the partition
    window, and progress resumes once the schedule heals the cut."""
    engine = Engine(seed=7)
    system = build_from_spec(RunSpec(system="zookeeper", n=3), engine)
    settle(system)
    assert system.leader_id() == 2
    inj = schedule_partitions(engine, system.substrate, ["0,1|2@0.5-8"],
                              processes=system.processes())
    assert inj is not None
    state = {"submitted": 0}

    def pump():
        if state["submitted"] < 24:
            if system.submit(("m", state["submitted"]), 64):
                state["submitted"] += 1
            engine.schedule(us(100), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(5))
    assert system.substrate.partition_drops > 0    # the cut actually bit
    counts_mid = dict(system.deliveries.counts)
    assert all(c < 24 for c in counts_mid.values())   # commits stalled
    engine.run(until=engine.now + ms(25))
    assert system.substrate._partition is None        # healed on schedule
    counts_end = dict(system.deliveries.counts)
    # The healed majority re-elects and resumes committing.
    assert sum(counts_end.values()) > sum(counts_mid.values())


# ---------------------------------------------------------- determinism


def _partitioned_run(name: str, entry: str = "0,1|2@1-6"):
    engine = Engine(seed=7)
    system = build_from_spec(RunSpec(system=name, n=3), engine)
    settle(system)
    schedule_partitions(engine, system.substrate, [entry],
                        processes=system.processes())
    state = {"submitted": 0}
    deliveries: list = []
    system.delivery_listeners.append(
        lambda node_id, payload: deliveries.append(
            (node_id, payload, engine.now)))

    def pump():
        if state["submitted"] < 24:
            if system.submit(("m", state["submitted"]), 64):
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(30))
    return (engine.trace.fingerprint(),
            tuple(sorted(system.deliveries.counts.items())),
            tuple(deliveries),
            system.substrate.partition_drops), engine.events_executed


def _run_with_park(flag: str, name: str):
    prior = os.environ.get("REPRO_PARK")
    os.environ["REPRO_PARK"] = flag
    try:
        return _partitioned_run(name)
    finally:
        if prior is None:
            os.environ.pop("REPRO_PARK", None)
        else:
            os.environ["REPRO_PARK"] = prior


@pytest.mark.parametrize("name", ["acuerdo", "zookeeper"])
def test_partition_and_heal_are_park_invariant(name):
    """The cut and the heal land at the same simulated instants whether
    idle poll loops are parked or not: bit-identical observable runs."""
    parked, parked_events = _run_with_park("1", name)
    unparked, unparked_events = _run_with_park("0", name)
    assert parked == unparked
    assert parked_events <= unparked_events


def test_partitioned_run_is_seed_deterministic():
    a, _ = _partitioned_run("zookeeper")
    b, _ = _partitioned_run("zookeeper")
    assert a == b
